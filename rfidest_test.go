package rfidest

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(500000, WithSeed(42))
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.N-500000)/500000 > 0.05 {
		t.Fatalf("estimate %v outside 5%% of 500000", est.N)
	}
	if est.Seconds > 0.25 {
		t.Fatalf("BFCE air time %v s", est.Seconds)
	}
	if !est.Guarded {
		t.Fatal("BFCE at n=500000 must be guarded")
	}
}

func TestDistributions(t *testing.T) {
	for _, d := range []Distribution{Uniform, ApproxNormal, Normal} {
		sys := NewSystem(50000, WithSeed(7), WithDistribution(d))
		if sys.Distribution() != d {
			t.Fatalf("distribution not stored: %v", d)
		}
		est, err := sys.EstimateBFCE(0.05, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.N-50000)/50000 > 0.05 {
			t.Fatalf("%v: estimate %v", d, est.N)
		}
		if d.String() == "" {
			t.Fatal("empty distribution name")
		}
	}
}

func TestSyntheticSystem(t *testing.T) {
	// The (ε, δ) requirement is probabilistic: check the violation *rate*
	// across many independent systems rather than a single lucky run.
	bad := 0
	const trials = 60
	for seed := uint64(0); seed < trials; seed++ {
		sys := NewSystem(300000, WithSeed(seed), WithSynthetic())
		est, err := sys.EstimateBFCE(0.05, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.N-300000)/300000 > 0.05 {
			bad++
		}
	}
	// δ = 0.05 → expect ~3 violations in 60; 8 is > 3σ above that.
	if bad > 8 {
		t.Fatalf("epsilon violated in %d/%d synthetic runs (delta=0.05)", bad, trials)
	}
}

func TestPaperTagHashOption(t *testing.T) {
	sys := NewSystem(100000, WithSeed(11), WithPaperTagHash())
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.N-100000)/100000 > 0.08 {
		t.Fatalf("paper-hash estimate %v", est.N)
	}
}

func TestIDHashOption(t *testing.T) {
	sys := NewSystem(100000, WithSeed(13), WithIDHash(), WithDistribution(Normal))
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.N-100000)/100000 > 0.05 {
		t.Fatalf("id-hash estimate %v", est.N)
	}
}

func TestNoiseOption(t *testing.T) {
	sys := NewSystem(100000, WithSeed(15), WithNoise(0.01, 0.01))
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Noise degrades but does not wreck the estimate at 1% error rates.
	if math.Abs(est.N-100000)/100000 > 0.2 {
		t.Fatalf("noisy estimate %v", est.N)
	}
}

func TestEstimateWithAllRegistered(t *testing.T) {
	names := Estimators()
	if len(names) != 12 {
		t.Fatalf("estimator registry size = %d", len(names))
	}
	sys := NewSystem(100000, WithSeed(17), WithSynthetic())
	for _, name := range names {
		est, err := sys.EstimateWith(name, 0.1, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tolerance := 0.2
		if name == "LOF" || name == "PET" {
			tolerance = 1.0 // rough/loglog family: constant-factor only
		}
		if math.Abs(est.N-100000)/100000 > tolerance {
			t.Fatalf("%s estimate %v", name, est.N)
		}
		if est.Seconds <= 0 {
			t.Fatalf("%s reported no air time", name)
		}
	}
}

func TestEstimateWithUnknownName(t *testing.T) {
	sys := NewSystem(10, WithSynthetic())
	if _, err := sys.EstimateWith("nope", 0.1, 0.1); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestEstimateWithBadAccuracy(t *testing.T) {
	sys := NewSystem(10, WithSynthetic())
	for _, bad := range [][2]float64{{0, 0.1}, {0.1, 0}, {1, 0.1}, {0.1, 1}} {
		if _, err := sys.EstimateWith("BFCE", bad[0], bad[1]); err == nil {
			t.Fatalf("bad accuracy %v accepted", bad)
		}
	}
}

func TestRepeatedEstimatesAreIndependent(t *testing.T) {
	sys := NewSystem(200000, WithSeed(19))
	a, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a.N == b.N {
		t.Fatal("two estimation sessions produced identical estimates (sessions not independent)")
	}
}

func TestDeterministicAcrossSystems(t *testing.T) {
	a, err := NewSystem(50000, WithSeed(21)).EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem(50000, WithSeed(21)).EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != b.N || a.Seconds != b.Seconds {
		t.Fatal("same seed did not reproduce the same estimate")
	}
}

func TestBFCEDetail(t *testing.T) {
	sys := NewSystem(250000, WithSeed(23))
	det, err := sys.EstimateBFCEDetail(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Feasible || det.Saturated {
		t.Fatalf("detail flags: %+v", det)
	}
	if det.LowerBound > 250000 {
		t.Fatalf("lower bound %v exceeds n", det.LowerBound)
	}
	if det.LowerBound < 50000 {
		t.Fatalf("lower bound %v implausibly small", det.LowerBound)
	}
	if det.OptimalPn < 1 || det.OptimalPn > 1023 {
		t.Fatalf("optimal pn %d out of range", det.OptimalPn)
	}
	if math.Abs(det.Estimate.N-250000)/250000 > 0.05 {
		t.Fatalf("detail estimate %v", det.Estimate.N)
	}
}

func TestBFCEDetailBadConfig(t *testing.T) {
	sys := NewSystem(10, WithSynthetic())
	if _, err := sys.EstimateBFCEDetail(0, 0.5); err == nil {
		t.Fatal("bad epsilon accepted")
	}
}

func TestConstantTimeBudget(t *testing.T) {
	b := ConstantTimeBudget()
	if b <= 0.18 || b >= 0.19 {
		t.Fatalf("budget %v, paper says just under 0.19 s", b)
	}
}

func TestMaxCardinality(t *testing.T) {
	if MaxCardinality() < 19e6 {
		t.Fatalf("max cardinality %v, paper says > 19 million", MaxCardinality())
	}
}

func TestNewSystemPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative n did not panic")
		}
	}()
	NewSystem(-1)
}

func TestSystemN(t *testing.T) {
	if NewSystem(123, WithSynthetic()).N() != 123 {
		t.Fatal("N() wrong")
	}
}

func TestEstimateReportsTagTransmissions(t *testing.T) {
	// BFCE triggers ~n·k·(p_s·(probe+rough fraction) + p_o) responses —
	// far fewer than one per tag at these scales.
	sys := NewSystem(200000, WithSeed(51))
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if est.TagTransmissions <= 0 {
		t.Fatalf("TagTransmissions = %d", est.TagTransmissions)
	}
	perTag := float64(est.TagTransmissions) / 200000
	if perTag > 0.1 {
		t.Fatalf("BFCE triggered %v transmissions per tag, expected ≪ 1", perTag)
	}
	// LOF makes every tag respond every round: 10 tx/tag exactly.
	lof, err := sys.EstimateWith("LOF", 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lof.TagTransmissions != 10*200000 {
		t.Fatalf("LOF transmissions = %d, want exactly 10 per tag", lof.TagTransmissions)
	}
}
