// Command experiments regenerates the tables and figures of the BFCE paper
// (ICPP 2015) from the simulator, exactly as indexed in DESIGN.md.
//
// Usage examples:
//
//	experiments -list                 # show the experiment index
//	experiments                       # run everything, text tables to stdout
//	experiments -run fig9,fig10       # only the comparison figures
//	experiments -csv results/         # additionally write one CSV per table
//	experiments -trials 20 -seed 7    # override repetitions and seed
//	experiments -workers 2            # bound the trial pool (same results)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rfidest/internal/experiment"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		seed    = flag.Uint64("seed", experiment.DefaultOptions().Seed, "experiment seed")
		trials  = flag.Int("trials", 0, "override per-point trials (0 = figure defaults)")
		workers = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS; results identical either way)")
		csvDir  = flag.String("csv", "", "also write one CSV per table into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-16s %s\n", id, experiment.Describe(id))
		}
		return
	}

	o := experiment.Options{Seed: *seed, Trials: *trials, Workers: *workers}
	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	selected := ids
	if len(selected) == 0 {
		selected = experiment.IDs()
	}

	for _, id := range selected {
		runner, ok := experiment.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			os.Exit(2)
		}
		table := runner(o)
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, table); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, id string, table *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := table.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
