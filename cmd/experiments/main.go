// Command experiments regenerates the tables and figures of the BFCE paper
// (ICPP 2015) from the simulator, exactly as indexed in DESIGN.md.
//
// Usage examples:
//
//	experiments -list                 # show the experiment index
//	experiments                       # run everything, text tables to stdout
//	experiments -run fig9,fig10       # only the comparison figures
//	experiments -csv results/         # additionally write one CSV per table
//	experiments -trials 20 -seed 7    # override repetitions and seed
//	experiments -workers 2            # bound the trial pool (same results)
//	experiments -run faults -retry 3  # fault-severity sweep, deeper retries
//	experiments -faults 0.5           # the whole suite over a lossy channel
//	experiments -metrics json         # observability snapshot on exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"rfidest/internal/experiment"
	"rfidest/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so the deferred metrics dump and profile
// stop execute on every path.
func run() int {
	var (
		list       = flag.Bool("list", false, "list experiment ids and exit")
		runIDs     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		seed       = flag.Uint64("seed", experiment.DefaultOptions().Seed, "experiment seed")
		trials     = flag.Int("trials", 0, "override per-point trials (0 = figure defaults)")
		workers    = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS; results identical either way)")
		faultsSev  = flag.Float64("faults", 0, "channel fault severity in [0, 1] applied to every session (0 = pristine channel; see the \"faults\" experiment)")
		retry      = flag.Int("retry", 0, "override the degenerate-round retry budget of retry-aware experiments (0 = their defaults)")
		csvDir     = flag.String("csv", "", "also write one CSV per table into this directory")
		metrics    = flag.String("metrics", "", `dump an observability snapshot on exit: "text" or "json"`)
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-16s %s\n", id, experiment.Describe(id))
		}
		return 0
	}
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		fmt.Fprintf(os.Stderr, "experiments: -metrics must be \"text\" or \"json\", got %q\n", *metrics)
		return 2
	}
	if !(*faultsSev >= 0 && *faultsSev <= 1) {
		fmt.Fprintf(os.Stderr, "experiments: -faults must be in [0, 1], got %v\n", *faultsSev)
		return 2
	}
	if *retry < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -retry must be >= 0, got %d\n", *retry)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	o := experiment.Options{Seed: *seed, Trials: *trials, Workers: *workers, Faults: *faultsSev, Retries: *retry}
	var registry *obs.Registry
	if *metrics != "" {
		registry = obs.NewRegistry()
		o.Observer = registry
		defer func() {
			var err error
			if *metrics == "json" {
				err = registry.Snapshot().WriteJSON(os.Stdout)
			} else {
				err = registry.Snapshot().WriteText(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: metrics dump: %v\n", err)
			}
		}()
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	selected := ids
	if len(selected) == 0 {
		selected = experiment.IDs()
	}

	for _, id := range selected {
		runner, ok := experiment.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			return 2
		}
		table := runner(o)
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, table); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
		}
	}
	return 0
}

func writeCSV(dir, id string, table *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	if err := table.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
