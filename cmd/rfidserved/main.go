// Command rfidserved runs the HTTP estimation service (internal/serve):
//
//	rfidserved -addr 127.0.0.1:8080 -seed 1
//
// Endpoints: POST /v1/estimate, POST /v1/batch, POST /v1/monitor,
// GET /v1/metrics, GET /healthz (liveness), GET /readyz (readiness),
// and (unless -pprof=false) GET /debug/pprof/. With -addr :0 the kernel
// picks a port; the bound address is printed on stdout as the first
// line, so scripts can scrape it:
//
//	addr=$(rfidserved -addr 127.0.0.1:0 | head -1)
//
// With -state-dir the server is crash-safe: assigned salts and monitor
// warm state persist through a snapshot+WAL store, and a restart over
// the same directory resumes where the crash left off — acked monitor
// rounds are never lost and pinned-salt requests replay bit-identically.
// -chaos injects deterministic wire faults (resets, stalls, truncations,
// 503s) into /v1/ responses for resilience drills; probe paths are
// spared so orchestration keeps working during the drill.
//
// On SIGINT/SIGTERM the server drains: intake stops, in-flight sessions
// finish (every session is bounded in rounds), and after -drain-timeout
// the remaining sessions are cut at their next round boundary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfidest/internal/chaoshttp"
	"rfidest/internal/checkpoint"
	"rfidest/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		seed         = flag.Uint64("seed", 1, "server seed: roots assigned session salts and default batch salts")
		maxInFlight  = flag.Int("max-in-flight", 16, "max concurrently executing requests")
		queueDepth   = flag.Int("queue-depth", 64, "max requests waiting for a slot before 429s start")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch coalescing window (negative disables)")
		batchMax     = flag.Int("batch-max", 16, "max requests coalesced into one fleet batch")
		interleave   = flag.Bool("interleave", false, "run coalesced batches on the round scheduler instead of the worker pool")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits before cutting sessions at a round boundary")
		enablePprof  = flag.Bool("pprof", true, "mount /debug/pprof/")
		quiet        = flag.Bool("quiet", false, "suppress the access log")
		stateDir     = flag.String("state-dir", "", "durable state directory (empty = in-memory only, no crash recovery)")
		chaos        = flag.Float64("chaos", 0, "server-side fault injection severity in [0,1] (0 = clean)")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "seed for the server-side fault schedule")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := serve.Config{
		Seed:            *seed,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queueDepth,
		BatchWindow:     *batchWindow,
		BatchMaxSize:    *batchMax,
		BatchInterleave: *interleave,
		DefaultTimeout:  *timeout,
		Now:             time.Now,
	}
	logEnc := json.NewEncoder(os.Stderr)
	if !*quiet {
		cfg.LogRequest = func(l serve.RequestLog) { logEnc.Encode(l) }
	}
	if *stateDir != "" {
		store, err := checkpoint.Open(*stateDir, checkpoint.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidserved: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		cfg.Checkpoint = store
	}
	// The server's estimation work roots in its own context, detached
	// from the signal context: a signal must stop intake and start the
	// drain, not instantly cut every in-flight session.
	s, err := serve.New(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidserved: %v\n", err)
		os.Exit(1)
	}

	handler := s.Handler()
	if *chaos > 0 {
		handler = chaoshttp.Middleware(*chaosSeed, chaoshttp.Severity(*chaos), handler)
	}
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *enablePprof {
		// Mounted here, not in the library: profiling is a process
		// decision, and net/http/pprof's side effects stay in main.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidserved: %v\n", err)
		os.Exit(1)
	}
	// First stdout line is the bound address — the contract scripts and
	// the load generator rely on when -addr ends in :0.
	fmt.Println(ln.Addr().String())

	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "rfidserved: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rfidserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rfidserved: drain cut short: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rfidserved: http shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rfidserved: stopped")
}
