// Command rfidload is a closed-loop load generator for rfidserved: -c
// workers each keep one request in flight against POST /v1/estimate,
// optionally paced to a global -rps target, for -duration. It reports
// throughput, status counts and a latency histogram, and exits nonzero
// under -fail-on-error if any request failed — which makes it both the
// bench baseline driver and the CI smoke check:
//
//	rfidload -url http://127.0.0.1:8080 -c 8 -duration 5s
//	rfidload -url "$addr" -c 32 -rps 200 -duration 10s -json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type result struct {
	status  int // -1 on transport error
	seconds float64
}

type report struct {
	Requests     int            `json:"requests"`
	Errors       int            `json:"errors"` // non-2xx + transport failures
	Seconds      float64        `json:"seconds"`
	Throughput   float64        `json:"throughput"` // requests per second
	ByStatus     map[string]int `json:"byStatus"`
	LatencyMsP50 float64        `json:"latencyMsP50"`
	LatencyMsP90 float64        `json:"latencyMsP90"`
	LatencyMsP99 float64        `json:"latencyMsP99"`
	LatencyMsMax float64        `json:"latencyMsMax"`
}

func main() {
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8080", "rfidserved base URL")
		workers   = flag.Int("c", 8, "concurrent closed-loop workers")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		rps       = flag.Float64("rps", 0, "global request-rate target (0 = as fast as the loop closes)")
		n         = flag.Int("n", 10000, "tag population in the request spec")
		synthetic = flag.Bool("synthetic", true, "use a synthetic (non-materialized) population")
		estimator = flag.String("estimator", "BFCE", "estimator to request")
		eps       = flag.Float64("eps", 0.1, "epsilon")
		delta     = flag.Float64("delta", 0.1, "delta")
		solo      = flag.Bool("solo", false, "bypass the server's micro-batcher")
		jsonOut   = flag.Bool("json", false, "print the report as JSON")
		failOnErr = flag.Bool("fail-on-error", false, "exit 1 if any request failed (CI smoke mode)")
	)
	flag.Parse()

	body, err := json.Marshal(map[string]any{
		"system":    map[string]any{"n": *n, "seed": 3, "synthetic": *synthetic},
		"estimator": *estimator,
		"epsilon":   *eps,
		"delta":     *delta,
		"solo":      *solo,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidload: %v\n", err)
		os.Exit(1)
	}
	url := *baseURL + "/v1/estimate"

	// Optional open-loop pacing: a token bucket the workers drain. With
	// rps=0 the bucket is nil and each worker fires as soon as its
	// previous request answers (pure closed loop).
	var pace chan struct{}
	if *rps > 0 {
		pace = make(chan struct{}, *workers)
		interval := time.Duration(float64(time.Second) / *rps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for range t.C {
				select {
				case pace <- struct{}{}:
				default: // bucket full: the loop is saturated, drop the token
				}
			}
		}()
	}

	stop := time.After(*duration)
	stopped := make(chan struct{})
	go func() { <-stop; close(stopped) }()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	client := &http.Client{}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []result
			for {
				select {
				case <-stopped:
					mu.Lock()
					results = append(results, local...)
					mu.Unlock()
					return
				default:
				}
				if pace != nil {
					select {
					case <-pace:
					case <-stopped:
						continue
					}
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				r := result{status: -1, seconds: time.Since(t0).Seconds()}
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					r.status = resp.StatusCode
					r.seconds = time.Since(t0).Seconds()
				}
				local = append(local, r)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := summarize(results, elapsed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("requests   %d (%d errors)\n", rep.Requests, rep.Errors)
		fmt.Printf("throughput %.1f req/s over %.2fs\n", rep.Throughput, rep.Seconds)
		for code, count := range rep.ByStatus {
			fmt.Printf("  status %s  %d\n", code, count)
		}
		fmt.Printf("latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
			rep.LatencyMsP50, rep.LatencyMsP90, rep.LatencyMsP99, rep.LatencyMsMax)
	}
	if *failOnErr && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "rfidload: %d of %d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "rfidload: no request completed")
		os.Exit(1)
	}
}

func summarize(results []result, elapsed float64) report {
	rep := report{
		Requests: len(results),
		Seconds:  elapsed,
		ByStatus: make(map[string]int),
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(results)) / elapsed
	}
	lat := make([]float64, 0, len(results))
	for _, r := range results {
		key := "transport-error"
		if r.status >= 0 {
			key = fmt.Sprint(r.status)
		}
		rep.ByStatus[key]++
		if r.status < 200 || r.status > 299 {
			rep.Errors++
			continue
		}
		lat = append(lat, r.seconds*1000)
	}
	if len(lat) == 0 {
		return rep
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	rep.LatencyMsP50 = q(0.50)
	rep.LatencyMsP90 = q(0.90)
	rep.LatencyMsP99 = q(0.99)
	rep.LatencyMsMax = lat[len(lat)-1]
	return rep
}
