// Command rfidload is a closed-loop load generator for rfidserved: -c
// workers each keep one request in flight against POST /v1/estimate,
// optionally paced to a global -rps target, for -duration. Requests go
// through the resilient client (internal/client): capped exponential
// backoff with full jitter, Retry-After honored on 429/503 sheds, and
// optional hedging for pinned-salt runs. It reports throughput, status
// counts, retry/shed/hedge totals and a latency histogram, and exits
// nonzero under -fail-on-error if any request failed outright — sheds the
// server asked the client to back off from are reported separately, not
// counted as failures:
//
//	rfidload -url http://127.0.0.1:8080 -c 8 -duration 5s
//	rfidload -url "$addr" -c 32 -rps 200 -duration 10s -json
//	rfidload -url "$addr" -salt 7 -hedge 20ms -chaos 0.3 -duration 5s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"rfidest/internal/chaoshttp"
	"rfidest/internal/client"
	"rfidest/internal/serve"
)

type result struct {
	status  int // -1 on transport error, HTTP status otherwise
	shed    bool
	seconds float64
}

type report struct {
	Requests     int            `json:"requests"`
	Errors       int            `json:"errors"` // failures that are not sheds
	Sheds        int            `json:"sheds"`  // terminal 429/503 after retries
	Seconds      float64        `json:"seconds"`
	Throughput   float64        `json:"throughput"` // requests per second
	ByStatus     map[string]int `json:"byStatus"`
	Retries      int64          `json:"retries"`
	ShedReplies  int64          `json:"shedReplies"` // 429/503 replies seen (incl. retried ones)
	Hedges       int64          `json:"hedges"`
	HedgeWins    int64          `json:"hedgeWins"`
	LatencyMsP50 float64        `json:"latencyMsP50"`
	LatencyMsP90 float64        `json:"latencyMsP90"`
	LatencyMsP99 float64        `json:"latencyMsP99"`
	LatencyMsMax float64        `json:"latencyMsMax"`
}

func main() {
	var (
		baseURL   = flag.String("url", "http://127.0.0.1:8080", "rfidserved base URL")
		workers   = flag.Int("c", 8, "concurrent closed-loop workers")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		rps       = flag.Float64("rps", 0, "global request-rate target (0 = as fast as the loop closes)")
		n         = flag.Int("n", 10000, "tag population in the request spec")
		synthetic = flag.Bool("synthetic", true, "use a synthetic (non-materialized) population")
		estimator = flag.String("estimator", "BFCE", "estimator to request")
		eps       = flag.Float64("eps", 0.1, "epsilon")
		delta     = flag.Float64("delta", 0.1, "delta")
		solo      = flag.Bool("solo", false, "bypass the server's micro-batcher")
		salt      = flag.Uint64("salt", 0, "pin every request to this session salt (0 = server assigns per request)")
		retries   = flag.Int("retries", 3, "extra attempts per request on transient failures (-1 disables)")
		hedge     = flag.Duration("hedge", 0, "hedge pinned-salt requests after this delay (0 disables; needs -salt)")
		seed      = flag.Uint64("seed", 1, "client seed: roots the backoff jitter stream")
		chaos     = flag.Float64("chaos", 0, "client-side fault injection severity in [0,1] (0 = clean wire)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the client-side fault schedule")
		jsonOut   = flag.Bool("json", false, "print the report as JSON")
		failOnErr = flag.Bool("fail-on-error", false, "exit 1 if any request failed (CI smoke mode; sheds don't fail)")
	)
	flag.Parse()

	req := serve.EstimateRequest{
		System:    serve.SystemSpec{N: *n, Seed: 3, Synthetic: *synthetic},
		Estimator: *estimator,
		Epsilon:   *eps,
		Delta:     *delta,
		Solo:      *solo,
	}
	if *salt != 0 {
		req.Salt = salt
	}
	if *hedge > 0 && *salt == 0 {
		fmt.Fprintln(os.Stderr, "rfidload: -hedge needs -salt (an unpinned request is a different session per leg)")
		os.Exit(2)
	}

	httpClient := &http.Client{}
	if *chaos > 0 {
		httpClient.Transport = chaoshttp.Transport(*chaosSeed, chaoshttp.Severity(*chaos), nil)
	}
	c := client.New(client.Config{
		BaseURL:    *baseURL,
		HTTP:       httpClient,
		Seed:       *seed,
		Retries:    *retries,
		HedgeDelay: *hedge,
	})

	// Optional open-loop pacing: a token bucket the workers drain. With
	// rps=0 the bucket is nil and each worker fires as soon as its
	// previous request answers (pure closed loop).
	var pace chan struct{}
	if *rps > 0 {
		pace = make(chan struct{}, *workers)
		interval := time.Duration(float64(time.Second) / *rps)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for range t.C {
				select {
				case pace <- struct{}{}:
				default: // bucket full: the loop is saturated, drop the token
				}
			}
		}()
	}

	stop := time.After(*duration)
	stopped := make(chan struct{})
	go func() { <-stop; close(stopped) }()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []result
	)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []result
			for {
				select {
				case <-stopped:
					mu.Lock()
					results = append(results, local...)
					mu.Unlock()
					return
				default:
				}
				if pace != nil {
					select {
					case <-pace:
					case <-stopped:
						continue
					}
				}
				t0 := time.Now()
				_, err := c.Estimate(context.Background(), req)
				r := result{status: 200, seconds: time.Since(t0).Seconds()}
				if err != nil {
					r.status = -1
					var serr *client.StatusError
					if errors.As(err, &serr) {
						r.status = serr.Status
						r.shed = serr.Status == http.StatusTooManyRequests ||
							serr.Status == http.StatusServiceUnavailable
					}
				}
				local = append(local, r)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := summarize(results, elapsed, c.Stats())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("requests   %d (%d errors, %d sheds)\n", rep.Requests, rep.Errors, rep.Sheds)
		fmt.Printf("throughput %.1f req/s over %.2fs\n", rep.Throughput, rep.Seconds)
		for code, count := range rep.ByStatus {
			fmt.Printf("  status %s  %d\n", code, count)
		}
		fmt.Printf("resilience retries %d  shed-replies %d  hedges %d  hedge-wins %d\n",
			rep.Retries, rep.ShedReplies, rep.Hedges, rep.HedgeWins)
		fmt.Printf("latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
			rep.LatencyMsP50, rep.LatencyMsP90, rep.LatencyMsP99, rep.LatencyMsMax)
	}
	if *failOnErr && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "rfidload: %d of %d requests failed\n", rep.Errors, rep.Requests)
		os.Exit(1)
	}
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "rfidload: no request completed")
		os.Exit(1)
	}
}

func summarize(results []result, elapsed float64, st client.Stats) report {
	rep := report{
		Requests:    len(results),
		Seconds:     elapsed,
		ByStatus:    make(map[string]int),
		Retries:     st.Retries,
		ShedReplies: st.Shed,
		Hedges:      st.Hedges,
		HedgeWins:   st.HedgeWins,
	}
	if elapsed > 0 {
		rep.Throughput = float64(len(results)) / elapsed
	}
	lat := make([]float64, 0, len(results))
	for _, r := range results {
		key := "transport-error"
		if r.status >= 0 {
			key = fmt.Sprint(r.status)
		}
		rep.ByStatus[key]++
		if r.status < 200 || r.status > 299 {
			// The server asking for backoff (429/503 after retries ran out)
			// is load shedding working, not a failure of the run.
			if r.shed {
				rep.Sheds++
			} else {
				rep.Errors++
			}
			continue
		}
		lat = append(lat, r.seconds*1000)
	}
	if len(lat) == 0 {
		return rep
	}
	sort.Float64s(lat)
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	rep.LatencyMsP50 = q(0.50)
	rep.LatencyMsP90 = q(0.90)
	rep.LatencyMsP99 = q(0.99)
	rep.LatencyMsMax = lat[len(lat)-1]
	return rep
}
