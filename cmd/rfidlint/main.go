// Command rfidlint runs the repository's domain static analyzers — the
// machine-checked form of the simulator's determinism and concurrency
// contracts (see internal/analysis).
//
// Usage:
//
//	rfidlint [-json] [-list] [packages]
//
// Packages are directory patterns as for the go tool ("./...", "internal/
// fleet", ...); the default is ./... from the current directory. With
// -json, findings are emitted as a JSON array for CI tooling. Exit status
// is 0 when clean, 1 when findings were reported, 2 on a usage or load
// error. Individual findings can be suppressed at the use site with a
// "//lint:allow <analyzer> <reason>" comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rfidest/internal/analysis"
)

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := analysis.Lint(analysis.All(), flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rfidlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
