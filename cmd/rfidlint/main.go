// Command rfidlint runs the repository's domain static analyzers — the
// machine-checked form of the simulator's determinism and concurrency
// contracts (see internal/analysis).
//
// Usage:
//
//	rfidlint [-json] [-list] [-fix] [-diff] [-sarif file] [-baseline file] [packages]
//
// Packages are directory patterns as for the go tool ("./...", "internal/
// fleet", ...); the default is ./... from the current directory. With
// -json, findings are emitted as a JSON array for CI tooling; -sarif
// writes the same findings as SARIF 2.1.0 for code-scanning upload.
// -diff previews the suggested fixes as a unified diff; -fix applies
// them to the source files (atomically, gofmt-verified) and reports what
// remains. -baseline suppresses findings recorded in a prior -json run,
// so a tree with known debt can still gate on NEW findings. Exit status
// is 0 when clean, 1 when findings were reported, 2 on a usage or load
// error. Individual findings can be suppressed at the use site with a
// "//lint:allow <analyzer> <reason>" comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rfidest/internal/analysis"
)

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files, then report what remains")
	diffOut := flag.Bool("diff", false, "print suggested fixes as a unified diff without applying them")
	sarifPath := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file`")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in `file` (prior -json output)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			scope := "local"
			if a.Interprocedural {
				scope = "interprocedural"
			}
			fmt.Printf("%-10s %-15s %s\n", a.Name, scope, docSummary(a.Doc))
		}
		return
	}

	diags, err := analysis.Lint(analysis.All(), flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidlint: %v\n", err)
		os.Exit(2)
	}
	if *baselinePath != "" {
		diags, err = filterBaseline(diags, *baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: baseline: %v\n", err)
			os.Exit(2)
		}
	}

	if *diffOut {
		if err := printFixDiffs(diags); err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *sarifPath != "" {
		if err := writeSarif(*sarifPath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: sarif: %v\n", err)
			os.Exit(2)
		}
	}

	if *fix {
		var applied int
		diags, applied, err = applyFixesToDisk(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: fix: %v\n", err)
			os.Exit(2)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "rfidlint: applied %d fix(es)\n", applied)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(diags)); err != nil {
			fmt.Fprintf(os.Stderr, "rfidlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rfidlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// docSummary returns the first clause of an analyzer doc string — the
// one-line form -list prints.
func docSummary(doc string) string {
	if i := strings.IndexAny(doc, ";\n"); i >= 0 {
		return strings.TrimSpace(doc[:i])
	}
	return doc
}

func toJSON(diags []analysis.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// relPath renders file relative to the working directory (slash-form)
// when possible, so -json/-sarif output and baselines are stable across
// checkouts.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// filterBaseline drops findings recorded in a prior -json run. Matching
// is by (file, analyzer, message) — line numbers drift as code moves, so
// they are deliberately not part of the key.
func filterBaseline(diags []analysis.Diagnostic, path string) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old []jsonDiagnostic
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	known := make(map[string]bool, len(old))
	for _, d := range old {
		known[d.File+"\x00"+d.Analyzer+"\x00"+d.Message] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if known[relPath(d.Pos.Filename)+"\x00"+d.Analyzer+"\x00"+d.Message] {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

// printFixDiffs renders every suggested fix as a unified diff against
// the current file contents, without writing anything.
func printFixDiffs(diags []analysis.Diagnostic) error {
	fixed, applied, err := analysis.ApplyFixes(diags, nil)
	if err != nil {
		return err
	}
	if applied == 0 {
		return nil
	}
	files := make([]string, 0, len(fixed))
	for file := range fixed {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		orig, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		fmt.Print(analysis.UnifiedDiff(relPath(file), orig, fixed[file]))
	}
	return nil
}

// applyFixesToDisk applies every suggested fix, writing each changed
// file atomically (temp file + rename in the same directory). It returns
// the findings that remain — the ones that carried no fix.
func applyFixesToDisk(diags []analysis.Diagnostic) ([]analysis.Diagnostic, int, error) {
	fixed, applied, err := analysis.ApplyFixes(diags, nil)
	if err != nil {
		return diags, 0, err
	}
	for file, content := range fixed {
		if err := writeAtomic(file, content); err != nil {
			return diags, 0, err
		}
	}
	if applied == 0 {
		return diags, 0, nil
	}
	var remaining []analysis.Diagnostic
	for _, d := range diags {
		if d.Fix == nil {
			remaining = append(remaining, d)
		}
	}
	return remaining, applied, nil
}

// writeAtomic replaces file with content via a same-directory temp file
// and rename, preserving the original permissions.
func writeAtomic(file string, content []byte) error {
	info, err := os.Stat(file)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(file), "."+filepath.Base(file)+".fix-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, info.Mode().Perm()); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, file); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// SARIF 2.1.0 — the minimal subset code-scanning consumers need.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSarif(path string, diags []analysis.Diagnostic) error {
	var rules []sarifRule
	for _, a := range analysis.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: docSummary(a.Doc)}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "rfidlint", Rules: rules}}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
