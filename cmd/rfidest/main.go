// Command rfidest runs a single cardinality estimation over a simulated
// RFID deployment and reports the estimate, its error and its air-time
// cost.
//
// Usage examples:
//
//	rfidest -n 500000                         # BFCE at (0.05, 0.05)
//	rfidest -n 500000 -estimator ZOE          # the comparison protocol
//	rfidest -n 100000 -dist normal -runs 20   # repeated runs + summary
//	rfidest -n 250000 -detail                 # BFCE internal diagnostics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rfidest"
)

func main() {
	var (
		n         = flag.Int("n", 100000, "true tag cardinality to simulate")
		dist      = flag.String("dist", "uniform", "tagID distribution: uniform | approx-normal | normal")
		estimator = flag.String("estimator", "BFCE", "protocol to run: "+strings.Join(rfidest.Estimators(), " | "))
		eps       = flag.Float64("eps", 0.05, "confidence interval epsilon")
		delta     = flag.Float64("delta", 0.05, "error probability delta")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		runs      = flag.Int("runs", 1, "number of independent estimation runs")
		synthetic = flag.Bool("synthetic", false, "sample exact frame statistics instead of materializing tags")
		paperHash = flag.Bool("paperhash", false, "tags run the paper's literal XOR/bitget hash")
		falseBusy = flag.Float64("false-busy", 0, "per-slot probability an idle slot reads busy")
		falseIdle = flag.Float64("false-idle", 0, "per-slot probability a busy slot reads idle")
		detail    = flag.Bool("detail", false, "print BFCE phase diagnostics (BFCE only)")
	)
	flag.Parse()

	opts := []rfidest.SystemOption{rfidest.WithSeed(*seed)}
	switch *dist {
	case "uniform":
		opts = append(opts, rfidest.WithDistribution(rfidest.Uniform))
	case "approx-normal":
		opts = append(opts, rfidest.WithDistribution(rfidest.ApproxNormal))
	case "normal":
		opts = append(opts, rfidest.WithDistribution(rfidest.Normal))
	default:
		fmt.Fprintf(os.Stderr, "rfidest: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	if *synthetic {
		opts = append(opts, rfidest.WithSynthetic())
	}
	if *paperHash {
		opts = append(opts, rfidest.WithPaperTagHash())
	}
	if *falseBusy > 0 || *falseIdle > 0 {
		opts = append(opts, rfidest.WithNoise(*falseBusy, *falseIdle))
	}

	sys := rfidest.NewSystem(*n, opts...)
	fmt.Printf("system: n=%d dist=%s estimator=%s (eps=%.3g delta=%.3g)\n",
		*n, *dist, *estimator, *eps, *delta)

	if *detail {
		if *estimator != "BFCE" {
			fmt.Fprintln(os.Stderr, "rfidest: -detail is BFCE-only")
			os.Exit(2)
		}
		for run := 0; run < *runs; run++ {
			det, err := sys.EstimateBFCEDetail(*eps, *delta)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rfidest: %v\n", err)
				os.Exit(1)
			}
			e := det.Estimate
			fmt.Printf("run %2d: n̂=%.0f err=%.4f  rough=%.0f low=%.0f  ps=%d/1024 po=%d/1024 probes=%d feasible=%v  %.4fs\n",
				run+1, e.N, relErr(e.N, *n), det.Rough, det.LowerBound,
				det.ProbePn, det.OptimalPn, det.ProbeRounds, det.Feasible, e.Seconds)
		}
		return
	}

	var errSum, secSum float64
	worst := 0.0
	for run := 0; run < *runs; run++ {
		est, err := sys.EstimateWith(*estimator, *eps, *delta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidest: %v\n", err)
			os.Exit(1)
		}
		re := relErr(est.N, *n)
		errSum += re
		secSum += est.Seconds
		if re > worst {
			worst = re
		}
		fmt.Printf("run %2d: n̂=%.0f err=%.4f  air-time=%.4fs  slots=%d reader-bits=%d rounds=%d guarded=%v\n",
			run+1, est.N, re, est.Seconds, est.Slots, est.ReaderBits, est.Rounds, est.Guarded)
	}
	if *runs > 1 {
		fmt.Printf("summary: mean-err=%.4f worst-err=%.4f mean-air-time=%.4fs\n",
			errSum/float64(*runs), worst, secSum/float64(*runs))
	}
}

func relErr(nhat float64, n int) float64 {
	if n == 0 {
		return 0
	}
	d := nhat - float64(n)
	if d < 0 {
		d = -d
	}
	return d / float64(n)
}
