// Command rfidfleet runs a mixed fleet-estimation workload — N simulated
// deployments crossed with M estimators — concurrently over the
// internal/fleet worker pool and prints a throughput/accuracy report.
// It is the load harness for the concurrent session layer: many
// independent reader sessions in flight against shared Systems, with
// results bit-identical for a fixed seed no matter the worker count.
//
// Usage examples:
//
//	rfidfleet                                      # 8 systems x BFCE,ZOE,SRC
//	rfidfleet -systems 16 -trials 10 -workers 4    # bounded pool
//	rfidfleet -estimators BFCE -min-n 1e4 -max-n 1e6
//	rfidfleet -tag-level -noise 0.001              # per-tag fidelity + noise
//	rfidfleet -faults 0.5 -retry 2                 # lossy channels + retries
//	rfidfleet -retry 2 -retry-backoff 0.25         # exponential air-time backoff
//	rfidfleet -trial-timeout 1s                    # per-trial deadline
//	rfidfleet -interleave                          # breadth-first round scheduler
//	rfidfleet -timeout 10s                         # cancel long batches
//	rfidfleet -metrics text                        # observability snapshot
//	rfidfleet -cpuprofile fleet.pprof              # profile the run
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime/pprof"
	"strings"

	"rfidest"
	"rfidest/internal/fleet"
	"rfidest/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so the deferred metrics dump and profile
// stop execute on every path.
func run() int {
	var (
		systems      = flag.Int("systems", 8, "number of simulated deployments")
		minN         = flag.Float64("min-n", 10000, "smallest deployment cardinality")
		maxN         = flag.Float64("max-n", 1000000, "largest deployment cardinality (log-spaced up from min-n)")
		estimators   = flag.String("estimators", "BFCE,ZOE,SRC", "comma-separated estimator names: "+strings.Join(rfidest.Estimators(), " | "))
		eps          = flag.Float64("eps", 0.05, "confidence interval epsilon")
		delta        = flag.Float64("delta", 0.05, "error probability delta")
		trials       = flag.Int("trials", 5, "estimations per (system, estimator) job")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; results identical either way)")
		seed         = flag.Uint64("seed", 1, "root seed: pins populations and every trial's session")
		tagLevel     = flag.Bool("tag-level", false, "materialize tag populations (default: exact synthetic channel)")
		noise        = flag.Float64("noise", 0, "symmetric per-slot reader error rate applied to half the systems")
		faults       = flag.Float64("faults", 0, "channel fault severity in [0, 1]: scales burst noise, erasures, truncation and reader stalls on every system (0 = no injection)")
		retry        = flag.Int("retry", 0, "re-run a failed or saturated trial up to this many times before degrading the job")
		retryBackoff = flag.Float64("retry-backoff", 0, "simulated air-time backoff in seconds before retry k (doubles each attempt)")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial deadline; a timed-out attempt is retried like any other failure (0 = no limit)")
		interleave   = flag.Bool("interleave", false, "run the batch on the deterministic round scheduler (breadth-first across jobs; incompatible with -trial-timeout)")
		timeout      = flag.Duration("timeout", 0, "cancel the batch after this long (0 = no limit)")
		verbose      = flag.Bool("v", false, "also print one line per job")
		metrics      = flag.String("metrics", "", `dump an observability snapshot on exit: "text" or "json"`)
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	if *systems < 1 || *trials < 1 || *minN < 1 || *maxN < *minN {
		fmt.Fprintln(os.Stderr, "rfidfleet: need systems >= 1, trials >= 1, 1 <= min-n <= max-n")
		return 2
	}
	if !(*faults >= 0 && *faults <= 1) {
		fmt.Fprintf(os.Stderr, "rfidfleet: -faults must be in [0, 1], got %v\n", *faults)
		return 2
	}
	if *retry < 0 || !(*retryBackoff >= 0) || *trialTimeout < 0 {
		fmt.Fprintln(os.Stderr, "rfidfleet: need retry >= 0, retry-backoff >= 0, trial-timeout >= 0")
		return 2
	}
	if *interleave && *trialTimeout > 0 {
		fmt.Fprintln(os.Stderr, "rfidfleet: -interleave and -trial-timeout are mutually exclusive; use -timeout to bound an interleaved batch")
		return 2
	}
	if *metrics != "" && *metrics != "text" && *metrics != "json" {
		fmt.Fprintf(os.Stderr, "rfidfleet: -metrics must be \"text\" or \"json\", got %q\n", *metrics)
		return 2
	}
	var names []string
	for _, name := range strings.Split(*estimators, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "rfidfleet: no estimators selected")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfidfleet: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rfidfleet: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var registry *obs.Registry
	var observer obs.Observer
	if *metrics != "" {
		registry = obs.NewRegistry()
		observer = registry
		defer func() {
			var err error
			if *metrics == "json" {
				err = registry.Snapshot().WriteJSON(os.Stdout)
			} else {
				err = registry.Snapshot().WriteText(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rfidfleet: metrics dump: %v\n", err)
			}
		}()
	}

	jobs := buildWorkload(workloadSpec{
		systems: *systems, minN: *minN, maxN: *maxN, names: names,
		eps: *eps, delta: *delta, trials: *trials, seed: *seed,
		tagLevel: *tagLevel, noise: *noise,
		faults: *faults, retry: *retry, retryBackoff: *retryBackoff,
	})

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	mode := fmt.Sprintf("workers=%d", *workers)
	if *interleave {
		mode = "interleaved"
	}
	fmt.Printf("fleet: %d systems x %d estimators x %d trials = %d estimations (%s seed=%d)\n",
		*systems, len(names), *trials, *systems*len(names)**trials, mode, *seed)

	rep, err := fleet.Run(ctx, fleet.Config{
		Workers: *workers, Seed: *seed, Observer: observer,
		TrialTimeout: *trialTimeout, Interleave: *interleave,
	}, jobs)
	if err != nil && rep == nil {
		fmt.Fprintf(os.Stderr, "rfidfleet: %v\n", err)
		return 1
	}

	if *verbose {
		for _, r := range rep.Jobs {
			switch {
			case r.Skipped:
				fmt.Printf("  %-28s skipped (cancelled)\n", r.Label())
			case r.Err != nil:
				fmt.Printf("  %-28s FAILED at trial %d: %v\n", r.Label(), r.FailedAt, r.Err)
			default:
				suffix := ""
				if r.Degraded {
					suffix = fmt.Sprintf(" DEGRADED (retries=%d degraded-trials=%d)", r.Retries, r.DegradedTrials)
				} else if r.Retries > 0 {
					suffix = fmt.Sprintf(" retries=%d", r.Retries)
				}
				fmt.Printf("  %-28s n=%-8d trials=%d mean-err=%.4f max-err=%.4f air=%.3fs%s\n",
					r.Label(), r.Job.System.N(), len(r.Estimates), r.MeanAbsErr, r.MaxAbsErr, r.AirSeconds, suffix)
			}
		}
	}

	fmt.Println()
	fmt.Printf("%-12s %5s %7s %10s %9s %10s %8s %9s %8s\n",
		"estimator", "jobs", "trials", "mean-err", "p90-err", "air-time", "failed", "degraded", "retries")
	for _, g := range rep.PerEstimator() {
		fmt.Printf("%-12s %5d %7d %10.4f %9.4f %9.3fs %8d %9d %8d\n",
			g.Estimator, g.Jobs, g.Trials, g.MeanAbsErr, g.P90AbsErr, g.AirSeconds, g.Failed, g.Degraded, g.Retries)
	}
	fmt.Println()
	fmt.Printf("totals: %d trials (%d jobs failed, %d skipped, %d degraded, %d retries)  mean-err=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f\n",
		rep.Trials, rep.Failed, rep.Skipped, rep.Degraded, rep.Retries, rep.MeanAbsErr, rep.P50AbsErr, rep.P90AbsErr, rep.P99AbsErr, rep.MaxAbsErr)
	fmt.Printf("time:   simulated air %.2fs, wall %.2fs, throughput %.1f estimations/s\n",
		rep.AirSeconds, rep.WallSeconds, rep.Throughput)
	if *interleave && rep.Trials > 0 {
		fmt.Printf("sched:  %d protocol rounds interleaved across %d sessions (%.1f rounds/session)\n",
			rep.SchedRounds, rep.Trials, float64(rep.SchedRounds)/float64(rep.Trials))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidfleet: batch cancelled: %v\n", err)
		return 1
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

// workloadSpec bundles the workload-shaping flags.
type workloadSpec struct {
	systems      int
	minN, maxN   float64
	names        []string
	eps, delta   float64
	trials       int
	seed         uint64
	tagLevel     bool
	noise        float64
	faults       float64
	retry        int
	retryBackoff float64
}

// buildWorkload lays out the mixed batch: `systems` deployments with
// log-spaced cardinalities cycling through the three tagID distributions,
// every other one noisy when a noise rate is set, crossed with the chosen
// estimators. A non-zero fault severity installs the severity-scaled
// channel-fault plan on every system; retry/backoff ride along on every
// job. Everything derives from seed, so a fixed command line is a fixed
// workload.
func buildWorkload(spec workloadSpec) []fleet.Job {
	dists := []rfidest.Distribution{rfidest.Uniform, rfidest.ApproxNormal, rfidest.Normal}
	var jobs []fleet.Job
	for i := 0; i < spec.systems; i++ {
		frac := 0.0
		if spec.systems > 1 {
			frac = float64(i) / float64(spec.systems-1)
		}
		n := int(math.Round(spec.minN * math.Pow(spec.maxN/spec.minN, frac)))
		opts := []rfidest.SystemOption{rfidest.WithSeed(spec.seed + uint64(i))}
		variant := "synthetic"
		if spec.tagLevel {
			opts = append(opts, rfidest.WithDistribution(dists[i%len(dists)]))
			variant = dists[i%len(dists)].String()
		} else {
			opts = append(opts, rfidest.WithSynthetic())
		}
		if spec.noise > 0 && i%2 == 1 {
			opts = append(opts, rfidest.WithNoise(spec.noise, spec.noise))
			variant += "+noise"
		}
		if spec.faults > 0 {
			opts = append(opts, rfidest.WithFaults(rfidest.FaultSeverity(spec.faults)))
			variant += "+faults"
		}
		sys := rfidest.NewSystem(n, opts...)
		for _, name := range spec.names {
			jobs = append(jobs, fleet.Job{
				Name:                fmt.Sprintf("n=%d(%s)/%s", n, variant, name),
				System:              sys,
				Estimator:           name,
				Epsilon:             spec.eps,
				Delta:               spec.delta,
				Trials:              spec.trials,
				Retries:             spec.retry,
				RetryBackoffSeconds: spec.retryBackoff,
			})
		}
	}
	return jobs
}
