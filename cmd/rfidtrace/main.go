// Command rfidtrace prints the over-the-air dialogue of one estimation
// run: every reader broadcast and every sensed frame, in order, with the
// accumulated air-time cost. It makes the paper's central argument visible
// in the raw transcript — compare the three-broadcast dialogue of BFCE
// against ZOE's thousands of per-slot seed broadcasts:
//
//	rfidtrace -n 100000 -estimator BFCE
//	rfidtrace -n 100000 -estimator ZOE -max-events 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rfidest/internal/channel"
	"rfidest/internal/estimators"
	"rfidest/internal/tags"
)

func main() {
	var (
		n         = flag.Int("n", 100000, "true tag cardinality to simulate")
		name      = flag.String("estimator", "BFCE", "protocol to trace: "+strings.Join(estimators.Names(), " | "))
		eps       = flag.Float64("eps", 0.05, "confidence interval epsilon")
		delta     = flag.Float64("delta", 0.05, "error probability delta")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		maxEvents = flag.Int("max-events", 100, "stop printing after this many events (0 = all)")
	)
	flag.Parse()

	est, err := estimators.New(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidtrace: %v\n", err)
		os.Exit(2)
	}

	pop := tags.Generate(*n, tags.T1, *seed)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), *seed+1)

	events, suppressed := 0, 0
	r.SetTrace(func(e channel.TraceEvent) {
		events++
		if *maxEvents > 0 && events > *maxEvents {
			suppressed++
			return
		}
		fmt.Printf("%5d  %-60s  t=%.4fs\n", events, e.String(), r.Seconds())
	})

	res, err := est.Estimate(r, estimators.Accuracy{Epsilon: *eps, Delta: *delta})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfidtrace: %v\n", err)
		os.Exit(1)
	}
	if suppressed > 0 {
		fmt.Printf("  ...  (%d further events suppressed; raise -max-events)\n", suppressed)
	}
	fmt.Println(strings.Repeat("-", 80))
	fmt.Printf("%s: n̂=%.0f (true %d)  air-time=%.4fs  %d events  cost: %s\n",
		est.Name(), res.Estimate, *n, res.Seconds, events, res.Cost)
}
