package rfidest_test

// Round-structured execution tests: the golden grid replayed through the
// public StartRun/Step loop, and through the interleaving scheduler at
// several widths. Every path must reproduce the grid bit-for-bit — the
// stepper refactor's core contract is that restructuring execution into
// rounds changes nothing observable about any estimate.

import (
	"context"
	"runtime"
	"testing"

	"rfidest"
	"rfidest/internal/goldengrid"
	"rfidest/internal/sched"
)

func goldenOptions(c goldengrid.Case) []rfidest.Option {
	return []rfidest.Option{
		rfidest.WithEstimator(c.Estimator),
		rfidest.WithAccuracy(goldengrid.Epsilon, goldengrid.Delta),
		rfidest.WithSalt(c.Salt),
	}
}

// TestStartRunStepGolden drives every golden case by hand — StartRun, then
// Step until done — and pins the full Estimate against the grid.
func TestStartRunStepGolden(t *testing.T) {
	system := goldenSystems(t)
	ctx := context.Background()
	for _, c := range goldengrid.Cases() {
		rs, err := system(c.System).StartRun(goldenOptions(c)...)
		if err != nil {
			t.Errorf("%s/%s/0x%x: StartRun: %v", c.System, c.Estimator, c.Salt, err)
			continue
		}
		if rs.Estimator() != c.Estimator {
			t.Errorf("%s/%s/0x%x: Estimator() = %q", c.System, c.Estimator, c.Salt, rs.Estimator())
		}
		if _, err := rs.Result(); err == nil {
			t.Errorf("%s/%s/0x%x: Result before completion did not error", c.System, c.Estimator, c.Salt)
		}
		steps := 0
		for {
			done, err := rs.Step(ctx)
			if err != nil {
				t.Fatalf("%s/%s/0x%x: Step %d: %v", c.System, c.Estimator, c.Salt, steps, err)
			}
			steps++
			if done {
				break
			}
		}
		if !rs.Done() {
			t.Fatalf("%s/%s/0x%x: Done() false after Step reported done", c.System, c.Estimator, c.Salt)
		}
		if rs.Rounds() != steps {
			t.Errorf("%s/%s/0x%x: Rounds() = %d after %d steps", c.System, c.Estimator, c.Salt, rs.Rounds(), steps)
		}
		got, err := rs.Result()
		if err != nil {
			t.Errorf("%s/%s/0x%x: Result: %v", c.System, c.Estimator, c.Salt, err)
			continue
		}
		if got != c.Want {
			t.Errorf("%s/%s/0x%x:\n got  %+v\n want %+v", c.System, c.Estimator, c.Salt, got, c.Want)
		}
		// A finished session's Step is a settled no-op.
		if done, err := rs.Step(ctx); !done || err != nil {
			t.Errorf("%s/%s/0x%x: Step after done = (%v, %v)", c.System, c.Estimator, c.Salt, done, err)
		}
	}
}

// TestSchedInterleaveGolden replays the grid through sched.Interleave at
// widths 1, 4 and 32: the cases are batched, every batch's sessions are
// opened together and their rounds interleaved breadth-first, and each
// session must still land exactly on its golden Estimate — sessions own
// their seed streams, so interleaving cannot perturb them.
func TestSchedInterleaveGolden(t *testing.T) {
	cases := goldengrid.Cases()
	ctx := context.Background()
	for _, width := range []int{1, 4, 32} {
		system := goldenSystems(t)
		for lo := 0; lo < len(cases); lo += width {
			hi := lo + width
			if hi > len(cases) {
				hi = len(cases)
			}
			batch := cases[lo:hi]
			runners := make([]sched.Runner, len(batch))
			sessions := make([]*rfidest.RunSession, len(batch))
			for i, c := range batch {
				rs, err := system(c.System).StartRun(goldenOptions(c)...)
				if err != nil {
					t.Fatalf("width %d, %s/%s/0x%x: StartRun: %v", width, c.System, c.Estimator, c.Salt, err)
				}
				sessions[i] = rs
				runners[i] = rs
			}
			outcome := sched.Interleave(ctx, sched.Config{Seed: 0xba7c4}, runners)
			for i, c := range batch {
				if outcome[i].Err != nil {
					t.Errorf("width %d, %s/%s/0x%x: scheduler: %v", width, c.System, c.Estimator, c.Salt, outcome[i].Err)
					continue
				}
				if outcome[i].Rounds != sessions[i].Rounds() {
					t.Errorf("width %d, %s/%s/0x%x: scheduler counted %d rounds, session counted %d",
						width, c.System, c.Estimator, c.Salt, outcome[i].Rounds, sessions[i].Rounds())
				}
				got, err := sessions[i].Result()
				if err != nil {
					t.Errorf("width %d, %s/%s/0x%x: %v", width, c.System, c.Estimator, c.Salt, err)
					continue
				}
				if got != c.Want {
					t.Errorf("width %d, %s/%s/0x%x:\n got  %+v\n want %+v",
						width, c.System, c.Estimator, c.Salt, got, c.Want)
				}
			}
		}
	}
}

// TestSchedGOMAXPROCSIndependence runs the same interleaved batch under
// GOMAXPROCS=1 and GOMAXPROCS=8 and demands identical estimates and
// identical per-session round counts: the scheduler is single-goroutine
// and seeded, so parallelism settings must be invisible to it.
func TestSchedGOMAXPROCSIndependence(t *testing.T) {
	cases := goldengrid.Cases()[:16]
	run := func() ([]rfidest.Estimate, []int) {
		system := goldenSystems(t)
		runners := make([]sched.Runner, len(cases))
		sessions := make([]*rfidest.RunSession, len(cases))
		for i, c := range cases {
			rs, err := system(c.System).StartRun(goldenOptions(c)...)
			if err != nil {
				t.Fatal(err)
			}
			sessions[i] = rs
			runners[i] = rs
		}
		outcome := sched.Interleave(context.Background(), sched.Config{Seed: 7}, runners)
		ests := make([]rfidest.Estimate, len(cases))
		rounds := make([]int, len(cases))
		for i := range cases {
			if outcome[i].Err != nil {
				t.Fatal(outcome[i].Err)
			}
			est, err := sessions[i].Result()
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = est
			rounds[i] = outcome[i].Rounds
		}
		return ests, rounds
	}

	prev := runtime.GOMAXPROCS(1)
	ests1, rounds1 := run()
	runtime.GOMAXPROCS(8)
	ests8, rounds8 := run()
	runtime.GOMAXPROCS(prev)

	for i := range cases {
		if ests1[i] != ests8[i] {
			t.Errorf("case %d: GOMAXPROCS=1 estimate %+v != GOMAXPROCS=8 estimate %+v", i, ests1[i], ests8[i])
		}
		if rounds1[i] != rounds8[i] {
			t.Errorf("case %d: round counts diverge across GOMAXPROCS: %d vs %d", i, rounds1[i], rounds8[i])
		}
	}
}

// TestStartRunValidation: invalid options fail at StartRun, before any
// session opens, with the same diagnostics Run reports.
func TestStartRunValidation(t *testing.T) {
	sys := rfidest.NewSystem(1000, rfidest.WithSynthetic())
	if _, err := sys.StartRun(rfidest.WithEstimator("nope")); err == nil {
		t.Error("unknown estimator accepted")
	}
	if _, err := sys.StartRun(rfidest.WithAccuracy(0, 0.5)); err == nil {
		t.Error("bad accuracy accepted")
	}
	if _, err := sys.StartRun(rfidest.WithRetry(-1, 0)); err == nil {
		t.Error("negative retries accepted")
	}
}
