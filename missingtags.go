package rfidest

import (
	"errors"

	"rfidest/internal/missing"
)

// MissingReport is the outcome of a missing-tag detection run.
type MissingReport struct {
	Expected      int      // size of the expected inventory
	MissingIDs    []uint64 // tagIDs convicted (certain, under a perfect channel)
	EstimateCount float64  // estimated number of missing tags
	Coverage      float64  // fraction of expected tags checked at least once
	Seconds       float64  // air time under EPCglobal C1G2
}

// DetectMissing checks the system's present tags against an expected
// inventory (another tag-level System holding the full expected
// population) and reports which expected tags are absent. rounds frames
// are run with fresh seeds (0 uses the default 8); each round is one
// constant-time frame, and a tag convicted by an idle singleton slot is
// missing with certainty under the paper's perfect-channel assumption.
//
// Both systems must be tag-level: the reader precomputes each expected
// tag's slot with the same hash the tags run, which synthetic engines do
// not model.
func (s *System) DetectMissing(expected *System, rounds int) (MissingReport, error) {
	if expected == nil {
		return MissingReport{}, errors.New("rfidest: nil expected inventory")
	}
	if s.synthetic || s.merged != nil || expected.synthetic || expected.merged != nil {
		return MissingReport{}, errors.New("rfidest: missing-tag detection needs plain tag-level systems")
	}
	if rounds < 0 {
		return MissingReport{}, errors.New("rfidest: negative rounds")
	}
	res, err := missing.Detect(s.session(), expected.pop.Tags, missing.Config{
		Rounds: rounds,
		Mode:   s.hashMode,
	})
	if err != nil {
		return MissingReport{}, err
	}
	return MissingReport{
		Expected:      res.Expected,
		MissingIDs:    res.MissingIDs,
		EstimateCount: res.EstimateCount,
		Coverage:      res.Coverage,
		Seconds:       res.Seconds,
	}, nil
}
