package rfidest

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWithSeedSaltAliasesWithSalt: the unified salt option and its original
// name address the same session.
func TestWithSeedSaltAliasesWithSalt(t *testing.T) {
	sys := NewSystem(5000, WithSynthetic(), WithSeed(3))
	a, err := sys.Run(nil, WithAccuracy(0.1, 0.1), WithSeedSalt(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Run(nil, WithAccuracy(0.1, 0.1), WithSalt(77))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("WithSeedSalt and WithSalt diverged:\n %+v\n %+v", a, b)
	}
}

// TestWithTimeoutPassive: a generous per-run deadline never perturbs the
// estimate — the timeout machinery is pure plumbing until it fires.
func TestWithTimeoutPassive(t *testing.T) {
	sys := NewSystem(5000, WithSynthetic(), WithSeed(3))
	bare, err := sys.Run(nil, WithAccuracy(0.1, 0.1), WithSeedSalt(5))
	if err != nil {
		t.Fatal(err)
	}
	timed, err := sys.Run(nil, WithAccuracy(0.1, 0.1), WithSeedSalt(5), WithTimeout(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if bare != timed {
		t.Errorf("WithTimeout perturbed the run:\n bare  %+v\n timed %+v", bare, timed)
	}
}

// TestWithTimeoutExpiry: an immediate deadline fails Run, a stepped run and
// a monitor round with context.DeadlineExceeded.
func TestWithTimeoutExpiry(t *testing.T) {
	sys := NewSystem(5000, WithSynthetic(), WithSeed(3))
	if _, err := sys.Run(nil, WithTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run under 1ns timeout: err = %v, want DeadlineExceeded", err)
	}

	rs, err := sys.StartRun(WithTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		done, err := rs.Step(context.Background())
		if done {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("stepped run under 1ns timeout: err = %v, want DeadlineExceeded", err)
			}
			break
		}
		if i > 1000 {
			t.Fatal("stepped run never hit its 1ns deadline")
		}
	}

	mon, err := NewMonitor(0.1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run(nil, sys, WithTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("monitor round under 1ns timeout: err = %v, want DeadlineExceeded", err)
	}
}

// TestWithTimeoutNegative: a negative deadline is a validation error on
// every entry point, not an instant expiry.
func TestWithTimeoutNegative(t *testing.T) {
	sys := NewSystem(100, WithSynthetic())
	if _, err := sys.Run(nil, WithTimeout(-time.Second)); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run: negative timeout returned %v, want a validation error", err)
	}
	if _, err := sys.StartRun(WithTimeout(-time.Second)); err == nil {
		t.Error("StartRun accepted a negative timeout")
	}
	mon, err := NewMonitor(0.1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run(nil, sys, WithTimeout(-time.Second)); err == nil {
		t.Error("Monitor.Run accepted a negative timeout")
	}
}

// TestErrUnknownEstimatorSentinel: every entry point's unknown-name error
// unwraps to the shared sentinel the serving layer maps to HTTP 400.
func TestErrUnknownEstimatorSentinel(t *testing.T) {
	sys := NewSystem(100, WithSynthetic())
	if _, err := sys.Run(nil, WithEstimator("NOPE")); !errors.Is(err, ErrUnknownEstimator) {
		t.Errorf("Run: err = %v, want ErrUnknownEstimator", err)
	}
	if _, err := sys.StartRun(WithEstimator("NOPE")); !errors.Is(err, ErrUnknownEstimator) {
		t.Errorf("StartRun: err = %v, want ErrUnknownEstimator", err)
	}
}
