package rfidest

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestEstimateWireFormat pins the JSON rendering of Estimate — the wire
// schema the serving layer freezes. A failure here is a wire-format break:
// clients parse these exact keys.
func TestEstimateWireFormat(t *testing.T) {
	est := Estimate{
		N:                21121.473455566364,
		Seconds:          0.19091407999999999,
		Slots:            9248,
		ReaderBits:       384,
		Rounds:           1,
		Guarded:          true,
		TagTransmissions: 674,
		Saturated:        true,
		Retries:          2,
	}
	got, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":21121.473455566364,"seconds":0.19091407999999999,"slots":9248,` +
		`"readerBits":384,"rounds":1,"guarded":true,"tagTransmissions":674,` +
		`"saturated":true,"retries":2}`
	if string(got) != want {
		t.Errorf("Estimate wire format drifted:\n got  %s\n want %s", got, want)
	}

	var back Estimate
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != est {
		t.Errorf("Estimate did not round-trip:\n got  %+v\n want %+v", back, est)
	}
}

// TestEstimateWireOmissions: fields whose zero value carries no information
// (Saturated, Retries) are omitted; fields where zero is meaningful
// (Guarded false, TagTransmissions 0 vs the -1 unmetered sentinel) are not.
func TestEstimateWireOmissions(t *testing.T) {
	got, err := json.Marshal(Estimate{TagTransmissions: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"saturated", "retries"} {
		if strings.Contains(string(got), absent) {
			t.Errorf("zero %q should be omitted from %s", absent, got)
		}
	}
	for _, present := range []string{`"guarded":false`, `"tagTransmissions":-1`, `"n":0`} {
		if !strings.Contains(string(got), present) {
			t.Errorf("wire form %s should contain %s", got, present)
		}
	}
}

// TestBFCEDetailWireFormat pins the BFCEDetail rendering and round-trips a
// live run through it.
func TestBFCEDetailWireFormat(t *testing.T) {
	det := BFCEDetail{
		Estimate:    Estimate{N: 1, Seconds: 2, Slots: 3, ReaderBits: 4, Rounds: 5, Guarded: true, TagTransmissions: 6},
		Rough:       7.5,
		LowerBound:  8.5,
		ProbePn:     9,
		OptimalPn:   10,
		ProbeRounds: 11,
		Feasible:    true,
	}
	got, err := json.Marshal(det)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"estimate":{"n":1,"seconds":2,"slots":3,"readerBits":4,"rounds":5,` +
		`"guarded":true,"tagTransmissions":6},"rough":7.5,"lowerBound":8.5,` +
		`"probePn":9,"optimalPn":10,"probeRounds":11,"feasible":true}`
	if string(got) != want {
		t.Errorf("BFCEDetail wire format drifted:\n got  %s\n want %s", got, want)
	}
	var back BFCEDetail
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != det {
		t.Errorf("BFCEDetail did not round-trip:\n got  %+v\n want %+v", back, det)
	}
}

// TestEstimateJSONRoundTripLive runs a real estimation and requires the
// float fields to survive Marshal→Unmarshal bit-exactly (encoding/json
// renders float64 at full round-trip precision).
func TestEstimateJSONRoundTripLive(t *testing.T) {
	sys := NewSystem(20000, WithSeed(42))
	est, err := sys.Run(nil, WithAccuracy(0.1, 0.1), WithSeedSalt(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	var back Estimate
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != est {
		t.Errorf("live Estimate did not round-trip bit-identically:\n got  %+v\n want %+v", back, est)
	}
}
