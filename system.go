package rfidest

import (
	"fmt"
	"sync/atomic"

	"rfidest/internal/channel"
	"rfidest/internal/faults"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// Distribution selects a tagID distribution for a simulated population
// (the paper's three evaluation sets, Fig. 6).
type Distribution int

const (
	// Uniform tagIDs over [1, 10^15] (the paper's T1).
	Uniform Distribution = iota
	// ApproxNormal — a bounded bell shape (the paper's T2).
	ApproxNormal
	// Normal — truncated normal around the middle of the ID space (T3).
	Normal
)

func (d Distribution) internal() tags.Distribution {
	switch d {
	case Uniform:
		return tags.T1
	case ApproxNormal:
		return tags.T2
	case Normal:
		return tags.T3
	default:
		panic(fmt.Sprintf("rfidest: unknown distribution %d", int(d)))
	}
}

// String names the distribution as in the paper.
func (d Distribution) String() string { return d.internal().String() }

// System is a simulated RFID deployment: a tag population behind a
// time-slotted bit-slot channel with a cost-accounting reader.
//
// Concurrency contract: the population and configuration are immutable
// once built, and each estimation call opens a fresh reader session over
// them, so Estimate* calls are safe to issue from any number of goroutines
// against one shared System — the only cross-session state is the session
// counter, which is advanced atomically. Counter-derived sessions make
// calls independent but their numbering scheduling-dependent; callers that
// need results reproducible under concurrency (the internal/fleet runner)
// address sessions by explicit salt via EstimateWithSalt instead.
type System struct {
	n         int
	dist      Distribution
	seed      uint64
	synthetic bool
	hashMode  channel.HashMode
	noisy     bool
	falseBusy float64
	falseIdle float64
	faults    FaultPlan

	pop      *tags.Population // nil when synthetic
	merged   []*System        // non-nil for multi-reader merges (see Merge)
	sessions atomic.Uint64    // counter behind session(); never copied after New
}

// SystemOption configures NewSystem.
type SystemOption func(*System)

// WithDistribution selects the tagID distribution (default Uniform).
func WithDistribution(d Distribution) SystemOption {
	return func(s *System) { s.dist = d }
}

// WithSeed pins all simulation randomness (default 1).
func WithSeed(seed uint64) SystemOption {
	return func(s *System) { s.seed = seed }
}

// WithSynthetic skips materializing tags and samples frames from their
// exact occupancy statistics — fastest, and statistically identical for
// ideal hashing. TagID distribution and hash mode are irrelevant in this
// mode.
func WithSynthetic() SystemOption {
	return func(s *System) { s.synthetic = true }
}

// WithPaperTagHash makes tags run the paper's literal lightweight hash
// (RN ⊕ RS, low bits) and RN-based persistence instead of an ideal mixer.
func WithPaperTagHash() SystemOption {
	return func(s *System) { s.hashMode = channel.PaperXOR }
}

// WithIDHash hashes the tagID itself (rather than the prestored random
// number), exposing the estimator to the raw ID distribution through an
// ideal mixer.
func WithIDHash() SystemOption {
	return func(s *System) { s.hashMode = channel.IdealID }
}

// WithNoise wraps the channel with symmetric per-slot reader errors:
// an idle slot reads busy with probability falseBusy, a busy slot reads
// idle with probability falseIdle. The paper assumes a perfect channel;
// this option exists for robustness studies.
func WithNoise(falseBusy, falseIdle float64) SystemOption {
	return func(s *System) {
		s.noisy = true
		s.falseBusy = falseBusy
		s.falseIdle = falseIdle
	}
}

// FaultPlan configures the deterministic channel-fault injectors of
// WithFaults; see internal/faults for the fault model. The zero plan
// injects nothing.
type FaultPlan = faults.Plan

// FaultSeverity is the one-knob fault plan: rate in [0, 1] scales every
// injector together (burst noise, erasures, truncations, reader stalls).
// FaultSeverity(0) is the zero plan.
func FaultSeverity(rate float64) FaultPlan { return faults.Severity(rate) }

// WithFaults layers the plan's deterministic fault injectors on the
// channel, outermost (after any WithNoise wrapper). Fault schedules derive
// from the system seed and the session salt alone, so equal (system, salt)
// pairs replay identical faults. A zero plan installs nothing.
func WithFaults(plan FaultPlan) SystemOption {
	return func(s *System) { s.faults = plan }
}

// NewSystem builds a simulated deployment of n tags. It panics if n is
// negative or an option is invalid; simulation of populations the channel
// cannot express (n beyond the ID space) also panics.
func NewSystem(n int, opts ...SystemOption) *System {
	s := &System{n: n, seed: 1, hashMode: channel.IdealRN}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.faults.Validate(); err != nil {
		panic(err.Error())
	}
	if !s.synthetic {
		s.pop = tags.Generate(n, s.dist.internal(), xrand.Combine(s.seed, 0x5757))
	}
	return s
}

// N returns the ground-truth cardinality (what estimators try to recover).
func (s *System) N() int { return s.n }

// Distribution returns the system's tagID distribution.
func (s *System) Distribution() Distribution { return s.dist }

// session opens a fresh reader session; each call atomically advances the
// session counter so repeated estimates see independent randomness. Which
// concurrent caller gets which session number is scheduling-dependent;
// sessionAt is the deterministic alternative.
func (s *System) session() *channel.Reader {
	return s.sessionAt(s.sessions.Add(1))
}

// sessionAt opens the reader session addressed by salt. Every per-session
// random stream (frame sampling, channel noise, broadcast seeds) derives
// from (system seed, salt) alone, so equal salts replay identical sessions
// regardless of what other sessions are in flight. The engine is built
// fresh per session; the only state it shares with its siblings is the
// read-only tag population.
func (s *System) sessionAt(salt uint64) *channel.Reader {
	salt = xrand.Combine(s.seed, 0x5e55, salt)
	var eng channel.Engine
	switch {
	case s.merged != nil:
		eng = s.mergedEngine()
	case s.synthetic:
		eng = channel.NewBallsEngine(s.n, salt)
	default:
		eng = channel.NewTagEngine(s.pop, s.hashMode)
	}
	if s.noisy {
		eng = channel.NewNoisyEngine(eng, s.falseBusy, s.falseIdle, salt+1)
	}
	if s.faults.Enabled() {
		eng = faults.New(eng, s.faults, salt+3)
	}
	return channel.NewReader(eng, salt+2)
}
