package rfidest

import (
	"context"
	"errors"
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/estimators"
	"rfidest/internal/obs"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// RunSession is one estimation run held open between protocol rounds.
// StartRun opens the session and pauses before the first round; each Step
// executes exactly one round (one reader broadcast plus one observed
// frame); Result returns the estimate once Step reports done.
//
// A stepped run is bit-identical to Run with the same options — Run itself
// is a StartRun/Step loop — but the caller owns the schedule: rounds of
// several sessions can be interleaved (the fleet harness's -interleave
// mode drives many RunSession-shaped runs round-robin), a deadline can cut
// a run at a round boundary, and progress can be observed mid-protocol.
//
// A RunSession is single-goroutine; concurrent runs take one RunSession
// each (the underlying System stays shared and safe).
type RunSession struct {
	sys  *System
	o    runOptions
	name string
	est  estimators.Estimator
	acc  estimators.Accuracy
	st   estimators.Stepper
	r    *channel.Reader
	prev obs.Observer

	attempt      int // retry attempts started beyond the first run
	attemptStart timing.Cost
	total        estimators.Result
	rounds       int

	// WithTimeout state: the deadline context is armed at the first Step
	// (derived from that Step's ctx) and its timer released at finish.
	tctx    context.Context
	tcancel context.CancelFunc

	finished bool
	out      Estimate
	err      error
}

// StartRun validates the options, opens a fresh session (counter-derived,
// or salt-addressed under WithSalt) and returns the run paused before its
// first round. The options are those of Run; nothing executes until Step.
func (s *System) StartRun(opts ...Option) (*RunSession, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	open := s.session
	if o.hasSalt {
		salt := o.salt
		open = func() *channel.Reader { return s.sessionAt(salt) }
	}
	return s.startRun(open, o)
}

// startRun is the shared constructor behind StartRun and runOn. The
// operation order (estimator lookup, accuracy validation, stepper build,
// then session open) is load-bearing — the session counter must not
// advance for invalid calls.
func (s *System) startRun(open func() *channel.Reader, o runOptions) (*RunSession, error) {
	est, err := estimators.New(o.estimator)
	if err != nil {
		return nil, fmt.Errorf("rfidest: %w", err)
	}
	if err := validateAccuracy(o.epsilon, o.delta); err != nil {
		return nil, err
	}
	if err := validateRetry(o.retries, o.retryBudget); err != nil {
		return nil, err
	}
	if err := validateTimeout(o.timeout); err != nil {
		return nil, err
	}
	acc := estimators.Accuracy{Epsilon: o.epsilon, Delta: o.delta}
	st, err := estimators.AsStepper(est, acc)
	if err != nil {
		return nil, err
	}
	rs := &RunSession{sys: s, o: o, name: est.Name(), est: est, acc: acc, st: st, r: open()}
	rs.attemptStart = rs.r.Cost()
	if rs.instrumented() {
		rs.prev = rs.r.Observer()
		rs.r.SetObserver(obs.Multi(rs.prev, o.observer))
		o.observer.SessionOpen(rs.name)
	}
	return rs, nil
}

func (rs *RunSession) instrumented() bool { return rs.o.observer != obs.Nop }

// Estimator returns the registry name of the protocol being run.
func (rs *RunSession) Estimator() string { return rs.name }

// Rounds returns how many rounds have been stepped so far, across retry
// attempts. A legacy-adapted protocol counts as a single round.
func (rs *RunSession) Rounds() int { return rs.rounds }

// Done reports whether the run has finished (successfully or not).
func (rs *RunSession) Done() bool { return rs.finished }

// Step executes the next protocol round and reports whether the run
// completed. ctx, when non-nil, cancels between rounds: it is checked
// before the round executes, the round in flight always completes, and a
// cancelled run finishes with ctx's error. Saturated-run retries
// (WithRetry) happen inside Step — a retried run simply keeps stepping
// through fresh attempts until it settles or exhausts its budget.
//
// After the first (true, err) return, further Steps are no-ops returning
// the same outcome.
func (rs *RunSession) Step(ctx context.Context) (done bool, err error) {
	if rs.finished {
		return true, rs.err
	}
	if rs.o.timeout > 0 {
		if rs.tcancel == nil {
			base := ctx
			if base == nil {
				base = context.Background() //lint:allow ctxbg WithTimeout on a nil-ctx Step needs a root to hang the deadline on
			}
			rs.tctx, rs.tcancel = context.WithTimeout(base, rs.o.timeout)
		}
		ctx = rs.tctx
	}
	done, err = channel.StepRound(ctx, rs.r, rs.st)
	if err != nil {
		rs.r.EndPhase()
		return true, rs.fail(err)
	}
	rs.rounds++
	if !done {
		return false, nil
	}
	rs.r.EndPhase()

	// One attempt (a full protocol run) completed: finalize its result and
	// fold it into the running total, exactly as the pre-stepper retry loop
	// accumulated re-runs.
	res := rs.st.Result(rs.r.Cost().Sub(rs.attemptStart), rs.r.Profile)
	if rs.instrumented() {
		rs.o.observer.SessionClose(obs.SessionStats{
			Estimator:        rs.name,
			Estimate:         res.Estimate,
			Rounds:           res.Rounds,
			Slots:            res.Slots,
			ReaderBits:       res.Cost.ReaderBits,
			Seconds:          res.Seconds,
			TagTransmissions: rs.r.TagTransmissions(),
			Guarded:          res.Guarded,
			Err:              false,
		})
	}
	if rs.attempt > 0 {
		res.Rounds += rs.total.Rounds
		res.Slots += rs.total.Slots
		res.Seconds += rs.total.Seconds
		res.Cost.Add(rs.total.Cost)
	}
	rs.total = res

	// Retry: a saturated run is re-run with fresh frame seeds (the
	// session's seed stream simply continues) while attempts and the
	// simulated air-time budget allow.
	if rs.total.Saturated && rs.attempt < rs.o.retries &&
		!(rs.o.retryBudget > 0 && rs.total.Seconds >= rs.o.retryBudget) {
		rs.attempt++
		rs.o.observer.Retry(rs.name, rs.attempt)
		st, err := estimators.AsStepper(rs.est, rs.acc)
		if err != nil {
			return true, rs.fail(err)
		}
		rs.st = st
		rs.attemptStart = rs.r.Cost()
		if rs.instrumented() {
			rs.o.observer.SessionOpen(rs.name)
		}
		return false, nil
	}

	rs.settle()
	return true, nil
}

// fail finishes the run with an error, closing the open session span (with
// a zero result and the error flag, as the instrumented path always did)
// and restoring the session observer.
func (rs *RunSession) fail(err error) error {
	if rs.tcancel != nil {
		rs.tcancel()
	}
	if rs.instrumented() {
		rs.o.observer.SessionClose(obs.SessionStats{
			Estimator:        rs.name,
			TagTransmissions: rs.r.TagTransmissions(),
			Err:              true,
		})
		rs.r.SetObserver(rs.prev)
	}
	rs.finished = true
	rs.err = err
	return err
}

// settle finishes a successful run: degradation accounting, fault
// forwarding and the estimation-error metric, in the exact order of the
// pre-stepper execution path.
func (rs *RunSession) settle() {
	if rs.tcancel != nil {
		rs.tcancel()
	}
	if rs.o.retries > 0 && rs.total.Saturated {
		rs.o.observer.Degraded(rs.name)
	}
	out := fromResult(rs.total)
	out.Retries = rs.attempt
	out.TagTransmissions = rs.r.TagTransmissions()
	if rs.instrumented() {
		rs.r.SetObserver(rs.prev)
	}
	rs.sys.reportFaults(rs.r, rs.o.observer)
	if rs.o.observer != obs.Nop && rs.sys.n > 0 {
		rs.o.observer.EstimateError(stats.RelError(out.N, float64(rs.sys.n)))
	}
	rs.finished = true
	rs.out = out
}

// Result returns the estimate of a completed run. Calling it before Step
// reports done is an error.
func (rs *RunSession) Result() (Estimate, error) {
	if !rs.finished {
		return Estimate{}, errors.New("rfidest: run still in progress; Step it until done")
	}
	if rs.err != nil {
		return Estimate{}, rs.err
	}
	return rs.out, nil
}
