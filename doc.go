// Package rfidest is a library and simulation workbench for RFID tag
// cardinality estimation, built around BFCE — the Bloom Filter based
// Cardinality Estimator of Li, He and Liu, "Towards Constant-Time
// Cardinality Estimation for Large-Scale RFID Systems" (ICPP 2015).
//
// BFCE estimates how many tags sit in a reader's range in a constant
// 1024 + 8192 bit-slots — about 0.19 s of air time under the EPCglobal
// C1G2 timings — regardless of the true cardinality and of the (ε, δ)
// accuracy requirement. The package also implements the protocols BFCE is
// evaluated against (ZOE, SRC) and the broader related work (LOF, UPE,
// EZB, FNEB, MLE, ART, PET), all over one simulated bit-slot channel with
// honest air-time accounting.
//
// # Quick start
//
//	sys := rfidest.NewSystem(500000, rfidest.WithSeed(42))
//	est, err := sys.EstimateBFCE(0.05, 0.05)
//	if err != nil { ... }
//	fmt.Printf("n̂ = %.0f in %.3f s of air time\n", est.N, est.Seconds)
//
// # The Run entry point
//
// System.Run is the context-aware form every estimation flows through,
// configured with functional options:
//
//	est, err := sys.Run(ctx,
//		rfidest.WithEstimator("BFCE"),    // default; any name in Estimators()
//		rfidest.WithAccuracy(0.05, 0.05), // default (ε, δ)
//		rfidest.WithSalt(7),              // deterministic session addressing
//		rfidest.WithObserver(metrics))    // passive instrumentation
//
// The context is checked before every protocol round — the round in
// flight always completes, so a cancelled run leaves its session at a
// round boundary and salted replays stay bit-identical. EstimateBFCE,
// EstimateWith and EstimateWithSalt remain as thin deprecated wrappers
// over Run; RunBFCEDetail is Run with BFCE's internal diagnostics.
//
// # Round-structured execution
//
// Run is exactly a StartRun/Step loop, and both halves are public: every
// protocol executes as a resumable round state machine, and a session can
// be driven one protocol round at a time:
//
//	rs, err := sys.StartRun(rfidest.WithSalt(7)) // same options as Run
//	for {
//		done, err := rs.Step(ctx) // one broadcast + one frame
//		if done || err != nil { break }
//	}
//	est, err := rs.Result() // == sys.Run(ctx, rfidest.WithSalt(7))
//
// RunSession.Step satisfies the internal/sched Runner interface, whose
// Interleave scheduler advances many sessions breadth-first under one
// deterministic, seeded, single-goroutine loop — each interleaved
// session's estimate is bit-identical to its solo run. The fleet runner
// (Config.Interleave, cmd/rfidfleet -interleave) runs whole batches that
// way. Monitor.Run is the same context-aware entry point for the
// warm-start monitoring loop, and Monitor.Snapshot/Restore checkpoint its
// state across processes. See DESIGN.md §9.
//
// # Observability
//
// WithObserver attaches an Observer to a run: session and protocol-phase
// spans, per-frame slot counts, reader-bit and air-time series. NewMetrics
// returns the aggregating registry (histograms for air time, probe rounds
// and estimation error; snapshots export as JSON or expvar-style text).
// Observation is passive — estimates are bit-identical with and without
// it — and the default no-op observer costs nothing. The rfidfleet and
// experiments CLIs expose the registry via -metrics text|json; see
// examples/observability and DESIGN.md §14.
//
// # Faults, retries and degraded results
//
// WithFaults installs a deterministic channel-fault injector on a system
// (Gilbert–Elliott burst noise, slot erasures, frame truncation, reader
// stalls; FaultSeverity scales all four from one knob in [0, 1]) and
// WithRetry re-runs a saturated round with fresh frame seeds under a
// simulated air-time budget:
//
//	sys := rfidest.NewSystem(n, rfidest.WithFaults(rfidest.FaultSeverity(0.5)))
//	est, err := sys.Run(ctx, rfidest.WithRetry(2, 0.5))
//
// The degraded-result contract: a run whose every attempt observed a
// degenerate all-idle/all-busy vector still returns its estimate, with
// Estimate.Saturated set — the value is a resolution bound on the true
// cardinality, not a measurement — and Estimate.Retries reporting what
// recovery cost. Degradation is never an error. Both mechanisms are
// strictly passive by default (a zero plan and an unused retry budget
// replay bit-identically to a plain run), and fault schedules are a pure
// function of (system seed, plan, session salt). The fleet runner extends
// the same policy to batches: jobs with retries degrade to partial
// results (JobResult.Degraded) instead of failing, with exponential
// backoff charged in simulated air time and optional per-trial context
// deadlines. See internal/faults and DESIGN.md §14.
//
// # What is simulated
//
// A System is a population of tags behind a time-slotted reader-talks-first
// channel (§III-A of the paper): the reader broadcasts parameters and
// seeds, tags hash themselves into bit-slots and respond with a persistence
// probability, and the reader senses each slot as busy or idle. Populations
// can be materialized tag-by-tag (with the paper's XOR/bitget tag-side
// hash if desired) or sampled from the exact frame statistics for speed;
// both fidelities produce the same estimator behaviour.
//
// Every estimate reports the protocol's communication cost priced under
// EPCglobal C1G2 (reader bit 37.76 µs, tag bit-slot 18.88 µs, 302 µs
// turnaround), which is the paper's "overall execution time" metric — the
// one on which BFCE is constant-time and ZOE, despite its O(log log n)
// slot count, is not.
//
// # Concurrency
//
// A System is safe to estimate from concurrently: population and
// configuration are immutable once built, every Estimate* call opens a
// fresh session over them, and the shared session counter is atomic.
// Counter-derived sessions make concurrent calls independent but their
// numbering scheduling-dependent; EstimateWithSalt addresses a session by
// an explicit salt instead, replaying bit-identically regardless of what
// else is in flight. Monitor and Tracker carry state between rounds by
// design and are single-goroutine. The internal/fleet runner (driven by
// cmd/rfidfleet) fans batches of estimation jobs across a bounded worker
// pool on top of these guarantees, with results independent of the worker
// count.
//
// # Serving
//
// internal/serve exposes estimation over HTTP/JSON (stdlib net/http
// only), with cmd/rfidserved as the daemon and cmd/rfidload as a
// closed-loop load generator. POST /v1/estimate answers one estimation
// and POST /v1/batch runs a whole fleet batch (optionally on the
// interleaving scheduler); GET /v1/metrics exports the estimation and
// HTTP registries as text or JSON. Determinism survives the transport: a
// request that pins a salt returns the bit-identical estimate of the
// equivalent in-process Run(WithSalt(...)), whether the server answers it
// solo or coalesces it with concurrent requests into a fleet batch —
// micro-batching is a throughput decision, never a result decision — and
// server-assigned salts are derived from the configured seed and echoed
// for replay. Admission is bounded (in-flight slots plus a short queue;
// overflow sheds with 429 and Retry-After, deadlines map to 504), and
// shutdown drains in-flight sessions at round boundaries. See DESIGN.md
// §10.
//
// # Resilience
//
// The serving layer is crash-safe and chaos-hardened. With a state
// directory configured, internal/checkpoint persists assigned salts and
// monitor warm state through atomic snapshots plus a CRC-framed
// write-ahead log, each POST /v1/monitor round made durable before it is
// acknowledged — a crash never loses acked work, and a restart replays
// pinned-salt requests bit-identically and continues monitor round
// counts. Per-estimator circuit breakers shed with 503 and Retry-After
// while an estimator keeps failing (GET /healthz stays pure liveness;
// GET /readyz carries readiness). internal/client retries transient
// failures under capped full-jitter backoff, honors Retry-After as a
// floor, and hedges pinned-salt requests with a bit-identity check on
// the two legs; internal/chaoshttp injects deterministic wire faults on
// either end for drills and tests. All of it is seeded: recovery and
// retry behaviour replays exactly like estimation behaviour. See
// DESIGN.md §11.
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments; DESIGN.md maps each experiment to the
// modules involved and EXPERIMENTS.md records paper-vs-measured outcomes.
package rfidest
