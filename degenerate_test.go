package rfidest

import (
	"math"
	"strings"
	"testing"
)

// TestAccuracyRejectsNonFinite pins the NaN hole in (ε, δ) validation: NaN
// passes a negated `<= 0 || >= 1` range check because every comparison
// against NaN is false, and a NaN ε then flows into the optimal-p search
// where it silently disables the guarantee machinery. The shared check is
// now positively phrased (stats.InUnitInterval), so NaN and ±Inf are
// rejected at every public entry point.
func TestAccuracyRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name           string
		epsilon, delta float64
	}{
		{"nan-epsilon", nan, 0.05},
		{"nan-delta", 0.05, nan},
		{"nan-both", nan, nan},
		{"inf-epsilon", inf, 0.05},
		{"neg-inf-delta", 0.05, -inf},
		{"zero-epsilon", 0, 0.05},
		{"one-delta", 0.05, 1},
		{"negative-epsilon", -0.05, 0.05},
		{"above-one-delta", 0.05, 1.5},
	}
	sys := NewSystem(100, WithSeed(3))
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := sys.Run(nil, WithAccuracy(c.epsilon, c.delta)); err == nil {
				t.Errorf("Run accepted (ε, δ) = (%v, %v)", c.epsilon, c.delta)
			} else if !strings.Contains(err.Error(), "epsilon and delta") {
				t.Errorf("unexpected error: %v", err)
			}
			if _, err := sys.RunBFCEDetail(nil, WithAccuracy(c.epsilon, c.delta)); err == nil {
				t.Errorf("RunBFCEDetail accepted (ε, δ) = (%v, %v)", c.epsilon, c.delta)
			}
			if _, err := NewMonitor(c.epsilon, c.delta, 0); err == nil {
				t.Errorf("NewMonitor accepted (ε, δ) = (%v, %v)", c.epsilon, c.delta)
			}
		})
	}
	// Invalid calls must not advance the session counter (the validation
	// order in runOn is load-bearing for salt-free reproducibility).
	before, err := sys.Run(nil, WithSalt(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(nil, WithAccuracy(nan, nan)); err == nil {
		t.Fatal("NaN accuracy accepted")
	}
	after, err := sys.Run(nil, WithSalt(99))
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("salted replay changed after invalid call: %+v vs %+v", before, after)
	}
}

// TestNoiseRejectsNonFiniteRates covers the same hole in the channel error
// model: a NaN rate used to pass `< 0 || > 1` and silently disable the
// noise draw for every slot.
func TestNoiseRejectsNonFiniteRates(t *testing.T) {
	for _, rates := range [][2]float64{
		{math.NaN(), 0},
		{0, math.NaN()},
		{math.Inf(1), 0},
		{-0.1, 0},
		{0, 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("noise rates (%v, %v) accepted", rates[0], rates[1])
				}
			}()
			sys := NewSystem(10, WithNoise(rates[0], rates[1]))
			sys.Run(nil, WithSalt(1))
		}()
	}
}

// TestMergeRejectsInfeasibleUnion pins the new Merge contract: the union of
// populations of sizes n_1..n_k has cardinality in [max(n_i), sum(n_i)],
// and all sub-systems must share one hash mode.
func TestMergeRejectsInfeasibleUnion(t *testing.T) {
	a := PopulationAt(720, 0, 5000)
	b := PopulationAt(720, 2000, 5000)

	if _, err := Merge(4999, a, b); err == nil {
		t.Fatal("unionN below max(subN) accepted")
	}
	if _, err := Merge(10001, a, b); err == nil {
		t.Fatal("unionN above sum(subN) accepted")
	}
	for _, ok := range []int{5000, 7000, 10000} {
		if _, err := Merge(ok, a, b); err != nil {
			t.Fatalf("feasible unionN %d rejected: %v", ok, err)
		}
	}

	paper := NewSystem(5000, WithSeed(721), WithPaperTagHash())
	if _, err := Merge(8000, a, paper); err == nil {
		t.Fatal("mixed hash modes accepted")
	} else if !strings.Contains(err.Error(), "hash mode") {
		t.Fatalf("unexpected mixed-mode error: %v", err)
	}
}
