// Comparison: run every estimator in the library against the same
// population and accuracy target, reproducing the paper's central argument
// in miniature — slot counts do not predict execution time, because the
// reader→tag broadcasts dominate some protocols (ZOE) and not others.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"sort"

	"rfidest"
)

func main() {
	const n = 200000
	const eps, delta = 0.05, 0.05

	// The synthetic system samples exact frame statistics, which keeps
	// ZOE's thousands of single-slot frames fast to simulate.
	sys := rfidest.NewSystem(n, rfidest.WithSeed(99), rfidest.WithSynthetic())

	type row struct {
		name string
		est  rfidest.Estimate
	}
	var rows []row
	for _, name := range rfidest.Estimators() {
		est, err := sys.EstimateWith(name, eps, delta)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, est})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].est.Seconds < rows[j].est.Seconds })

	fmt.Printf("n = %d, requirement (%.2f, %.2f)\n\n", n, eps, delta)
	fmt.Println("estimator  estimate   err%     air-time   slots   reader-bits")
	fmt.Println("--------------------------------------------------------------")
	for _, r := range rows {
		errPct := 100 * abs(r.est.N-n) / n
		fmt.Printf("%-9s  %8.0f   %5.2f%%   %7.4fs   %6d   %d\n",
			r.name, r.est.N, errPct, r.est.Seconds, r.est.Slots, r.est.ReaderBits)
	}
	fmt.Println("\nnote the ordering: protocols with few tag slots but per-slot seed")
	fmt.Println("broadcasts (ZOE, PET) pay for every reader transmission; BFCE's two")
	fmt.Println("fixed frames keep both columns — and therefore the air time — constant.")
	fmt.Println("LOF and PET are rough/loglog estimators: their errors are constant-factor.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
