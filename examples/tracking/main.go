// Tracking: anonymous set-level monitoring of a dock door with pinned
// Bloom snapshots. Each monitoring round costs ONE constant-time frame
// (8192 bit-slots ≈ 0.16 s), archives one 8192-bit vector, and any two
// archived vectors answer: how many tags arrived, departed, or stayed —
// without ever identifying a single tag.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	// A tag universe: pallets flow through the dock, so each round the
	// population is a sliding window over the universe.
	const universe = 20260706

	// Rounds of the form [start, start+n): between consecutive rounds,
	// `start` advancing means departures, the far end advancing means
	// arrivals.
	rounds := []struct {
		start, n int
		label    string
	}{
		{0, 80000, "monday"},
		{0, 92000, "tuesday (receipts only)"},
		{25000, 67000, "wednesday (shipments only)"},
		{40000, 84000, "thursday (both)"},
		{40000, 84000, "friday (no movement)"},
	}

	tracker, err := rfidest.NewTracker(100000, 7)
	if err != nil {
		log.Fatal(err)
	}

	var snaps []*rfidest.SetSnapshot
	fmt.Println("round                        true n   estimated n")
	fmt.Println("---------------------------------------------------")
	for _, r := range rounds {
		sys := rfidest.PopulationAt(universe, r.start, r.n)
		s, err := tracker.Snapshot(sys)
		if err != nil {
			log.Fatal(err)
		}
		snaps = append(snaps, s)
		fmt.Printf("%-27s  %7d   %8.0f\n", r.label, r.n, s.Cardinality())
	}

	fmt.Println("\nday-over-day movement (estimated from archived vectors):")
	fmt.Println("transition                true dep / arr      est dep / arr")
	fmt.Println("--------------------------------------------------------------")
	for i := 1; i < len(rounds); i++ {
		prev, cur := rounds[i-1], rounds[i]
		trueDep := cur.start - prev.start
		trueArr := (cur.start + cur.n) - (prev.start + prev.n)
		dep, err := rfidest.Departures(snaps[i-1], snaps[i])
		if err != nil {
			log.Fatal(err)
		}
		arr, err := rfidest.Arrivals(snaps[i-1], snaps[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s  %7d / %-7d     %7.0f / %-7.0f\n",
			prev.label+" → "+cur.label[:min(9, len(cur.label))],
			trueDep, trueArr, dep, arr)
	}

	// The archive answers non-adjacent questions too: how much of
	// Monday's stock is still present on Friday?
	stayed, err := rfidest.Intersection(snaps[0], snaps[4])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonday ∩ Friday (stock that never moved): ~%.0f (true 40000)\n", stayed)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
