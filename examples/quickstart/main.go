// Quickstart: estimate the cardinality of a simulated RFID deployment with
// BFCE and inspect what the protocol did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	// A deployment of half a million tags with uniformly distributed
	// tagIDs — the headline scenario of the paper (§III-B).
	sys := rfidest.NewSystem(500000, rfidest.WithSeed(2015))

	// One BFCE run to the (0.05, 0.05) requirement: the estimate must be
	// within ±5% of the truth with probability at least 95%.
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true n = %d\n", sys.N())
	fmt.Printf("BFCE   = %.0f  (error %.2f%%)\n", est.N, 100*abs(est.N-float64(sys.N()))/float64(sys.N()))
	fmt.Printf("air time = %.4f s (constant-time budget: %.4f s)\n",
		est.Seconds, rfidest.ConstantTimeBudget())
	fmt.Printf("cost: %d tag bit-slots + %d reader bits, guaranteed: %v\n",
		est.Slots, est.ReaderBits, est.Guarded)

	// The same estimation with full phase diagnostics: the probe that
	// found a valid persistence probability, the 1024-slot rough phase,
	// and the optimal persistence of the final 8192-slot frame.
	det, err := sys.EstimateBFCEDetail(0.05, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase diagnostics of a second run:\n")
	fmt.Printf("  probe:    settled on p_s = %d/1024 after %d adjustments\n", det.ProbePn, det.ProbeRounds)
	fmt.Printf("  rough:    n̂_r = %.0f → lower bound n̂_low = %.0f (c = 0.5)\n", det.Rough, det.LowerBound)
	fmt.Printf("  accurate: minimal feasible p_o = %d/1024 (Theorem 3 feasible: %v)\n", det.OptimalPn, det.Feasible)
	fmt.Printf("  final:    n̂ = %.0f\n", det.Estimate.N)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
