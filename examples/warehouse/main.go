// Warehouse: daily stock monitoring with constant-time cardinality
// estimation — the inventory-management use case that motivates the paper
// (§I: "inventory management", "the number of tags in the range may easily
// exceed tens of thousands").
//
// A warehouse portal reader estimates the tagged stock level once per day.
// Stock drifts as pallets arrive and ship; the monitor must flag any day
// the stock moves more than 10% from the plan, while spending a fixed,
// predictable slice of the reader's airtime budget — which is exactly what
// BFCE's constant 0.19 s per estimate buys.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	const planned = 120000 // stock level the site is planned to hold

	// Two weeks of simulated stock levels: receipts and shipments drift
	// the true count; day 9 has an unreported bulk shipment (an anomaly
	// the monitor should catch).
	stock := []int{
		120000, 121500, 119800, 123900, 125100,
		124200, 126800, 128000, 127400, 104300, // ← day 10: bulk shipment left unrecorded
		105900, 107200, 106500, 108800,
	}

	fmt.Println("day   true     estimate   err%    air-time  alert")
	fmt.Println("---------------------------------------------------")
	totalAir := 0.0
	for day, n := range stock {
		// Each day is a fresh physical population behind the same portal.
		sys := rfidest.NewSystem(n,
			rfidest.WithSeed(uint64(1000+day)),
			rfidest.WithDistribution(rfidest.ApproxNormal))
		est, err := sys.EstimateBFCE(0.05, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		totalAir += est.Seconds

		drift := (est.N - planned) / planned
		alert := ""
		if drift > 0.10 || drift < -0.10 {
			alert = fmt.Sprintf("STOCK DRIFT %+.1f%%", 100*drift)
		}
		errPct := 100 * abs(est.N-float64(n)) / float64(n)
		fmt.Printf("%3d   %6d   %8.0f   %.2f%%   %.4fs   %s\n",
			day+1, n, est.N, errPct, est.Seconds, alert)
	}
	fmt.Printf("\ntotal reader airtime for %d daily checks: %.2f s (%.4f s/check — constant)\n",
		len(stock), totalAir, totalAir/float64(len(stock)))
	fmt.Println("an exact inventory of 120k tags would take minutes per day; the estimate takes 0.19 s")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
