// Noisychannel: probe the paper's perfect-channel assumption (§III-A).
// BFCE reads only busy/idle per slot, so a misread slot shifts the idle
// fraction ρ̄ and, through n̂ = -w·ln(ρ̄)/(k·p), the estimate. This example
// sweeps symmetric reader error rates and shows how gracefully the
// estimate degrades — and at what error rate the (0.05, 0.05) requirement
// stops holding.
//
//	go run ./examples/noisychannel
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	const n = 150000
	const trials = 10

	fmt.Println("false-busy  false-idle  mean-err%  worst-err%")
	fmt.Println("----------------------------------------------")
	for _, rates := range [][2]float64{
		{0, 0},
		{0.001, 0}, {0.005, 0}, {0.02, 0},
		{0, 0.001}, {0, 0.005}, {0, 0.02},
		{0.01, 0.01},
	} {
		var sum, worst float64
		for trial := 0; trial < trials; trial++ {
			sys := rfidest.NewSystem(n,
				rfidest.WithSeed(uint64(500+trial)),
				rfidest.WithNoise(rates[0], rates[1]))
			est, err := sys.EstimateBFCE(0.05, 0.05)
			if err != nil {
				log.Fatal(err)
			}
			re := abs(est.N-n) / n
			sum += re
			if re > worst {
				worst = re
			}
		}
		fmt.Printf("%9.3f  %9.3f   %7.2f%%    %7.2f%%\n",
			rates[0], rates[1], 100*sum/trials, 100*worst)
	}
	fmt.Println("\nfalse-busy errors hide idle slots → over-estimates;")
	fmt.Println("false-idle errors fabricate idle slots → under-estimates.")
	fmt.Println("sub-0.5% error rates stay within the paper's 5% envelope;")
	fmt.Println("a production deployment would calibrate and subtract the floor.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
