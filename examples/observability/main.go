// Observability: watch a batch of estimations execute through the metrics
// registry. One rfidest.Metrics observes every run — session counts,
// per-phase slot budgets, air-time and probe-round histograms — and the
// numbers land exactly on the paper's constant-time claim: every BFCE
// session costs the same 32+1024+8192 slots, and every air time falls
// under the 0.19 s budget bucket.
//
// Observation is passive: the estimates printed here are bit-identical to
// the same runs without the observer attached.
//
//	go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"rfidest"
)

func main() {
	reg := rfidest.NewMetrics()
	ctx := context.Background()

	// Three deployments an order of magnitude apart, five estimations
	// each, all reporting into the one registry.
	for _, n := range []int{10000, 100000, 1000000} {
		sys := rfidest.NewSystem(n, rfidest.WithSeed(7), rfidest.WithSynthetic())
		for trial := 0; trial < 5; trial++ {
			est, err := sys.Run(ctx,
				rfidest.WithSalt(uint64(trial)),
				rfidest.WithObserver(reg))
			if err != nil {
				log.Fatal(err)
			}
			if trial == 0 {
				fmt.Printf("n=%-8d n̂=%-10.0f air=%.3fs slots=%d\n",
					n, est.N, est.Seconds, est.Slots)
			}
		}
	}

	// The registry aggregates across all 15 sessions; the snapshot renders
	// as expvar-style text (or JSON via WriteJSON).
	fmt.Println("\n--- metrics snapshot ---")
	snap := reg.Snapshot()
	if err := snap.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The headline invariants, read back programmatically.
	fmt.Printf("\nsessions=%d  slots/session=%d  probe-rounds p99 bucket ≤ %v\n",
		snap.Sessions, snap.Slots/snap.Sessions, snap.ProbeRounds.Bounds[len(snap.ProbeRounds.Bounds)-1])
}
