// Missingtags: verify a known inventory without reading a single tag.
// The back-end knows every expected tagID (§III-A: the server "stores the
// information of tags"), so the reader can precompute exactly which
// bit-slot each expected tag will answer in — and an expected-singleton
// slot that stays silent convicts its tag with certainty. A handful of
// constant-time frames identifies every missing tag by ID, at a tiny
// fraction of a full inventory's air time.
//
//	go run ./examples/missingtags
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	const universe = 20150815
	const nExpected = 20000

	// The expected inventory: tags [0, 20000) of the universe.
	expected := rfidest.PopulationAt(universe, 0, nExpected)

	// Reality: a pallet's worth of tags ([400, 550)) has vanished.
	gapped := rfidest.PopulationWithout(universe, nExpected, 400, 550)

	for _, rounds := range []int{1, 2, 4, 8} {
		report, err := gapped.DetectMissing(expected, rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rounds=%d: identified %4d of 150 missing (estimate %5.0f, coverage %4.1f%%, %5.2fs air time)\n",
			rounds, len(report.MissingIDs), report.EstimateCount, 100*report.Coverage, report.Seconds)
	}

	report, err := gapped.DetectMissing(expected, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst five convicted tagIDs: %v\n", report.MissingIDs[:5])
	inv, err := gapped.Inventory()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for scale: a full inventory of the %d present tags takes %.0f s of air time\n",
		gapped.N(), inv.Seconds)
}
