// Multireader: estimate the union cardinality of a deployment covered by
// several overlapping readers. §III-A of the paper: when readers are
// coordinated by a back-end server, "these readers can be logically
// considered as one reader" — the back-end synchronizes frame parameters
// and ORs the busy observations, and tags covered by several readers are
// heard identically by each (their hashes depend only on the tag), so the
// merge is exact even under overlap. No tag replies are deduplicated and
// no "tags answer only one reader" assumption is needed.
//
//	go run ./examples/multireader
package main

import (
	"fmt"
	"log"

	"rfidest"
)

func main() {
	// A warehouse aisle covered by three portal readers with overlapping
	// zones, as windows of one tag universe:
	//   reader 1: tags [0, 90k)
	//   reader 2: tags [60k, 170k)
	//   reader 3: tags [140k, 240k)
	// Union: 240k distinct tags; overlaps: 30k each.
	const universe = 424242
	r1 := rfidest.PopulationAt(universe, 0, 90000)
	r2 := rfidest.PopulationAt(universe, 60000, 110000)
	r3 := rfidest.PopulationAt(universe, 140000, 100000)

	// Per-reader estimates (each reader alone, its own zone).
	fmt.Println("per-reader zone estimates:")
	total := 0.0
	for i, sys := range []*rfidest.System{r1, r2, r3} {
		est, err := sys.EstimateBFCE(0.05, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  reader %d: n̂ = %8.0f (true %d)\n", i+1, est.N, sys.N())
		total += est.N
	}
	fmt.Printf("  naive sum of zones: %.0f — overcounts the overlap by ~60k\n\n", total)

	// The logical merged reader estimates the union directly.
	union, err := rfidest.Merge(240000, r1, r2, r3)
	if err != nil {
		log.Fatal(err)
	}
	est, err := union.EstimateBFCE(0.05, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged logical reader: n̂ = %.0f (true union 240000)\n", est.N)
	fmt.Printf("air time: %.4f s — the same constant frame, broadcast once, heard by all readers\n", est.Seconds)
}
