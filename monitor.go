package rfidest

import (
	"errors"
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
)

// Monitor tracks a (possibly drifting) deployment with repeated BFCE
// rounds, warm-starting each round from the previous one: the probe phase
// resumes from the last valid persistence numerator, and — when FastRounds
// is enabled — the rough phase is skipped entirely on most rounds, with
// the previous estimate standing in as the lower-bound input. A fast round
// costs only the 8192-slot accurate frame (~0.16 s of air time).
//
// Unlike System, a Monitor is stateful by design — each round reads and
// rewrites the warm-start state of the previous one — so it is
// single-goroutine: rounds have a temporal order that concurrency would
// destroy, not just a data race. Run one Monitor per monitoring loop;
// different Monitors may share one System.
type Monitor struct {
	inner *core.Monitor
}

// NewMonitor builds a monitor to the (ε, δ) requirement. fastRounds is how
// many consecutive rounds may skip the rough phase before a full round is
// forced (0 = every round runs the full protocol).
func NewMonitor(epsilon, delta float64, fastRounds int) (*Monitor, error) {
	if fastRounds < 0 {
		return nil, errors.New("rfidest: negative fastRounds")
	}
	if err := validateAccuracy(epsilon, delta); err != nil {
		return nil, err
	}
	m, err := core.NewMonitor(core.Config{Epsilon: epsilon, Delta: delta})
	if err != nil {
		return nil, err
	}
	m.FastRounds = fastRounds
	return &Monitor{inner: m}, nil
}

// Estimate runs the next monitoring round against sys (typically a fresh
// System per round, reflecting the deployment's current population).
func (m *Monitor) Estimate(sys *System) (Estimate, error) {
	if sys == nil {
		return Estimate{}, errors.New("rfidest: nil system")
	}
	session := sys.session()
	res, err := m.inner.Estimate(session)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		N:                res.Estimate,
		Seconds:          res.Seconds,
		Slots:            res.Cost.TagSlots,
		ReaderBits:       res.Cost.ReaderBits,
		Rounds:           1,
		Guarded:          res.Feasible,
		TagTransmissions: session.TagTransmissions(),
		Saturated:        res.Saturated,
	}, nil
}

// Rounds returns how many rounds the monitor has completed.
func (m *Monitor) Rounds() int { return m.inner.Rounds() }

// Merge returns a System whose reader hears the union of the given
// tag-level systems — the paper's multi-reader deployment (§III-A), where
// synchronized readers are "logically considered as one reader". unionN is
// the ground-truth union cardinality (the caller knows the overlap; the
// merged reader does not need to). Overlapping coverage is handled exactly:
// a tag heard by several readers responds in the same slots through each.
func Merge(unionN int, systems ...*System) (*System, error) {
	if len(systems) == 0 {
		return nil, errors.New("rfidest: Merge needs at least one system")
	}
	if unionN < 0 {
		return nil, errors.New("rfidest: negative union cardinality")
	}
	maxN, sumN := 0, 0
	for i, sub := range systems {
		if sub == nil {
			return nil, fmt.Errorf("rfidest: system %d is nil", i)
		}
		if sub.synthetic {
			return nil, fmt.Errorf("rfidest: system %d is synthetic; multi-reader merging needs tag-level systems", i)
		}
		// A merged reader hashes every tag through one hash family; mixing
		// modes would silently reinterpret half the population under the
		// wrong family (the old code took systems[0].hashMode and dropped
		// the rest on the floor).
		if sub.hashMode != systems[0].hashMode {
			return nil, fmt.Errorf("rfidest: mixed hash modes: system %d uses mode %d, system 0 uses mode %d",
				i, sub.hashMode, systems[0].hashMode)
		}
		if sub.n > maxN {
			maxN = sub.n
		}
		sumN += sub.n
	}
	// The union of sets of sizes n_1..n_k has cardinality in
	// [max(n_i), sum(n_i)]; a unionN outside that range cannot describe any
	// overlap of these populations and would corrupt the merged engine's
	// ground truth.
	if unionN < maxN || unionN > sumN {
		return nil, fmt.Errorf("rfidest: union cardinality %d outside feasible range [%d, %d]", unionN, maxN, sumN)
	}
	merged := &System{
		n:        unionN,
		seed:     systems[0].seed ^ 0xd0c5,
		hashMode: systems[0].hashMode,
		merged:   systems,
	}
	return merged, nil
}

// mergedEngine builds the union engine over the sub-systems' populations.
func (s *System) mergedEngine() channel.Engine {
	engines := make([]channel.Engine, len(s.merged))
	for i, sub := range s.merged {
		engines[i] = channel.NewTagEngine(sub.pop, sub.hashMode)
	}
	return channel.NewMergedEngine(s.n, engines...)
}
