package rfidest

import (
	"context"
	"errors"
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/obs"
	"rfidest/internal/stats"
)

// Monitor tracks a (possibly drifting) deployment with repeated BFCE
// rounds, warm-starting each round from the previous one: the probe phase
// resumes from the last valid persistence numerator, and — when FastRounds
// is enabled — the rough phase is skipped entirely on most rounds, with
// the previous estimate standing in as the lower-bound input. A fast round
// costs only the 8192-slot accurate frame (~0.16 s of air time).
//
// Unlike System, a Monitor is stateful by design — each round reads and
// rewrites the warm-start state of the previous one — so it is
// single-goroutine: rounds have a temporal order that concurrency would
// destroy, not just a data race. Run one Monitor per monitoring loop;
// different Monitors may share one System.
type Monitor struct {
	inner *core.Monitor
}

// NewMonitor builds a monitor to the (ε, δ) requirement. fastRounds is how
// many consecutive rounds may skip the rough phase before a full round is
// forced (0 = every round runs the full protocol).
func NewMonitor(epsilon, delta float64, fastRounds int) (*Monitor, error) {
	if fastRounds < 0 {
		return nil, errors.New("rfidest: negative fastRounds")
	}
	if err := validateAccuracy(epsilon, delta); err != nil {
		return nil, err
	}
	m, err := core.NewMonitor(core.Config{Epsilon: epsilon, Delta: delta})
	if err != nil {
		return nil, err
	}
	m.FastRounds = fastRounds
	return &Monitor{inner: m}, nil
}

// Run executes the next monitoring round against sys (typically a fresh
// System per round, reflecting the deployment's current population),
// mirroring (*System).Run: the context is checked before every protocol
// round (a nil ctx disables cancellation), WithSeedSalt addresses the
// round's session explicitly, WithTimeout bounds the round with a deadline,
// and WithObserver attaches session spans, phase spans and metrics. A
// cancelled round returns ctx's error and does not advance the monitor's
// warm-start state.
//
// The monitor's protocol and accuracy are fixed at NewMonitor, so
// WithEstimator and WithAccuracy are rejected; so is WithRetry — a
// saturated monitoring round already self-corrects by clearing the warm
// state (the next round runs cold), and re-running it inside one round
// would double-bill the deployment's air time.
func (m *Monitor) Run(ctx context.Context, sys *System, opts ...Option) (Estimate, error) {
	o := defaultRunOptions()
	for _, opt := range opts {
		opt(&o)
	}
	switch {
	case o.hasEstimator:
		return Estimate{}, errors.New("rfidest: Monitor runs BFCE only; WithEstimator is not a monitor option")
	case o.hasAccuracy:
		return Estimate{}, errors.New("rfidest: a Monitor's accuracy is fixed at NewMonitor; WithAccuracy is not a monitor option")
	case o.hasRetry:
		return Estimate{}, errors.New("rfidest: WithRetry is not a monitor option; a saturated round already restarts the next round cold")
	}
	if sys == nil {
		return Estimate{}, errors.New("rfidest: nil system")
	}
	if err := validateTimeout(o.timeout); err != nil {
		return Estimate{}, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
	}
	if o.timeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background() //lint:allow ctxbg WithTimeout on a nil-ctx monitor round needs a root to hang the deadline on
		}
		tctx, cancel := context.WithTimeout(base, o.timeout)
		defer cancel()
		ctx = tctx
	}
	open := sys.session
	if o.hasSalt {
		salt := o.salt
		open = func() *channel.Reader { return sys.sessionAt(salt) }
	}
	session := open()
	instrumented := o.observer != obs.Nop
	if instrumented {
		prev := session.Observer()
		session.SetObserver(obs.Multi(prev, o.observer))
		defer session.SetObserver(prev)
		o.observer.SessionOpen("BFCE")
	}
	res, err := m.inner.EstimateContext(ctx, session)
	if instrumented {
		o.observer.SessionClose(obs.SessionStats{
			Estimator:        "BFCE",
			Estimate:         res.Estimate,
			Rounds:           1,
			Slots:            res.Cost.TagSlots,
			ReaderBits:       res.Cost.ReaderBits,
			Seconds:          res.Seconds,
			TagTransmissions: session.TagTransmissions(),
			Guarded:          res.Feasible,
			Err:              err != nil,
		})
	}
	if err != nil {
		return Estimate{}, err
	}
	out := Estimate{
		N:                res.Estimate,
		Seconds:          res.Seconds,
		Slots:            res.Cost.TagSlots,
		ReaderBits:       res.Cost.ReaderBits,
		Rounds:           1,
		Guarded:          res.Feasible,
		TagTransmissions: session.TagTransmissions(),
		Saturated:        res.Saturated,
	}
	sys.reportFaults(session, o.observer)
	if instrumented && sys.n > 0 {
		o.observer.EstimateError(stats.RelError(out.N, float64(sys.n)))
	}
	return out, nil
}

// Estimate runs the next monitoring round against sys.
//
// Deprecated: Estimate is Run without cancellation or options; new code
// calls Run.
func (m *Monitor) Estimate(sys *System) (Estimate, error) {
	return m.Run(nil, sys)
}

// Rounds returns how many rounds the monitor has completed.
func (m *Monitor) Rounds() int { return m.inner.Rounds() }

// MonitorState is the warm-start state one monitoring round hands the
// next: the last valid probe numerator, the last accepted estimate and
// the completed-round count. Snapshot/Restore move it across Monitors (or
// processes), so a monitoring loop can be checkpointed and resumed with
// its warm state intact.
type MonitorState struct {
	// Pn is the last valid probe persistence numerator (0 = cold).
	Pn int
	// N is the last round's accepted estimate (0 = cold). A saturated
	// round clears it — see the snapshot contract in internal/core.
	N float64
	// Rounds is how many rounds completed; it drives the FastRounds
	// cadence.
	Rounds int
}

// Snapshot returns the monitor's warm-start state.
func (m *Monitor) Snapshot() MonitorState {
	s := m.inner.Snapshot()
	return MonitorState{Pn: s.Pn, N: s.N, Rounds: s.Rounds}
}

// Restore overwrites the monitor's warm-start state with a snapshot —
// typically one taken from another Monitor (or an earlier process) over
// the same deployment. The state is validated against the monitor's
// configuration.
func (m *Monitor) Restore(s MonitorState) error {
	return m.inner.Restore(core.Snap{Pn: s.Pn, N: s.N, Rounds: s.Rounds})
}

// Merge returns a System whose reader hears the union of the given
// tag-level systems — the paper's multi-reader deployment (§III-A), where
// synchronized readers are "logically considered as one reader". unionN is
// the ground-truth union cardinality (the caller knows the overlap; the
// merged reader does not need to). Overlapping coverage is handled exactly:
// a tag heard by several readers responds in the same slots through each.
func Merge(unionN int, systems ...*System) (*System, error) {
	if len(systems) == 0 {
		return nil, errors.New("rfidest: Merge needs at least one system")
	}
	if unionN < 0 {
		return nil, errors.New("rfidest: negative union cardinality")
	}
	maxN, sumN := 0, 0
	for i, sub := range systems {
		if sub == nil {
			return nil, fmt.Errorf("rfidest: system %d is nil", i)
		}
		if sub.synthetic {
			return nil, fmt.Errorf("rfidest: system %d is synthetic; multi-reader merging needs tag-level systems", i)
		}
		// A merged reader hashes every tag through one hash family; mixing
		// modes would silently reinterpret half the population under the
		// wrong family (the old code took systems[0].hashMode and dropped
		// the rest on the floor).
		if sub.hashMode != systems[0].hashMode {
			return nil, fmt.Errorf("rfidest: mixed hash modes: system %d uses mode %d, system 0 uses mode %d",
				i, sub.hashMode, systems[0].hashMode)
		}
		if sub.n > maxN {
			maxN = sub.n
		}
		sumN += sub.n
	}
	// The union of sets of sizes n_1..n_k has cardinality in
	// [max(n_i), sum(n_i)]; a unionN outside that range cannot describe any
	// overlap of these populations and would corrupt the merged engine's
	// ground truth.
	if unionN < maxN || unionN > sumN {
		return nil, fmt.Errorf("rfidest: union cardinality %d outside feasible range [%d, %d]", unionN, maxN, sumN)
	}
	merged := &System{
		n:        unionN,
		seed:     systems[0].seed ^ 0xd0c5,
		hashMode: systems[0].hashMode,
		merged:   systems,
	}
	return merged, nil
}

// mergedEngine builds the union engine over the sub-systems' populations.
func (s *System) mergedEngine() channel.Engine {
	engines := make([]channel.Engine, len(s.merged))
	for i, sub := range s.merged {
		engines[i] = channel.NewTagEngine(sub.pop, sub.hashMode)
	}
	return channel.NewMergedEngine(s.n, engines...)
}
