package rfidest

import (
	"fmt"
	"time"

	"rfidest/internal/estimators"
	"rfidest/internal/obs"
)

// This file is the one documented home of the public Option surface. The
// same options configure every execution entry point — (*System).Run,
// (*System).StartRun, (*System).RunBFCEDetail and (*Monitor).Run — and the
// fleet runner forwards per-job option slices (fleet.Job.Options) onto the
// same functions, so the network serving layer marshals one wire schema
// onto one programmatic API. Entry points that cannot honor an option
// reject it explicitly (Monitor.Run rejects WithEstimator, WithAccuracy
// and WithRetry) rather than ignoring it.

// Option configures an estimation run.
type Option func(*runOptions)

type runOptions struct {
	estimator    string
	hasEstimator bool
	epsilon      float64
	delta        float64
	hasAccuracy  bool
	salt         uint64
	hasSalt      bool
	observer     obs.Observer
	retries      int
	retryBudget  float64
	hasRetry     bool
	timeout      time.Duration
}

func defaultRunOptions() runOptions {
	return runOptions{
		estimator: "BFCE",
		epsilon:   estimators.Default.Epsilon,
		delta:     estimators.Default.Delta,
		observer:  obs.Nop,
	}
}

// ErrUnknownEstimator is the sentinel behind the "unknown estimator" error
// every entry point returns for a WithEstimator name outside the registry
// (see Estimators). Callers that translate estimator lookup into a
// protocol-level response — the serving layer's HTTP 400, a CLI usage
// message — test for it with errors.Is.
var ErrUnknownEstimator = estimators.ErrUnknownEstimator

// WithEstimator selects the protocol to run, by registry name (see
// Estimators). The default is "BFCE", the paper's estimator. An unknown
// name fails the run with an error wrapping ErrUnknownEstimator.
func WithEstimator(name string) Option {
	return func(o *runOptions) { o.estimator, o.hasEstimator = name, true }
}

// WithAccuracy sets the (ε, δ) requirement: P(|n̂ − n| ≤ ε·n) ≥ 1 − δ.
// Both parameters must lie in (0, 1). The default is (0.05, 0.05), the
// paper's evaluation setting.
func WithAccuracy(epsilon, delta float64) Option {
	return func(o *runOptions) { o.epsilon, o.delta, o.hasAccuracy = epsilon, delta, true }
}

// WithSeedSalt addresses the run's session by an explicit salt instead of
// the system's shared session counter. Equal (system, salt) pairs replay
// bit-identical sessions no matter how many other estimations are in
// flight — what deterministic parallel harnesses (the fleet runner, the
// serving layer's request salts) key their work on. Distinct salts give
// independent sessions, like distinct counter values.
func WithSeedSalt(salt uint64) Option {
	return func(o *runOptions) { o.salt, o.hasSalt = salt, true }
}

// WithSalt is WithSeedSalt under its original name. Both names address the
// same option; WithSeedSalt is the documented spelling shared with the
// fleet and serving layers.
func WithSalt(salt uint64) Option { return WithSeedSalt(salt) }

// WithTimeout bounds the run with a deadline of d from the moment
// execution starts: Run and Monitor.Run derive a context.WithTimeout from
// the caller's ctx before the first round; a StartRun session starts its
// clock at the first Step (the deadline context derives from that Step's
// ctx). Like any context deadline the cut happens at a round boundary —
// the round in flight always completes — and the run fails with
// context.DeadlineExceeded. d must be non-negative; zero (the default)
// means no per-run deadline. A tighter deadline already on ctx still
// applies: the effective deadline is whichever expires first.
func WithTimeout(d time.Duration) Option {
	return func(o *runOptions) { o.timeout = d }
}

// WithObserver attaches an observer to the run: session and phase spans,
// per-frame slot counts and cost counters are reported to it as the
// protocol executes. Observation is passive — the estimate is bit-identical
// with and without an observer. Nil restores the zero-cost default.
func WithObserver(o Observer) Option {
	return func(ro *runOptions) {
		if o == nil {
			o = obs.Nop
		}
		ro.observer = o
	}
}

// WithRetry re-runs a saturated round up to retries times, within an
// optional simulated-air-time budget (budgetSeconds; 0 means unbounded).
// A saturated round observed a degenerate all-idle/all-busy vector — under
// channel faults or a mis-sized population the estimate is then a clamp
// artifact, and a re-run with fresh frame seeds (drawn from the same
// session stream, so the whole run stays a pure function of the session
// salt) often recovers a usable measurement. Retries are reported through
// Estimate.Retries and the observer's Retry/Degraded hooks; the default is
// no retry, keeping the machinery passive.
//
// Both arguments must be non-negative; budgetSeconds must not be NaN.
func WithRetry(retries int, budgetSeconds float64) Option {
	return func(o *runOptions) { o.retries, o.retryBudget, o.hasRetry = retries, budgetSeconds, true }
}

// validateTimeout is the WithTimeout domain check.
func validateTimeout(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("rfidest: negative run timeout %v", d)
	}
	return nil
}
