package rfidest

import (
	"runtime"
	"sync"
	"testing"
)

// TestEstimateWithSaltDeterministicAcrossGOMAXPROCS is the end-to-end
// form of the contract the rfidlint analyzers guard statically: a salted
// session is a pure function of (system seed, salt). It runs every salt's
// estimation twice concurrently under GOMAXPROCS=1 and again under
// GOMAXPROCS=8 and requires all four estimates per salt to be
// bit-identical — any wall-clock read, stray randomness source, or
// scheduling-dependent counter on the estimation path shows up here as a
// mismatch.
func TestEstimateWithSaltDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const (
		n         = 20000
		epsilon   = 0.1
		delta     = 0.1
		estimator = "BFCE"
	)
	salts := []uint64{0, 1, 7, 0xdecaf, ^uint64(0)}

	// One shared System per GOMAXPROCS setting, so the runs are fully
	// independent materializations of the same (n, seed) deployment.
	run := func(procs int) map[uint64][2]Estimate {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		sys := NewSystem(n, WithSeed(42))
		out := make(map[uint64][2]Estimate, len(salts))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, salt := range salts {
			for rep := 0; rep < 2; rep++ {
				wg.Add(1)
				go func(salt uint64, rep int) {
					defer wg.Done()
					est, err := sys.EstimateWithSalt(estimator, epsilon, delta, salt)
					if err != nil {
						t.Errorf("salt %#x rep %d: %v", salt, rep, err)
						return
					}
					mu.Lock()
					pair := out[salt]
					pair[rep] = est
					out[salt] = pair
					mu.Unlock()
				}(salt, rep)
			}
		}
		wg.Wait()
		return out
	}

	seq := run(1)
	par := run(8)
	if t.Failed() {
		t.FailNow()
	}
	for _, salt := range salts {
		s, p := seq[salt], par[salt]
		// Estimate is a struct of scalars, so == is bit-exact equality
		// — which is the point: equal salts must replay the session
		// exactly, not merely to within tolerance.
		if s[0] != s[1] {
			t.Errorf("salt %#x: two runs under GOMAXPROCS=1 differ: %+v vs %+v", salt, s[0], s[1])
		}
		if p[0] != p[1] {
			t.Errorf("salt %#x: two runs under GOMAXPROCS=8 differ: %+v vs %+v", salt, p[0], p[1])
		}
		if s[0] != p[0] {
			t.Errorf("salt %#x: GOMAXPROCS=1 and GOMAXPROCS=8 differ: %+v vs %+v", salt, s[0], p[0])
		}
	}
}
