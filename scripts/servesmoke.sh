#!/bin/sh
# servesmoke.sh — CI smoke for the serving layer.
#
# Boots rfidserved on an ephemeral port, drives a short rfidload burst in
# fail-on-error mode (any non-2xx fails the smoke), scrapes /v1/metrics
# and /healthz, then SIGTERMs the server and requires a clean drain.
#
# Usage: scripts/servesmoke.sh [duration]   (default duration: 2s)
set -eu

duration=${1:-2s}
workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/rfidserved" ./cmd/rfidserved
go build -o "$workdir/rfidload" ./cmd/rfidload

"$workdir/rfidserved" -addr 127.0.0.1:0 -quiet \
    >"$workdir/served.out" 2>"$workdir/served.err" &
server_pid=$!

# First stdout line is the bound address.
addr=""
for _ in $(seq 1 50); do
    addr=$(head -n 1 "$workdir/served.out" 2>/dev/null || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "servesmoke: server never printed its address" >&2
    cat "$workdir/served.err" >&2
    exit 1
fi
echo "servesmoke: serving on $addr"

curl -fsS "http://$addr/healthz" >/dev/null

"$workdir/rfidload" -url "http://$addr" -c 8 -duration "$duration" -fail-on-error

metrics=$(curl -fsS "http://$addr/v1/metrics")
echo "$metrics" | grep -q '^obs\.sessions ' || {
    echo "servesmoke: /v1/metrics missing estimation section" >&2
    exit 1
}
echo "$metrics" | grep -q '^obs\.http\.route\./v1/estimate\.requests ' || {
    echo "servesmoke: /v1/metrics missing request section" >&2
    exit 1
}
rejected=$(echo "$metrics" | awk '/^obs\.http\.rejected /{print $2}')
echo "servesmoke: $(echo "$metrics" | awk '/^obs\.sessions /{print $2}') sessions served, $rejected rejected"
curl -fsS "http://$addr/v1/metrics?format=json" >/dev/null

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "servesmoke: server did not drain within 10s" >&2
    exit 1
fi
grep -q 'rfidserved: stopped' "$workdir/served.err" || {
    echo "servesmoke: no clean-stop marker in server log" >&2
    cat "$workdir/served.err" >&2
    exit 1
}
echo "servesmoke: PASS"
