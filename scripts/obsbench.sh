#!/bin/sh
# obsbench.sh — CI smoke for the observability overhead contract.
#
# Runs BenchmarkFleetEstimateObs (the BenchmarkFleetEstimate workload at
# workers=1) several times per leg and compares the best (minimum)
# ns/op of the instrumented "registry" leg against the uninstrumented
# "noop" leg. Fails if instrumentation costs more than 5%.
#
# Min-of-N is the standard noise defence for small CI boxes: the minimum
# is the run least perturbed by scheduling, so a genuine regression moves
# it while transient load does not.
#
# Usage: scripts/obsbench.sh [count]   (default count: 5)
set -eu

count=${1:-5}
out=$(go test -run '^$' -bench '^BenchmarkFleetEstimateObs$' -benchtime 2x -count "$count" .)
echo "$out"

echo "$out" | awk -v limit=1.05 '
/^BenchmarkFleetEstimateObs\/noop/     { if (min_noop == 0 || $3 < min_noop) min_noop = $3 }
/^BenchmarkFleetEstimateObs\/registry/ { if (min_reg == 0 || $3 < min_reg)  min_reg = $3 }
END {
    if (min_noop == 0 || min_reg == 0) {
        print "obsbench: missing benchmark legs in output" > "/dev/stderr"
        exit 1
    }
    ratio = min_reg / min_noop
    printf "obsbench: noop %d ns/op, registry %d ns/op, ratio %.3f (limit %.2f)\n",
        min_noop, min_reg, ratio, limit
    if (ratio > limit) {
        print "obsbench: FAIL - instrumented fleet run exceeds the 5% overhead budget" > "/dev/stderr"
        exit 1
    }
}'
