#!/bin/sh
# chaossmoke.sh — CI smoke for crash recovery and chaos tolerance.
#
# Phase 1 boots rfidserved with a durable -state-dir, collects golden
# pinned-salt estimate replies and two acked monitor rounds, then SIGKILLs
# the server mid-burst (a real crash: no drain, no fsync beyond what the
# checkpoint already forced). Phase 2 restarts over the same state
# directory and requires (a) the pinned-salt replies byte-identical to the
# goldens, (b) the monitor to continue at round 3 — acked work is never
# lost, the counter never restarts — and (c) a fresh load burst through
# server-side fault injection to succeed via client retries.
#
# Usage: scripts/chaossmoke.sh [duration]   (default burst duration: 2s)
set -eu

duration=${1:-2s}
workdir=$(mktemp -d)
server_pid=""
trap 'kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/rfidserved" ./cmd/rfidserved
go build -o "$workdir/rfidload" ./cmd/rfidload

statedir="$workdir/state"

# boot_server <extra flags...>: starts rfidserved on an ephemeral port
# over $statedir and sets $server_pid/$addr.
boot_server() {
    : >"$workdir/served.out"
    "$workdir/rfidserved" -addr 127.0.0.1:0 -quiet -state-dir "$statedir" "$@" \
        >"$workdir/served.out" 2>"$workdir/served.err" &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(head -n 1 "$workdir/served.out" 2>/dev/null || true)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "chaossmoke: server never printed its address" >&2
        cat "$workdir/served.err" >&2
        exit 1
    fi
}

# estimate <salt> <outfile>: one pinned-salt solo estimate (solo bypasses
# the micro-batcher so the reply body is byte-stable across boots).
estimate() {
    curl -fsS -X POST "http://$addr/v1/estimate" \
        -d "{\"system\":{\"n\":10000,\"seed\":3,\"synthetic\":true},\"epsilon\":0.1,\"delta\":0.1,\"salt\":$1,\"solo\":true}" \
        >"$2"
}

# monitor_round <salt>: one pinned-salt monitor round; prints the reply.
monitor_round() {
    curl -fsS -X POST "http://$addr/v1/monitor" \
        -d "{\"name\":\"smoke\",\"system\":{\"n\":20000,\"seed\":5,\"synthetic\":true},\"epsilon\":0.1,\"delta\":0.1,\"salt\":$1}"
}

# rounds_of <reply>: extracts the completed-round counter.
rounds_of() {
    printf '%s' "$1" | sed -n 's/.*"rounds":\([0-9]*\).*/\1/p'
}

echo "chaossmoke: phase 1 — goldens, acked monitor rounds, SIGKILL"
boot_server
for salt in 161 162 163; do
    estimate "$salt" "$workdir/golden-$salt.json"
done
r1=$(rounds_of "$(monitor_round 177)")
r2=$(rounds_of "$(monitor_round 178)")
if [ "$r1" != 1 ] || [ "$r2" != 2 ]; then
    echo "chaossmoke: warm-up monitor rounds were $r1,$r2; want 1,2" >&2
    exit 1
fi

# Crash mid-burst: load in flight, then SIGKILL — no drain, no shutdown.
"$workdir/rfidload" -url "http://$addr" -c 8 -duration "$duration" -json \
    >"$workdir/burst1.json" &
load_pid=$!
sleep 0.5
kill -9 "$server_pid"
wait "$load_pid" || true

echo "chaossmoke: phase 2 — recover over $statedir"
boot_server
curl -fsS "http://$addr/readyz" >/dev/null

for salt in 161 162 163; do
    estimate "$salt" "$workdir/replay-$salt.json"
    cmp -s "$workdir/golden-$salt.json" "$workdir/replay-$salt.json" || {
        echo "chaossmoke: pinned-salt replay for salt $salt diverged after recovery" >&2
        diff "$workdir/golden-$salt.json" "$workdir/replay-$salt.json" >&2 || true
        exit 1
    }
done
echo "chaossmoke: pinned-salt replies byte-identical across the crash"

r3=$(rounds_of "$(monitor_round 179)")
if [ "$r3" != 3 ]; then
    echo "chaossmoke: post-crash monitor round reported rounds=$r3; want 3 (acked rounds lost or counter restarted)" >&2
    exit 1
fi
echo "chaossmoke: monitor continued at round 3 after the crash"

# Restart once more with server-side fault injection and drive the
# resilient client through it. Terminal failures are possible (a request
# can draw faults on every attempt), so the gate is work-done + retries
# observed, not zero errors.
kill -9 "$server_pid"
boot_server -chaos 0.3 -chaos-seed 7
curl -fsS "http://$addr/healthz" >/dev/null   # probes are spared by the injector
"$workdir/rfidload" -url "http://$addr" -c 8 -duration "$duration" \
    -retries 6 -json >"$workdir/burst2.json"
ok=$(sed -n 's/.*"200": \([0-9]*\).*/\1/p' "$workdir/burst2.json")
retries=$(sed -n 's/.*"retries": \([0-9]*\).*/\1/p' "$workdir/burst2.json")
if [ -z "$ok" ] || [ "$ok" -eq 0 ]; then
    echo "chaossmoke: no request succeeded under chaos" >&2
    cat "$workdir/burst2.json" >&2
    exit 1
fi
if [ -z "$retries" ] || [ "$retries" -eq 0 ]; then
    echo "chaossmoke: chaos run recorded zero retries — injection not exercised" >&2
    cat "$workdir/burst2.json" >&2
    exit 1
fi
echo "chaossmoke: $ok requests succeeded under chaos ($retries retries)"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "chaossmoke: server did not drain within 10s" >&2
    exit 1
fi
echo "chaossmoke: PASS"
