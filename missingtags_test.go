package rfidest

import (
	"math"
	"testing"
)

func TestDetectMissingIdentifies(t *testing.T) {
	const universe, n = 801, 10000
	expected := PopulationAt(universe, 0, n)
	present := PopulationWithout(universe, n, 1000, 1100)
	report, err := present.DetectMissing(expected, 6)
	if err != nil {
		t.Fatal(err)
	}
	if report.Expected != n {
		t.Fatalf("expected count = %d", report.Expected)
	}
	if len(report.MissingIDs) < 95 || len(report.MissingIDs) > 100 {
		t.Fatalf("identified %d of 100 missing", len(report.MissingIDs))
	}
	if math.Abs(report.EstimateCount-100) > 50 {
		t.Fatalf("estimate %v, want ~100", report.EstimateCount)
	}
	// Every conviction must be a genuinely removed tag.
	removed := map[uint64]bool{}
	for _, tag := range expected.pop.Tags[1000:1100] {
		removed[tag.ID] = true
	}
	for _, id := range report.MissingIDs {
		if !removed[id] {
			t.Fatalf("present tag %d convicted", id)
		}
	}
	if report.Seconds <= 0 {
		t.Fatal("no air time reported")
	}
}

func TestDetectMissingIntactInventory(t *testing.T) {
	const universe, n = 803, 5000
	expected := PopulationAt(universe, 0, n)
	present := PopulationAt(universe, 0, n)
	report, err := present.DetectMissing(expected, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.MissingIDs) != 0 || report.EstimateCount != 0 {
		t.Fatalf("intact inventory convicted %d tags (estimate %v)",
			len(report.MissingIDs), report.EstimateCount)
	}
}

func TestDetectMissingValidation(t *testing.T) {
	sys := NewSystem(100)
	if _, err := sys.DetectMissing(nil, 1); err == nil {
		t.Fatal("nil expected accepted")
	}
	if _, err := sys.DetectMissing(NewSystem(10), -1); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := NewSystem(10, WithSynthetic()).DetectMissing(NewSystem(10), 1); err == nil {
		t.Fatal("synthetic present system accepted")
	}
	if _, err := sys.DetectMissing(NewSystem(10, WithSynthetic()), 1); err == nil {
		t.Fatal("synthetic expected system accepted")
	}
}

func TestPopulationWithout(t *testing.T) {
	full := PopulationAt(805, 0, 1000)
	gapped := PopulationWithout(805, 1000, 100, 200)
	if gapped.N() != 900 {
		t.Fatalf("gapped N = %d", gapped.N())
	}
	// The kept tags bracket the gap exactly.
	if gapped.pop.Tags[99] != full.pop.Tags[99] {
		t.Fatal("pre-gap tags differ")
	}
	if gapped.pop.Tags[100] != full.pop.Tags[200] {
		t.Fatal("post-gap tags differ")
	}
}

func TestPopulationWithoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid gap did not panic")
		}
	}()
	PopulationWithout(1, 100, 50, 30)
}
