package rfidest

import (
	"context"
	"strings"
	"testing"
)

// TestMonitorRunMatchesEstimate: two identically-configured monitors, one
// driven through the deprecated Estimate and one through Run with explicit
// salts, must track the same deployment identically — Run is the same
// round, not a variant of it.
func TestMonitorRunMatchesEstimate(t *testing.T) {
	old, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	now, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	for round := 0; round < 4; round++ {
		// Two systems with the same seed expose identical sessions; the
		// deprecated path consumes session 0 of one, Run takes the
		// salt-addressed equivalent of the other.
		sysA := NewSystem(n, WithSeed(uint64(700+round)))
		sysB := NewSystem(n, WithSeed(uint64(700+round)))
		want, err := old.Estimate(sysA)
		if err != nil {
			t.Fatal(err)
		}
		got, err := now.Run(context.Background(), sysB)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: Run %+v != Estimate %+v", round, got, want)
		}
		n = n * 103 / 100
	}
	if old.Rounds() != now.Rounds() {
		t.Fatalf("round counters diverge: %d vs %d", old.Rounds(), now.Rounds())
	}
}

// TestMonitorRunOptionRejection: the monitor's protocol, accuracy and
// retry policy are fixed; the session-shaping options still work.
func TestMonitorRunOptionRejection(t *testing.T) {
	m, err := NewMonitor(0.05, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(50000, WithSeed(701))
	ctx := context.Background()
	if _, err := m.Run(ctx, sys, WithEstimator("ZOE")); err == nil ||
		!strings.Contains(err.Error(), "BFCE only") {
		t.Errorf("WithEstimator: err = %v", err)
	}
	if _, err := m.Run(ctx, sys, WithAccuracy(0.1, 0.1)); err == nil ||
		!strings.Contains(err.Error(), "fixed at NewMonitor") {
		t.Errorf("WithAccuracy: err = %v", err)
	}
	if _, err := m.Run(ctx, sys, WithRetry(1, 0)); err == nil ||
		!strings.Contains(err.Error(), "not a monitor option") {
		t.Errorf("WithRetry: err = %v", err)
	}
	if _, err := m.Run(ctx, nil); err == nil ||
		!strings.Contains(err.Error(), "nil system") {
		t.Errorf("nil system: err = %v", err)
	}
	if m.Rounds() != 0 {
		t.Errorf("rejected rounds advanced the monitor: Rounds() = %d", m.Rounds())
	}
	// A rejected option must not consume a session either: the next
	// un-salted round still opens session 0, matching a fresh monitor on a
	// fresh same-seed system.
	fresh, err := NewMonitor(0.05, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(ctx, NewSystem(50000, WithSeed(701)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(ctx, sys)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("session counter advanced on rejected options: %+v != %+v", got, want)
	}
}

// TestMonitorRunCancellation: a cancelled context stops the round and
// leaves the warm-start state untouched.
func TestMonitorRunCancellation(t *testing.T) {
	m, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(80000, WithSeed(702))
	if _, err := m.Run(context.Background(), sys); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Run(ctx, NewSystem(80000, WithSeed(703))); err == nil {
		t.Fatal("cancelled round succeeded")
	}
	if m.Snapshot() != before {
		t.Errorf("cancelled round moved warm state: %+v -> %+v", before, m.Snapshot())
	}
}

// TestMonitorRunObserved: an observed monitoring round books exactly one
// session and stays bit-identical to the bare round.
func TestMonitorRunObserved(t *testing.T) {
	bare, err := NewMonitor(0.05, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	obsd, err := NewMonitor(0.05, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reg := NewMetrics()
	want, err := bare.Run(ctx, NewSystem(60000, WithSeed(704)), WithSalt(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := obsd.Run(ctx, NewSystem(60000, WithSeed(704)), WithSalt(5), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("observer perturbed the round: %+v != %+v", got, want)
	}
	s := reg.Snapshot()
	if s.Sessions != 1 || s.Errors != 0 {
		t.Errorf("sessions/errors = %d/%d, want 1/0", s.Sessions, s.Errors)
	}
	if s.EstimateRelErr.Count != 1 {
		t.Errorf("EstimateRelErr.Count = %d, want 1", s.EstimateRelErr.Count)
	}
}

// TestMonitorSnapshotRestore: warm-start state moved into a fresh Monitor
// resumes the loop bit-identically — the checkpoint/resume contract.
func TestMonitorSnapshotRestore(t *testing.T) {
	m, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		if _, err := m.Run(ctx, NewSystem(90000, WithSeed(uint64(710+round)))); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap.Rounds != 3 || snap.N == 0 {
		t.Fatalf("snapshot after 3 warm rounds: %+v", snap)
	}

	resumed, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != 3 {
		t.Fatalf("restored Rounds() = %d, want 3", resumed.Rounds())
	}
	want, err := m.Run(ctx, NewSystem(90000, WithSeed(720)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(ctx, NewSystem(90000, WithSeed(720)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resumed monitor diverged on the next round: %+v != %+v", got, want)
	}

	if err := resumed.Restore(MonitorState{Pn: -2}); err == nil {
		t.Error("invalid state accepted")
	}
	if err := resumed.Restore(MonitorState{N: -1}); err == nil {
		t.Error("negative estimate accepted")
	}
}
