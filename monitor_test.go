package rfidest

import (
	"math"
	"testing"
)

func TestMonitorFacadeTracksDrift(t *testing.T) {
	m, err := NewMonitor(0.05, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	for round := 0; round < 5; round++ {
		sys := NewSystem(n, WithSeed(uint64(600+round)))
		est, err := m.Estimate(sys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.N-float64(n))/float64(n) > 0.06 {
			t.Fatalf("round %d: estimate %v for n=%d", round, est.N, n)
		}
		n = n * 105 / 100
	}
	if m.Rounds() != 5 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
}

func TestMonitorFastRoundsCheaper(t *testing.T) {
	m, err := NewMonitor(0.05, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys0 := NewSystem(150000, WithSeed(610))
	full, err := m.Estimate(sys0)
	if err != nil {
		t.Fatal(err)
	}
	sys1 := NewSystem(150000, WithSeed(611))
	fast, err := m.Estimate(sys1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Slots != 8192 {
		t.Fatalf("fast round used %d slots, want 8192", fast.Slots)
	}
	if full.Slots <= fast.Slots {
		t.Fatalf("full round (%d slots) not above fast round (%d)", full.Slots, fast.Slots)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 0.05, 0); err == nil {
		t.Fatal("bad epsilon accepted")
	}
	if _, err := NewMonitor(0.05, 0.05, -1); err == nil {
		t.Fatal("negative fastRounds accepted")
	}
	m, err := NewMonitor(0.05, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(nil); err == nil {
		t.Fatal("nil system accepted")
	}
}

func TestMergeEstimatesUnion(t *testing.T) {
	// Two readers with overlapping coverage: [0, 70k) and [40k, 110k) of
	// the same universe — union 110k, overlap 30k.
	a := PopulationAt(700, 0, 70000)
	b := PopulationAt(700, 40000, 70000)
	union, err := Merge(110000, a, b)
	if err != nil {
		t.Fatal(err)
	}
	est, err := union.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.N-110000)/110000 > 0.05 {
		t.Fatalf("union estimate %v, want ~110000", est.N)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(10); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge(-1, NewSystem(10)); err == nil {
		t.Fatal("negative union accepted")
	}
	if _, err := Merge(10, nil); err == nil {
		t.Fatal("nil sub-system accepted")
	}
	if _, err := Merge(10, NewSystem(10, WithSynthetic())); err == nil {
		t.Fatal("synthetic sub-system accepted")
	}
}

func TestMergedSystemInventoryAndEnergy(t *testing.T) {
	a := PopulationAt(710, 0, 5000)
	b := PopulationAt(710, 2000, 5000)
	union, err := Merge(7000, a, b)
	if err != nil {
		t.Fatal(err)
	}
	est, err := union.EstimateWith("EZB", 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.N-7000)/7000 > 0.15 {
		t.Fatalf("EZB over merged system: %v", est.N)
	}
	if est.TagTransmissions <= 0 {
		t.Fatalf("merged system reported no tag transmissions: %d", est.TagTransmissions)
	}
}
