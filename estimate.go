package rfidest

import (
	"context"

	"rfidest/internal/core"
	"rfidest/internal/estimators"
	"rfidest/internal/timing"
)

// Estimate is the outcome of one estimation run over a System.
//
// The json tags below are the frozen wire schema of the serving layer
// (lowerCamel field names; omitempty only where the zero value carries no
// information). TestEstimateWireFormat pins the rendering — changing a tag
// is a wire-format break, not a refactor.
type Estimate struct {
	// N is the estimated cardinality n̂.
	N float64 `json:"n"`
	// Seconds is the protocol's air time under EPCglobal C1G2 — the
	// paper's "overall execution time" metric.
	Seconds float64 `json:"seconds"`
	// Slots is the number of tag→reader slots the protocol consumed.
	Slots int `json:"slots"`
	// ReaderBits is the number of bits the reader broadcast (parameters
	// and seeds) — the cost component the paper shows dominates ZOE.
	ReaderBits int `json:"readerBits"`
	// Rounds is the number of protocol rounds/frames executed.
	Rounds int `json:"rounds"`
	// Guarded reports whether the protocol's (ε, δ) guarantee machinery
	// was in effect (for BFCE: Theorem 3 had a feasible persistence
	// probability at the rough lower bound). False is meaningful (LOF
	// never guards), so no omitempty.
	Guarded bool `json:"guarded"`
	// TagTransmissions is the total number of tag backscatter
	// transmissions the protocol triggered — the tag-side energy proxy
	// (each transmission drains an active tag's battery). -1 if the
	// session's engine does not meter energy (so zero is meaningful and
	// the field is never omitted).
	TagTransmissions int `json:"tagTransmissions"`
	// Saturated reports that the final protocol round observed a
	// degenerate all-idle or all-busy vector and N is a clamp artifact
	// rather than a measurement (BFCE only; other protocols leave it
	// false). Under WithRetry a true value means every attempt saturated —
	// the degraded-result contract: the estimate is still returned, but N
	// is only a resolution bound on the true cardinality.
	Saturated bool `json:"saturated,omitempty"`
	// Retries is how many times the run was re-executed after a saturated
	// attempt (see WithRetry). Cost fields aggregate over all attempts; N,
	// Guarded and Saturated describe the last one.
	Retries int `json:"retries,omitempty"`
}

func fromResult(r estimators.Result) Estimate {
	return Estimate{
		N:          r.Estimate,
		Seconds:    r.Seconds,
		Slots:      r.Slots,
		ReaderBits: r.Cost.ReaderBits,
		Rounds:     r.Rounds,
		Guarded:    r.Guarded,
		Saturated:  r.Saturated,
	}
}

// EstimateBFCE runs the paper's estimator to the (ε, δ) requirement:
// P(|n̂ − n| ≤ ε·n) ≥ 1 − δ. Both parameters must lie in (0, 1).
//
// Deprecated: use Run with WithAccuracy; BFCE is Run's default estimator.
func (s *System) EstimateBFCE(epsilon, delta float64) (Estimate, error) {
	return s.Run(context.Background(), WithAccuracy(epsilon, delta)) //lint:allow ctxbg deprecated pre-context wrapper; signature cannot thread a ctx
}

// Estimators returns the names accepted by EstimateWith, sorted. The set
// is defined once, in the estimators package registry.
func Estimators() []string {
	return estimators.Names()
}

// EstimateWith runs the named protocol (see Estimators) to the (ε, δ)
// requirement over a fresh session drawn from the system's session
// counter. Safe for concurrent use; under concurrency the assignment of
// counter values to callers (and hence each caller's exact result) is
// scheduling-dependent — use EstimateWithSalt when results must be
// reproducible regardless of interleaving.
//
// Deprecated: use Run with WithEstimator and WithAccuracy.
func (s *System) EstimateWith(name string, epsilon, delta float64) (Estimate, error) {
	return s.Run(context.Background(), WithEstimator(name), WithAccuracy(epsilon, delta)) //lint:allow ctxbg deprecated pre-context wrapper; signature cannot thread a ctx
}

// EstimateWithSalt runs the named protocol over the session addressed by
// salt instead of the shared session counter. Equal (system, salt) pairs
// replay bit-identical sessions no matter how many other estimations are
// in flight, which is what deterministic parallel harnesses (the
// internal/fleet runner, experiment trial loops) key their jobs on.
// Distinct salts give independent sessions, like distinct counter values.
//
// Deprecated: use Run with WithEstimator, WithAccuracy and WithSalt.
func (s *System) EstimateWithSalt(name string, epsilon, delta float64, salt uint64) (Estimate, error) {
	return s.Run(context.Background(), WithEstimator(name), WithAccuracy(epsilon, delta), WithSalt(salt)) //lint:allow ctxbg deprecated pre-context wrapper; signature cannot thread a ctx
}

// BFCEDetail runs BFCE and returns the protocol's internal diagnostics
// alongside the estimate: the rough estimate, the lower bound, the chosen
// persistence numerators and the probe behaviour.
type BFCEDetail struct {
	Estimate    Estimate `json:"estimate"`
	Rough       float64  `json:"rough"`               // n̂_r from the 1024-slot rough phase
	LowerBound  float64  `json:"lowerBound"`          // n̂_low = c·n̂_r
	ProbePn     int      `json:"probePn"`             // persistence numerator the probe settled on (p_s·1024)
	OptimalPn   int      `json:"optimalPn"`           // numerator of the accurate phase (p_o·1024)
	ProbeRounds int      `json:"probeRounds"`         // probe adjustments before p_s was valid
	Feasible    bool     `json:"feasible"`            // Theorem 3 had a feasible p_o at n̂_low
	Saturated   bool     `json:"saturated,omitempty"` // a phase saw a degenerate all-0s/all-1s vector
}

// EstimateBFCEDetail is EstimateBFCE with full diagnostics.
//
// Deprecated: use RunBFCEDetail.
func (s *System) EstimateBFCEDetail(epsilon, delta float64) (BFCEDetail, error) {
	return s.RunBFCEDetail(context.Background(), WithAccuracy(epsilon, delta)) //lint:allow ctxbg deprecated pre-context wrapper; signature cannot thread a ctx
}

// ConstantTimeBudget returns the paper's closed-form bound on BFCE's air
// time under EPCglobal C1G2 — "less than 0.19 s" (§IV-E.1) — in seconds.
func ConstantTimeBudget() float64 {
	return timing.BFCEBudgetSeconds(timing.C1G2)
}

// MaxCardinality returns the largest cardinality the paper's w = 8192
// configuration can express (γ_max·w > 19 million, §IV-B).
func MaxCardinality() float64 {
	return core.MaxCardinality(3, 8192, 1024)
}
