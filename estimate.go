package rfidest

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/estimators"
	"rfidest/internal/timing"
)

// Estimate is the outcome of one estimation run over a System.
type Estimate struct {
	// N is the estimated cardinality n̂.
	N float64
	// Seconds is the protocol's air time under EPCglobal C1G2 — the
	// paper's "overall execution time" metric.
	Seconds float64
	// Slots is the number of tag→reader slots the protocol consumed.
	Slots int
	// ReaderBits is the number of bits the reader broadcast (parameters
	// and seeds) — the cost component the paper shows dominates ZOE.
	ReaderBits int
	// Rounds is the number of protocol rounds/frames executed.
	Rounds int
	// Guarded reports whether the protocol's (ε, δ) guarantee machinery
	// was in effect (for BFCE: Theorem 3 had a feasible persistence
	// probability at the rough lower bound).
	Guarded bool
	// TagTransmissions is the total number of tag backscatter
	// transmissions the protocol triggered — the tag-side energy proxy
	// (each transmission drains an active tag's battery). -1 if the
	// session's engine does not meter energy.
	TagTransmissions int
}

func fromResult(r estimators.Result) Estimate {
	return Estimate{
		N:          r.Estimate,
		Seconds:    r.Seconds,
		Slots:      r.Slots,
		ReaderBits: r.Cost.ReaderBits,
		Rounds:     r.Rounds,
		Guarded:    r.Guarded,
	}
}

// EstimateBFCE runs the paper's estimator to the (ε, δ) requirement:
// P(|n̂ − n| ≤ ε·n) ≥ 1 − δ. Both parameters must lie in (0, 1).
func (s *System) EstimateBFCE(epsilon, delta float64) (Estimate, error) {
	return s.EstimateWith("BFCE", epsilon, delta)
}

// Estimators returns the names accepted by EstimateWith, sorted. The set
// is defined once, in the estimators package registry.
func Estimators() []string {
	return estimators.Names()
}

// EstimateWith runs the named protocol (see Estimators) to the (ε, δ)
// requirement over a fresh session drawn from the system's session
// counter. Safe for concurrent use; under concurrency the assignment of
// counter values to callers (and hence each caller's exact result) is
// scheduling-dependent — use EstimateWithSalt when results must be
// reproducible regardless of interleaving.
func (s *System) EstimateWith(name string, epsilon, delta float64) (Estimate, error) {
	return s.estimateOn(s.session, name, epsilon, delta)
}

// EstimateWithSalt runs the named protocol over the session addressed by
// salt instead of the shared session counter. Equal (system, salt) pairs
// replay bit-identical sessions no matter how many other estimations are
// in flight, which is what deterministic parallel harnesses (the
// internal/fleet runner, experiment trial loops) key their jobs on.
// Distinct salts give independent sessions, like distinct counter values.
func (s *System) EstimateWithSalt(name string, epsilon, delta float64, salt uint64) (Estimate, error) {
	return s.estimateOn(func() *channel.Reader { return s.sessionAt(salt) }, name, epsilon, delta)
}

// estimateOn validates parameters, opens a session via open and runs the
// named protocol over it.
func (s *System) estimateOn(open func() *channel.Reader, name string, epsilon, delta float64) (Estimate, error) {
	est := estimators.New(name)
	if est == nil {
		return Estimate{}, fmt.Errorf("rfidest: unknown estimator %q (known: %v)", name, Estimators())
	}
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return Estimate{}, fmt.Errorf("rfidest: epsilon and delta must be in (0, 1), got (%v, %v)", epsilon, delta)
	}
	session := open()
	res, err := est.Estimate(session, estimators.Accuracy{Epsilon: epsilon, Delta: delta})
	if err != nil {
		return Estimate{}, err
	}
	out := fromResult(res)
	out.TagTransmissions = session.TagTransmissions()
	return out, nil
}

// BFCEDetail runs BFCE and returns the protocol's internal diagnostics
// alongside the estimate: the rough estimate, the lower bound, the chosen
// persistence numerators and the probe behaviour.
type BFCEDetail struct {
	Estimate    Estimate
	Rough       float64 // n̂_r from the 1024-slot rough phase
	LowerBound  float64 // n̂_low = c·n̂_r
	ProbePn     int     // persistence numerator the probe settled on (p_s·1024)
	OptimalPn   int     // numerator of the accurate phase (p_o·1024)
	ProbeRounds int     // probe adjustments before p_s was valid
	Feasible    bool    // Theorem 3 had a feasible p_o at n̂_low
	Saturated   bool    // a phase saw a degenerate all-0s/all-1s vector
}

// EstimateBFCEDetail is EstimateBFCE with full diagnostics.
func (s *System) EstimateBFCEDetail(epsilon, delta float64) (BFCEDetail, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return BFCEDetail{}, fmt.Errorf("rfidest: epsilon and delta must be in (0, 1), got (%v, %v)", epsilon, delta)
	}
	est, err := core.New(core.Config{Epsilon: epsilon, Delta: delta})
	if err != nil {
		return BFCEDetail{}, err
	}
	r := s.session()
	res, err := est.Estimate(r)
	if err != nil {
		return BFCEDetail{}, err
	}
	return BFCEDetail{
		Estimate: Estimate{
			N:          res.Estimate,
			Seconds:    res.Seconds,
			Slots:      res.Cost.TagSlots,
			ReaderBits: res.Cost.ReaderBits,
			Rounds:     1,
			Guarded:    res.Feasible,
		},
		Rough:       res.Rough,
		LowerBound:  res.LowerBound,
		ProbePn:     res.PsNum,
		OptimalPn:   res.PoNum,
		ProbeRounds: res.ProbeRounds,
		Feasible:    res.Feasible,
		Saturated:   res.Saturated,
	}, nil
}

// ConstantTimeBudget returns the paper's closed-form bound on BFCE's air
// time under EPCglobal C1G2 — "less than 0.19 s" (§IV-E.1) — in seconds.
func ConstantTimeBudget() float64 {
	return timing.BFCEBudgetSeconds(timing.C1G2)
}

// MaxCardinality returns the largest cardinality the paper's w = 8192
// configuration can express (γ_max·w > 19 million, §IV-B).
func MaxCardinality() float64 {
	return core.MaxCardinality(3, 8192, 1024)
}
