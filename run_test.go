package rfidest_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rfidest"
	"rfidest/internal/goldengrid"
)

// TestRunMatchesGoldenGrid proves the Run entry point reproduces the
// 74-case golden grid bit-for-bit — once bare and once with a live metrics
// observer attached, pinning both the wrapper equivalence and the
// observation-passivity contract across every estimator and engine kind.
func TestRunMatchesGoldenGrid(t *testing.T) {
	ctx := context.Background()
	reg := rfidest.NewMetrics()
	system := goldenSystems(t)
	cases := goldengrid.Cases()
	for _, c := range cases {
		sys := system(c.System)
		opts := []rfidest.Option{
			rfidest.WithEstimator(c.Estimator),
			rfidest.WithAccuracy(goldengrid.Epsilon, goldengrid.Delta),
			rfidest.WithSalt(c.Salt),
		}
		got, err := sys.Run(ctx, opts...)
		if err != nil {
			t.Errorf("%s/%s/0x%x: %v", c.System, c.Estimator, c.Salt, err)
			continue
		}
		if got != c.Want {
			t.Errorf("%s/%s/0x%x:\n got  %+v\n want %+v", c.System, c.Estimator, c.Salt, got, c.Want)
		}
		observed, err := sys.Run(ctx, append(opts, rfidest.WithObserver(reg))...)
		if err != nil {
			t.Errorf("%s/%s/0x%x observed: %v", c.System, c.Estimator, c.Salt, err)
			continue
		}
		if observed != c.Want {
			t.Errorf("%s/%s/0x%x: observer perturbed the estimate:\n got  %+v\n want %+v",
				c.System, c.Estimator, c.Salt, observed, c.Want)
		}
	}
	if s := reg.Snapshot(); s.Sessions != int64(len(cases)) {
		t.Errorf("registry saw %d sessions, want %d", s.Sessions, len(cases))
	}
}

// TestRunDefaults: a bare Run is BFCE at the paper's (0.05, 0.05).
func TestRunDefaults(t *testing.T) {
	sys := rfidest.NewSystem(20000, rfidest.WithSeed(3), rfidest.WithSynthetic())
	got, err := sys.Run(context.Background(), rfidest.WithSalt(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.EstimateWithSalt("BFCE", 0.05, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("default Run = %+v, want BFCE/(0.05,0.05) result %+v", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	sys := rfidest.NewSystem(1000, rfidest.WithSynthetic())
	ctx := context.Background()
	if _, err := sys.Run(ctx, rfidest.WithEstimator("nope")); err == nil ||
		!strings.Contains(err.Error(), `unknown estimator "nope"`) {
		t.Errorf("unknown estimator: err = %v", err)
	}
	if _, err := sys.Run(ctx, rfidest.WithAccuracy(0, 0.5)); err == nil ||
		!strings.Contains(err.Error(), "epsilon and delta must be in (0, 1)") {
		t.Errorf("bad accuracy: err = %v", err)
	}
	if _, err := sys.RunBFCEDetail(ctx, rfidest.WithEstimator("ZOE")); err == nil ||
		!strings.Contains(err.Error(), "BFCE only") {
		t.Errorf("detail with foreign estimator: err = %v", err)
	}
	if _, err := sys.RunBFCEDetail(ctx, rfidest.WithAccuracy(2, 0.5)); err == nil ||
		!strings.Contains(err.Error(), "epsilon and delta must be in (0, 1)") {
		t.Errorf("detail bad accuracy: err = %v", err)
	}
}

// TestRunCancellation: a done context stops the run before the session
// opens; nil contexts are accepted.
func TestRunCancellation(t *testing.T) {
	sys := rfidest.NewSystem(1000, rfidest.WithSynthetic())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sys.RunBFCEDetail(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunBFCEDetail on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := sys.Run(nil, rfidest.WithSalt(1)); err != nil { //nolint:staticcheck // nil ctx tolerance is part of the contract
		t.Errorf("Run(nil ctx): %v", err)
	}
}

// TestRunBFCEDetailAgreesWithRun: the detail path and the registry path
// execute the same protocol over the same salted session, so the headline
// fields — and, post-fix, TagTransmissions — must agree.
func TestRunBFCEDetailAgreesWithRun(t *testing.T) {
	sys := rfidest.NewSystem(20000, rfidest.WithSeed(42))
	ctx := context.Background()
	det, err := sys.RunBFCEDetail(ctx, rfidest.WithAccuracy(0.1, 0.1), rfidest.WithSalt(0x1))
	if err != nil {
		t.Fatal(err)
	}
	est, err := sys.Run(ctx, rfidest.WithAccuracy(0.1, 0.1), rfidest.WithSalt(0x1))
	if err != nil {
		t.Fatal(err)
	}
	if det.Estimate.N != est.N || det.Estimate.Seconds != est.Seconds || //lint:allow floatcmp bit-identity across entry points is the contract under test
		det.Estimate.ReaderBits != est.ReaderBits {
		t.Errorf("detail estimate %+v diverges from Run %+v", det.Estimate, est)
	}
	if det.Estimate.TagTransmissions != est.TagTransmissions {
		t.Errorf("detail TagTransmissions = %d, Run reports %d",
			det.Estimate.TagTransmissions, est.TagTransmissions)
	}
	if det.Estimate.TagTransmissions <= 0 {
		t.Errorf("tag-backed detail run reports TagTransmissions = %d, want > 0",
			det.Estimate.TagTransmissions)
	}
}

// TestRunMetricsEndToEnd: one observed BFCE run populates every series the
// ISSUE's snapshot contract names — per-phase slots, air time and probe
// rounds.
func TestRunMetricsEndToEnd(t *testing.T) {
	sys := rfidest.NewSystem(50000, rfidest.WithSeed(7), rfidest.WithSynthetic())
	reg := rfidest.NewMetrics()
	if _, err := sys.Run(context.Background(), rfidest.WithSalt(9), rfidest.WithObserver(reg)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Sessions != 1 || s.Errors != 0 {
		t.Fatalf("sessions/errors = %d/%d", s.Sessions, s.Errors)
	}
	for _, p := range []string{"probe", "rough", "accurate"} {
		var found bool
		for _, ps := range s.Phases {
			if ps.Phase == p {
				found = true
				if ps.Spans != 1 || ps.Slots == 0 || ps.Seconds.Count != 1 {
					t.Errorf("%s phase: spans=%d slots=%d seconds.count=%d",
						p, ps.Spans, ps.Slots, ps.Seconds.Count)
				}
			}
		}
		if !found {
			t.Errorf("snapshot missing phase %q", p)
		}
	}
	if s.AirTimeSeconds.Count != 1 || s.ProbeRounds.Count != 1 || s.EstimateRelErr.Count != 1 {
		t.Errorf("histograms air/probe/err counts = %d/%d/%d, want 1 each",
			s.AirTimeSeconds.Count, s.ProbeRounds.Count, s.EstimateRelErr.Count)
	}
	if s.Slots == 0 || s.ReaderBits == 0 {
		t.Errorf("global counters empty: slots=%d bits=%d", s.Slots, s.ReaderBits)
	}
}
