package rfidest

import (
	"math"
	"testing"
)

func TestInventoryExactAndCostly(t *testing.T) {
	sys := NewSystem(2000, WithSeed(31), WithSynthetic())
	inv, err := sys.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Complete || inv.Identified != 2000 {
		t.Fatalf("inventory incomplete: %+v", inv)
	}
	est, err := sys.EstimateBFCE(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Even at 2000 tags, exact identification costs far more air time
	// than one constant-time estimate.
	if inv.Seconds < 10*est.Seconds {
		t.Fatalf("inventory %v s vs estimate %v s — identification too cheap", inv.Seconds, est.Seconds)
	}
}

func TestInventoryTinyPopulationBeatsEstimation(t *testing.T) {
	// The flip side of the paper's scoping (§III-A: exact counting is
	// fast when the cardinality is small).
	sys := NewSystem(20, WithSeed(33), WithSynthetic())
	inv, err := sys.Inventory()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Seconds > ConstantTimeBudget() {
		t.Fatalf("inventory of 20 tags (%v s) slower than BFCE's budget", inv.Seconds)
	}
}

func TestPopulationWindowsShareTags(t *testing.T) {
	a := PopulationAt(77, 0, 1000)
	b := PopulationAt(77, 500, 1000)
	if a.N() != 1000 || b.N() != 1000 {
		t.Fatalf("window sizes wrong: %d, %d", a.N(), b.N())
	}
	// Window b's first 500 tags are window a's last 500.
	for i := 0; i < 500; i++ {
		if a.pop.Tags[500+i] != b.pop.Tags[i] {
			t.Fatalf("windows do not share tag %d", i)
		}
	}
}

func TestTrackerArrivalsDepartures(t *testing.T) {
	tr, err := NewTracker(100000, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: tags [0, 100k). Round 2: tags [30k, 125k) — 30k departed,
	// 25k arrived.
	s1, err := tr.Snapshot(PopulationAt(88, 0, 100000))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr.Snapshot(PopulationAt(88, 30000, 95000))
	if err != nil {
		t.Fatal(err)
	}
	if c := s1.Cardinality(); math.Abs(c-100000)/100000 > 0.05 {
		t.Fatalf("snapshot 1 cardinality %v", c)
	}
	dep, err := Departures(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Arrivals(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep-30000) > 10000 {
		t.Fatalf("departures %v, want ~30000", dep)
	}
	if math.Abs(arr-25000) > 10000 {
		t.Fatalf("arrivals %v, want ~25000", arr)
	}
	u, err := Union(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-125000)/125000 > 0.05 {
		t.Fatalf("union %v, want ~125000", u)
	}
	inter, err := Intersection(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inter-70000) > 12000 {
		t.Fatalf("intersection %v, want ~70000", inter)
	}
}

func TestTrackerRejectsSynthetic(t *testing.T) {
	tr, err := NewTracker(1000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Snapshot(NewSystem(1000, WithSynthetic())); err == nil {
		t.Fatal("synthetic system accepted for tracking")
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 1); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Union(nil, nil); err == nil {
		t.Fatal("nil snapshots accepted")
	}
	if _, err := Arrivals(nil, nil); err == nil {
		t.Fatal("nil snapshots accepted")
	}
	if _, err := Departures(nil, nil); err == nil {
		t.Fatal("nil snapshots accepted")
	}
	if _, err := Intersection(nil, nil); err == nil {
		t.Fatal("nil snapshots accepted")
	}
}

func TestPopulationAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative window did not panic")
		}
	}()
	PopulationAt(1, -1, 10)
}
