package rfidest

import (
	"math"
	"sync"
	"testing"

	"rfidest/internal/obs"
)

// injectorPlans isolates each fault injector plus the combined severity
// knob, so every property below is checked per injector.
func injectorPlans() map[string]FaultPlan {
	return map[string]FaultPlan{
		"burst":    {BurstFlipGood: 0.002, BurstFlipBad: 0.3, BurstPGB: 0.02, BurstPBG: 0.2},
		"erasure":  {ErasureRate: 0.05},
		"truncate": {TruncRate: 0.2, TruncTail: 0.25},
		"stall":    {StallRate: 0.2, StallSlots: 64},
		"severity": FaultSeverity(0.5),
	}
}

// TestFaultsEveryInjectorEndToEnd drives each injector through Run, a
// Monitor round and a fleet-style salted replay, over both a healthy
// population and the all-idle degenerate one (n = 0). Faulted runs must
// never error — degradation is reported through Saturated, not failures.
func TestFaultsEveryInjectorEndToEnd(t *testing.T) {
	for name, plan := range injectorPlans() {
		t.Run(name, func(t *testing.T) {
			sys := NewSystem(20000, WithSeed(31), WithFaults(plan))
			est, err := sys.Run(nil, WithSalt(1))
			if err != nil {
				t.Fatalf("faulted run failed: %v", err)
			}
			if !(est.N >= 0) || math.IsInf(est.N, 0) {
				t.Fatalf("faulted run produced degenerate estimate %v", est.N)
			}
			m, err := NewMonitor(0.1, 0.1, 2)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				if _, err := m.Estimate(sys); err != nil {
					t.Fatalf("monitor round %d failed: %v", round, err)
				}
			}

			empty := NewSystem(0, WithSeed(32), WithFaults(plan))
			dest, err := empty.Run(nil, WithSalt(2), WithRetry(2, 0))
			if err != nil {
				t.Fatalf("faulted empty-population run failed: %v", err)
			}
			if !(dest.N >= 0) || math.IsInf(dest.N, 0) {
				t.Fatalf("empty-population estimate degenerate: %v", dest.N)
			}
		})
	}
}

// TestFaultsDeterministicPerSalt pins the injectors' determinism contract:
// equal (system seed, plan, salt) replays a bit-identical estimate and a
// bit-identical fault schedule, measured through the metrics registry.
func TestFaultsDeterministicPerSalt(t *testing.T) {
	for name, plan := range injectorPlans() {
		t.Run(name, func(t *testing.T) {
			run := func() (Estimate, obs.FaultStats) {
				sys := NewSystem(20000, WithSeed(33), WithFaults(plan))
				reg := NewMetrics()
				est, err := sys.Run(nil, WithSalt(7), WithObserver(reg))
				if err != nil {
					t.Fatal(err)
				}
				snap := reg.Snapshot()
				return est, obs.FaultStats{
					Frames:      int(snap.Faults.Frames),
					BurstFlips:  int(snap.Faults.BurstFlips),
					Erasures:    int(snap.Faults.Erasures),
					Truncations: int(snap.Faults.Truncations),
					Stalls:      int(snap.Faults.Stalls),
					StallSlots:  int(snap.Faults.StallSlots),
				}
			}
			estA, faultsA := run()
			estB, faultsB := run()
			if estA != estB {
				t.Fatalf("same salt, different estimates:\n%+v\n%+v", estA, estB)
			}
			if faultsA != faultsB {
				t.Fatalf("same salt, different fault schedules:\n%+v\n%+v", faultsA, faultsB)
			}
			if faultsA.Frames == 0 {
				t.Fatal("injector reported no processed frames")
			}
		})
	}
}

// TestFaultMachineryPassiveByDefault pins the acceptance criterion that
// the fault/retry machinery is provably passive when disabled: a system
// with a zero fault plan and an unused retry budget replays bit-identical
// to the plain configuration.
func TestFaultMachineryPassiveByDefault(t *testing.T) {
	base := NewSystem(20000, WithSeed(42))
	want, err := base.Run(nil, WithSalt(5))
	if err != nil {
		t.Fatal(err)
	}
	zeroPlan := NewSystem(20000, WithSeed(42), WithFaults(FaultPlan{}))
	got, err := zeroPlan.Run(nil, WithSalt(5))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("zero fault plan perturbed the run:\n got %+v\nwant %+v", got, want)
	}
	// A retry budget that never fires (healthy run) must be equally inert.
	retried, err := base.Run(nil, WithSalt(5), WithRetry(3, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if retried != want {
		t.Fatalf("unused retry budget perturbed the run:\n got %+v\nwant %+v", retried, want)
	}
	if retried.Retries != 0 || retried.Saturated {
		t.Fatalf("healthy run reported retries/saturation: %+v", retried)
	}
}

// TestRetryRecountsSaturatedRounds pins the retry loop's accounting on a
// population that saturates every attempt (n = 0: all frames idle): every
// allowed retry is spent, costs accumulate across attempts, and the
// observer counts each retry plus the final degradation.
func TestRetryRecountsSaturatedRounds(t *testing.T) {
	sys := NewSystem(0, WithSeed(8))
	plain, err := sys.Run(nil, WithSalt(3))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Saturated {
		t.Fatalf("empty population did not saturate: %+v", plain)
	}
	reg := NewMetrics()
	est, err := sys.Run(nil, WithSalt(3), WithRetry(2, 0), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if est.Retries != 2 {
		t.Fatalf("retries = %d, want 2", est.Retries)
	}
	if !est.Saturated {
		t.Fatal("all attempts saturate; final estimate must stay flagged")
	}
	if est.Seconds <= plain.Seconds || est.Slots <= plain.Slots {
		t.Fatalf("retry cost not accumulated: %+v vs single %+v", est, plain)
	}
	snap := reg.Snapshot()
	if snap.Retries != 2 || snap.Degraded != 1 {
		t.Fatalf("registry retries=%d degraded=%d, want 2/1", snap.Retries, snap.Degraded)
	}
	// The air-time budget caps re-runs: a budget below one round's cost
	// admits no retry at all.
	capped, err := sys.Run(nil, WithSalt(3), WithRetry(5, plain.Seconds/2))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Retries != 0 {
		t.Fatalf("budget-capped run still retried %d times", capped.Retries)
	}
}

// TestRetryValidation: degenerate retry options are rejected before a
// session is opened.
func TestRetryValidation(t *testing.T) {
	sys := NewSystem(10, WithSeed(2))
	if _, err := sys.Run(nil, WithRetry(-1, 0)); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := sys.Run(nil, WithRetry(1, math.NaN())); err == nil {
		t.Fatal("NaN retry budget accepted")
	}
	if _, err := sys.Run(nil, WithRetry(1, -1)); err == nil {
		t.Fatal("negative retry budget accepted")
	}
	if _, err := sys.RunBFCEDetail(nil, WithRetry(-1, 0)); err == nil {
		t.Fatal("RunBFCEDetail accepted negative retries")
	}
}

// TestBFCEDetailRetryAgreesWithRun pins that the diagnostic path retries
// the same way the registry path does.
func TestBFCEDetailRetryAgreesWithRun(t *testing.T) {
	sys := NewSystem(0, WithSeed(8))
	det, err := sys.RunBFCEDetail(nil, WithSalt(3), WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if det.Estimate.Retries != 2 || !det.Estimate.Saturated {
		t.Fatalf("detail retry accounting: %+v", det.Estimate)
	}
}

// TestConcurrentRetrySharedSystem exercises the retry path from 32
// goroutines against one shared System under -race: every run saturates
// (n = 0), so every goroutine drives the full retry loop while reporting
// into one shared registry. Salted results must match a quiet replay.
func TestConcurrentRetrySharedSystem(t *testing.T) {
	const goroutines = 32
	sys := NewSystem(0, WithSeed(77))
	reg := NewMetrics()
	results := make([]Estimate, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = sys.Run(nil,
				WithSalt(uint64(g)), WithRetry(1, 0), WithObserver(reg))
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		replay, err := sys.Run(nil, WithSalt(uint64(g)), WithRetry(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		if results[g] != replay {
			t.Fatalf("goroutine %d diverged from quiet replay:\n got %+v\nwant %+v", g, results[g], replay)
		}
	}
	snap := reg.Snapshot()
	if snap.Retries != goroutines {
		t.Fatalf("registry retries = %d, want %d (every run saturates and retries once)", snap.Retries, goroutines)
	}
	if snap.Degraded != goroutines {
		t.Fatalf("registry degraded = %d, want %d", snap.Degraded, goroutines)
	}
}
