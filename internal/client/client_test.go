package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfidest"
	"rfidest/internal/serve"
	"rfidest/internal/xrand"
)

// fastCfg returns a config with near-zero backoff so retry tests finish
// in milliseconds.
func fastCfg(url string) Config {
	return Config{
		BaseURL:     url,
		Seed:        7,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	}
}

// estimateOK writes a deterministic EstimateResponse.
func estimateOK(w http.ResponseWriter, n float64, salt uint64) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.EstimateResponse{
		Estimate: rfidest.Estimate{N: n},
		Salt:     salt,
	})
}

func shed(w http.ResponseWriter, status int, retryAfter string) {
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "shed"})
}

var testReq = serve.EstimateRequest{
	System:  serve.SystemSpec{N: 1000, Synthetic: true},
	Epsilon: 0.1, Delta: 0.1,
}

// TestRetryRecoversFromTransient: two 503 sheds then success; the call
// succeeds and the counters record every attempt.
func TestRetryRecoversFromTransient(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			shed(w, http.StatusServiceUnavailable, "0")
			return
		}
		estimateOK(w, 1000, 42)
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	resp, err := c.Estimate(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Estimate.N != 1000 || resp.Salt != 42 {
		t.Errorf("resp = %+v, want n=1000 salt=42", resp)
	}
	st := c.Stats()
	if st.Calls != 1 || st.Attempts != 3 || st.Retries != 2 || st.Shed != 2 {
		t.Errorf("stats = %+v, want 1 call, 3 attempts, 2 retries, 2 shed", st)
	}
}

// TestTerminalStatusDoesNotRetry: a 400 is the request's fault; exactly
// one attempt, surfaced as *StatusError.
func TestTerminalStatusDoesNotRetry(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "epsilon must be in (0, 1)"})
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	_, err := c.Estimate(context.Background(), testReq)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want 1 (no retry on 4xx)", got)
	}
}

// TestRetriesExhausted: a persistent 503 fails after Retries+1 attempts
// with the last shed error.
func TestRetriesExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		shed(w, http.StatusServiceUnavailable, "0")
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	_, err := c.Estimate(context.Background(), testReq)
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server hits = %d, want 4 (1 + 3 retries)", got)
	}
}

// TestRetryAfterDominatesBackoff: the server's Retry-After hint is a
// floor under the jittered draw.
func TestRetryAfterDominatesBackoff(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			shed(w, http.StatusTooManyRequests, "1")
			return
		}
		estimateOK(w, 1000, 1)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	c := New(cfg)
	start := time.Now()
	if _, err := c.Estimate(context.Background(), testReq); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("call finished in %v; Retry-After: 1 demands at least 1s", elapsed)
	}
}

// TestWaitContextCancelled: a cancelled context interrupts a long
// Retry-After wait immediately.
func TestWaitContextCancelled(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shed(w, http.StatusServiceUnavailable, "3600")
	}))
	defer ts.Close()

	c := New(fastCfg(ts.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Estimate(ctx, testReq)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation took %v; the hour-long hint was not interrupted", elapsed)
	}
}

// TestJitterDeterministic: equal (seed, call, attempt) draw equal waits.
func TestJitterDeterministic(t *testing.T) {
	draw := func() []time.Duration {
		c := New(Config{BaseURL: "http://unused", Seed: 9,
			BackoffBase: 100 * time.Millisecond, BackoffCap: 5 * time.Second})
		rng := xrand.NewStream(c.cfg.Seed, 0xc11e, 1)
		var out []time.Duration
		for attempt := 0; attempt < 6; attempt++ {
			ceil := c.cfg.BackoffBase << uint(attempt)
			if ceil > c.cfg.BackoffCap || ceil <= 0 {
				ceil = c.cfg.BackoffCap
			}
			out = append(out, time.Duration(rng.Uint64n(uint64(ceil))))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v", i, a[i], b[i])
		}
		if limit := 100 * time.Millisecond << uint(i); a[i] >= limit && a[i] >= 5*time.Second {
			t.Errorf("draw %d = %v exceeds its ceiling", i, a[i])
		}
	}
}

// TestNetworkErrorRetries: a dead endpoint is transient; the client keeps
// trying until attempts run out.
func TestNetworkErrorRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens now

	c := New(fastCfg(ts.URL))
	_, err := c.Estimate(context.Background(), testReq)
	if err == nil {
		t.Fatal("estimate against a closed listener succeeded")
	}
	if st := c.Stats(); st.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", st.Attempts)
	}
}

// TestHedgeRecoversFromStall: the primary request stalls; the hedge leg
// answers and wins, and the stalled leg is cut loose after its grace
// window instead of pinning the call.
func TestHedgeRecoversFromStall(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return // first request: stall until cancelled
		}
		estimateOK(w, 2000, 0xbeef)
	}))
	defer ts.Close()
	defer close(release)

	cfg := fastCfg(ts.URL)
	cfg.Retries = -1 // isolate hedging from retrying
	cfg.HedgeDelay = 20 * time.Millisecond
	c := New(cfg)
	salt := uint64(0xbeef)
	req := testReq
	req.Salt = &salt

	start := time.Now()
	resp, err := c.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Salt != 0xbeef || resp.Estimate.N != 2000 {
		t.Errorf("resp = %+v, want the hedge leg's answer", resp)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged call took %v; the stalled leg pinned it down", elapsed)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want 1 hedge, 1 hedge win", st)
	}
}

// TestHedgeNotLaunchedWhenFast: a primary that answers inside the delay
// never spawns a hedge.
func TestHedgeNotLaunchedWhenFast(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		estimateOK(w, 1000, 7)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.HedgeDelay = 10 * time.Second
	c := New(cfg)
	salt := uint64(7)
	req := testReq
	req.Salt = &salt
	if _, err := c.Estimate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hedges != 0 || hits.Load() != 1 {
		t.Errorf("hedges = %d, hits = %d; want 0 hedges, 1 hit", st.Hedges, hits.Load())
	}
}

// TestHedgeMismatch: both legs answer — with different estimates for the
// same pinned salt. That is a server determinism violation and must
// surface as ErrHedgeMismatch, not as either answer.
func TestHedgeMismatch(t *testing.T) {
	var mu sync.Mutex
	arrived := 0
	barrier := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		arrived++
		n := float64(1000 * arrived) // different answer per request
		if arrived == 2 {
			close(barrier) // both legs are in: release everyone
		}
		mu.Unlock()
		<-barrier
		estimateOK(w, n, 0xd00d)
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.Retries = -1
	cfg.HedgeDelay = 10 * time.Millisecond
	c := New(cfg)
	salt := uint64(0xd00d)
	req := testReq
	req.Salt = &salt
	_, err := c.Estimate(context.Background(), req)
	if !errors.Is(err, ErrHedgeMismatch) {
		t.Fatalf("err = %v, want ErrHedgeMismatch", err)
	}
}

// TestHedgeConcurrentCalls drives many hedged calls in parallel — the
// stats atomics and leg plumbing must be clean under the race detector.
func TestHedgeConcurrentCalls(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.EstimateRequest
		json.NewDecoder(r.Body).Decode(&req)
		estimateOK(w, 1000, *req.Salt) // same answer for a given salt, always
	}))
	defer ts.Close()

	cfg := fastCfg(ts.URL)
	cfg.HedgeDelay = time.Microsecond // hedge practically every call
	c := New(cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			salt := uint64(i)
			req := testReq
			req.Salt = &salt
			resp, err := c.Estimate(context.Background(), req)
			if err != nil {
				errs <- err
				return
			}
			if resp.Salt != salt {
				errs <- errors.New("salt echo mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := c.Stats(); st.Calls != 32 {
		t.Errorf("calls = %d, want 32", st.Calls)
	}
}
