// Package client is the resilient HTTP client for the rfidest serving
// API (internal/serve): typed wrappers over /v1/estimate, /v1/batch and
// /v1/monitor with capped exponential backoff, full jitter, Retry-After
// honoring, and optional hedged estimates.
//
// # Retry policy
//
// A call retries on transport errors and on the transient status codes
// (429, 500, 502, 503, 504) up to Config.Retries extra attempts. The
// wait before attempt k is drawn uniformly from [0, min(BackoffCap,
// BackoffBase·2^k)) — "full jitter", so a shed fleet of clients does not
// re-arrive in lockstep. When the server supplied a Retry-After header
// (admission control and the circuit breakers both do) the hint wins:
// the client sleeps max(hint, draw), never less than the server asked.
// Every wait is context-bounded; cancellation interrupts it immediately.
//
// The jitter stream is seeded: draws are a pure function of (Config.Seed,
// call sequence, attempt), so a replayed client schedules the same waits.
// Non-transient statuses surface as *StatusError without retry.
//
// # Hedging
//
// With HedgeDelay > 0, Estimate calls that pin a salt are hedged: if the
// primary request has not answered within the delay, an identical second
// request is issued and the first success wins. A pinned salt makes the
// request idempotent and its answer deterministic, which is also the
// integrity check — the straggling leg gets one more HedgeDelay to land
// its answer, and when both legs succeed they must agree bit-identically;
// disagreement surfaces as ErrHedgeMismatch rather than silently returning
// one of two different answers. A straggler that outstays the grace window
// is cancelled, so a stalled connection never pins the call down. Requests
// without a pinned salt are never hedged (each would be a different
// session).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rfidest/internal/serve"
	"rfidest/internal/xrand"
)

// ErrHedgeMismatch reports that both legs of a hedged estimate succeeded
// with different answers — a determinism violation on the server side (or
// a corrupting middlebox), never something to paper over.
var ErrHedgeMismatch = errors.New("client: hedged replies disagree for the same pinned salt")

// StatusError is a non-2xx reply the retry policy classified as terminal
// (or transient but out of attempts). Message carries the server's error
// body when it sent one.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("client: server answered %d", e.Status)
}

// Config tunes a Client. The zero value of every field selects the
// default in parentheses.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080" (required).
	BaseURL string
	// HTTP is the transport (a plain &http.Client{}). Chaos tests inject a
	// fault-wrapped transport here.
	HTTP *http.Client
	// Seed roots the jitter stream (1). Equal seeds draw equal backoff
	// schedules.
	Seed uint64
	// Retries is how many extra attempts follow a failed first one (3).
	// Negative disables retrying entirely.
	Retries int
	// BackoffBase and BackoffCap bound the exponential wait: attempt k
	// draws from [0, min(cap, base·2^k)) (100ms, 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeDelay, when positive, hedges pinned-salt Estimate calls: a
	// second identical request launches after this long without an answer
	// (0: hedging off).
	HedgeDelay time.Duration
}

func (c *Config) applyDefaults() {
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
}

// Stats is a point-in-time copy of the client's counters.
type Stats struct {
	// Calls is completed API calls; Attempts is HTTP requests issued (>=
	// Calls once retries or hedges happen).
	Calls    int64 `json:"calls"`
	Attempts int64 `json:"attempts"`
	// Retries counts re-issued attempts; Shed counts 429/503 replies
	// observed (each also retried when attempts remain).
	Retries int64 `json:"retries"`
	Shed    int64 `json:"shed"`
	// Hedges counts hedge legs launched; HedgeWins counts hedged calls the
	// hedge leg answered first.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
}

// Client is a resilient rfidest API client. Safe for concurrent use.
type Client struct {
	cfg Config
	seq atomic.Uint64 // call sequence: keys the per-call jitter stream

	calls, attempts, retries, shed, hedges, hedgeWins atomic.Int64
}

// New builds a Client.
func New(cfg Config) *Client {
	cfg.applyDefaults()
	return &Client{cfg: cfg}
}

// Stats returns a copy of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Calls:     c.calls.Load(),
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Shed:      c.shed.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
	}
}

// Estimate calls POST /v1/estimate, hedging when configured and the
// request pins a salt.
func (c *Client) Estimate(ctx context.Context, req serve.EstimateRequest) (serve.EstimateResponse, error) {
	defer c.calls.Add(1)
	var resp serve.EstimateResponse
	if c.cfg.HedgeDelay > 0 && req.Salt != nil {
		return c.hedgedEstimate(ctx, req)
	}
	err := c.call(ctx, "/v1/estimate", req, &resp)
	return resp, err
}

// Batch calls POST /v1/batch.
func (c *Client) Batch(ctx context.Context, req serve.BatchRequest) (serve.BatchResponse, error) {
	defer c.calls.Add(1)
	var resp serve.BatchResponse
	err := c.call(ctx, "/v1/batch", req, &resp)
	return resp, err
}

// Monitor calls POST /v1/monitor: one warm round of the named loop.
func (c *Client) Monitor(ctx context.Context, req serve.MonitorRequest) (serve.MonitorResponse, error) {
	defer c.calls.Add(1)
	var resp serve.MonitorResponse
	err := c.call(ctx, "/v1/monitor", req, &resp)
	return resp, err
}

// call runs one retrying request leg end to end: marshal once, then
// attempt/backoff until success, a terminal status, attempts run out, or
// ctx ends. (The Calls counter belongs to the public wrappers — a hedged
// call is one call but two legs.)
func (c *Client) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}
	seq := c.seq.Add(1)
	rng := xrand.NewStream(c.cfg.Seed, 0xc11e, seq)
	var last error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		result, retryAfter, err := c.attempt(ctx, path, body, resp)
		switch result {
		case outcomeOK:
			return nil
		case outcomeTerminal:
			return err
		}
		last = err
		if attempt >= c.cfg.Retries {
			return last
		}
		if err := c.wait(ctx, rng, attempt, retryAfter); err != nil {
			return errors.Join(err, last)
		}
	}
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeTerminal
	outcomeRetry
)

// attempt issues one HTTP request. retryAfter is the server's hint (0 when
// absent) and only meaningful for outcomeRetry.
func (c *Client) attempt(ctx context.Context, path string, body []byte, out any) (outcome, time.Duration, error) {
	c.attempts.Add(1)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return outcomeTerminal, 0, fmt.Errorf("client: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.cfg.HTTP.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return outcomeTerminal, 0, ctx.Err()
		}
		return outcomeRetry, 0, fmt.Errorf("client: %w", err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		// A truncated or reset body is as transient as a refused dial.
		if ctx.Err() != nil {
			return outcomeTerminal, 0, ctx.Err()
		}
		return outcomeRetry, 0, fmt.Errorf("client: read response: %w", err)
	}
	if hresp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return outcomeRetry, 0, fmt.Errorf("client: corrupt response body: %w", err)
		}
		return outcomeOK, 0, nil
	}
	serr := &StatusError{Status: hresp.StatusCode, Message: errorBody(data)}
	if hresp.StatusCode == http.StatusTooManyRequests || hresp.StatusCode == http.StatusServiceUnavailable {
		c.shed.Add(1)
	}
	if !transientStatus(hresp.StatusCode) {
		return outcomeTerminal, 0, serr
	}
	return outcomeRetry, retryAfterHint(hresp), serr
}

// wait sleeps the full-jitter backoff for attempt, raised to the server's
// Retry-After hint when that is longer. The wait is context-bounded and
// never uses time.Sleep — cancellation interrupts it immediately.
func (c *Client) wait(ctx context.Context, rng *xrand.Rand, attempt int, retryAfter time.Duration) error {
	ceil := c.cfg.BackoffBase << uint(attempt)
	if ceil > c.cfg.BackoffCap || ceil <= 0 {
		ceil = c.cfg.BackoffCap
	}
	d := time.Duration(rng.Uint64n(uint64(ceil)))
	if retryAfter > d {
		d = retryAfter
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transientStatus reports whether a status is worth retrying: overload
// (429), breaker/drain sheds (503), and the gateway-ish 5xx family. Other
// 4xx are the request's fault and other 5xx would repeat.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterHint parses the Retry-After header's delta-seconds form; the
// HTTP-date form (which would need a wall-clock read) falls back to 0 and
// lets the jittered backoff decide.
func retryAfterHint(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorBody extracts the server's error message from a non-2xx body.
func errorBody(data []byte) string {
	var e serve.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(bytes.TrimSpace(data))
}

// hedgedEstimate races two retrying legs of the same pinned-salt request.
// The second leg launches HedgeDelay after the first; the first success
// is the answer. The straggler then gets one more HedgeDelay to land its
// own answer — when it does, the two must agree bit-identically — before
// it is cancelled, so a stalled leg never pins the call down and a
// completed one never escapes the integrity check.
func (c *Client) hedgedEstimate(ctx context.Context, req serve.EstimateRequest) (serve.EstimateResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type legResult struct {
		resp serve.EstimateResponse
		err  error
		leg  int
	}
	results := make(chan legResult, 2)
	run := func(leg int) {
		var resp serve.EstimateResponse
		err := c.call(hctx, "/v1/estimate", req, &resp)
		results <- legResult{resp, err, leg}
	}
	go run(0)

	var first legResult
	timer := time.NewTimer(c.cfg.HedgeDelay)
	defer timer.Stop()
	select {
	case first = <-results:
		// Primary answered inside the delay: no hedge needed.
		return first.resp, first.err
	case <-timer.C:
		c.hedges.Add(1)
		go run(1)
		first = <-results
	}

	// Give the straggler one grace window to finish, then cut it loose.
	var second legResult
	grace := time.NewTimer(c.cfg.HedgeDelay)
	defer grace.Stop()
	select {
	case second = <-results:
	case <-grace.C:
		cancel()
		second = <-results
	}
	a, b := first, second
	if a.err != nil && b.err == nil {
		a, b = b, a // the success (if any) leads
	}
	if a.err != nil {
		return a.resp, a.err // both failed; report the first failure
	}
	if b.err == nil && (a.resp.Estimate != b.resp.Estimate || a.resp.Salt != b.resp.Salt) {
		return serve.EstimateResponse{}, fmt.Errorf("%w: salt %#x: %+v vs %+v",
			ErrHedgeMismatch, *req.Salt, a.resp.Estimate, b.resp.Estimate)
	}
	if a.leg == 1 {
		c.hedgeWins.Add(1)
	}
	return a.resp, nil
}
