// Package inventory simulates a full EPCglobal C1G2 tag inventory — the
// "traditional identification protocol" the paper contrasts estimation
// against (§III-A: exact counting is "easy and fast ... when the
// cardinality is small"; BFCE exists because it is neither at scale).
//
// The simulation follows the Gen2 framed-slotted-ALOHA anticollision
// dialogue with dynamic frame sizing (DFSA):
//
//   - the reader opens a frame of 2^Q slots with a Query command; every
//     unidentified tag draws a slot counter uniformly in [0, 2^Q);
//   - the reader steps through slots with QueryRep commands; tags at
//     counter zero backscatter a 16-bit RN16;
//   - a singleton slot is ACKed and the tag replies with its PC+EPC+CRC,
//     completing one identification;
//   - at the frame boundary the reader estimates the remaining backlog
//     from the collision count (Schoute's estimator: backlog ≈ 2.39 ×
//     collisions), picks the Q whose frame best matches it, and issues
//     QueryAdjust. Inventory ends when a frame closes with no collisions
//     (every responding tag was a singleton, so nothing remains).
//
// Command and reply lengths follow the C1G2 framing (Query 22 bits,
// QueryRep 4, QueryAdjust 9, ACK 18; RN16 16 tag-bits, PC+EPC+CRC16 128
// tag-bits for a 96-bit EPC) and are priced with the same air-interface
// profile the estimators use, so "inventory seconds" and "estimation
// seconds" are directly comparable — the InventoryCrossover experiment is
// built on exactly that comparison.
package inventory

import (
	"errors"
	"math"

	"rfidest/internal/timing"
	"rfidest/internal/xrand"
)

// C1G2 command and reply lengths in bits.
const (
	QueryBits       = 22  // Query: opens an inventory round
	QueryRepBits    = 4   // QueryRep: advance to the next slot
	QueryAdjustBits = 9   // QueryAdjust: restart the frame with a new Q
	AckBits         = 18  // ACK: acknowledge a singleton RN16
	RN16Bits        = 16  // tag's slot reply
	EPCReplyBits    = 128 // PC (16) + EPC (96) + CRC-16: the identification
)

// Config parameterizes the inventory simulation.
type Config struct {
	// InitialQ is the Q the first Query announces (Gen2 default 4).
	InitialQ int
	// BacklogFactor converts a frame's collision count into a backlog
	// estimate for the next frame (Schoute's 2.39 by default).
	BacklogFactor float64
	// MaxCommands bounds the dialogue against pathological settings
	// (default 50 million commands).
	MaxCommands int
}

// DefaultConfig returns the Gen2-typical settings.
func DefaultConfig() Config {
	return Config{InitialQ: 4, BacklogFactor: 2.39, MaxCommands: 50_000_000}
}

func (c Config) normalize() (Config, error) {
	def := DefaultConfig()
	if c.InitialQ == 0 {
		c.InitialQ = def.InitialQ
	}
	if c.BacklogFactor == 0 {
		c.BacklogFactor = def.BacklogFactor
	}
	if c.MaxCommands == 0 {
		c.MaxCommands = def.MaxCommands
	}
	switch {
	case c.InitialQ < 0 || c.InitialQ > 15:
		return c, errors.New("inventory: InitialQ out of [0, 15]")
	case c.BacklogFactor < 1 || c.BacklogFactor > 10:
		return c, errors.New("inventory: BacklogFactor out of [1, 10]")
	case c.MaxCommands < 1:
		return c, errors.New("inventory: MaxCommands must be positive")
	}
	return c, nil
}

// Result summarizes one full inventory.
type Result struct {
	Identified int         // tags read (== n unless the command cap hit)
	Slots      int         // ALOHA slots walked
	Collisions int         // collision slots observed
	Empties    int         // empty slots observed
	Rounds     int         // Query/QueryAdjust frames opened
	Complete   bool        // every tag was identified
	Cost       timing.Cost // full dialogue cost
	Seconds    float64     // priced under C1G2
}

// Run inventories a population of n tags and returns the dialogue
// statistics. The simulation is deterministic given seed.
func Run(n int, cfg Config, seed uint64) (Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return Result{}, err
	}
	if n < 0 {
		return Result{}, errors.New("inventory: negative population")
	}
	rng := xrand.NewStream(seed, 0x1417)
	var clock timing.Clock
	var res Result

	remaining := n
	q := cfg.InitialQ
	commands := 0
	first := true
	for remaining > 0 && commands < cfg.MaxCommands {
		frame := frameOccupancy(rng, remaining, 1<<uint(q))
		if first {
			clock.Broadcast(QueryBits)
			first = false
		} else {
			clock.Broadcast(QueryAdjustBits)
		}
		commands++
		res.Rounds++

		collisions := 0
		for _, occ := range frame {
			res.Slots++
			switch {
			case occ == 0:
				res.Empties++
			case occ == 1:
				// RN16 → ACK → EPC reply.
				clock.Listen(RN16Bits)
				clock.Broadcast(AckBits)
				clock.Listen(EPCReplyBits)
				commands += 2
				remaining--
				res.Identified++
			default:
				collisions++
				clock.Listen(RN16Bits) // the collided RN16s still burn air time
				commands++
			}
			// Advance to the next slot.
			clock.Broadcast(QueryRepBits)
			commands++
			if commands >= cfg.MaxCommands {
				break
			}
		}
		res.Collisions += collisions
		// Schoute backlog → next Q. A collision-free frame means every
		// participant was identified; the remaining>0 loop condition
		// cannot hold then, but guard q anyway.
		q = qForBacklog(cfg.BacklogFactor * float64(collisions))
	}

	res.Complete = remaining == 0
	res.Cost = clock.Cost()
	res.Seconds = clock.Seconds(timing.C1G2)
	return res, nil
}

// qForBacklog returns the Q whose frame size 2^Q best matches the backlog
// estimate, clamped to [0, 15].
func qForBacklog(backlog float64) int {
	if backlog < 1 {
		return 0
	}
	q := int(math.Round(math.Log2(backlog)))
	if q < 0 {
		return 0
	}
	if q > 15 {
		return 15
	}
	return q
}

// frameOccupancy samples the multinomial occupancy of `tags` tags over
// `slots` slots via sequential binomial splitting (exact, O(slots)).
func frameOccupancy(rng *xrand.Rand, tags, slots int) []int {
	occ := make([]int, slots)
	remaining := tags
	for i := 0; i < slots-1 && remaining > 0; i++ {
		c := rng.Binomial(remaining, 1/float64(slots-i))
		occ[i] = c
		remaining -= c
	}
	occ[slots-1] += remaining
	return occ
}
