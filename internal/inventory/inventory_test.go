package inventory

import (
	"math"
	"testing"

	"rfidest/internal/xrand"
)

func TestRunIdentifiesEveryone(t *testing.T) {
	for _, n := range []int{0, 1, 10, 100, 1000, 10000} {
		res, err := Run(n, Config{}, uint64(n)+1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete || res.Identified != n {
			t.Fatalf("n=%d: identified %d, complete=%v", n, res.Identified, res.Complete)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(500, Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(500, Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("inventory not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(-1, Config{}, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Run(1, Config{InitialQ: 16}, 1); err == nil {
		t.Fatal("Q=16 accepted")
	}
	if _, err := Run(1, Config{BacklogFactor: 20}, 1); err == nil {
		t.Fatal("BacklogFactor=20 accepted")
	}
	if _, err := Run(1, Config{MaxCommands: -1}, 1); err == nil {
		t.Fatal("negative command cap accepted")
	}
}

func TestRunCommandCap(t *testing.T) {
	res, err := Run(100000, Config{MaxCommands: 1000}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("capped run cannot complete 100k tags")
	}
	if res.Identified >= 100000 {
		t.Fatalf("identified %d under a 1000-command cap", res.Identified)
	}
}

func TestSlotEfficiencyNearTheory(t *testing.T) {
	// A well-adapted framed ALOHA identifies ~1/e ≈ 0.368 of slots as
	// singletons; the Gen2 Q-walk is a bit below the ideal. Demand the
	// slot count stay within sane bounds: n/0.368 <= slots <= 5n.
	const n = 20000
	res, err := Run(n, Config{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots < int(float64(n)/0.40) {
		t.Fatalf("only %d slots for %d tags — better than ALOHA allows", res.Slots, n)
	}
	if res.Slots > 5*n {
		t.Fatalf("%d slots for %d tags — Q adaptation broken", res.Slots, n)
	}
}

func TestSecondsScaleLinearly(t *testing.T) {
	// Inventory time is Θ(n): doubling n should roughly double seconds.
	a, err := Run(5000, Config{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(10000, Config{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b.Seconds / a.Seconds
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("time ratio for 2x tags = %v, want ~2", ratio)
	}
}

func TestInventoryDwarfsEstimationAtScale(t *testing.T) {
	// The motivation number: a full inventory of 100k tags takes minutes
	// of air time, vs BFCE's 0.19 s.
	res, err := Run(100000, Config{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 30 {
		t.Fatalf("inventory of 100k tags took only %v s — per-tag cost too low", res.Seconds)
	}
	// ~6-8 ms per tag under the paper's 302 µs turnaround: 10-14 minutes.
	if res.Seconds > 900 {
		t.Fatalf("inventory of 100k tags took %v s — per-tag cost absurd", res.Seconds)
	}
}

func TestPerTagCostSane(t *testing.T) {
	// Each identification costs at least RN16 + ACK + EPC ≈ 2.9 ms plus
	// its share of empty/collision slots.
	const n = 2000
	res, err := Run(n, Config{}, 19)
	if err != nil {
		t.Fatal(err)
	}
	perTag := res.Seconds / float64(n)
	floor := (16*18.88 + 18*37.76 + 128*18.88) / 1e6 // bare payload, no gaps
	if perTag < floor {
		t.Fatalf("per-tag cost %v s below physical floor %v s", perTag, floor)
	}
}

func TestQForBacklog(t *testing.T) {
	cases := map[float64]int{0: 0, 0.5: 0, 1: 0, 2: 1, 100: 7, 1 << 20: 15}
	for in, want := range cases {
		if got := qForBacklog(in); got != want {
			t.Fatalf("qForBacklog(%v) = %d, want %d", in, got, want)
		}
	}
}

func TestFrameOccupancyConserves(t *testing.T) {
	rng := newTestRNG()
	occ := frameOccupancy(rng, 12345, 256)
	total := 0
	for _, c := range occ {
		total += c
	}
	if total != 12345 {
		t.Fatalf("occupancy lost tags: %d", total)
	}
	occ = frameOccupancy(rng, 100, 1)
	if occ[0] != 100 {
		t.Fatalf("single-slot frame occupancy %d", occ[0])
	}
}

func TestFrameOccupancyUniform(t *testing.T) {
	rng := newTestRNG()
	const tags, slots, rounds = 1000, 16, 400
	sums := make([]float64, slots)
	for r := 0; r < rounds; r++ {
		for i, c := range frameOccupancy(rng, tags, slots) {
			sums[i] += float64(c)
		}
	}
	want := float64(tags) / slots * rounds
	for i, s := range sums {
		if math.Abs(s-want)/want > 0.05 {
			t.Fatalf("slot %d mean occupancy %v, want ~%v", i, s/rounds, want/rounds)
		}
	}
}

func newTestRNG() *xrand.Rand { return xrand.New(99) }
