package missing

import (
	"math"
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/tags"
)

// scenario builds an expected inventory of n tags with the given index
// ranges removed (missing), and a session over the remaining present tags.
func scenario(n int, missingFrom, missingTo int, seed uint64) (expected []tags.Tag, missingIDs map[uint64]bool, r *channel.Reader) {
	full := tags.Generate(n, tags.T1, seed)
	expected = full.Tags
	missingIDs = make(map[uint64]bool)
	var present []tags.Tag
	for i, tag := range full.Tags {
		if i >= missingFrom && i < missingTo {
			missingIDs[tag.ID] = true
		} else {
			present = append(present, tag)
		}
	}
	pop := &tags.Population{Tags: present, Dist: full.Dist, Seed: seed}
	return expected, missingIDs, channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), seed+1)
}

func TestDetectNoMissing(t *testing.T) {
	expected, _, r := scenario(3000, 0, 0, 11)
	res, err := Detect(r, expected, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingIDs) != 0 {
		t.Fatalf("false accusations: %d", len(res.MissingIDs))
	}
	if res.EstimateCount != 0 {
		t.Fatalf("estimate %v for an intact inventory", res.EstimateCount)
	}
	if res.Coverage < 0.99 {
		t.Fatalf("coverage %v after 8 rounds at n=3000", res.Coverage)
	}
}

func TestDetectIdentifiesMissing(t *testing.T) {
	// 300 of 3000 tags missing; with 8 rounds at w=8192 every expected
	// tag is singleton at least once with overwhelming probability.
	expected, missingIDs, r := scenario(3000, 1000, 1300, 13)
	res, err := Detect(r, expected, Config{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	// No false accusations, ever (perfect channel).
	for _, id := range res.MissingIDs {
		if !missingIDs[id] {
			t.Fatalf("present tag %d convicted", id)
		}
	}
	// Essentially all missing tags identified.
	if len(res.MissingIDs) < 295 {
		t.Fatalf("identified %d of 300 missing tags", len(res.MissingIDs))
	}
	// The count estimate lands near 300.
	if math.Abs(res.EstimateCount-300) > 60 {
		t.Fatalf("estimate %v, want ~300", res.EstimateCount)
	}
}

func TestDetectSortedDeterministicOutput(t *testing.T) {
	expected, _, r := scenario(2000, 100, 200, 17)
	res, err := Detect(r, expected, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.MissingIDs); i++ {
		if res.MissingIDs[i] <= res.MissingIDs[i-1] {
			t.Fatal("missing IDs not strictly ascending")
		}
	}
}

func TestDetectEmptyInventory(t *testing.T) {
	_, _, r := scenario(10, 0, 0, 19)
	res, err := Detect(r, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expected != 0 || res.EstimateCount != 0 || res.Slots != 0 {
		t.Fatalf("empty inventory result: %+v", res)
	}
}

func TestDetectValidation(t *testing.T) {
	expected, _, r := scenario(10, 0, 0, 21)
	if _, err := Detect(nil, expected, Config{}); err == nil {
		t.Fatal("nil session accepted")
	}
	if _, err := Detect(r, expected, Config{W: 1}); err == nil {
		t.Fatal("W=1 accepted")
	}
	if _, err := Detect(r, expected, Config{Rounds: -1}); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestDetectCostAccounting(t *testing.T) {
	expected, _, r := scenario(1000, 0, 100, 23)
	res, err := Detect(r, expected, Config{Rounds: 4, W: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 4*4096 {
		t.Fatalf("slots = %d", res.Slots)
	}
	if res.Cost.TagSlots != res.Slots {
		t.Fatalf("cost slots %d != %d", res.Cost.TagSlots, res.Slots)
	}
	if res.Seconds <= 0 {
		t.Fatal("no air time accounted")
	}
}

func TestDetectUnderNoiseFalselyConvicts(t *testing.T) {
	// With false-idle noise the detector must start convicting present
	// tags — quantifying why the guarantee needs the perfect channel.
	full := tags.Generate(2000, tags.T1, 29)
	pop := &tags.Population{Tags: full.Tags, Dist: full.Dist, Seed: 29}
	eng := channel.NewNoisyEngine(channel.NewTagEngine(pop, channel.IdealRN), 0, 0.05, 30)
	r := channel.NewReader(eng, 31)
	res, err := Detect(r, full.Tags, Config{Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingIDs) == 0 {
		t.Fatal("5% false-idle noise produced no false accusations — noise not reaching the detector")
	}
}

func TestDetectPaperXORMode(t *testing.T) {
	full := tags.Generate(2000, tags.T1, 33)
	present := &tags.Population{Tags: full.Tags[200:], Dist: full.Dist, Seed: 33}
	r := channel.NewReader(channel.NewTagEngine(present, channel.PaperXOR), 34)
	res, err := Detect(r, full.Tags, Config{Mode: channel.PaperXOR, Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.MissingIDs {
		found := false
		for _, tag := range full.Tags[:200] {
			if tag.ID == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("present tag %d convicted under paper-xor", id)
		}
	}
	if len(res.MissingIDs) < 150 {
		t.Fatalf("identified only %d of 200 under paper-xor", len(res.MissingIDs))
	}
}

func TestSingletonProbability(t *testing.T) {
	if SingletonProbability(1, 100) != 1 {
		t.Fatal("single tag must be singleton")
	}
	got := SingletonProbability(8193, 8192)
	want := math.Exp(-1)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("singleton prob %v, want ~%v", got, want)
	}
}

func TestRoundsForCoverage(t *testing.T) {
	// q ≈ 0.37 at n=w: coverage 0.99 needs ceil(ln(0.01)/ln(0.63)) = 10.
	got := RoundsForCoverage(8192, 8192, 0.99)
	if got < 9 || got > 11 {
		t.Fatalf("rounds = %d, want ~10", got)
	}
	if RoundsForCoverage(10, 8192, 0) != 1 {
		t.Fatal("zero coverage needs one round")
	}
	if RoundsForCoverage(2, 8192, 1) < 1 {
		t.Fatal("full coverage must need at least one round")
	}
}
