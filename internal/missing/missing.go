// Package missing implements missing-tag detection over the bit-slot
// channel: given the reader's expected inventory (the back-end server of
// §III-A "stores the information of tags", so the reader knows every
// expected tagID and its prestored RN), determine how many — and which —
// expected tags are absent, without identifying anyone.
//
// The mechanism inverts BFCE's: because the reader knows the expected set,
// it can precompute the exact slot each expected tag selects under a
// broadcast seed (channel.SlotFor — the same computation the tags run).
// Tags respond deterministically (persistence 1, one hash). Then:
//
//   - a slot expected to hold exactly one tag (a "singleton slot") that is
//     observed idle convicts that tag: it is missing, with certainty under
//     the perfect-channel assumption;
//   - the fraction of idle singleton slots estimates the overall missing
//     fraction (each expected tag is singleton with the same probability,
//     independent of whether it is missing);
//   - fresh seeds re-partition the expected set each round, so repeated
//     rounds drive per-tag singleton coverage toward 1 and identify
//     essentially every missing tag.
//
// Caveat (standard in this literature): alien tags — present but not on
// the expected list — can occupy an expected singleton slot and mask a
// missing tag. The detector never falsely convicts under a perfect
// channel; with channel noise, false-idle errors do convict present tags,
// which the noise test quantifies.
package missing

import (
	"errors"
	"math"
	"sort"

	"rfidest/internal/channel"
	"rfidest/internal/tags"
	"rfidest/internal/timing"
)

// Config parameterizes detection.
type Config struct {
	// W is the frame size. The default scales with the inventory: the
	// smallest power of two ≥ 2·n (at least 8192), which puts per-round
	// singleton coverage at e^{-n/w} ≥ 0.6 so eight rounds check
	// essentially every tag.
	W int
	// Rounds is the number of frames with fresh seeds (default 8).
	Rounds int
	// Mode must match the engine's tag-side hash mode (default IdealRN).
	Mode channel.HashMode
}

func (c Config) normalize(n int) (Config, error) {
	if c.W == 0 {
		c.W = 8192
		for c.W < 2*n {
			c.W <<= 1
		}
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.W < 2 {
		return c, errors.New("missing: W must be at least 2")
	}
	if c.Rounds < 1 {
		return c, errors.New("missing: Rounds must be positive")
	}
	return c, nil
}

// Result reports one detection run.
type Result struct {
	Expected      int      // size of the expected inventory
	MissingIDs    []uint64 // tagIDs convicted by an idle singleton slot
	EstimateCount float64  // estimated number of missing tags
	Coverage      float64  // fraction of expected tags that were singleton in >= 1 round
	Slots         int      // bit-slots sensed
	Cost          timing.Cost
	Seconds       float64
}

// Detect runs the protocol over session r against the expected inventory.
// The engine behind r holds the tags actually present.
func Detect(r *channel.Reader, expected []tags.Tag, cfg Config) (Result, error) {
	if r == nil {
		return Result{}, errors.New("missing: nil session")
	}
	cfg, err := cfg.normalize(len(expected))
	if err != nil {
		return Result{}, err
	}
	res := Result{Expected: len(expected)}
	if len(expected) == 0 {
		return res, nil
	}
	start := r.Cost()

	convicted := make(map[uint64]bool)
	covered := make([]bool, len(expected)) //lint:allow boolframe per-tag coverage flags, not a frame buffer
	var idleSingletons, totalSingletons int

	slotOf := make([]int, len(expected))
	occupancy := make([]int, cfg.W)
	for round := 0; round < cfg.Rounds; round++ {
		seed := r.NextSeed()
		r.BroadcastParams(timing.SeedBits + timing.PnBits)

		// Reader-side precomputation of every expected tag's slot.
		for i := range occupancy {
			occupancy[i] = 0
		}
		for i, tag := range expected {
			s := channel.SlotFor(tag, cfg.Mode, channel.Uniform, seed, 0, cfg.W)
			slotOf[i] = s
			occupancy[s]++
		}

		vec := r.ExecuteFrame(channel.FrameRequest{
			W: cfg.W, K: 1, P: 1, Seed: seed,
		})
		res.Slots += cfg.W

		for i, tag := range expected {
			s := slotOf[i]
			if occupancy[s] != 1 {
				continue // shared slot: individually uninformative
			}
			covered[i] = true
			totalSingletons++
			if !vec.Get(s) {
				idleSingletons++
				convicted[tag.ID] = true
			}
		}
	}

	for _, id := range sortedIDs(convicted) {
		res.MissingIDs = append(res.MissingIDs, id)
	}
	if totalSingletons > 0 {
		res.EstimateCount = float64(idleSingletons) / float64(totalSingletons) * float64(len(expected))
	}
	coveredCount := 0
	for _, c := range covered {
		if c {
			coveredCount++
		}
	}
	res.Coverage = float64(coveredCount) / float64(len(expected))
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// sortedIDs returns the map's keys in ascending order (deterministic
// output regardless of map iteration).
func sortedIDs(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SingletonProbability returns the chance an expected tag sits alone in
// its slot for one round: (1 − 1/w)^(n−1) ≈ e^{-(n−1)/w}. Rounds needed
// for coverage c: ceil(ln(1−c) / ln(1−q)).
func SingletonProbability(n, w int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Pow(1-1/float64(w), float64(n-1))
}

// RoundsForCoverage returns the number of rounds needed to make every
// expected tag singleton at least once with probability >= coverage,
// per tag.
func RoundsForCoverage(n, w int, coverage float64) int {
	if coverage <= 0 {
		return 1
	}
	if coverage >= 1 {
		coverage = 1 - 1e-12
	}
	q := SingletonProbability(n, w)
	if q >= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(1-coverage) / math.Log(1-q)))
}
