package serve

import (
	"context"

	"rfidest/internal/obs"
)

// admission is the two-stage gate in front of the work endpoints: up to
// maxInFlight requests execute, up to queueDepth more wait for a slot, and
// anything beyond is refused immediately with ErrOverloaded — load past
// the queue sheds instead of stacking goroutines until the deadline storm.
//
// Both stages are plain buffered channels, so the gate is lock-free and a
// waiter parked on the slot channel unblocks in FIFO-ish channel order.
type admission struct {
	slots chan struct{} // execution permits
	queue chan struct{} // waiting permits
	reg   *obs.RequestRegistry
}

func newAdmission(maxInFlight, queueDepth int, reg *obs.RequestRegistry) *admission {
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, queueDepth),
		reg:   reg,
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if none
// is free. It returns the release func on success; ErrOverloaded when both
// the slots and the queue are full; ctx.Err() if the caller's deadline
// expires while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.reg.InflightAdd(1)
		return a.release, nil
	default:
	}
	// Slow path: take a waiting permit or shed.
	select {
	case a.queue <- struct{}{}:
	default:
		a.reg.Rejected()
		return nil, ErrOverloaded
	}
	a.reg.QueueAdd(1)
	defer func() {
		<-a.queue
		a.reg.QueueAdd(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.reg.InflightAdd(1)
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	a.reg.InflightAdd(-1)
}
