package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rfidest"
	"rfidest/internal/fleet"
	"rfidest/internal/obs"
)

// Route labels used for metrics and logging.
const (
	routeEstimate = "/v1/estimate"
	routeBatch    = "/v1/batch"
	routeMetrics  = "/v1/metrics"
	routeHealthz  = "/healthz"
)

func validateAccuracy(epsilon, delta float64) error {
	if !(epsilon > 0 && epsilon < 1) {
		return fmt.Errorf("epsilon must be in (0, 1), got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("delta must be in (0, 1), got %v", delta)
	}
	return nil
}

// requestTimeout resolves a request's TimeoutMs against the server
// default. Negative is a validation error; 0 means "server default".
func (s *Server) requestTimeout(timeoutMs int) (time.Duration, error) {
	if timeoutMs < 0 {
		return 0, fmt.Errorf("timeoutMs must be non-negative, got %d", timeoutMs)
	}
	if timeoutMs == 0 {
		return s.cfg.DefaultTimeout, nil
	}
	return time.Duration(timeoutMs) * time.Millisecond, nil
}

// handleEstimate answers POST /v1/estimate: validate, admit, run (through
// the micro-batcher unless the request opts out), respond.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if err := req.System.validate(s.cfg.MaxSystemN); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := validateAccuracy(req.Epsilon, req.Delta); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout, err := s.requestTimeout(req.TimeoutMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	estimator := req.Estimator
	if estimator == "" {
		estimator = "BFCE"
	}
	salt := s.nextSalt()
	if req.Salt != nil {
		salt = *req.Salt
	}

	// The handler's own wait is bounded by the same deadline as the run,
	// so an expired request stops occupying its admission slot even if
	// its batched session is still finishing a round.
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	sys := s.systems.get(req.System)
	var est rfidest.Estimate
	batched := false
	if s.bat != nil && !req.Solo {
		jobOpts := []rfidest.Option{rfidest.WithSeedSalt(salt)}
		if timeout > 0 {
			jobOpts = append(jobOpts, rfidest.WithTimeout(timeout))
		}
		est, err = s.bat.submit(ctx, fleet.Job{
			System:    sys,
			Estimator: estimator,
			Epsilon:   req.Epsilon,
			Delta:     req.Delta,
			Options:   jobOpts,
		})
		batched = err == nil
	} else {
		opts := []rfidest.Option{
			rfidest.WithEstimator(estimator),
			rfidest.WithAccuracy(req.Epsilon, req.Delta),
			rfidest.WithSeedSalt(salt),
			rfidest.WithObserver(s.reg),
		}
		if timeout > 0 {
			opts = append(opts, rfidest.WithTimeout(timeout))
		}
		est, err = sys.Run(ctx, opts...)
	}
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	if batched {
		s.req.Batched(routeEstimate)
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Estimate:  est,
		Estimator: estimator,
		Salt:      salt,
		Batched:   batched,
	})
}

// handleBatch answers POST /v1/batch: the request's jobs run as one fleet
// batch (pooled or interleaved) under a single admission slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d jobs, server limit is %d", len(req.Jobs), s.cfg.MaxBatchJobs))
		return
	}
	timeout, err := s.requestTimeout(req.TimeoutMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be non-negative")
		return
	}
	jobs := make([]fleet.Job, len(req.Jobs))
	for i, bj := range req.Jobs {
		if err := bj.System.validate(s.cfg.MaxSystemN); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: %v", i, err))
			return
		}
		if err := validateAccuracy(bj.Epsilon, bj.Delta); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: %v", i, err))
			return
		}
		if bj.Trials < 0 || bj.Retries < 0 || bj.TimeoutMs < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: trials, retries and timeoutMs must be non-negative", i))
			return
		}
		estimator := bj.Estimator
		if estimator == "" {
			estimator = "BFCE"
		}
		var opts []rfidest.Option
		if bj.Salt != nil {
			opts = append(opts, rfidest.WithSeedSalt(*bj.Salt))
		}
		if bj.TimeoutMs > 0 {
			opts = append(opts, rfidest.WithTimeout(time.Duration(bj.TimeoutMs)*time.Millisecond))
		}
		jobs[i] = fleet.Job{
			Name:      bj.Name,
			System:    s.systems.get(bj.System),
			Estimator: estimator,
			Epsilon:   bj.Epsilon,
			Delta:     bj.Delta,
			Trials:    bj.Trials,
			Retries:   bj.Retries,
			Options:   opts,
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	rep, err := fleet.Run(ctx, fleet.Config{
		Seed:       seed,
		Workers:    req.Workers,
		Interleave: req.Interleave,
		Observer:   s.reg,
	}, jobs)
	if err != nil {
		// A cancelled batch still carries its partial report (unstarted
		// jobs marked skipped) next to the error.
		writeJSON(w, httpStatus(err), BatchResponse{Report: rep, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Report: rep})
}

// writeAdmissionError maps an acquire failure, attaching the Retry-After
// hint on overload.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	writeError(w, status, err.Error())
}

// metricsSnapshot is the JSON form of GET /v1/metrics.
type metricsSnapshot struct {
	Estimation obs.Snapshot        `json:"estimation"`
	HTTP       obs.RequestSnapshot `json:"http"`
}

// handleMetrics answers GET /v1/metrics: expvar-style text by default,
// one JSON document with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, metricsSnapshot{
			Estimation: s.reg.Snapshot(),
			HTTP:       s.req.Snapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.Snapshot().WriteText(w); err != nil {
		return
	}
	s.req.Snapshot().WriteText(w) //lint:allow errdrop same dead-client write path as the line above
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once
// draining so load balancers stop routing here before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
