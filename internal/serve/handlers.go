package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rfidest"
	"rfidest/internal/fleet"
	"rfidest/internal/obs"
)

// Route labels used for metrics and logging.
const (
	routeEstimate = "/v1/estimate"
	routeBatch    = "/v1/batch"
	routeMonitor  = "/v1/monitor"
	routeMetrics  = "/v1/metrics"
	routeHealthz  = "/healthz"
	routeReadyz   = "/readyz"
)

func validateAccuracy(epsilon, delta float64) error {
	if !(epsilon > 0 && epsilon < 1) {
		return fmt.Errorf("epsilon must be in (0, 1), got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("delta must be in (0, 1), got %v", delta)
	}
	return nil
}

// requestTimeout resolves a request's TimeoutMs against the server
// default. Negative is a validation error; 0 means "server default".
func (s *Server) requestTimeout(timeoutMs int) (time.Duration, error) {
	if timeoutMs < 0 {
		return 0, fmt.Errorf("timeoutMs must be non-negative, got %d", timeoutMs)
	}
	if timeoutMs == 0 {
		return s.cfg.DefaultTimeout, nil
	}
	return time.Duration(timeoutMs) * time.Millisecond, nil
}

// handleEstimate answers POST /v1/estimate: validate, admit, run (through
// the micro-batcher unless the request opts out), respond.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if err := req.System.validate(s.cfg.MaxSystemN); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := validateAccuracy(req.Epsilon, req.Delta); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	timeout, err := s.requestTimeout(req.TimeoutMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	estimator := req.Estimator
	if estimator == "" {
		estimator = "BFCE"
	}
	if !s.allowEstimator(w, estimator) {
		return
	}
	var salt uint64
	if req.Salt != nil {
		salt = *req.Salt
	} else {
		var err error
		if salt, err = s.nextSalt(); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}

	// The handler's own wait is bounded by the same deadline as the run,
	// so an expired request stops occupying its admission slot even if
	// its batched session is still finishing a round.
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	sys := s.systems.get(req.System)
	var est rfidest.Estimate
	batched := false
	if s.bat != nil && !req.Solo {
		jobOpts := []rfidest.Option{rfidest.WithSeedSalt(salt)}
		if timeout > 0 {
			jobOpts = append(jobOpts, rfidest.WithTimeout(timeout))
		}
		est, err = s.bat.submit(ctx, fleet.Job{
			System:    sys,
			Estimator: estimator,
			Epsilon:   req.Epsilon,
			Delta:     req.Delta,
			Options:   jobOpts,
		})
		batched = err == nil
	} else {
		opts := []rfidest.Option{
			rfidest.WithEstimator(estimator),
			rfidest.WithAccuracy(req.Epsilon, req.Delta),
			rfidest.WithSeedSalt(salt),
			rfidest.WithObserver(s.reg),
		}
		if timeout > 0 {
			opts = append(opts, rfidest.WithTimeout(timeout))
		}
		est, err = sys.Run(ctx, opts...)
	}
	if !errors.Is(err, context.Canceled) {
		// A client that went away says nothing about the estimator's
		// health; everything else feeds the breaker.
		s.brk.record(estimator, breakerOutcomeBad(est, err))
	}
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	if batched {
		s.req.Batched(routeEstimate)
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Estimate:  est,
		Estimator: estimator,
		Salt:      salt,
		Batched:   batched,
	})
}

// handleBatch answers POST /v1/batch: the request's jobs run as one fleet
// batch (pooled or interleaved) under a single admission slot.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d jobs, server limit is %d", len(req.Jobs), s.cfg.MaxBatchJobs))
		return
	}
	timeout, err := s.requestTimeout(req.TimeoutMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be non-negative")
		return
	}
	// Gate every distinct estimator in the batch before admission: if any
	// breaker is shedding, queueing the whole batch is doomed work.
	seen := map[string]bool{}
	for _, bj := range req.Jobs {
		name := bj.Estimator
		if name == "" {
			name = "BFCE"
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		if !s.allowEstimator(w, name) {
			return
		}
	}
	jobs := make([]fleet.Job, len(req.Jobs))
	for i, bj := range req.Jobs {
		if err := bj.System.validate(s.cfg.MaxSystemN); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: %v", i, err))
			return
		}
		if err := validateAccuracy(bj.Epsilon, bj.Delta); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: %v", i, err))
			return
		}
		if bj.Trials < 0 || bj.Retries < 0 || bj.TimeoutMs < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("job %d: trials, retries and timeoutMs must be non-negative", i))
			return
		}
		estimator := bj.Estimator
		if estimator == "" {
			estimator = "BFCE"
		}
		var opts []rfidest.Option
		if bj.Salt != nil {
			opts = append(opts, rfidest.WithSeedSalt(*bj.Salt))
		}
		if bj.TimeoutMs > 0 {
			opts = append(opts, rfidest.WithTimeout(time.Duration(bj.TimeoutMs)*time.Millisecond))
		}
		jobs[i] = fleet.Job{
			Name:      bj.Name,
			System:    s.systems.get(bj.System),
			Estimator: estimator,
			Epsilon:   bj.Epsilon,
			Delta:     bj.Delta,
			Trials:    bj.Trials,
			Retries:   bj.Retries,
			Options:   opts,
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	rep, err := fleet.Run(ctx, fleet.Config{
		Seed:       seed,
		Workers:    req.Workers,
		Interleave: req.Interleave,
		Observer:   s.reg,
	}, jobs)
	if rep != nil && !errors.Is(err, context.Canceled) {
		for _, jr := range rep.Jobs {
			if jr.Skipped {
				continue
			}
			s.brk.record(jr.Job.Estimator, jr.Failure != "" || jr.Degraded)
		}
	}
	if err != nil {
		// A cancelled batch still carries its partial report (unstarted
		// jobs marked skipped) next to the error.
		writeJSON(w, httpStatus(err), BatchResponse{Report: rep, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Report: rep})
}

// writeAdmissionError maps an acquire failure, attaching the Retry-After
// hint on overload.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	writeError(w, status, err.Error())
}

// metricsSnapshot is the JSON form of GET /v1/metrics.
type metricsSnapshot struct {
	Estimation obs.Snapshot        `json:"estimation"`
	HTTP       obs.RequestSnapshot `json:"http"`
}

// handleMetrics answers GET /v1/metrics: expvar-style text by default,
// one JSON document with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, metricsSnapshot{
			Estimation: s.reg.Snapshot(),
			HTTP:       s.req.Snapshot(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.reg.Snapshot().WriteText(w); err != nil {
		return
	}
	s.req.Snapshot().WriteText(w) //lint:allow errdrop same dead-client write path as the line above
}

// handleHealthz answers GET /healthz — pure liveness: 200 for as long as
// the process can answer at all, including while draining. Routing
// decisions (drain, recovery, breakers) belong to /readyz; an orchestrator
// that killed a draining instance on a liveness failure would race the
// drain it is supposed to allow.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers GET /readyz — readiness: 503 until checkpoint
// recovery has completed, while any estimator's circuit breaker is open
// or half-open, and once draining starts; 200 otherwise. Load balancers
// and orchestrators key routing on this, so a degraded instance stops
// receiving traffic without being killed.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.brk.open():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "breaker-open")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// allowEstimator consults the estimator's circuit breaker, answering the
// 503 (with a rounded-up Retry-After) itself when the breaker sheds.
func (s *Server) allowEstimator(w http.ResponseWriter, estimator string) bool {
	ok, retryAfter := s.brk.allow(estimator)
	if ok {
		return true
	}
	secs := int(retryAfter / time.Second)
	if secs < 1 || retryAfter%time.Second != 0 {
		secs++ // never hint zero; round partial seconds up
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, ErrBreakerOpen.Error())
	return false
}

// breakerOutcomeBad classifies one completed run for the breaker: bad
// means the work itself failed or degraded (5xx-class error, or a
// saturated estimate), never a client-side validation problem.
func breakerOutcomeBad(est rfidest.Estimate, err error) bool {
	if err != nil {
		return httpStatus(err) >= 500
	}
	return est.Saturated
}

// handleMonitor answers POST /v1/monitor: run the next warm round of the
// named monitoring loop, creating the loop on first use. The round's
// resulting warm state is appended to the checkpoint store before the
// response is written, so an acknowledged round survives any crash.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	var req MonitorRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "monitor name must be non-empty")
		return
	}
	if err := req.System.validate(s.cfg.MaxSystemN); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := validateAccuracy(req.Epsilon, req.Delta); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.FastRounds < 0 {
		writeError(w, http.StatusBadRequest, "fastRounds must be non-negative")
		return
	}
	timeout, err := s.requestTimeout(req.TimeoutMs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.allowEstimator(w, "BFCE") {
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	entry, runLock, err := s.monitorEntry(req)
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	var salt uint64
	if req.Salt != nil {
		salt = *req.Salt
	} else if salt, err = s.nextSalt(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	// One round at a time per monitor: warm state is a temporal chain.
	runLock.Lock()
	defer runLock.Unlock()
	sys := s.systems.get(req.System)
	est, err := entry.mon.Run(ctx, sys,
		rfidest.WithSeedSalt(salt), rfidest.WithObserver(s.reg))
	if !errors.Is(err, context.Canceled) {
		s.brk.record("BFCE", breakerOutcomeBad(est, err))
	}
	if err != nil {
		writeError(w, httpStatus(err), err.Error())
		return
	}
	if s.ckpt != nil {
		// Durability before acknowledgement: the response only goes out
		// once the round's warm state would survive a crash.
		rec, err := entry.record()
		if err == nil {
			err = s.ckpt.PutMonitor(req.Name, rec)
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, MonitorResponse{
		Estimate: est,
		Salt:     salt,
		Rounds:   entry.mon.Rounds(),
		Warm:     entry.mon.Snapshot(),
	})
}

// handleMonitorDelete answers DELETE /v1/monitor?name=...: drop the named
// loop and its checkpoint record. Unknown names are a 404.
func (s *Server) handleMonitorDelete(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing name query parameter")
		return
	}
	s.monMu.Lock()
	_, ok := s.mons[name]
	if ok {
		delete(s.mons, name)
		delete(s.monRun, name)
	}
	s.monMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no monitor named %q", name))
		return
	}
	if s.ckpt != nil {
		if err := s.ckpt.DropMonitor(name); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// monitorEntry returns the named monitor and its run lock, creating both
// on first use. An existing entry with a different configuration is a
// conflict — rebinding warm state to a new deployment would poison it.
func (s *Server) monitorEntry(req MonitorRequest) (*servedMonitor, *sync.Mutex, error) {
	s.monMu.Lock()
	defer s.monMu.Unlock()
	if entry, ok := s.mons[req.Name]; ok {
		if !entry.matches(req) {
			return nil, nil, fmt.Errorf("%w: %q", ErrMonitorConflict, req.Name)
		}
		return entry, s.monRun[req.Name], nil
	}
	mon, err := rfidest.NewMonitor(req.Epsilon, req.Delta, req.FastRounds)
	if err != nil {
		return nil, nil, err
	}
	entry := &servedMonitor{
		spec:       req.System,
		epsilon:    req.Epsilon,
		delta:      req.Delta,
		fastRounds: req.FastRounds,
		mon:        mon,
	}
	s.mons[req.Name] = entry
	s.monRun[req.Name] = &sync.Mutex{}
	return entry, s.monRun[req.Name], nil
}
