package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rfidest"
	"rfidest/internal/checkpoint"
	"rfidest/internal/serve"
)

// monSpec is the deployment every durability test monitors: synthetic so
// rounds are fast, seeded so every session is a pure function of its salt.
var monSpec = serve.SystemSpec{N: 20000, Seed: 5, Synthetic: true}

// postMonitor runs one round of the named monitor and decodes the reply.
func postMonitor(t *testing.T, url string, req serve.MonitorRequest) (int, serve.MonitorResponse, []byte) {
	t.Helper()
	status, body := postJSON(t, url+"/v1/monitor", req)
	var resp serve.MonitorResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
	}
	return status, resp, body
}

// TestMonitorEndpoint exercises the monitor lifecycle on a stateless
// server: rounds chain warm state, configuration drift is a conflict, and
// delete forgets the loop.
func TestMonitorEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	req := serve.MonitorRequest{
		Name: "dock-a", System: monSpec, Epsilon: 0.1, Delta: 0.1,
	}
	salt := uint64(0xfeed)
	req.Salt = &salt

	status, r1, body := postMonitor(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("round 1: status %d: %s", status, body)
	}
	if r1.Rounds != 1 || r1.Salt != salt {
		t.Fatalf("round 1 = rounds %d salt %#x, want 1, %#x", r1.Rounds, r1.Salt, salt)
	}
	status, r2, body := postMonitor(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("round 2: status %d: %s", status, body)
	}
	if r2.Rounds != 2 {
		t.Fatalf("round 2 did not chain: rounds = %d", r2.Rounds)
	}
	if r2.Warm == (rfidest.MonitorState{}) {
		t.Error("round 2 echoed empty warm state")
	}

	// Same name, different accuracy: refused, warm state untouched.
	drift := req
	drift.Epsilon = 0.2
	if status, _, _ := postMonitor(t, ts.URL, drift); status != http.StatusConflict {
		t.Fatalf("config drift: status %d, want 409", status)
	}

	del := func() int {
		t.Helper()
		hreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/monitor?name=dock-a", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := del(); status != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", status)
	}
	if status := del(); status != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", status)
	}

	// Recreated after delete: the loop starts cold.
	status, r4, body := postMonitor(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-delete round: status %d: %s", status, body)
	}
	if r4.Rounds != 1 {
		t.Errorf("post-delete round = %d, want a cold 1", r4.Rounds)
	}
}

// newDurableServer builds a server over a checkpoint store in dir. The
// store is NOT closed by cleanup — crash tests abandon it deliberately.
func newDurableServer(t *testing.T, dir string, seed uint64) (*serve.Server, *httptest.Server, *checkpoint.Store) {
	t.Helper()
	st, err := checkpoint.Open(dir, checkpoint.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, serve.Config{Seed: seed, Checkpoint: st})
	return s, ts, st
}

// TestCrashRecoveryEquality is the durability contract end to end: kill a
// server that acknowledged estimates and monitor rounds, restart over the
// same state directory, and require (1) every acknowledged pinned-salt
// reply replays bit-identically, (2) the recovered monitor continues its
// round chain exactly where a never-crashed server would be, and (3) no
// acknowledged server-assigned salt is ever issued again.
func TestCrashRecoveryEquality(t *testing.T) {
	dir := t.TempDir()
	monSalts := []uint64{0xa1, 0xa2, 0xa3}
	monReq := func(i int) serve.MonitorRequest {
		return serve.MonitorRequest{
			Name: "gate-7", System: monSpec, Epsilon: 0.1, Delta: 0.1,
			Salt: &monSalts[i],
		}
	}

	// Server A: acknowledge work, then crash (the store is never closed,
	// the httptest listener just goes away).
	_, tsA, _ := newDurableServer(t, dir, 99)
	type acked struct {
		salt uint64
		est  rfidest.Estimate
	}
	var ests []acked
	saltsA := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		status, body := postJSON(t, tsA.URL+"/v1/estimate", serve.EstimateRequest{
			System: monSpec, Epsilon: 0.1, Delta: 0.1, Solo: true,
		})
		if status != http.StatusOK {
			t.Fatalf("estimate %d: status %d: %s", i, status, body)
		}
		var resp serve.EstimateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		ests = append(ests, acked{resp.Salt, resp.Estimate})
		saltsA[resp.Salt] = true
	}
	var lastA serve.MonitorResponse
	for i := 0; i < 2; i++ {
		status, resp, body := postMonitor(t, tsA.URL, monReq(i))
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", i+1, status, body)
		}
		lastA = resp
	}
	if lastA.Rounds != 2 {
		t.Fatalf("server A rounds = %d, want 2", lastA.Rounds)
	}
	tsA.Close() // crash: no drain, no store close

	// Server B recovers from the same directory.
	_, tsB, stB := newDurableServer(t, dir, 99)
	if got := stB.State().Monitors; len(got) != 1 {
		t.Fatalf("recovered %d monitor records, want 1", len(got))
	}

	// (1) Acknowledged estimates replay bit-identically.
	for _, a := range ests {
		salt := a.salt
		status, body := postJSON(t, tsB.URL+"/v1/estimate", serve.EstimateRequest{
			System: monSpec, Epsilon: 0.1, Delta: 0.1, Salt: &salt, Solo: true,
		})
		if status != http.StatusOK {
			t.Fatalf("replay salt %#x: status %d: %s", salt, status, body)
		}
		var resp serve.EstimateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != a.est {
			t.Errorf("replay salt %#x drifted:\n got  %+v\n want %+v", salt, resp.Estimate, a.est)
		}
	}

	// (2) The monitor continues its chain: round 3 next, not a cold 1.
	status, r3, body := postMonitor(t, tsB.URL, monReq(2))
	if status != http.StatusOK {
		t.Fatalf("post-recovery round: status %d: %s", status, body)
	}
	if r3.Rounds != 3 {
		t.Fatalf("post-recovery rounds = %d, want 3 (chain continued)", r3.Rounds)
	}

	// ...and lands exactly where a never-crashed server would: a control
	// server runs the same three rounds straight through.
	_, tsC := newTestServer(t, serve.Config{Seed: 99})
	var ctl serve.MonitorResponse
	for i := 0; i < 3; i++ {
		status, resp, body := postMonitor(t, tsC.URL, monReq(i))
		if status != http.StatusOK {
			t.Fatalf("control round %d: status %d: %s", i+1, status, body)
		}
		ctl = resp
	}
	if r3.Estimate != ctl.Estimate || r3.Warm != ctl.Warm {
		t.Errorf("recovered chain diverged from uncrashed control:\n got  %+v warm %+v\n want %+v warm %+v",
			r3.Estimate, r3.Warm, ctl.Estimate, ctl.Warm)
	}

	// (3) Restart never re-issues an acknowledged salt.
	fstatus, fbody := postJSON(t, tsB.URL+"/v1/estimate", serve.EstimateRequest{
		System: monSpec, Epsilon: 0.1, Delta: 0.1, Solo: true,
	})
	if fstatus != http.StatusOK {
		t.Fatalf("fresh estimate on B: status %d: %s", fstatus, fbody)
	}
	var fresh serve.EstimateResponse
	if err := json.Unmarshal(fbody, &fresh); err != nil {
		t.Fatal(err)
	}
	if saltsA[fresh.Salt] {
		t.Errorf("server B re-issued salt %#x acknowledged by the crashed server", fresh.Salt)
	}
}

// TestBreakerOverHTTP trips a breaker with real 5xx outcomes (deadline
// expiries) and checks the shed path end to end: 503 with a Retry-After
// header, /readyz unready, metrics counting trips, and validation errors
// never feeding the breaker.
func TestBreakerOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{
		Now:         time.Now,
		BatchWindow: -1, // solo path: each timeout is one clean outcome
		Breaker: serve.BreakerConfig{
			Window: 4, MinSamples: 4, TripRatio: 0.5,
			CoolDown: time.Hour, // tripped stays tripped for the test
		},
	})
	// 400s are the client's fault; they must not move the breaker.
	for i := 0; i < 8; i++ {
		status, _ := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
			System: monSpec, Epsilon: 5, Delta: 0.1,
		})
		if status != http.StatusBadRequest {
			t.Fatalf("bad accuracy: status %d, want 400", status)
		}
	}
	// A 1ms deadline expires while the handler materializes a large
	// uncached population (distinct seed per request defeats the system
	// cache), so the session is dead before its first round boundary: 504.
	until503 := 0
	for ; until503 < 16; until503++ {
		status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
			System:  serve.SystemSpec{N: 400000, Seed: uint64(1000 + until503)},
			Epsilon: 0.1, Delta: 0.1, TimeoutMs: 1,
		})
		if status == http.StatusServiceUnavailable {
			break
		}
		if status != http.StatusGatewayTimeout {
			t.Fatalf("timeout request %d: status %d: %s", until503, status, body)
		}
	}
	if until503 < 4 || until503 >= 16 {
		t.Fatalf("breaker opened after %d timeouts, want at MinSamples=4", until503)
	}

	// Shed replies carry the cool-down hint and readiness goes red.
	b, err := json.Marshal(serve.EstimateRequest{System: monSpec, Epsilon: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	shed, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	shed.Body.Close()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-trip estimate: status %d, want 503", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("shed reply missing Retry-After header")
	}
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with open breaker: status %d, want 503", rr.StatusCode)
	}

	snap := s.Requests().Snapshot()
	if len(snap.Breakers) != 1 || snap.Breakers[0].Trips != 1 || snap.Breakers[0].Shed == 0 {
		t.Errorf("breaker metrics = %+v, want one tripped BFCE cell with sheds", snap.Breakers)
	}
}
