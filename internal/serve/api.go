package serve

import (
	"errors"
	"fmt"
	"sync"

	"rfidest"
	"rfidest/internal/fleet"
)

// Sentinel errors of the serving layer; httpStatus maps them onto the
// transport.
var (
	// ErrOverloaded reports the admission queue was full; 429.
	ErrOverloaded = errors.New("serve: overloaded, retry later")
	// ErrShuttingDown reports the server is draining; 503.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBreakerOpen reports the estimator's circuit breaker is shedding
	// traffic; 503 with a Retry-After hint.
	ErrBreakerOpen = errors.New("serve: estimator circuit breaker open, retry later")
	// ErrMonitorConflict reports a monitor name is already bound to a
	// different configuration; 409.
	ErrMonitorConflict = errors.New("serve: monitor exists with a different configuration")
)

// SystemSpec describes a deployment on the wire. It mirrors the
// rfidest.NewSystem option surface: every field is a SystemOption, so two
// equal specs build interchangeable systems — which is what lets the
// server cache them. The zero value of every optional field means "option
// absent".
type SystemSpec struct {
	// N is the true tag population (required, 1..MaxSystemN).
	N int `json:"n"`
	// Seed pins the simulation randomness (0 means the library default).
	Seed uint64 `json:"seed,omitempty"`
	// Distribution is "uniform" (default), "approx-normal" or "normal".
	Distribution string `json:"distribution,omitempty"`
	// Synthetic skips materializing tags (rfidest.WithSynthetic).
	Synthetic bool `json:"synthetic,omitempty"`
	// PaperTagHash selects the paper's literal tag hash
	// (rfidest.WithPaperTagHash); IDHash hashes raw tagIDs
	// (rfidest.WithIDHash). At most one may be set.
	PaperTagHash bool `json:"paperTagHash,omitempty"`
	IDHash       bool `json:"idHash,omitempty"`
	// FalseBusy and FalseIdle, when either is nonzero, wrap the channel
	// with symmetric reader noise (rfidest.WithNoise).
	FalseBusy float64 `json:"falseBusy,omitempty"`
	FalseIdle float64 `json:"falseIdle,omitempty"`
}

// validate checks the spec against maxN and returns a client-facing error.
func (sp SystemSpec) validate(maxN int) error {
	if sp.N <= 0 {
		return fmt.Errorf("system.n must be positive, got %d", sp.N)
	}
	if sp.N > maxN {
		return fmt.Errorf("system.n %d exceeds the server limit %d", sp.N, maxN)
	}
	switch sp.Distribution {
	case "", "uniform", "approx-normal", "normal":
	default:
		return fmt.Errorf("unknown distribution %q (want uniform, approx-normal or normal)", sp.Distribution)
	}
	if sp.PaperTagHash && sp.IDHash {
		return errors.New("paperTagHash and idHash are mutually exclusive")
	}
	if !(sp.FalseBusy >= 0 && sp.FalseBusy < 1) || !(sp.FalseIdle >= 0 && sp.FalseIdle < 1) {
		return fmt.Errorf("noise rates must be in [0, 1), got falseBusy=%v falseIdle=%v", sp.FalseBusy, sp.FalseIdle)
	}
	return nil
}

// build constructs the system the spec names. Callers validate first.
func (sp SystemSpec) build() *rfidest.System {
	var opts []rfidest.SystemOption
	if sp.Seed != 0 {
		opts = append(opts, rfidest.WithSeed(sp.Seed))
	}
	switch sp.Distribution {
	case "approx-normal":
		opts = append(opts, rfidest.WithDistribution(rfidest.ApproxNormal))
	case "normal":
		opts = append(opts, rfidest.WithDistribution(rfidest.Normal))
	}
	if sp.Synthetic {
		opts = append(opts, rfidest.WithSynthetic())
	}
	if sp.PaperTagHash {
		opts = append(opts, rfidest.WithPaperTagHash())
	}
	if sp.IDHash {
		opts = append(opts, rfidest.WithIDHash())
	}
	if sp.FalseBusy != 0 || sp.FalseIdle != 0 {
		opts = append(opts, rfidest.WithNoise(sp.FalseBusy, sp.FalseIdle))
	}
	return rfidest.NewSystem(sp.N, opts...)
}

// systemCache memoizes built systems by spec. Building a non-synthetic
// system materializes its whole tag population, so repeated requests
// against the same deployment — the common serving pattern — must not
// rebuild it. SystemSpec is comparable, so the spec itself is the key.
type systemCache struct {
	mu      sync.Mutex
	max     int
	systems map[SystemSpec]*rfidest.System
}

func newSystemCache(max int) *systemCache {
	return &systemCache{max: max, systems: make(map[SystemSpec]*rfidest.System)}
}

// get returns the cached system for spec, building it on first use.
// Estimation over a shared System is concurrency-safe (salted sessions),
// so one instance serves any number of in-flight requests.
func (c *systemCache) get(spec SystemSpec) *rfidest.System {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sys, ok := c.systems[spec]; ok {
		return sys
	}
	if len(c.systems) >= c.max {
		// The cache is a working set, not a registry: drop an arbitrary
		// entry rather than grow without bound. Eviction only costs a
		// rebuild on the next request for the dropped spec.
		for k := range c.systems {
			delete(c.systems, k)
			break
		}
	}
	sys := spec.build()
	c.systems[spec] = sys
	return sys
}

// EstimateRequest is the POST /v1/estimate body.
type EstimateRequest struct {
	System SystemSpec `json:"system"`
	// Estimator names a registered protocol (default "BFCE"); unknown
	// names fail with 400 and the known list.
	Estimator string `json:"estimator,omitempty"`
	// Epsilon and Delta form the accuracy requirement, both in (0, 1).
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// Salt addresses the estimation session. Omitted, the server assigns
	// a deterministic salt (derived from its seed and an admission
	// sequence number) and echoes it in the response; replaying a request
	// with the echoed salt reproduces the estimate bit-identically.
	Salt *uint64 `json:"salt,omitempty"`
	// TimeoutMs bounds the run (rfidest.WithTimeout); 0 means the server
	// default. The run stops at a round boundary, so expiry is 504 with
	// deterministic partial accounting.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Solo bypasses the micro-batcher for this request.
	Solo bool `json:"solo,omitempty"`
}

// EstimateResponse is the POST /v1/estimate reply.
type EstimateResponse struct {
	Estimate  rfidest.Estimate `json:"estimate"`
	Estimator string           `json:"estimator"`
	// Salt is the session the estimate was produced under — the request's
	// salt if it pinned one, otherwise the server-assigned salt.
	Salt uint64 `json:"salt"`
	// Batched reports the request was answered through a coalesced fleet
	// batch. Batching never changes the estimate (the salt pins the
	// session), so this is diagnostic only.
	Batched bool `json:"batched,omitempty"`
}

// BatchJob is one job in a POST /v1/batch body — fleet.Job with the
// process-local System pointer replaced by a SystemSpec and the option
// surface lowered to wire scalars.
type BatchJob struct {
	Name      string     `json:"name,omitempty"`
	System    SystemSpec `json:"system"`
	Estimator string     `json:"estimator,omitempty"` // default "BFCE"
	Epsilon   float64    `json:"epsilon"`
	Delta     float64    `json:"delta"`
	Trials    int        `json:"trials,omitempty"`  // 0 means 1
	Retries   int        `json:"retries,omitempty"` // fleet retry ladder
	// Salt pins every trial of the job to one session
	// (rfidest.WithSeedSalt); omitted, trials derive per-trial salts from
	// the batch seed as in-process fleet runs do.
	Salt *uint64 `json:"salt,omitempty"`
	// TimeoutMs bounds each trial attempt (rfidest.WithTimeout).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	Jobs []BatchJob `json:"jobs"`
	// Seed roots the per-trial salts (0 means the server seed), so equal
	// (seed, jobs) batches replay bit-identically across processes.
	Seed uint64 `json:"seed,omitempty"`
	// Interleave selects the deterministic round scheduler instead of the
	// worker pool; results are bit-identical either way.
	Interleave bool `json:"interleave,omitempty"`
	// Workers bounds the pooled mode (0 means GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds the whole batch; expiry returns 504 with the
	// partial report (unstarted jobs marked skipped).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// BatchResponse is the POST /v1/batch reply. On deadline expiry Report
// still carries the partial results next to the error text.
type BatchResponse struct {
	Report *fleet.Report `json:"report"`
	Error  string        `json:"error,omitempty"`
}

// MonitorRequest is the POST /v1/monitor body: run the next warm round of
// the named monitor, creating it on first use. A monitor's configuration
// (system, epsilon, delta, fastRounds) is fixed at creation; a request
// naming an existing monitor with a different configuration is refused
// with 409 rather than silently rebinding warm state to a new deployment.
type MonitorRequest struct {
	// Name identifies the monitoring loop; warm state and the checkpoint
	// record are keyed by it.
	Name   string     `json:"name"`
	System SystemSpec `json:"system"`
	// Epsilon and Delta form the accuracy requirement, both in (0, 1).
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// FastRounds is how many consecutive rounds may skip the rough phase
	// (see rfidest.NewMonitor).
	FastRounds int `json:"fastRounds,omitempty"`
	// Salt pins the round's session; omitted, the server assigns one from
	// its durable sequence and echoes it.
	Salt *uint64 `json:"salt,omitempty"`
	// TimeoutMs bounds the round; 0 means the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// MonitorResponse is the POST /v1/monitor reply.
type MonitorResponse struct {
	Estimate rfidest.Estimate `json:"estimate"`
	// Salt is the session the round ran under.
	Salt uint64 `json:"salt"`
	// Rounds is the monitor's completed-round count including this one —
	// after a crash and recovery it continues, never restarts.
	Rounds int `json:"rounds"`
	// Warm echoes the warm-start state the round left behind (what the
	// checkpoint now holds).
	Warm rfidest.MonitorState `json:"warm"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
