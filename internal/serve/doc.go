// Package serve is the network serving layer: an HTTP/JSON front over the
// estimation stack, built on net/http only.
//
// Endpoints:
//
//	POST /v1/estimate  one (system, estimator, ε, δ, salt) estimation
//	POST /v1/batch     a fleet batch (pooled or interleaved scheduling)
//	GET  /v1/metrics   estimation + request metrics (text or JSON)
//	GET  /healthz      liveness (503 while draining)
//
// The layer adds serving concerns without touching estimation semantics:
//
//   - Determinism is preserved end to end. A request may pin its session
//     salt; requests that do not are assigned one derived from the server
//     seed and an admission sequence number, and the assigned salt is
//     echoed in the response so any result can be replayed bit-identically
//     — over HTTP or with an in-process Run. No wall clock or process
//     randomness enters the estimation path; the only wall-clock reads are
//     an injected clock used for latency metrics.
//
//   - Admission control bounds the work in flight: MaxInFlight requests
//     execute, QueueDepth more may wait, and everything beyond that is
//     refused immediately with 429 and a Retry-After hint, so overload
//     degrades by shedding rather than queue collapse.
//
//   - A micro-batcher coalesces concurrent single-estimate requests into
//     one fleet batch per BatchWindow. Each request rides as its own
//     fleet.Job carrying rfidest.WithSeedSalt, which pins the trial to the
//     request's session — a coalesced run is bit-identical to a solo one,
//     so batching is purely a throughput decision. Answers are delivered
//     per job through fleet.Config.OnJobDone as they finish.
//
//   - Failures map onto the transport: unknown estimators and malformed
//     specs are 400 (rfidest.ErrUnknownEstimator is detected with
//     errors.Is), admission overflow is 429, deadline expiry is 504,
//     draining is 503, and handler panics are isolated to 500 responses
//     and counted, never taking the process down.
//
//   - Shutdown drains: intake stops (work endpoints return 503, /healthz
//     goes unhealthy), in-flight sessions run to completion — every
//     session is bounded in rounds — and if the caller's deadline expires
//     first the base context is cancelled, which stops sessions at their
//     next round boundary.
//
// The package is wired into a process by cmd/rfidserved and load-tested by
// cmd/rfidload.
package serve
