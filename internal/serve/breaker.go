package serve

import (
	"hash/fnv"
	"sync"
	"time"

	"rfidest/internal/obs"
	"rfidest/internal/xrand"
)

// BreakerConfig tunes the per-estimator circuit breakers. The zero value
// of every field selects the default in parentheses; set Disabled to run
// without breakers entirely.
//
// The breaker exists for the regime bounded admission cannot see: the
// queue is healthy but the work itself is rotten — sessions saturating
// under channel faults, timing out, or exhausting their retry ladders.
// Queueing more of that work is pure waste (every admitted request burns
// simulated air time and a slot), so once an estimator's recent outcomes
// are mostly bad the breaker sheds its traffic at the door with a 503 and
// a Retry-After, and lets a trickle of probes through to notice recovery.
type BreakerConfig struct {
	// Disabled turns the breakers off; every request is admitted.
	Disabled bool
	// Window is the sliding outcome window per estimator (20).
	Window int
	// MinSamples is how many outcomes the window must hold before the
	// breaker may trip (10) — a single early failure must not trip it.
	MinSamples int
	// TripRatio is the bad-outcome fraction that opens the breaker (0.5).
	TripRatio float64
	// CoolDown is how long an open breaker rejects everything before it
	// half-opens (5s).
	CoolDown time.Duration
	// ProbeRatio is the probability a request is admitted as a probe while
	// half-open (0.25). Probes are drawn from a seeded stream, so a given
	// (seed, estimator, arrival index) sequence admits the same probes on
	// every run.
	ProbeRatio float64
	// CloseAfter is how many consecutive probe successes close the breaker
	// again (3); any probe failure re-opens it for a full CoolDown.
	CloseAfter int
}

func (c *BreakerConfig) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.TripRatio <= 0 || c.TripRatio > 1 {
		c.TripRatio = 0.5
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 5 * time.Second
	}
	if c.ProbeRatio <= 0 || c.ProbeRatio > 1 {
		c.ProbeRatio = 0.25
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 3
	}
}

// Breaker states, exported through the obs breaker gauge.
const (
	breakerClosed int64 = iota
	breakerOpen
	breakerHalfOpen
)

// breakerSet is the per-estimator breaker table. All decisions are made
// at request arrival from the injected clock — the breaker never sleeps
// and owns no goroutine, so it is deterministic under a fake clock and
// trivially sleepctx-clean.
type breakerSet struct {
	cfg  BreakerConfig
	seed uint64
	now  func() time.Time
	reg  *obs.RequestRegistry

	mu sync.Mutex
	m  map[string]*breaker
}

type breaker struct {
	name string
	rng  *xrand.Rand // probe admission stream, seeded per estimator

	state    int64
	openedAt time.Time

	// Sliding outcome window (closed state): ring[i] is true for a bad
	// outcome. size grows to cfg.Window then stays; head is the next slot.
	ring []bool
	head int
	size int
	bad  int

	probeOK int // consecutive half-open probe successes
}

// newBreakerSet builds the table. now is the server's injected clock; a
// nil clock disables the breakers (an open state could never cool down),
// which newBreakerSet signals by returning nil — callers treat a nil set
// as "always admit".
func newBreakerSet(cfg BreakerConfig, seed uint64, now func() time.Time, reg *obs.RequestRegistry) *breakerSet {
	if cfg.Disabled || now == nil {
		return nil
	}
	cfg.applyDefaults()
	return &breakerSet{cfg: cfg, seed: seed, now: now, reg: reg, m: make(map[string]*breaker)}
}

// get returns the named breaker, creating it closed on first use. Callers
// hold s.mu.
func (s *breakerSet) get(name string) *breaker {
	b := s.m[name]
	if b == nil {
		h := fnv.New64a()
		h.Write([]byte(name)) //lint:allow errdrop fnv.Write never fails; the hash just keys the probe stream
		b = &breaker{
			name: name,
			rng:  xrand.NewStream(s.seed, 0xb12a, h.Sum64()),
			ring: make([]bool, s.cfg.Window),
		}
		s.m[name] = b
	}
	return b
}

// allow decides whether a request for the named estimator may run. When
// it returns false, retryAfter is the client hint: the remaining cool-down
// for an open breaker, one second for a half-open non-probe.
func (s *breakerSet) allow(name string) (ok bool, retryAfter time.Duration) {
	if s == nil {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(name)
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		remaining := s.cfg.CoolDown - s.now().Sub(b.openedAt)
		if remaining > 0 {
			s.reg.BreakerShed(name)
			return false, remaining
		}
		// Cool-down elapsed: half-open on this arrival and fall through to
		// the probe draw.
		b.state = breakerHalfOpen
		b.probeOK = 0
		s.reg.BreakerState(name, breakerHalfOpen)
		fallthrough
	default: // breakerHalfOpen
		if b.rng.Bernoulli(s.cfg.ProbeRatio) {
			return true, 0
		}
		s.reg.BreakerShed(name)
		return false, time.Second
	}
}

// record feeds one completed request's outcome back into the breaker.
// bad means the work itself failed or degraded — a 5xx-class error or a
// saturated/degraded estimate — not a client-side validation error.
func (s *breakerSet) record(name string, bad bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(name)
	switch b.state {
	case breakerClosed:
		if b.size == len(b.ring) {
			if b.ring[b.head] {
				b.bad--
			}
		} else {
			b.size++
		}
		b.ring[b.head] = bad
		if bad {
			b.bad++
		}
		b.head = (b.head + 1) % len(b.ring)
		if b.size >= s.cfg.MinSamples && float64(b.bad) >= s.cfg.TripRatio*float64(b.size) {
			b.trip(s)
		}
	case breakerHalfOpen:
		if bad {
			b.trip(s)
			return
		}
		b.probeOK++
		if b.probeOK >= s.cfg.CloseAfter {
			b.state = breakerClosed
			b.resetWindow()
			s.reg.BreakerState(name, breakerClosed)
		}
	case breakerOpen:
		// A request admitted before the trip landed after it; the window
		// restarts when the breaker closes, so there is nothing to fold in.
	}
}

// open reports whether any breaker in the set is currently open or
// half-open — the readiness probe's "stop routing here" signal.
func (s *breakerSet) open() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		if b.state != breakerClosed {
			return true
		}
	}
	return false
}

// trip moves the breaker to open as of now. Callers hold s.mu.
func (b *breaker) trip(s *breakerSet) {
	b.state = breakerOpen
	b.openedAt = s.now()
	b.probeOK = 0
	b.resetWindow()
	s.reg.BreakerTrip(b.name)
	s.reg.BreakerState(b.name, breakerOpen)
}

func (b *breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.head, b.size, b.bad = 0, 0, 0
}
