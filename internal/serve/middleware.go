package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rfidest"
)

// RequestLog is one access-log record, handed to Config.LogRequest after
// the response is written.
type RequestLog struct {
	Method  string  `json:"method"`
	Route   string  `json:"route"`
	Status  int     `json:"status"`
	Seconds float64 `json:"seconds"` // 0 when the server has no clock
	Remote  string  `json:"remote,omitempty"`
	Panic   bool    `json:"panic,omitempty"`
}

// statusRecorder captures the status a handler wrote so the middleware can
// meter and log it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the serving-layer plumbing: drain
// rejection (work endpoints only), panic isolation, request metrics and
// access logging. Latency is read from the injected clock, so the library
// itself never touches the wall clock.
func (s *Server) instrument(route string, work bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var start time.Time
		if s.cfg.Now != nil {
			start = s.cfg.Now()
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		panicked := false
		defer func() {
			if p := recover(); p != nil {
				// Isolate the request: count it, answer 500 if the handler
				// had not committed a response, and keep the process up.
				panicked = true
				s.req.Panicked()
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
				} else {
					rec.status = http.StatusInternalServerError
				}
			}
			var secs float64
			if s.cfg.Now != nil {
				secs = s.cfg.Now().Sub(start).Seconds()
			}
			s.req.Observe(route, rec.status, secs)
			if s.cfg.LogRequest != nil {
				s.cfg.LogRequest(RequestLog{
					Method:  r.Method,
					Route:   route,
					Status:  rec.status,
					Seconds: secs,
					Remote:  r.RemoteAddr,
					Panic:   panicked,
				})
			}
		}()
		if work && s.draining.Load() {
			writeError(rec, http.StatusServiceUnavailable, ErrShuttingDown.Error())
			return
		}
		h(rec, r)
	})
}

// httpStatus maps an estimation or serving error onto its HTTP status.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, rfidest.ErrUnknownEstimator):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrMonitorConflict):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //lint:allow errdrop the response is already committed; an encode error here is a dead client
}

// writeError writes the standard error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// decodeJSON reads a bounded, strict JSON body into dst, answering 400
// itself on failure.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}
