package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rfidest"
	"rfidest/internal/fleet"
	"rfidest/internal/goldengrid"
	"rfidest/internal/serve"
)

// specFor maps a goldengrid system key onto its wire spec — the same
// deployments, described the way an HTTP client would describe them.
func specFor(t *testing.T, key string) serve.SystemSpec {
	t.Helper()
	switch key {
	case "tag-n20000-seed42":
		return serve.SystemSpec{N: 20000, Seed: 42}
	case "synthetic-n50000-seed7":
		return serve.SystemSpec{N: 50000, Seed: 7, Synthetic: true}
	case "noisy-n10000-seed9":
		return serve.SystemSpec{N: 10000, Seed: 9, FalseBusy: 0.01, FalseIdle: 0.02}
	case "paperhash-n20000-seed42":
		return serve.SystemSpec{N: 20000, Seed: 42, PaperTagHash: true}
	default:
		t.Fatalf("no spec mapping for goldengrid system %q", key)
		return serve.SystemSpec{}
	}
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := serve.New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body to url and returns the status and response bytes.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestEstimateGoldengridReplay replays the full golden grid through
// POST /v1/estimate — alternating the micro-batched and solo paths — and
// requires every response bit-identical to the pinned in-process result.
func TestEstimateGoldengridReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid over HTTP is not short")
	}
	_, ts := newTestServer(t, serve.Config{})
	for i, c := range goldengrid.Cases() {
		salt := c.Salt
		status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
			System:    specFor(t, c.System),
			Estimator: c.Estimator,
			Epsilon:   goldengrid.Epsilon,
			Delta:     goldengrid.Delta,
			Salt:      &salt,
			Solo:      i%2 == 1,
		})
		if status != http.StatusOK {
			t.Fatalf("%s/%s salt %#x: status %d: %s", c.System, c.Estimator, c.Salt, status, body)
		}
		var resp serve.EstimateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != c.Want {
			t.Errorf("%s/%s salt %#x drifted over HTTP:\n got  %+v\n want %+v",
				c.System, c.Estimator, c.Salt, resp.Estimate, c.Want)
		}
		if resp.Salt != c.Salt {
			t.Errorf("response did not echo the pinned salt: got %#x want %#x", resp.Salt, c.Salt)
		}
		if wantBatched := i%2 == 0; resp.Batched != wantBatched {
			t.Errorf("case %d: batched = %v, want %v", i, resp.Batched, wantBatched)
		}
	}
}

// TestBatchGoldengridReplay replays the grid as one POST /v1/batch in each
// scheduling mode; per-job pinned salts make every estimate comparable to
// its golden value.
func TestBatchGoldengridReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid over HTTP is not short")
	}
	cases := goldengrid.Cases()
	_, ts := newTestServer(t, serve.Config{MaxBatchJobs: len(cases)})
	jobs := make([]serve.BatchJob, len(cases))
	for i, c := range cases {
		salt := c.Salt
		jobs[i] = serve.BatchJob{
			Name:      fmt.Sprintf("%s/%s/%#x", c.System, c.Estimator, c.Salt),
			System:    specFor(t, c.System),
			Estimator: c.Estimator,
			Epsilon:   goldengrid.Epsilon,
			Delta:     goldengrid.Delta,
			Salt:      &salt,
		}
	}
	for _, interleave := range []bool{false, true} {
		status, body := postJSON(t, ts.URL+"/v1/batch", serve.BatchRequest{
			Jobs: jobs, Seed: 7, Interleave: interleave,
		})
		if status != http.StatusOK {
			t.Fatalf("interleave=%v: status %d: %.300s", interleave, status, body)
		}
		var resp serve.BatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Report == nil || len(resp.Report.Jobs) != len(cases) {
			t.Fatalf("interleave=%v: malformed report: %.300s", interleave, body)
		}
		if interleave && resp.Report.SchedRounds == 0 {
			t.Error("interleaved batch reported zero scheduler rounds")
		}
		for i, jr := range resp.Report.Jobs {
			if jr.Failure != "" {
				t.Errorf("interleave=%v: job %d failed: %s", interleave, i, jr.Failure)
				continue
			}
			if len(jr.Estimates) != 1 || jr.Estimates[0] != cases[i].Want {
				t.Errorf("interleave=%v: job %d drifted over HTTP:\n got  %+v\n want %+v",
					interleave, i, jr.Estimates, cases[i].Want)
			}
		}
	}
}

// TestAssignedSaltsDeterministic: two servers built with the same seed
// assign the same salt to their first request and return the same
// estimate — and replaying that echoed salt explicitly reproduces it.
func TestAssignedSaltsDeterministic(t *testing.T) {
	req := serve.EstimateRequest{
		System:  serve.SystemSpec{N: 5000, Seed: 3, Synthetic: true},
		Epsilon: 0.1, Delta: 0.1,
	}
	var first serve.EstimateResponse
	for run := 0; run < 2; run++ {
		_, ts := newTestServer(t, serve.Config{Seed: 99})
		status, body := postJSON(t, ts.URL+"/v1/estimate", req)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", run, status, body)
		}
		var resp serve.EstimateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = resp
			// Replaying the echoed salt reproduces the estimate.
			pinned := req
			pinned.Salt = &resp.Salt
			_, body := postJSON(t, ts.URL+"/v1/estimate", pinned)
			var replay serve.EstimateResponse
			if err := json.Unmarshal(body, &replay); err != nil {
				t.Fatal(err)
			}
			if replay.Estimate != resp.Estimate {
				t.Errorf("echoed salt did not replay:\n got  %+v\n want %+v", replay.Estimate, resp.Estimate)
			}
			continue
		}
		if resp.Salt != first.Salt || resp.Estimate != first.Estimate {
			t.Errorf("same-seed servers diverged:\n got  %+v\n want %+v", resp, first)
		}
	}
}

// TestEstimateValidation: malformed requests map to 400 with an error
// body, including unknown estimators via the shared sentinel.
func TestEstimateValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	url := ts.URL + "/v1/estimate"
	good := serve.SystemSpec{N: 100, Synthetic: true}
	for name, req := range map[string]serve.EstimateRequest{
		"zero epsilon":                {System: good, Delta: 0.1},
		"epsilon one":                 {System: good, Epsilon: 1, Delta: 0.1},
		"zero n":                      {System: serve.SystemSpec{}, Epsilon: 0.1, Delta: 0.1},
		"huge n":                      {System: serve.SystemSpec{N: 1 << 40}, Epsilon: 0.1, Delta: 0.1},
		"bad distribution":            {System: serve.SystemSpec{N: 100, Distribution: "zipf"}, Epsilon: 0.1, Delta: 0.1},
		"hash conflict":               {System: serve.SystemSpec{N: 100, PaperTagHash: true, IDHash: true}, Epsilon: 0.1, Delta: 0.1},
		"negative timeout":            {System: good, Epsilon: 0.1, Delta: 0.1, TimeoutMs: -1},
		"unknown estimator (batched)": {System: good, Epsilon: 0.1, Delta: 0.1, Estimator: "NOPE"},
	} {
		status, body := postJSON(t, url, req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, body)
			continue
		}
		var er serve.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: malformed error body %s", name, body)
		}
	}
	// The solo path maps the same sentinel.
	status, _ := postJSON(t, url, serve.EstimateRequest{
		System: good, Epsilon: 0.1, Delta: 0.1, Estimator: "NOPE", Solo: true,
	})
	if status != http.StatusBadRequest {
		t.Errorf("solo unknown estimator: status %d, want 400", status)
	}
	// Unknown JSON fields are rejected: the wire schema is frozen.
	resp, err := http.Post(url, "application/json",
		strings.NewReader(`{"system":{"n":100},"epsilon":0.1,"delta":0.1,"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestBackpressure floods a 1-slot, 1-waiter server and requires at least
// one shed request (429 with Retry-After) while every admitted request
// still answers correctly.
func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		MaxInFlight: 1, QueueDepth: 1, RetryAfterSeconds: 3,
		BatchWindow: 20 * time.Millisecond,
	})
	req := serve.EstimateRequest{
		System:  serve.SystemSpec{N: 2000, Seed: 3, Synthetic: true},
		Epsilon: 0.1, Delta: 0.1,
	}
	const flood = 12
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, flood)
	b, _ := json.Marshal(req)
	for i := 0; i < flood; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(b))
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	var ok, shed int
	for i := 0; i < flood; i++ {
		o := <-results
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter != "3" {
				t.Errorf("429 without the configured Retry-After: %q", o.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d", o.status)
		}
	}
	if ok == 0 {
		t.Error("no request was admitted under flood")
	}
	if shed == 0 {
		t.Error("a 1-slot 1-waiter server admitted a 12-request flood without shedding")
	}
}

// TestDeadline504: a 1ms budget cannot finish FNEB's hundreds of rounds;
// the request answers 504 and the server leaks no goroutines.
func TestDeadline504(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, serve.Config{})
	status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
		System:    serve.SystemSpec{N: 50000, Seed: 7, Synthetic: true},
		Estimator: "FNEB",
		Epsilon:   0.1, Delta: 0.1,
		TimeoutMs: 1,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, body)
	}
	// The cut session must unwind completely: poll until the goroutine
	// count settles back to the pre-server baseline. Closing the httptest
	// server reaps its keep-alives; Shutdown stops the batch collector.
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after deadline expiry: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDrain: a request parked in the micro-batch window survives
// Shutdown — the final window flushes and answers it correctly — while
// new work and /healthz flip to 503.
func TestShutdownDrain(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{BatchWindow: time.Minute})
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	want, err := sys.Run(context.Background(), rfidest.WithAccuracy(0.1, 0.1), rfidest.WithSeedSalt(11))
	if err != nil {
		t.Fatal(err)
	}
	salt := uint64(11)
	type answer struct {
		status int
		body   []byte
	}
	parked := make(chan answer, 1)
	go func() {
		status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
			System:  serve.SystemSpec{N: 5000, Seed: 3, Synthetic: true},
			Epsilon: 0.1, Delta: 0.1,
			Salt: &salt,
		})
		parked <- answer{status, body}
	}()
	// Wait until the request holds its admission slot (it is now parked
	// in the minute-long batch window).
	for i := 0; ; i++ {
		if s.Requests().Snapshot().Inflight == 1 {
			break
		}
		if i > 500 {
			t.Fatal("request never reached the batcher")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	a := <-parked
	if a.status != http.StatusOK {
		t.Fatalf("parked request: status %d: %s", a.status, a.body)
	}
	var resp serve.EstimateResponse
	if err := json.Unmarshal(a.body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Estimate != want {
		t.Errorf("drained request drifted:\n got  %+v\n want %+v", resp.Estimate, want)
	}
	// The drained server refuses new work and reports itself unhealthy.
	if status, _ := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
		System: serve.SystemSpec{N: 100, Synthetic: true}, Epsilon: 0.1, Delta: 0.1,
	}); status != http.StatusServiceUnavailable {
		t.Errorf("post-drain estimate: status %d, want 503", status)
	}
	// Liveness stays green — the process is still answering — while
	// readiness flips so load balancers stop routing here.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("post-drain healthz: status %d, want 200 (liveness)", hr.StatusCode)
	}
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain readyz: status %d, want 503", rr.StatusCode)
	}
}

// TestMetricsEndpoint: after traffic, the text export carries both the
// estimation and the request sections, and the JSON form parses.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	if status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
		System: serve.SystemSpec{N: 2000, Seed: 3, Synthetic: true}, Epsilon: 0.1, Delta: 0.1,
	}); status != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"obs.sessions 1",
		"obs.http.route./v1/estimate.requests 1",
		"obs.http.route./v1/estimate.status2xx 1",
		"obs.http.route./v1/estimate.batched 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("text metrics missing %q:\n%.600s", want, text)
		}
	}
	jr, err := http.Get(ts.URL + "/v1/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := io.ReadAll(jr.Body)
	jr.Body.Close()
	var doc struct {
		Estimation json.RawMessage `json:"estimation"`
		HTTP       json.RawMessage `json:"http"`
	}
	if err := json.Unmarshal(jb, &doc); err != nil || doc.Estimation == nil || doc.HTTP == nil {
		t.Errorf("JSON metrics malformed (err=%v): %.300s", err, jb)
	}
}

// TestCoalescing: concurrent salted requests answered through shared
// batches are each bit-identical to their direct in-process run.
func TestCoalescing(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		BatchWindow: 20 * time.Millisecond, BatchMaxSize: 8, BatchInterleave: true,
	})
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	const k = 8
	want := make([]rfidest.Estimate, k)
	for i := range want {
		var err error
		want[i], err = sys.Run(context.Background(), rfidest.WithAccuracy(0.1, 0.1), rfidest.WithSeedSalt(uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	type got struct {
		i    int
		resp serve.EstimateResponse
		err  error
	}
	results := make(chan got, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			salt := uint64(100 + i)
			status, body := postJSON(t, ts.URL+"/v1/estimate", serve.EstimateRequest{
				System:  serve.SystemSpec{N: 5000, Seed: 3, Synthetic: true},
				Epsilon: 0.1, Delta: 0.1, Salt: &salt,
			})
			var resp serve.EstimateResponse
			err := json.Unmarshal(body, &resp)
			if status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, body)
			}
			results <- got{i, resp, err}
		}(i)
	}
	for i := 0; i < k; i++ {
		g := <-results
		if g.err != nil {
			t.Fatalf("request %d: %v", g.i, g.err)
		}
		if g.resp.Estimate != want[g.i] {
			t.Errorf("request %d drifted under coalescing:\n got  %+v\n want %+v", g.i, g.resp.Estimate, want[g.i])
		}
	}
}

// TestBatchEndpointMatchesInProcessFleet: a /v1/batch request (no pinned
// salts) reproduces the in-process fleet.Run report for the same (seed,
// jobs) — the cross-process determinism contract.
func TestBatchEndpointMatchesInProcessFleet(t *testing.T) {
	sys := rfidest.NewSystem(5000, rfidest.WithSynthetic(), rfidest.WithSeed(3))
	rep, err := fleet.Run(context.Background(), fleet.Config{Seed: 7}, []fleet.Job{
		{System: sys, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 3},
		{System: sys, Estimator: "ZOE-batched", Epsilon: 0.1, Delta: 0.1, Trials: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{})
	spec := serve.SystemSpec{N: 5000, Seed: 3, Synthetic: true}
	status, body := postJSON(t, ts.URL+"/v1/batch", serve.BatchRequest{
		Seed: 7,
		Jobs: []serve.BatchJob{
			{System: spec, Estimator: "BFCE", Epsilon: 0.1, Delta: 0.1, Trials: 3},
			{System: spec, Estimator: "ZOE-batched", Epsilon: 0.1, Delta: 0.1, Trials: 2},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp serve.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, jr := range resp.Report.Jobs {
		if len(jr.Estimates) != len(rep.Jobs[i].Estimates) {
			t.Fatalf("job %d: %d estimates over HTTP, %d in process", i, len(jr.Estimates), len(rep.Jobs[i].Estimates))
		}
		for k := range jr.Estimates {
			if jr.Estimates[k] != rep.Jobs[i].Estimates[k] {
				t.Errorf("job %d trial %d drifted:\n got  %+v\n want %+v", i, k, jr.Estimates[k], rep.Jobs[i].Estimates[k])
			}
		}
	}
}
