package serve

import (
	"encoding/json"
	"fmt"

	"rfidest"
	"rfidest/internal/checkpoint"
)

// monitorTable is the server's registry of named monitoring loops. Each
// entry owns one rfidest.Monitor — stateful by design, one round feeding
// the next — plus the immutable configuration it was created with, so a
// later request naming it can be checked for drift instead of silently
// poisoning warm state with a different deployment's rounds.
//
// Rounds are serialized per entry (Monitor's contract is one goroutine);
// different monitors run concurrently. After every completed round the
// warm state is appended to the checkpoint store before the response is
// written, so an acknowledged round is durable by construction: a crash
// after the ack replays into a restart that already carries it.
type servedMonitor struct {
	spec       SystemSpec
	epsilon    float64
	delta      float64
	fastRounds int

	mon *rfidest.Monitor // guarded by the table's per-entry lock discipline
}

// monitorKeyMatches reports whether the request's configuration matches
// the entry's. SystemSpec is comparable, so this is a plain field check.
func (m *servedMonitor) matches(req MonitorRequest) bool {
	return m.spec == req.System &&
		m.epsilon == req.Epsilon && m.delta == req.Delta && //lint:allow floatcmp config identity check: the wire carried these exact values, no arithmetic touched them
		m.fastRounds == req.FastRounds
}

// record lowers the entry to its durable form.
func (m *servedMonitor) record() (checkpoint.Monitor, error) {
	sys, err := json.Marshal(m.spec)
	if err != nil {
		return checkpoint.Monitor{}, fmt.Errorf("serve: marshal monitor spec: %w", err)
	}
	st := m.mon.Snapshot()
	return checkpoint.Monitor{
		Epsilon:    m.epsilon,
		Delta:      m.delta,
		FastRounds: m.fastRounds,
		System:     sys,
		Pn:         st.Pn,
		N:          st.N,
		Rounds:     st.Rounds,
	}, nil
}

// restoreMonitors rebuilds the monitor table from recovered checkpoint
// records. Corrupt records are fatal: they describe acknowledged state,
// and silently cold-starting a monitor would violate the durability
// contract the checkpoint exists for.
func restoreMonitors(recs map[string]checkpoint.Monitor, maxN int) (map[string]*servedMonitor, error) {
	out := make(map[string]*servedMonitor, len(recs))
	for name, rec := range recs {
		var spec SystemSpec
		if err := json.Unmarshal(rec.System, &spec); err != nil {
			return nil, fmt.Errorf("serve: monitor %q: corrupt system spec in checkpoint: %w", name, err)
		}
		if err := spec.validate(maxN); err != nil {
			return nil, fmt.Errorf("serve: monitor %q: checkpointed spec no longer valid: %w", name, err)
		}
		mon, err := rfidest.NewMonitor(rec.Epsilon, rec.Delta, rec.FastRounds)
		if err != nil {
			return nil, fmt.Errorf("serve: monitor %q: %w", name, err)
		}
		if err := mon.Restore(rfidest.MonitorState{Pn: rec.Pn, N: rec.N, Rounds: rec.Rounds}); err != nil {
			return nil, fmt.Errorf("serve: monitor %q: %w", name, err)
		}
		out[name] = &servedMonitor{
			spec:       spec,
			epsilon:    rec.Epsilon,
			delta:      rec.Delta,
			fastRounds: rec.FastRounds,
			mon:        mon,
		}
	}
	return out, nil
}
