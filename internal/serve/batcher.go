package serve

import (
	"context"
	"sync"
	"time"

	"rfidest"
	"rfidest/internal/fleet"
	"rfidest/internal/obs"
)

// batcher coalesces single-estimate requests into fleet batches: the first
// request to arrive opens a window (time.NewTimer — wall-clock timers are
// fine, only wall-clock *reads* would break determinism), requests landing
// inside it accumulate, and when the window closes or the batch fills the
// group runs as one fleet.Run. Every request rides as its own job pinned
// to its own session via rfidest.WithSeedSalt, so a coalesced estimate is
// bit-identical to a solo one — batching trades a bounded latency window
// for fleet-level throughput, never accuracy.
//
// Each request is answered individually through fleet.Config.OnJobDone the
// moment its job folds; nobody waits for the whole report.
type batcher struct {
	base       context.Context // estimation root; cancelled on hard shutdown
	window     time.Duration
	maxSize    int
	seed       uint64
	workers    int
	interleave bool
	observer   obs.Observer

	submitCh chan *pendingEstimate
	stopCh   chan struct{}  // closed by close(); collector flushes and exits
	doneCh   chan struct{}  // closed when the collector has exited
	flushes  sync.WaitGroup // in-flight fleet.Run calls
	stopOnce sync.Once
}

// pendingEstimate is one parked request: its job and the buffered answer
// channel (capacity 1, so a flush never blocks on an abandoned waiter).
type pendingEstimate struct {
	job  fleet.Job
	resp chan jobAnswer
}

type jobAnswer struct {
	est     rfidest.Estimate
	err     error
	skipped bool
}

func newBatcher(base context.Context, window time.Duration, maxSize int, seed uint64, workers int, interleave bool, observer obs.Observer) *batcher {
	b := &batcher{
		base:       base,
		window:     window,
		maxSize:    maxSize,
		seed:       seed,
		workers:    workers,
		interleave: interleave,
		observer:   observer,
		submitCh:   make(chan *pendingEstimate),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	go b.collect()
	return b
}

// submit parks the request until its batch answers it. After the job is
// accepted into a window the estimation always runs to completion (bounded
// by rounds) even if ctx expires first — the caller just stops waiting.
func (b *batcher) submit(ctx context.Context, job fleet.Job) (rfidest.Estimate, error) {
	p := &pendingEstimate{job: job, resp: make(chan jobAnswer, 1)}
	select {
	case b.submitCh <- p:
	case <-b.stopCh:
		return rfidest.Estimate{}, ErrShuttingDown
	case <-ctx.Done():
		return rfidest.Estimate{}, ctx.Err()
	}
	select {
	case a := <-p.resp:
		if a.skipped {
			return rfidest.Estimate{}, ErrShuttingDown
		}
		return a.est, a.err
	case <-ctx.Done():
		return rfidest.Estimate{}, ctx.Err()
	}
}

// collect is the single window-keeping goroutine. Running flushes are
// handed off so a slow batch never blocks the next window from opening.
func (b *batcher) collect() {
	defer close(b.doneCh)
	var (
		batch  []*pendingEstimate
		timer  *time.Timer
		timerC <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		group := batch
		batch = nil
		b.flushes.Add(1)
		go b.flush(group)
	}
	for {
		select {
		case p := <-b.submitCh:
			batch = append(batch, p)
			if len(batch) >= b.maxSize {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(b.window)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		case <-b.stopCh:
			flush() // the final window runs; shutdown waits on b.flushes
			return
		case <-b.base.Done():
			flush() // jobs will fold as skipped/cancelled under the dead ctx
			return
		}
	}
}

// flush runs one window's group as a fleet batch and answers each request
// as its job folds.
func (b *batcher) flush(group []*pendingEstimate) {
	defer b.flushes.Done()
	jobs := make([]fleet.Job, len(group))
	for i, p := range group {
		jobs[i] = p.job
	}
	rep, err := fleet.Run(b.base, fleet.Config{
		Seed:       b.seed,
		Workers:    b.workers,
		Interleave: b.interleave,
		Observer:   b.observer,
		OnJobDone: func(r fleet.JobResult) {
			a := jobAnswer{err: r.Err, skipped: r.Skipped}
			if len(r.Estimates) > 0 {
				a.est = r.Estimates[0]
			}
			group[r.Index].resp <- a
		},
	}, jobs)
	if rep == nil && err != nil {
		// Batch-level validation failure: no job ran, no hook fired —
		// unreachable for handler-built jobs, but never strand a waiter.
		for _, p := range group {
			p.resp <- jobAnswer{err: err}
		}
	}
}

// close stops intake. Idempotent; drain() waits for the work to land.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stopCh) })
}

// drain blocks until the collector has exited and every flushed batch has
// finished. Call close() first.
func (b *batcher) drain() {
	<-b.doneCh
	b.flushes.Wait()
}
