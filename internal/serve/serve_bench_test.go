package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rfidest/internal/serve"
)

// benchBody is the request both legs drive: a synthetic 10k-tag system
// under BFCE(0.1, 0.1) with a pinned salt, so every request replays one
// deterministic session and the benchmark measures serving overhead, not
// estimation variance.
func benchBody(b *testing.B, solo bool) []byte {
	b.Helper()
	salt := uint64(1)
	body, err := json.Marshal(serve.EstimateRequest{
		System:  serve.SystemSpec{N: 10000, Seed: 3, Synthetic: true},
		Epsilon: 0.1, Delta: 0.1,
		Salt: &salt,
		Solo: solo,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchServer(b *testing.B, cfg serve.Config) *httptest.Server {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	s, err := serve.New(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func post(b *testing.B, client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeEstimateSolo measures one full HTTP round trip per op on
// the solo path: transport + admission + a direct in-handler Run.
func BenchmarkServeEstimateSolo(b *testing.B) {
	ts := benchServer(b, serve.Config{})
	body := benchBody(b, true)
	url := ts.URL + "/v1/estimate"
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, client, url, body)
	}
}

// BenchmarkServeEstimateBatched drives the micro-batched path from
// parallel clients, so windows genuinely coalesce; ns/op is per answered
// request at saturation.
func BenchmarkServeEstimateBatched(b *testing.B) {
	ts := benchServer(b, serve.Config{
		BatchWindow: time.Millisecond, BatchMaxSize: 16, MaxInFlight: 64,
	})
	body := benchBody(b, false)
	url := ts.URL + "/v1/estimate"
	client := ts.Client()
	b.SetParallelism(4) // 4 x GOMAXPROCS concurrent closed-loop clients
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			post(b, client, url, body)
		}
	})
}
