package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfidest/internal/obs"
)

// TestAdmissionShed pins the two-stage gate exactly: one slot executes,
// one waiter queues, the next caller sheds with ErrOverloaded, and a
// release hands the slot to the queued waiter.
func TestAdmissionShed(t *testing.T) {
	reg := obs.NewRequestRegistry()
	a := newAdmission(1, 1, reg)
	ctx := context.Background()

	release, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		release func()
		err     error
	}
	queued := make(chan grant, 1)
	go func() {
		r, err := a.acquire(ctx)
		queued <- grant{r, err}
	}()
	// Wait for the second caller to take the waiting permit.
	for i := 0; len(a.queue) == 0; i++ {
		if i > 1000 {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: err = %v, want ErrOverloaded", err)
	}
	if s := reg.Snapshot(); s.Rejected != 1 || s.Inflight != 1 || s.Queued != 1 {
		t.Errorf("gauges after shed: %+v", s)
	}

	release()
	g := <-queued
	if g.err != nil {
		t.Fatalf("queued acquire failed after release: %v", g.err)
	}
	g.release()
	if s := reg.Snapshot(); s.Inflight != 0 || s.Queued != 0 {
		t.Errorf("gauges after drain: %+v", s)
	}
}

// TestAdmissionQueuedDeadline: a queued waiter gives up with ctx.Err()
// when its deadline expires, returning its waiting permit.
func TestAdmissionQueuedDeadline(t *testing.T) {
	a := newAdmission(1, 1, obs.NewRequestRegistry())
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: err = %v, want DeadlineExceeded", err)
	}
	if len(a.queue) != 0 {
		t.Error("abandoned waiter did not return its queue permit")
	}
}

// TestPanicIsolation: a panicking handler answers 500 with an error body,
// the panic counter moves, and the middleware keeps serving afterwards.
func TestPanicIsolation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := New(ctx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var logged []RequestLog
	s.cfg.LogRequest = func(l RequestLog) { logged = append(logged, l) }
	h := s.instrument("/boom", false, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "kaboom") {
		t.Errorf("error body does not carry the panic: %s", rec.Body.String())
	}
	if got := s.req.Snapshot().Panics; got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	if len(logged) != 1 || !logged[0].Panic || logged[0].Status != http.StatusInternalServerError {
		t.Errorf("panic was not logged: %+v", logged)
	}
	// The middleware survives: the same wrapped route keeps answering.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/boom", nil))
	if got := s.req.Snapshot().Panics; got != 2 {
		t.Errorf("second panic not isolated: counter = %d", got)
	}
}
