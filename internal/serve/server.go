package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rfidest/internal/checkpoint"
	"rfidest/internal/obs"
	"rfidest/internal/xrand"
)

// Config tunes a Server. The zero value of every field selects a sensible
// default (see New).
type Config struct {
	// Seed roots server-assigned session salts and is the default batch
	// seed; a server restarted with the same seed assigns the same salt
	// sequence (default 1).
	Seed uint64

	// MaxInFlight bounds concurrently executing requests (default 16);
	// QueueDepth bounds how many more may wait for a slot (default 64).
	// Requests beyond both are refused with 429 and a Retry-After of
	// RetryAfterSeconds (default 1).
	MaxInFlight       int
	QueueDepth        int
	RetryAfterSeconds int

	// BatchWindow is how long the micro-batcher holds the first estimate
	// request of a group open for company (default 2ms; negative disables
	// coalescing — every request runs solo). BatchMaxSize flushes a
	// window early once that many requests have coalesced (default 16).
	BatchWindow  time.Duration
	BatchMaxSize int
	// BatchWorkers bounds the pool a coalesced batch runs on (0 means
	// GOMAXPROCS); BatchInterleave runs coalesced batches on the
	// deterministic round scheduler instead. Either way each request's
	// salt pins its session, so the mode never changes results.
	BatchWorkers    int
	BatchInterleave bool

	// DefaultTimeout bounds requests that do not set timeoutMs (default
	// 30s; negative disables the default).
	DefaultTimeout time.Duration

	// MaxSystemN caps system.n in request specs (default 1_000_000) —
	// building a materialized population is O(n) memory, so the cap is
	// the server's memory guard. MaxBatchJobs caps jobs per batch
	// (default 64). MaxBodyBytes caps request bodies (default 1MiB).
	// SystemCacheSize caps the built-system cache (default 64).
	MaxSystemN      int
	MaxBatchJobs    int
	MaxBodyBytes    int64
	SystemCacheSize int

	// Now, when non-nil, is the wall clock used for latency metrics,
	// access logs and the circuit breakers — injected so the library
	// itself never reads the wall clock (cmd/rfidserved passes time.Now).
	// Nil records zero latencies and disables the breakers (an open
	// breaker could never cool down without a clock).
	Now func() time.Time
	// LogRequest, when non-nil, receives one record per request after its
	// response is written. It must be fast and safe for concurrent use.
	LogRequest func(RequestLog)

	// Breaker tunes the per-estimator circuit breakers (see BreakerConfig).
	Breaker BreakerConfig

	// Checkpoint, when non-nil, makes the server crash-safe: the salt
	// sequence and every monitor's warm state are recovered from it at New
	// and appended to it as they advance (cmd/rfidserved opens one under
	// -state-dir). Nil serves statelessly, exactly as before.
	Checkpoint *checkpoint.Store
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 16
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.DefaultTimeout < 0 {
		c.DefaultTimeout = 0
	}
	if c.MaxSystemN <= 0 {
		c.MaxSystemN = 1_000_000
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SystemCacheSize <= 0 {
		c.SystemCacheSize = 64
	}
}

// Server is the HTTP estimation service. Build one with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config

	base   context.Context // root of all estimation work
	cancel context.CancelFunc

	reg     *obs.Registry        // estimation metrics (session/phase spans)
	req     *obs.RequestRegistry // request metrics
	adm     *admission
	bat     *batcher    // nil when coalescing is disabled
	brk     *breakerSet // nil when breakers are disabled (no clock)
	systems *systemCache
	mux     *http.ServeMux

	// Durable salt sequence. saltSeq is the live counter; saltReserved is
	// the high-water mark the checkpoint already covers — a salt is never
	// handed out past it without first making a bigger reservation durable,
	// so a restarted server can only skip sequence numbers, never reuse one.
	saltSeq      atomic.Uint64
	saltReserved atomic.Uint64
	saltMu       sync.Mutex
	ckpt         *checkpoint.Store // nil when serving statelessly

	monMu sync.Mutex
	mons  map[string]*servedMonitor
	// monRun serializes rounds per monitor name without holding monMu
	// across a round (Monitor's contract is one goroutine at a time).
	monRun map[string]*sync.Mutex

	ready    atomic.Bool // recovery complete; flips /readyz
	draining atomic.Bool
}

// New builds a Server, recovering durable state from cfg.Checkpoint when
// one is configured. ctx is the root of all estimation work: cancelling
// it stops every in-flight session at its next round boundary (Shutdown
// does this itself when its deadline expires).
//
// With a checkpoint store, New replays the recovered state before the
// first request can be admitted: the salt sequence resumes past its
// durable high-water mark and every checkpointed monitor is rebuilt with
// its warm state intact. Recovery failures are returned, not skipped —
// the store describes acknowledged work, and serving without it would
// silently break the durability contract.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg.applyDefaults()
	base, cancel := context.WithCancel(ctx)
	s := &Server{
		cfg:     cfg,
		base:    base,
		cancel:  cancel,
		reg:     obs.NewRegistry(),
		req:     obs.NewRequestRegistry(),
		systems: newSystemCache(cfg.SystemCacheSize),
		mux:     http.NewServeMux(),
		ckpt:    cfg.Checkpoint,
		mons:    make(map[string]*servedMonitor),
		monRun:  make(map[string]*sync.Mutex),
	}
	s.adm = newAdmission(cfg.MaxInFlight, cfg.QueueDepth, s.req)
	s.brk = newBreakerSet(cfg.Breaker, cfg.Seed, cfg.Now, s.req)
	if cfg.BatchWindow > 0 {
		s.bat = newBatcher(base, cfg.BatchWindow, cfg.BatchMaxSize,
			cfg.Seed, cfg.BatchWorkers, cfg.BatchInterleave, s.reg)
	}
	if s.ckpt != nil {
		st := s.ckpt.State()
		s.saltSeq.Store(st.SaltSeq)
		s.saltReserved.Store(st.SaltSeq)
		mons, err := restoreMonitors(st.Monitors, cfg.MaxSystemN)
		if err != nil {
			cancel()
			return nil, err
		}
		s.mons = mons
		for name := range mons {
			s.monRun[name] = &sync.Mutex{}
		}
	}
	s.mux.Handle("POST "+routeEstimate, s.instrument(routeEstimate, true, s.handleEstimate))
	s.mux.Handle("POST "+routeBatch, s.instrument(routeBatch, true, s.handleBatch))
	s.mux.Handle("POST "+routeMonitor, s.instrument(routeMonitor, true, s.handleMonitor))
	s.mux.Handle("DELETE "+routeMonitor, s.instrument(routeMonitor, true, s.handleMonitorDelete))
	s.mux.Handle("GET "+routeMetrics, s.instrument(routeMetrics, false, s.handleMetrics))
	s.mux.Handle("GET "+routeHealthz, s.instrument(routeHealthz, false, s.handleHealthz))
	s.mux.Handle("GET "+routeReadyz, s.instrument(routeReadyz, false, s.handleReadyz))
	s.ready.Store(true)
	return s, nil
}

// Handler returns the service's routes. /debug/pprof is deliberately not
// here; cmd/rfidserved mounts it on its own mux so the library stays free
// of profiling side effects.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the estimation metrics sink (for tests and embedders).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Requests exposes the request metrics sink (for tests and embedders).
func (s *Server) Requests() *obs.RequestRegistry { return s.req }

// saltBlock is how many sequence numbers one checkpoint reservation
// covers: the durability write lands once per block, not once per salt,
// and a crash wastes at most one block of (never-issued) numbers.
const saltBlock = 1024

// nextSalt derives the session salt for a request that did not pin one:
// a pure function of (server seed, sequence number), so any response can
// be reproduced from its echoed salt. With a checkpoint store the
// sequence is durable — the salt is not returned until a reservation
// covering its sequence number has been fsynced, so a crash-restarted
// server resumes past every salt it ever acknowledged instead of
// re-issuing them.
func (s *Server) nextSalt() (uint64, error) {
	seq := s.saltSeq.Add(1)
	if s.ckpt != nil && seq > s.saltReserved.Load() {
		s.saltMu.Lock()
		if seq > s.saltReserved.Load() {
			next := ((seq / saltBlock) + 1) * saltBlock
			if err := s.ckpt.SetSaltSeq(next); err != nil {
				s.saltMu.Unlock()
				return 0, fmt.Errorf("serve: salt reservation: %w", err)
			}
			s.saltReserved.Store(next)
		}
		s.saltMu.Unlock()
	}
	return xrand.Combine(s.cfg.Seed, seq), nil
}

// Shutdown drains the server: intake stops (work endpoints answer 503,
// /healthz goes unhealthy), the micro-batcher flushes its final window,
// and every in-flight session runs to completion — sessions are bounded
// in rounds, so the drain terminates on its own. If ctx expires first the
// base context is cancelled, stopping sessions at their next round
// boundary, and ctx.Err() is returned after the cut work lands.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.bat != nil {
		s.bat.close()
	}
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		if s.bat != nil {
			s.bat.drain()
		}
		s.adm.awaitIdle(ctx)
	}()
	select {
	case <-idle:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-idle
		return ctx.Err()
	}
}

// awaitIdle blocks until no request holds an execution slot (or ctx
// expires). Polling the slot channel keeps admission lock-free on the
// hot path; the drain path can afford a few ticks.
func (a *admission) awaitIdle(ctx context.Context) {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for len(a.slots) > 0 {
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}
