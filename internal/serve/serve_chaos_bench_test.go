package serve_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"rfidest/internal/chaoshttp"
	"rfidest/internal/client"
	"rfidest/internal/serve"
)

// benchChaosServer wraps the serving handler in the fault-injecting
// middleware and returns a resilient client aimed at it.
func benchChaosServer(b *testing.B, plan chaoshttp.Plan, retries int) *client.Client {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	s, err := serve.New(ctx, serve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(chaoshttp.Middleware(1, plan, s.Handler()))
	b.Cleanup(ts.Close)
	return client.New(client.Config{
		BaseURL:     ts.URL,
		HTTP:        ts.Client(),
		Seed:        1,
		Retries:     retries,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
	})
}

func benchChaosRequest() serve.EstimateRequest {
	salt := uint64(1)
	return serve.EstimateRequest{
		System:  serve.SystemSpec{N: 10000, Seed: 3, Synthetic: true},
		Epsilon: 0.1, Delta: 0.1,
		Salt: &salt,
		Solo: true,
	}
}

// BenchmarkServeChaosClean is the control: the chaos middleware is mounted
// but draws no faults, so ns/op is the pure overhead of the injection
// layer plus the resilient client over the solo serving path.
func BenchmarkServeChaosClean(b *testing.B) {
	c := benchChaosServer(b, chaoshttp.Severity(0), 3)
	req := benchChaosRequest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Estimate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	report(b, c.Stats())
}

// BenchmarkServeChaosFaulty drives the same request through a faulting
// wire (resets, truncations, 503s — stalls kept short so the benchmark
// measures retry work, not injected sleep) and reports retries/op and
// errors/op alongside the per-success latency. A request can draw faults
// on every attempt, so terminal errors are counted, not fatal.
func BenchmarkServeChaosFaulty(b *testing.B) {
	plan := chaoshttp.Plan{
		Reset: 0.10, Truncate: 0.10, Err5xx: 0.10,
		Stall: 0.05, StallDelay: 2 * time.Millisecond,
		BurstLen: 3,
	}
	c := benchChaosServer(b, plan, 8)
	req := benchChaosRequest()
	errs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Estimate(context.Background(), req); err != nil {
			errs++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(errs)/float64(b.N), "errors/op")
	report(b, c.Stats())
}

func report(b *testing.B, st client.Stats) {
	b.ReportMetric(float64(st.Retries)/float64(b.N), "retries/op")
	b.ReportMetric(float64(st.Shed)/float64(b.N), "sheds/op")
}
