package serve

import (
	"testing"
	"time"

	"rfidest/internal/obs"
)

// fakeClock is a hand-advanced wall clock: breaker decisions are pure
// functions of it, so every transition below is deterministic.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testBreakerSet builds a breaker table with an aggressive configuration:
// 4-outcome window, trips at half bad, 5s cool-down, every half-open
// arrival is a probe (ProbeRatio 1 keeps the probe draw deterministic),
// two probe successes close it.
func testBreakerSet(clk *fakeClock) (*breakerSet, *obs.RequestRegistry) {
	reg := obs.NewRequestRegistry()
	s := newBreakerSet(BreakerConfig{
		Window:     4,
		MinSamples: 4,
		TripRatio:  0.5,
		CoolDown:   5 * time.Second,
		ProbeRatio: 1,
		CloseAfter: 2,
	}, 1, clk.now, reg)
	if s == nil {
		panic("breaker set unexpectedly disabled")
	}
	return s, reg
}

// mustAllow asserts one admission decision.
func mustAllow(t *testing.T, s *breakerSet, name string, want bool) time.Duration {
	t.Helper()
	ok, retryAfter := s.allow(name)
	if ok != want {
		t.Fatalf("allow(%q) = %v, want %v", name, ok, want)
	}
	return retryAfter
}

// TestBreakerLifecycle walks the full state machine on a fake clock:
// closed → trip on sustained failure → shed during cool-down → half-open
// probes → closed again after consecutive successes.
func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	s, reg := testBreakerSet(clk)

	// Below MinSamples nothing trips, no matter how bad.
	for i := 0; i < 3; i++ {
		mustAllow(t, s, "BFCE", true)
		s.record("BFCE", true)
	}
	mustAllow(t, s, "BFCE", true)
	if s.open() {
		t.Fatal("breaker tripped below MinSamples")
	}

	// The fourth bad outcome fills the window past the trip ratio.
	s.record("BFCE", true)
	if !s.open() {
		t.Fatal("breaker did not trip at MinSamples with 100% bad outcomes")
	}

	// Open: everything sheds, with the remaining cool-down as the hint.
	if ra := mustAllow(t, s, "BFCE", false); ra != 5*time.Second {
		t.Errorf("retryAfter = %v, want full 5s cool-down", ra)
	}
	clk.advance(2 * time.Second)
	if ra := mustAllow(t, s, "BFCE", false); ra != 3*time.Second {
		t.Errorf("retryAfter after 2s = %v, want 3s", ra)
	}

	// Cool-down elapsed: the next arrival half-opens and (ProbeRatio 1)
	// is admitted as a probe.
	clk.advance(3 * time.Second)
	mustAllow(t, s, "BFCE", true)
	s.record("BFCE", false)
	if !s.open() {
		t.Fatal("one probe success closed the breaker early (CloseAfter is 2)")
	}
	mustAllow(t, s, "BFCE", true)
	s.record("BFCE", false)
	if s.open() {
		t.Fatal("breaker still open after CloseAfter probe successes")
	}
	mustAllow(t, s, "BFCE", true)

	snap := reg.Snapshot()
	if len(snap.Breakers) != 1 {
		t.Fatalf("breaker snapshots = %d, want 1", len(snap.Breakers))
	}
	bk := snap.Breakers[0]
	if bk.Estimator != "BFCE" || bk.Trips != 1 || bk.Shed != 2 || bk.State != breakerClosed {
		t.Errorf("breaker metrics = %+v, want 1 trip, 2 shed, closed", bk)
	}
}

// TestBreakerHalfOpenFailureReopens: a bad probe outcome re-opens the
// breaker for a fresh full cool-down.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	s, _ := testBreakerSet(clk)
	for i := 0; i < 4; i++ {
		s.record("BFCE", true)
	}
	clk.advance(5 * time.Second)
	mustAllow(t, s, "BFCE", true) // half-open probe
	s.record("BFCE", true)        // probe fails
	if ra := mustAllow(t, s, "BFCE", false); ra != 5*time.Second {
		t.Errorf("retryAfter after failed probe = %v, want a fresh 5s cool-down", ra)
	}
}

// TestBreakerMixedOutcomesStayClosed: a bad fraction below TripRatio never
// trips, however long it goes on.
func TestBreakerMixedOutcomesStayClosed(t *testing.T) {
	clk := newFakeClock()
	s, _ := testBreakerSet(clk)
	for i := 0; i < 40; i++ {
		mustAllow(t, s, "BFCE", true)
		s.record("BFCE", i%4 == 0) // 25% bad < 50% trip ratio
	}
	if s.open() {
		t.Fatal("breaker tripped below the trip ratio")
	}
}

// TestBreakerWindowSlides: old bad outcomes age out of the ring, so a bad
// burst followed by sustained health does not trip later.
func TestBreakerWindowSlides(t *testing.T) {
	clk := newFakeClock()
	s, _ := testBreakerSet(clk)
	s.record("BFCE", true) // 1 bad in a 4-wide window
	for i := 0; i < 4; i++ {
		s.record("BFCE", false) // slides the bad outcome out entirely
	}
	s.record("BFCE", true) // 1 bad of 4 in-window: below ratio
	if s.open() {
		t.Fatal("breaker counted outcomes that slid out of the window")
	}
}

// TestBreakerIsolatesEstimators: one estimator's failures never shed
// another's traffic.
func TestBreakerIsolatesEstimators(t *testing.T) {
	clk := newFakeClock()
	s, _ := testBreakerSet(clk)
	for i := 0; i < 4; i++ {
		s.record("BFCE", true)
	}
	mustAllow(t, s, "BFCE", false)
	mustAllow(t, s, "UPE", true)
}

// TestBreakerProbeDrawDeterministic: with a fractional ProbeRatio the
// half-open admit/shed sequence is a pure function of (seed, estimator),
// identical across independently built sets.
func TestBreakerProbeDrawDeterministic(t *testing.T) {
	draws := func() []bool {
		clk := newFakeClock()
		s := newBreakerSet(BreakerConfig{
			Window: 4, MinSamples: 4, TripRatio: 0.5,
			CoolDown: time.Second, ProbeRatio: 0.25, CloseAfter: 1000,
		}, 42, clk.now, obs.NewRequestRegistry())
		for i := 0; i < 4; i++ {
			s.record("BFCE", true)
		}
		clk.advance(time.Second)
		var out []bool
		for i := 0; i < 64; i++ {
			ok, _ := s.allow("BFCE")
			out = append(out, ok)
		}
		return out
	}
	a, b := draws(), draws()
	admitted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe draw %d differs across identically seeded sets", i)
		}
		if a[i] {
			admitted++
		}
	}
	if admitted == 0 || admitted == len(a) {
		t.Errorf("probe draws admitted %d/%d; want a fractional trickle", admitted, len(a))
	}
}

// TestBreakerDisabled: a nil set (Disabled, or no clock) always admits.
func TestBreakerDisabled(t *testing.T) {
	reg := obs.NewRequestRegistry()
	clk := newFakeClock()
	if s := newBreakerSet(BreakerConfig{Disabled: true}, 1, clk.now, reg); s != nil {
		t.Error("Disabled config did not return a nil set")
	}
	if s := newBreakerSet(BreakerConfig{}, 1, nil, reg); s != nil {
		t.Error("nil clock did not return a nil set")
	}
	var s *breakerSet
	mustAllow(t, s, "BFCE", true) // nil receiver: always admit
	s.record("BFCE", true)        // and recording is a no-op
	if s.open() {
		t.Error("nil set reports open")
	}
}
