package core

import (
	"math"
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/tags"
)

// twoRounds builds two overlapping populations from one master set:
// round A holds tags [0, aEnd), round B holds [bStart, n). The overlap is
// [bStart, aEnd).
func twoRounds(t *testing.T, n, aEnd, bStart int, seed uint64) (a, b *channel.Reader) {
	t.Helper()
	master := tags.Generate(n, tags.T1, seed)
	popA := &tags.Population{Tags: master.Tags[:aEnd], Dist: master.Dist, Seed: seed}
	popB := &tags.Population{Tags: master.Tags[bStart:], Dist: master.Dist, Seed: seed}
	return channel.NewReader(channel.NewTagEngine(popA, channel.IdealRN), seed+1),
		channel.NewReader(channel.NewTagEngine(popB, channel.IdealRN), seed+2)
}

func newDiffer(t *testing.T, pn int) *Differ {
	t.Helper()
	d, err := NewDiffer(Config{}, pn, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDifferValidation(t *testing.T) {
	if _, err := NewDiffer(Config{W: -1}, 5, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewDiffer(Config{}, 0, 1); err == nil {
		t.Fatal("pn=0 accepted")
	}
	if _, err := NewDiffer(Config{}, 1024, 1); err == nil {
		t.Fatal("pn=denominator accepted")
	}
	d := newDiffer(t, 5)
	if _, err := d.Take(nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestSnapshotCardinality(t *testing.T) {
	rA, _ := twoRounds(t, 100000, 100000, 0, 7)
	d := newDiffer(t, 8) // λ = 3·(8/1024)·1e5/8192 ≈ 0.29
	s, err := d.Take(rA)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cardinality(); math.Abs(got-100000)/100000 > 0.05 {
		t.Fatalf("snapshot cardinality %v", got)
	}
	if s.Cost.TagSlots != 8192 {
		t.Fatalf("snapshot cost %+v", s.Cost)
	}
}

func TestUnionExactOverlap(t *testing.T) {
	// A = [0, 80k), B = [50k, 130k): |A∪B| = 130k, |A∩B| = 30k.
	rA, rB := twoRounds(t, 130000, 80000, 50000, 11)
	d := newDiffer(t, 8)
	sA, err := d.Take(rA)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := d.Take(rB)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Union(sA, sB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-130000)/130000 > 0.05 {
		t.Fatalf("union estimate %v, want ~130000", u)
	}
	inter, err := Intersection(sA, sB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inter-30000) > 12000 { // inclusion–exclusion stacks variance
		t.Fatalf("intersection estimate %v, want ~30000", inter)
	}
}

func TestArrivalsAndDepartures(t *testing.T) {
	// Between rounds: 20k tags left ([0, 20k)), 35k arrived ([85k, 120k)).
	rA, rB := twoRounds(t, 120000, 85000, 20000, 13)
	d := newDiffer(t, 8)
	sA, err := d.Take(rA)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := d.Take(rB)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Departures(sA, sB)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Arrivals(sA, sB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dep-20000) > 8000 {
		t.Fatalf("departures %v, want ~20000", dep)
	}
	if math.Abs(arr-35000) > 8000 {
		t.Fatalf("arrivals %v, want ~35000", arr)
	}
}

func TestIdenticalSnapshotsNoChange(t *testing.T) {
	// The same population twice: arrivals and departures must be ~0 (the
	// snapshots are bit-identical, so exactly 0).
	master := tags.Generate(50000, tags.T1, 17)
	d := newDiffer(t, 16)
	r1 := channel.NewReader(channel.NewTagEngine(master, channel.IdealRN), 18)
	r2 := channel.NewReader(channel.NewTagEngine(master, channel.IdealRN), 19)
	s1, err := d.Take(r1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.Take(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Idle.Equal(s2.Idle) {
		t.Fatal("pinned snapshots of the same population differ")
	}
	arr, err := Arrivals(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Departures(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if arr != 0 || dep != 0 {
		t.Fatalf("no-change rounds report arr=%v dep=%v", arr, dep)
	}
}

func TestSnapshotCompatibilityChecks(t *testing.T) {
	master := tags.Generate(1000, tags.T1, 21)
	r1 := channel.NewReader(channel.NewTagEngine(master, channel.IdealRN), 22)
	r2 := channel.NewReader(channel.NewTagEngine(master, channel.IdealRN), 23)
	d1 := newDiffer(t, 8)
	d2, err := NewDiffer(Config{}, 8, 99999) // different pinned seed
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d1.Take(r1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.Take(r2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Union(s1, s2); err == nil {
		t.Fatal("differing seeds accepted")
	}
	if _, err := Union(s1, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	s3 := *s1
	s3.Pn = 9
	if _, err := Union(s1, &s3); err == nil {
		t.Fatal("differing persistence accepted")
	}
	s4 := *s1
	s4.W = 4096
	if _, err := Union(s1, &s4); err == nil {
		t.Fatal("differing geometry accepted")
	}
}

func TestDifferentialStd(t *testing.T) {
	// Relative std shrinks as lambda grows toward the optimum.
	lo := DifferentialStd(50000, 3, 8192, 2, 1024)
	hi := DifferentialStd(50000, 3, 8192, 16, 1024)
	if hi >= lo {
		t.Fatalf("std did not shrink with stronger persistence: %v vs %v", hi, lo)
	}
	if !math.IsInf(DifferentialStd(0, 3, 8192, 8, 1024), 1) {
		t.Fatal("zero cardinality must report infinite std")
	}
	// Sanity of scale: at λ≈0.29, relative std ≈ sqrt((e^λ-1)/(w·λ²)) ≈ 2.2%.
	rel := DifferentialStd(100000, 3, 8192, 8, 1024) / 100000
	if rel < 0.01 || rel > 0.04 {
		t.Fatalf("relative std %v out of expected band", rel)
	}
}
