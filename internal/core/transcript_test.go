package core

import (
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/tags"
)

// TestBFCETranscript pins the protocol's over-the-air dialogue: parameter
// broadcasts and frames in the order Algorithm 1 prescribes — probe
// window(s), 1024-slot rough frame, 8192-slot accurate frame.
func TestBFCETranscript(t *testing.T) {
	pop := tags.Generate(100000, tags.T1, 121)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 122)
	var events []channel.TraceEvent
	r.SetTrace(func(e channel.TraceEvent) { events = append(events, e) })

	res, err := MustNew(Config{}).Estimate(r)
	if err != nil {
		t.Fatal(err)
	}

	// Expected shape: broadcast, probeRounds+1 probe frames with a
	// 32-bit numerator broadcast between each, then broadcast + rough
	// frame, then broadcast + final frame.
	var frames []channel.TraceEvent
	broadcasts := 0
	for _, e := range events {
		switch e.Kind {
		case "frame":
			frames = append(frames, e)
		case "broadcast":
			broadcasts++
		default:
			t.Fatalf("unexpected event kind %q in BFCE transcript", e.Kind)
		}
	}
	wantFrames := res.ProbeRounds + 1 + 2
	if len(frames) != wantFrames {
		t.Fatalf("transcript has %d frames, want %d", len(frames), wantFrames)
	}
	for i := 0; i <= res.ProbeRounds; i++ {
		if frames[i].Observe != 32 {
			t.Fatalf("probe frame %d observed %d slots, want 32", i, frames[i].Observe)
		}
	}
	rough := frames[len(frames)-2]
	final := frames[len(frames)-1]
	if rough.Observe != 1024 || rough.W != 8192 {
		t.Fatalf("rough frame: %+v", rough)
	}
	if final.Observe != 8192 || final.W != 8192 {
		t.Fatalf("final frame: %+v", final)
	}
	if final.K != 3 {
		t.Fatalf("final frame k = %d", final.K)
	}
	// Broadcasts: 3 parameter sets plus one numerator per probe round.
	if broadcasts != 3+res.ProbeRounds {
		t.Fatalf("transcript has %d broadcasts, want %d", broadcasts, 3+res.ProbeRounds)
	}
	// The final frame's persistence must be the minimal feasible p_o.
	if want := float64(res.PoNum) / 1024; final.P != want {
		t.Fatalf("final persistence %v, want %v", final.P, want)
	}
}
