package core

import (
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/tags"
)

// BenchmarkOptimalPn measures the brute-force minimal-p search of §IV-D.
func BenchmarkOptimalPn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = OptimalPn(250000, 3, 8192, 1024, 0.05, 0.05)
	}
}

// BenchmarkGammaBounds measures the Fig. 4 grid scan (1023² points).
func BenchmarkGammaBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = GammaBounds(3, 1024)
	}
}

// BenchmarkEstimateTagLevel measures one full BFCE estimation over 100k
// materialized tags.
func BenchmarkEstimateTagLevel(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 1)
	est := MustNew(Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), uint64(i))
		if _, err := est.Estimate(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotUnion measures differential set algebra on two pinned
// 8192-bit snapshots.
func BenchmarkSnapshotUnion(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 2)
	d, err := NewDiffer(Config{}, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	s1, err := d.Take(channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 4))
	if err != nil {
		b.Fatal(err)
	}
	s2, err := d.Take(channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Union(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}
