package core

import (
	"math"
	"testing"
	"testing/quick"

	"rfidest/internal/stats"
)

// TestPropertyRhoInverse: EstimateFromRho is the exact inverse of
// RhoExpected over the protocol's whole operating range.
func TestPropertyRhoInverse(t *testing.T) {
	f := func(nRaw uint32, pnRaw uint16) bool {
		n := float64(nRaw%20_000_000) + 1
		pn := int(pnRaw%1023) + 1
		p := float64(pn) / 1024
		rho := RhoExpected(n, 3, p, 8192)
		if rho < 1e-290 { // denormal/underflow: λ too large to invert
			return true
		}
		back := EstimateFromRho(rho, 3, p, 8192)
		return math.Abs(back-n)/n < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLambdaLinear: λ is linear in each of n, p, k and inverse in w.
func TestPropertyLambdaLinear(t *testing.T) {
	f := func(nRaw uint16, pnRaw uint8) bool {
		n := float64(nRaw) + 1
		p := (float64(pnRaw) + 1) / 1024
		l := Lambda(n, 3, p, 8192)
		return math.Abs(Lambda(2*n, 3, p, 8192)-2*l) < 1e-9 &&
			math.Abs(Lambda(n, 6, p, 8192)-2*l) < 1e-9 &&
			math.Abs(Lambda(n, 3, p, 16384)-l/2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFeasibleMinimality: whenever OptimalPn succeeds, the returned
// numerator is feasible and its predecessor is not.
func TestPropertyFeasibleMinimality(t *testing.T) {
	d := stats.D(0.05)
	f := func(nRaw uint32) bool {
		nLow := float64(nRaw%2_000_000) + 600
		pn, ok := OptimalPn(nLow, 3, 8192, 1024, 0.05, 0.05)
		if !ok {
			return true
		}
		if !Feasible(nLow, 3, float64(pn)/1024, 8192, 0.05, d) {
			return false
		}
		if pn == 1 {
			return true
		}
		return !Feasible(nLow, 3, float64(pn-1)/1024, 8192, 0.05, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClampRhoBounds: clampRho always lands strictly inside (0, 1)
// and is the identity on non-degenerate inputs.
func TestPropertyClampRhoBounds(t *testing.T) {
	f := func(raw uint16, mRaw uint16) bool {
		m := int(mRaw%8192) + 2
		rho := float64(raw) / math.MaxUint16 // [0, 1]
		got, degenerate := clampRho(rho, m)
		if got <= 0 || got >= 1 {
			return false
		}
		lo := 0.5 / float64(m)
		if rho > lo && rho < 1-lo {
			return !degenerate && got == rho
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyF1F2Antisymmetry: f1 < 0 < f2 for every valid operating
// point, and both shrink toward 0 as ε shrinks.
func TestPropertyF1F2Antisymmetry(t *testing.T) {
	f := func(nRaw uint32, pnRaw uint8) bool {
		n := float64(nRaw%10_000_000) + 1
		p := (float64(pnRaw) + 1) / 1024
		if Lambda(n, 3, p, 8192) > 30 {
			// Saturated vectors: e^{-λ} underflows and the statistics
			// degenerate (Feasible is false there regardless).
			return true
		}
		f1 := F1(n, 3, p, 8192, 0.05)
		f2 := F2(n, 3, p, 8192, 0.05)
		if !(f1 < 0 && f2 > 0) {
			return false
		}
		f1s := F1(n, 3, p, 8192, 0.01)
		f2s := F2(n, 3, p, 8192, 0.01)
		return f1s > f1 && f2s < f2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGammaDecreasing: γ strictly decreases in both ρ and p.
func TestPropertyGammaDecreasing(t *testing.T) {
	f := func(a, b uint8) bool {
		rho := (float64(a%200) + 1) / 256
		p := (float64(b%200) + 1) / 256
		g := Gamma(rho, p, 3)
		return Gamma(rho+1.0/256, p, 3) < g && Gamma(rho, p+1.0/256, 3) < g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
