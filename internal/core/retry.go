package core

import (
	"context"

	"rfidest/internal/channel"
)

// RetryPolicy bounds the re-execution of degenerate BFCE rounds. The zero
// policy never retries, so EstimateRetry with it is exactly Estimate.
type RetryPolicy struct {
	// MaxRetries is how many times a saturated or infeasible round may be
	// re-run (0 = never).
	MaxRetries int
	// BudgetSeconds caps the cumulative simulated air time across the
	// round and its re-runs; once the total reaches it, no further re-run
	// starts. 0 means unbounded.
	BudgetSeconds float64
}

// EstimateRetry runs Estimate and re-runs it while the result is saturated
// (a phase observed a degenerate all-idle/all-busy vector) or infeasible
// (Theorem 3 had no valid p_o at the rough lower bound), within the
// policy's attempt and air-time budget. Every attempt is a fresh Stepper
// driven by the shared round loop, so ctx cancels between rounds — mid-
// protocol, not just between attempts. A nil ctx disables cancellation.
//
// Each re-run continues the session's seed stream, so its frames carry
// fresh seeds — the "fresh salts" a real reader would broadcast after a
// failed round — while remaining a pure function of the session salt. The
// returned Result carries the last attempt's estimate and diagnostics with
// the cost counters, air time and probe rounds summed over every attempt,
// and Retries counting the re-runs.
func (e *Estimator) EstimateRetry(ctx context.Context, r *channel.Reader, pol RetryPolicy) (Result, error) {
	total, err := e.EstimateContext(ctx, r)
	if err != nil {
		return total, err
	}
	for (total.Saturated || !total.Feasible) && total.Retries < pol.MaxRetries {
		if pol.BudgetSeconds > 0 && total.Seconds >= pol.BudgetSeconds {
			break
		}
		res, err := e.EstimateContext(ctx, r)
		if err != nil {
			return total, err
		}
		res.Retries = total.Retries + 1
		res.ProbeRounds += total.ProbeRounds
		res.Seconds += total.Seconds
		res.Cost.Add(total.Cost)
		total = res
	}
	return total, nil
}
