// Package core implements BFCE, the Bloom Filter based Cardinality
// Estimator of Li, He and Liu (ICPP 2015) — the paper's primary
// contribution.
//
// BFCE estimates the number n of tags in one round of two phases, using a
// constant 1024 + 8192 bit-slots. Tags build a w-bit Bloom vector B in a
// distributed fashion: each tag selects k slots with seeded hashes and
// responds in each selected slot with persistence probability p. The reader
// senses the channel; with B(i) = 1 for an idle slot, Theorem 1 gives
// P(B(i)=1) = e^{-λ} with λ = k·p·n/w, so the idle fraction ρ̄ yields
//
//	n̂ = -w·ln(ρ̄) / (k·p)                                (Theorem 2)
//
// The first (rough) phase finds a lower bound n̂_low = c·n̂_r; the second
// phase picks the minimal persistence p_o for which Theorem 3's feasibility
// conditions hold at n̂_low, which guarantees the final ρ̄ lands inside the
// (ε, δ) window at the true n (Theorem 4).
//
// This file holds the pure math of §IV; bfce.go drives the protocol.
package core

import (
	"math"

	"rfidest/internal/stats"
)

// Lambda returns λ = k·p·n/w, the expected per-slot load of the Bloom
// frame (Theorem 1).
func Lambda(n float64, k int, p float64, w int) float64 {
	return float64(k) * p * n / float64(w)
}

// RhoExpected returns E[ρ̄] = e^{-λ}, the expected idle fraction.
func RhoExpected(n float64, k int, p float64, w int) float64 {
	return math.Exp(-Lambda(n, k, p, w))
}

// SigmaX returns σ(X) = sqrt(e^{-λ}(1−e^{-λ})), the standard deviation of
// one slot's Bernoulli observation (Theorem 1).
func SigmaX(lambda float64) float64 {
	el := math.Exp(-lambda)
	return math.Sqrt(el * (1 - el))
}

// EstimateFromRho inverts Theorem 1: n̂ = -w·ln(ρ̄)/(k·p) (Equation 3).
// It returns +Inf for ρ̄ = 0 and 0 for ρ̄ = 1; callers must avoid feeding
// the two degenerate vectors (§IV-B calls them "the two exceptions").
func EstimateFromRho(rho float64, k int, p float64, w int) float64 {
	return -float64(w) * math.Log(rho) / (float64(k) * p)
}

// F1 is the left feasibility statistic of Theorem 3,
//
//	f1 = (e^{-λ(1+ε)} − e^{-λ}) / (σ(X)/√w),
//
// evaluated at cardinality n. It is ≤ 0 and monotonically decreasing in n
// while λ is small (Fig. 5).
func F1(n float64, k int, p float64, w int, eps float64) float64 {
	lambda := Lambda(n, k, p, w)
	return (math.Exp(-lambda*(1+eps)) - math.Exp(-lambda)) /
		(SigmaX(lambda) / math.Sqrt(float64(w)))
}

// F2 is the right feasibility statistic of Theorem 3,
//
//	f2 = (e^{-λ(1−ε)} − e^{-λ}) / (σ(X)/√w),
//
// ≥ 0 and monotonically increasing in n while λ is small (Fig. 5).
func F2(n float64, k int, p float64, w int, eps float64) float64 {
	lambda := Lambda(n, k, p, w)
	return (math.Exp(-lambda*(1-eps)) - math.Exp(-lambda)) /
		(SigmaX(lambda) / math.Sqrt(float64(w)))
}

// Feasible reports whether persistence p meets Theorem 3 at cardinality n:
// f1 ≤ −d and f2 ≥ d, where d = √2·erfinv(1−δ).
func Feasible(n float64, k int, p float64, w int, eps, d float64) bool {
	if n <= 0 || p <= 0 {
		return false
	}
	return F1(n, k, p, w, eps) <= -d && F2(n, k, p, w, eps) >= d
}

// OptimalPn brute-forces the minimal numerator pn ∈ [1, pdenom−1] such that
// p = pn/pdenom satisfies Theorem 3 at the rough lower bound nLow (§IV-D:
// "we get the approximate optimal p_o via brute-force calculation ... We
// take the minimal p_o that satisfies Equation 9"). ok is false when no
// numerator is feasible, which happens when nLow is below the protocol's
// accuracy floor (λ cannot reach the feasible window even at p close to 1)
// or beyond its scalability ceiling (λ overshoots it even at p = 1/pdenom).
func OptimalPn(nLow float64, k, w, pdenom int, eps, delta float64) (pn int, ok bool) {
	d := stats.D(delta)
	for pn = 1; pn < pdenom; pn++ {
		if Feasible(nLow, k, float64(pn)/float64(pdenom), w, eps, d) {
			return pn, true
		}
	}
	return 0, false
}

// FallbackPn returns the numerator whose λ at nLow is closest to
// LambdaStar, the variance-minimizing per-slot load of the zero estimator.
// BFCE uses it when OptimalPn finds no feasible numerator: the estimate is
// then best-effort rather than (ε, δ)-guaranteed.
func FallbackPn(nLow float64, k, w, pdenom int) int {
	if nLow <= 0 {
		return pdenom - 1
	}
	target := LambdaStar * float64(w) / (float64(k) * nLow) * float64(pdenom)
	pn := int(math.Round(target))
	if pn < 1 {
		pn = 1
	}
	if pn > pdenom-1 {
		pn = pdenom - 1
	}
	return pn
}

// LambdaStar is the per-slot load minimizing the variance of the zero
// estimator: the root of λe^λ = 2(e^λ − 1), ≈ 1.5936.
const LambdaStar = 1.5936242600400401

// RelStd predicts the relative standard deviation of the estimate at an
// operating point: by the delta method on n̂ = −w·ln(ρ̄)/(k·p) with
// Var(ρ̄) = e^{-λ}(1−e^{-λ})/w,
//
//	σ(n̂)/n = sqrt( (e^λ − 1) / (w·λ²) ).
//
// Callers use it to convert a measured deviation into sigmas, or to size a
// custom w for a target precision. It returns +Inf at λ ≤ 0.
func RelStd(n float64, k int, p float64, w int) float64 {
	lambda := Lambda(n, k, p, w)
	if lambda <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Expm1(lambda) / (float64(w) * lambda * lambda))
}

// Gamma is γ = −ln(ρ̄)/(k·p), the per-w-slot estimation factor of §IV-B:
// n̂ = γ·w.
func Gamma(rho, p float64, k int) float64 {
	return -math.Log(rho) / (float64(k) * p)
}

// GammaBounds evaluates γ over the grid p, ρ̄ ∈ {1/pdenom, …,
// (pdenom−1)/pdenom} and returns its extrema. With k = 3 and pdenom = 1024
// this reproduces Fig. 4's range 0.000326 ≤ γ ≤ 2365.9, bounding the
// cardinalities a w-slot vector can express: 0.000326·w ≤ n̂ ≤ 2365.9·w.
func GammaBounds(k, pdenom int) (min, max float64) {
	min = math.Inf(1)
	max = math.Inf(-1)
	for i := 1; i < pdenom; i++ {
		p := float64(i) / float64(pdenom)
		for j := 1; j < pdenom; j++ {
			rho := float64(j) / float64(pdenom)
			g := Gamma(rho, p, k)
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
	}
	return min, max
}

// MaxCardinality returns the largest cardinality a w-slot BFCE vector can
// express, γ_max·w (§IV-B: "the maximum cardinality that the estimator can
// estimate exceeds 19 millions" for w = 8192).
func MaxCardinality(k, w, pdenom int) float64 {
	_, gmax := GammaBounds(k, pdenom)
	return gmax * float64(w)
}
