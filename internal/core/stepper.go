package core

import (
	"errors"

	"rfidest/internal/channel"
	"rfidest/internal/obs"
	"rfidest/internal/timing"
)

// Stepper is BFCE as a resumable round state machine: the probe, rough and
// accurate phases of §IV expressed as channel.RoundSpec plans and Absorb
// transitions, with no direct session access. The shared round driver
// (channel.Drive / channel.StepRound) executes the plans; the Stepper only
// decides what the next round looks like and folds what came back.
//
// The machine replays the monolithic loop exactly — same broadcast sizes,
// same frame geometries, same seed-draw order (one fresh seed for the
// whole probe, then one per remaining phase), same clamp and break
// conditions — so a driven Stepper is bit-identical to the pre-refactor
// Estimate.
//
// A Stepper is a plain value: Snapshot copies it, Restore overwrites it,
// and a restored copy resumes mid-protocol (the held probe seed travels
// inside the state, not in the driver).
type Stepper struct {
	cfg Config
	res Result

	state stepState
	round int    // probe rounds executed so far
	seed  uint64 // held probe frame seed (valid once seeded)

	probePn int  // current probe numerator
	seeded  bool // a probe seed has been drawn and held
	fast    bool // warm accurate-only round (Monitor FastRounds)
}

type stepState uint8

const (
	stepProbe stepState = iota
	stepRough
	stepAccurate
	stepDone
)

// Stepper returns a fresh round state machine for one full protocol run
// under the estimator's configuration.
func (e *Estimator) Stepper() *Stepper {
	return &Stepper{cfg: e.cfg, probePn: e.cfg.InitialPn}
}

// newFastStepper builds the Monitor's warm accurate-only round: probe and
// rough are skipped, the previous round's estimate (discounted by the
// confidence interval and by c) stands in for the rough lower bound, and
// the single full frame runs outside any named phase span — matching the
// monolithic fastRound to the bit.
func newFastStepper(cfg Config, warmPn int, warmN float64) *Stepper {
	s := &Stepper{cfg: cfg, state: stepAccurate, fast: true}
	s.res.PsNum = warmPn
	s.res.Rough = warmN
	s.res.LowerBound = cfg.C * (1 - cfg.Epsilon) * warmN
	if s.res.LowerBound < 1 {
		s.res.LowerBound = 1
	}
	po, feasible := OptimalPn(s.res.LowerBound, cfg.K, cfg.W, cfg.PDenom, cfg.Epsilon, cfg.Delta)
	if !feasible {
		po = FallbackPn(s.res.LowerBound, cfg.K, cfg.W, cfg.PDenom)
	}
	s.res.Feasible = feasible
	s.res.PoNum = po
	return s
}

// Plan implements channel.Stepper.
func (s *Stepper) Plan() channel.RoundSpec {
	cfg := s.cfg
	switch s.state {
	case stepProbe:
		spec := channel.RoundSpec{
			Phase: obs.PhaseProbe,
			Frame: channel.FrameRequest{
				W:       cfg.W,
				K:       cfg.K,
				P:       float64(s.probePn) / float64(cfg.PDenom),
				Observe: cfg.ProbeWindow,
			},
		}
		if s.round == 0 && !s.seeded {
			// First probe round: the reader broadcasts the k seeds and the
			// starting numerator once; the driver draws the frame seed all
			// probe rounds will share.
			spec.Broadcast = s.paramBits()
		} else {
			// Re-probe: only the adjusted numerator is re-broadcast, and
			// the held seed is reused so raising pn monotonically adds
			// responders.
			spec.Broadcast = timing.PnBits
			spec.ReuseSeed = true
			spec.Frame.Seed = s.seed
		}
		return spec
	case stepRough:
		probes := s.res.ProbeRounds
		return channel.RoundSpec{
			Phase: obs.PhaseRough,
			// The probe-rounds hook fires between the probe span's end and
			// the rough span's start, as the monolithic loop did.
			Report:    func(o obs.Observer) { o.ProbeRounds(probes) },
			Broadcast: s.paramBits(),
			Frame: channel.FrameRequest{
				W:       cfg.W,
				K:       cfg.K,
				P:       float64(s.res.PsNum) / float64(cfg.PDenom),
				Observe: cfg.RoughSlots,
			},
		}
	case stepAccurate:
		spec := channel.RoundSpec{
			Phase:     obs.PhaseAccurate,
			Broadcast: s.paramBits(),
			Frame: channel.FrameRequest{
				W: cfg.W,
				K: cfg.K,
				P: float64(s.res.PoNum) / float64(cfg.PDenom),
			},
		}
		if s.fast {
			// A warm fast round runs outside any named phase span.
			spec.Phase = obs.PhaseRun
		}
		return spec
	default:
		// Plan after done is a driver contract violation; return an inert
		// zero-slot spec rather than panicking in protocol code.
		return channel.RoundSpec{Frame: channel.FrameRequest{W: 1, K: 1, P: 0}}
	}
}

// paramBits is the per-phase reader broadcast: k 32-bit seeds plus the
// 32-bit persistence numerator (w and k are preloaded on tags, §IV-E.1).
func (s *Stepper) paramBits() int {
	return s.cfg.K*timing.SeedBits + timing.PnBits
}

// Absorb implements channel.Stepper.
func (s *Stepper) Absorb(o channel.RoundObs) (bool, error) {
	cfg := s.cfg
	switch s.state {
	case stepProbe:
		if !s.seeded {
			s.seed = o.Seed
			s.seeded = true
		}
		busy := o.Frame.CountBusy()
		settled := false
		switch {
		case busy > 0 && busy < cfg.ProbeWindow:
			settled = true // both idle and busy slots appeared: p_s is valid
		case s.round+1 >= cfg.MaxProbeRounds:
			settled = true // give up; the rough phase clamps if still degenerate
		case busy == 0:
			if s.probePn >= cfg.PDenom-1 {
				settled = true // even the largest p draws no response
			} else {
				s.probePn += 2
				if s.probePn > cfg.PDenom-1 {
					s.probePn = cfg.PDenom - 1
				}
			}
		default: // all busy
			if s.probePn <= 1 {
				settled = true // even the smallest p saturates the window
			} else {
				s.probePn--
			}
		}
		if settled {
			s.res.PsNum = s.probePn
			s.state = stepRough
		} else {
			s.res.ProbeRounds++
			s.round++
		}
		return false, nil

	case stepRough:
		s.res.RhoRough, s.res.Saturated = clampRho(o.Frame.RhoIdle(), cfg.RoughSlots)
		s.res.Rough = EstimateFromRho(s.res.RhoRough, cfg.K, float64(s.res.PsNum)/float64(cfg.PDenom), cfg.W)
		s.res.LowerBound = cfg.C * s.res.Rough
		if s.res.LowerBound < 1 {
			s.res.LowerBound = 1
		}
		po, feasible := OptimalPn(s.res.LowerBound, cfg.K, cfg.W, cfg.PDenom, cfg.Epsilon, cfg.Delta)
		if !feasible {
			po = FallbackPn(s.res.LowerBound, cfg.K, cfg.W, cfg.PDenom)
		}
		s.res.Feasible = feasible
		s.res.PoNum = po
		s.state = stepAccurate
		return false, nil

	case stepAccurate:
		rho, saturated := clampRho(o.Frame.RhoIdle(), cfg.W)
		s.res.RhoFinal = rho
		s.res.Saturated = s.res.Saturated || saturated
		s.res.Estimate = EstimateFromRho(rho, cfg.K, float64(s.res.PoNum)/float64(cfg.PDenom), cfg.W)
		s.state = stepDone
		return true, nil

	default:
		return true, errors.New("core: Absorb after protocol completion")
	}
}

// Result returns the protocol outcome accumulated so far. Cost and Seconds
// are left zero: the driver that owns the session clock stamps them (see
// Estimator.EstimateContext), keeping the Stepper free of session state.
func (s *Stepper) Result() Result { return s.res }

// Done reports whether the protocol has completed its accurate phase.
func (s *Stepper) Done() bool { return s.state == stepDone }

// Snapshot copies the machine's state. The copy is self-contained — the
// held probe seed and every accumulated diagnostic travel with it — so
// Restore on a fresh Stepper resumes the run mid-protocol.
func (s *Stepper) Snapshot() Stepper { return *s }

// Restore overwrites the machine's state with a snapshot.
func (s *Stepper) Restore(snap Stepper) { *s = snap }
