package core

import (
	"context"
	"errors"
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// Config carries BFCE's protocol parameters. DefaultConfig returns the
// paper's settings; zero-valued fields of a custom Config are filled with
// the defaults by Normalize.
type Config struct {
	W       int     // Bloom vector length (paper: 8192)
	K       int     // hash functions per tag (paper: 3)
	C       float64 // rough lower-bound coefficient (paper: 0.5, range [0.1, 0.9])
	Epsilon float64 // confidence interval ε of the (ε, δ) requirement
	Delta   float64 // error probability δ of the (ε, δ) requirement
	PDenom  int     // persistence-probability denominator (paper: 2^10)

	InitialPn      int // probe starting numerator (paper: 2^3)
	ProbeWindow    int // bit-slots observed per probe round (paper: 32)
	RoughSlots     int // bit-slots observed in the rough phase (paper: 1024)
	MaxProbeRounds int // safety bound on probe adjustments
}

// DefaultConfig returns the configuration used throughout the paper:
// w = 8192, k = 3, c = 0.5, (ε, δ) = (0.05, 0.05), p quantized to /1024,
// probe starting at 8/1024 over 32-slot windows, rough phase cut at 1024
// slots.
func DefaultConfig() Config {
	return Config{
		W:              8192,
		K:              3,
		C:              0.5,
		Epsilon:        0.05,
		Delta:          0.05,
		PDenom:         1024,
		InitialPn:      8,
		ProbeWindow:    32,
		RoughSlots:     1024,
		MaxProbeRounds: 768,
	}
}

// Normalize fills zero-valued fields with the paper defaults and validates
// the result.
func (c Config) Normalize() (Config, error) {
	def := DefaultConfig()
	if c.W == 0 {
		c.W = def.W
	}
	if c.K == 0 {
		c.K = def.K
	}
	if c.C == 0 { //lint:allow floatcmp exact zero-value check for an unset field; no arithmetic feeds it
		c.C = def.C
	}
	if c.Epsilon == 0 { //lint:allow floatcmp exact zero-value check for an unset field; no arithmetic feeds it
		c.Epsilon = def.Epsilon
	}
	if c.Delta == 0 { //lint:allow floatcmp exact zero-value check for an unset field; no arithmetic feeds it
		c.Delta = def.Delta
	}
	if c.PDenom == 0 {
		c.PDenom = def.PDenom
	}
	if c.InitialPn == 0 {
		c.InitialPn = def.InitialPn
	}
	if c.ProbeWindow == 0 {
		c.ProbeWindow = def.ProbeWindow
	}
	if c.RoughSlots == 0 {
		c.RoughSlots = def.RoughSlots
	}
	if c.MaxProbeRounds == 0 {
		c.MaxProbeRounds = def.MaxProbeRounds
	}
	switch {
	case c.W <= 0:
		return c, errors.New("core: W must be positive")
	case c.K <= 0:
		return c, errors.New("core: K must be positive")
	// The float ranges are phrased positively (via stats helpers) so NaN
	// fails them: a negated `<= 0 || > 1` check lets NaN through because
	// every comparison against NaN is false.
	case !(c.C > 0 && c.C <= 1):
		return c, errors.New("core: C must be in (0, 1]")
	case !stats.InUnitInterval(c.Epsilon):
		return c, errors.New("core: Epsilon must be in (0, 1)")
	case !stats.InUnitInterval(c.Delta):
		return c, errors.New("core: Delta must be in (0, 1)")
	case c.PDenom < 2:
		return c, errors.New("core: PDenom must be at least 2")
	case c.InitialPn < 1 || c.InitialPn >= c.PDenom:
		return c, errors.New("core: InitialPn out of [1, PDenom)")
	case c.ProbeWindow < 1 || c.ProbeWindow > c.W:
		return c, errors.New("core: ProbeWindow out of [1, W]")
	case c.RoughSlots < 1 || c.RoughSlots > c.W:
		return c, errors.New("core: RoughSlots out of [1, W]")
	case c.MaxProbeRounds < 1:
		return c, errors.New("core: MaxProbeRounds must be positive")
	}
	return c, nil
}

// Result reports one BFCE estimation run.
type Result struct {
	Estimate   float64 // final n̂
	Rough      float64 // n̂_r from the rough phase
	LowerBound float64 // n̂_low = c·n̂_r
	PsNum      int     // probe-phase persistence numerator p_s·PDenom
	PoNum      int     // accurate-phase persistence numerator p_o·PDenom

	ProbeRounds int  // probe adjustments performed
	Feasible    bool // Theorem 3 had a feasible p_o at n̂_low
	Saturated   bool // a phase saw an all-0s/all-1s vector and was clamped
	Retries     int  // degenerate-round re-runs performed (EstimateRetry)

	RhoRough float64 // idle fraction observed in the rough phase
	RhoFinal float64 // idle fraction observed in the accurate phase

	Cost    timing.Cost // communication counters of the whole run
	Seconds float64     // air time under the session profile
}

// Estimator runs the BFCE protocol over a channel session.
type Estimator struct {
	cfg Config
}

// New returns an Estimator for cfg (zero fields defaulted).
func New(cfg Config) (*Estimator, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	return &Estimator{cfg: cfg}, nil
}

// MustNew is New for configurations known to be valid; it panics otherwise.
func MustNew(cfg Config) *Estimator {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the estimator's normalized configuration.
func (e *Estimator) Config() Config { return e.cfg }

// Name implements the estimator registry convention.
func (e *Estimator) Name() string { return "BFCE" }

// Estimate runs the full two-phase protocol of §IV over the session r and
// returns the estimation result. The error is non-nil only for channel
// misuse (nil session); degenerate observations are reported through
// Result.Saturated/Feasible rather than failing the run, matching the
// protocol's behaviour of always producing an estimate.
//
// Estimate is EstimateContext without cancellation: the protocol logic
// lives in the Stepper round state machine (stepper.go) and the shared
// round driver executes it.
func (e *Estimator) Estimate(r *channel.Reader) (Result, error) {
	return e.EstimateContext(nil, r)
}

// EstimateContext is Estimate with per-round cancellation: ctx is checked
// before every protocol round, and a cancelled run returns ctx's error
// with any open phase span closed. The round in flight always completes,
// so cancellation leaves the session's seed stream at a round boundary. A
// nil ctx disables the checks.
func (e *Estimator) EstimateContext(ctx context.Context, r *channel.Reader) (Result, error) {
	return driveStepper(ctx, r, e.Stepper())
}

// driveStepper runs a BFCE round machine over the session via the shared
// driver and stamps the cost counters the machine itself cannot see. It is
// the one execution path under Estimate, EstimateContext, EstimateRetry
// and the Monitor's rounds.
func driveStepper(ctx context.Context, r *channel.Reader, st *Stepper) (Result, error) {
	if r == nil {
		return Result{}, errors.New("core: nil session")
	}
	startCost := r.Cost()
	if err := channel.Drive(ctx, r, st); err != nil {
		return Result{}, err
	}
	res := st.Result()
	res.Cost = r.Cost().Sub(startCost)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// clampRho keeps ρ̄ away from the two degenerate values 0 and 1, which make
// Equation 3 blow up (§IV-B). A fully busy (or idle) observation of m slots
// is indistinguishable from ρ̄ < 1/m (resp. > 1−1/m), so the clamp maps it
// to half that resolution bound.
func clampRho(rho float64, m int) (clamped float64, wasDegenerate bool) {
	lo := 0.5 / float64(m)
	if rho <= 0 {
		return lo, true
	}
	if rho >= 1 {
		return 1 - lo, true
	}
	return rho, false
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("n̂=%.0f (rough=%.0f low=%.0f ps=%d po=%d probes=%d feasible=%v) %s",
		r.Estimate, r.Rough, r.LowerBound, r.PsNum, r.PoNum, r.ProbeRounds, r.Feasible, r.Cost)
}
