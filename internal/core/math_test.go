package core

import (
	"math"
	"testing"

	"rfidest/internal/stats"
)

func TestLambda(t *testing.T) {
	// λ = k·p·n/w: 3·0.1·8192/8192 = 0.3.
	if got := Lambda(8192, 3, 0.1, 8192); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Lambda = %v", got)
	}
}

func TestRhoExpectedAndInverse(t *testing.T) {
	// EstimateFromRho must invert RhoExpected exactly.
	for _, n := range []float64{1000, 50000, 500000, 5e6} {
		rho := RhoExpected(n, 3, 0.01, 8192)
		back := EstimateFromRho(rho, 3, 0.01, 8192)
		if math.Abs(back-n)/n > 1e-9 {
			t.Fatalf("inverse failed at n=%v: %v", n, back)
		}
	}
}

func TestEstimateFromRhoDegenerate(t *testing.T) {
	if !math.IsInf(EstimateFromRho(0, 3, 0.1, 8192), 1) {
		t.Fatal("rho=0 must estimate +Inf")
	}
	if EstimateFromRho(1, 3, 0.1, 8192) != 0 {
		t.Fatal("rho=1 must estimate 0")
	}
}

func TestSigmaXShape(t *testing.T) {
	// σ(X) peaks at e^{-λ} = 1/2 (λ = ln 2) with value 0.5 — the paper's
	// σ(x)_max = 0.5.
	if got := SigmaX(math.Ln2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SigmaX(ln2) = %v", got)
	}
	if SigmaX(0.001) > 0.1 || SigmaX(10) > 0.1 {
		t.Fatal("SigmaX must vanish at the extremes")
	}
}

func TestF1F2Signs(t *testing.T) {
	for _, n := range []float64{1000, 1e4, 1e5, 1e6} {
		if F1(n, 3, 0.01, 8192, 0.05) >= 0 {
			t.Fatalf("F1(%v) not negative", n)
		}
		if F2(n, 3, 0.01, 8192, 0.05) <= 0 {
			t.Fatalf("F2(%v) not positive", n)
		}
	}
}

func TestF1F2MonotoneSmallP(t *testing.T) {
	// Fig. 5: with small p, f1 decreases and f2 increases in n.
	const p = 3.0 / 1024
	prev1, prev2 := math.Inf(1), math.Inf(-1)
	for n := 50000.0; n <= 1e6; n += 50000 {
		f1 := F1(n, 3, p, 8192, 0.05)
		f2 := F2(n, 3, p, 8192, 0.05)
		if f1 >= prev1 {
			t.Fatalf("f1 not decreasing at n=%v", n)
		}
		if f2 <= prev2 {
			t.Fatalf("f2 not increasing at n=%v", n)
		}
		prev1, prev2 = f1, f2
	}
}

func TestFeasibleWindow(t *testing.T) {
	d := stats.D(0.05)
	// λ = 0.19·... : n=500000, p=3/1024 → λ=0.537: feasible for (.05,.05).
	if !Feasible(500000, 3, 3.0/1024, 8192, 0.05, d) {
		t.Fatal("expected feasible point rejected")
	}
	// Tiny λ: far too little signal.
	if Feasible(100, 3, 1.0/1024, 8192, 0.05, d) {
		t.Fatal("infeasible point accepted (tiny lambda)")
	}
	// Huge λ: vector nearly all busy.
	if Feasible(5e7, 3, 1023.0/1024, 8192, 0.05, d) {
		t.Fatal("infeasible point accepted (huge lambda)")
	}
	if Feasible(-5, 3, 0.5, 8192, 0.05, d) || Feasible(100, 3, 0, 8192, 0.05, d) {
		t.Fatal("degenerate inputs accepted")
	}
}

func TestOptimalPnMinimality(t *testing.T) {
	d := stats.D(0.05)
	for _, nLow := range []float64{1000, 25000, 250000, 2.5e6} {
		pn, ok := OptimalPn(nLow, 3, 8192, 1024, 0.05, 0.05)
		if !ok {
			t.Fatalf("no feasible pn at nLow=%v", nLow)
		}
		if !Feasible(nLow, 3, float64(pn)/1024, 8192, 0.05, d) {
			t.Fatalf("returned pn=%d not feasible at nLow=%v", pn, nLow)
		}
		for smaller := 1; smaller < pn; smaller++ {
			if Feasible(nLow, 3, float64(smaller)/1024, 8192, 0.05, d) {
				t.Fatalf("pn=%d not minimal at nLow=%v (pn=%d feasible)", pn, nLow, smaller)
			}
		}
	}
}

func TestOptimalPnTheorem4Transfer(t *testing.T) {
	// Theorem 4: feasibility at n̂_low transfers to any n ≥ n̂_low within
	// the monotone region. Check across the ratio n/n̂_low ∈ [1, 3] that
	// BFCE's c = 0.5 design actually exercises.
	d := stats.D(0.05)
	for _, nLow := range []float64{5000, 50000, 500000} {
		pn, ok := OptimalPn(nLow, 3, 8192, 1024, 0.05, 0.05)
		if !ok {
			t.Fatalf("no feasible pn at nLow=%v", nLow)
		}
		p := float64(pn) / 1024
		for ratio := 1.0; ratio <= 3.0; ratio += 0.25 {
			if !Feasible(nLow*ratio, 3, p, 8192, 0.05, d) {
				t.Fatalf("feasibility lost at n=%v·%v with pn=%d", nLow, ratio, pn)
			}
		}
	}
}

func TestOptimalPnInfeasible(t *testing.T) {
	// Below the accuracy floor no numerator works.
	if _, ok := OptimalPn(50, 3, 8192, 1024, 0.05, 0.05); ok {
		t.Fatal("nLow=50 must be infeasible at (0.05, 0.05)")
	}
	// Beyond the ceiling neither.
	if _, ok := OptimalPn(5e8, 3, 8192, 1024, 0.05, 0.05); ok {
		t.Fatal("nLow=5e8 must be infeasible")
	}
}

func TestFallbackPnTargetsLambdaStar(t *testing.T) {
	pn := FallbackPn(5e6, 3, 8192, 1024)
	lambda := Lambda(5e6, 3, float64(pn)/1024, 8192)
	if math.Abs(lambda-LambdaStar) > LambdaStar {
		t.Fatalf("fallback lambda %v too far from %v", lambda, LambdaStar)
	}
	if FallbackPn(0, 3, 8192, 1024) != 1023 {
		t.Fatal("fallback for nLow=0 must be the max numerator")
	}
	if FallbackPn(10, 3, 8192, 1024) != 1023 {
		t.Fatal("fallback must clamp to max numerator for tiny nLow")
	}
	if FallbackPn(1e12, 3, 8192, 1024) != 1 {
		t.Fatal("fallback must clamp to 1 for huge nLow")
	}
}

func TestLambdaStarRoot(t *testing.T) {
	// λ* solves λe^λ = 2(e^λ - 1).
	l := LambdaStar
	if math.Abs(l*math.Exp(l)-2*(math.Exp(l)-1)) > 1e-9 {
		t.Fatal("LambdaStar is not the variance-minimizing root")
	}
}

func TestRelStdShape(t *testing.T) {
	// Minimized near λ* ≈ 1.594; infinite at λ = 0; matches the empirical
	// spread of the estimator (see Fig. 8's CDF: sd/n ≈ 1%).
	atStar := RelStd(LambdaStar*8192/3, 3, 1, 8192)
	below := RelStd(0.3*8192/3, 3, 1, 8192)
	above := RelStd(6*8192/3, 3, 1, 8192)
	if atStar >= below || atStar >= above {
		t.Fatalf("RelStd not minimized near lambda*: %v vs %v, %v", atStar, below, above)
	}
	if !math.IsInf(RelStd(0, 3, 0.5, 8192), 1) {
		t.Fatal("RelStd at zero lambda must be +Inf")
	}
	// Numeric check at λ = 1: sqrt((e−1)/8192) ≈ 0.01448.
	got := RelStd(8192.0/3, 3, 1, 8192)
	if math.Abs(got-0.01448) > 0.0002 {
		t.Fatalf("RelStd(λ=1) = %v", got)
	}
}

func TestGammaBoundsMatchPaper(t *testing.T) {
	// §IV-B: 0.000326 ≤ γ ≤ 2365.9 for k=3 over the /1024 grid.
	min, max := GammaBounds(3, 1024)
	if math.Abs(min-0.000326) > 0.00002 {
		t.Fatalf("gamma min = %v, paper says 0.000326", min)
	}
	if math.Abs(max-2365.9) > 1.0 {
		t.Fatalf("gamma max = %v, paper says 2365.9", max)
	}
}

func TestMaxCardinalityExceeds19M(t *testing.T) {
	// §IV-B: "the maximum cardinality that the estimator can estimate
	// exceeds 19 millions" at w = 8192.
	if got := MaxCardinality(3, 8192, 1024); got < 19e6 {
		t.Fatalf("max cardinality %v, want > 19e6", got)
	}
}

func TestGammaMonotone(t *testing.T) {
	// γ decreases in ρ and in p.
	if !(Gamma(0.2, 0.5, 3) > Gamma(0.4, 0.5, 3)) {
		t.Fatal("gamma must decrease in rho")
	}
	if !(Gamma(0.2, 0.5, 3) > Gamma(0.2, 0.9, 3)) {
		t.Fatal("gamma must decrease in p")
	}
}
