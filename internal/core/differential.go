package core

import (
	"errors"
	"fmt"
	"math"

	"rfidest/internal/bitset"
	"rfidest/internal/channel"
	"rfidest/internal/timing"
)

// Snapshot is one Bloom-filter observation of a tag population taken with
// pinned randomness: the frame seed, persistence numerator and geometry
// are recorded so a later snapshot of a (possibly changed) population can
// be taken under identical tag-side behaviour. Two such snapshots support
// set-level estimation — union, intersection, arrivals, departures —
// because a tag present in both rounds selects the same slots and makes
// the same persistence decisions in both.
//
// This is the natural incremental extension of BFCE (anonymous tracking in
// the spirit of EZB [18], built on BFCE's constant-time frame): a reader
// that archives one 8192-bit vector per round can answer "how many tags
// arrived/left since round t" for any past t, in zero extra air time.
type Snapshot struct {
	Idle *bitset.Set // bit i set ⟺ slot i was idle (B(i) = 1)
	W    int         // vector length
	K    int         // hashes per tag
	Pn   int         // persistence numerator
	Den  int         // persistence denominator
	Seed uint64      // frame seed (pins hashes and persistence decisions)
	Cost timing.Cost
}

// P returns the snapshot's persistence probability.
func (s *Snapshot) P() float64 { return float64(s.Pn) / float64(s.Den) }

// Rho returns the idle fraction of the snapshot.
func (s *Snapshot) Rho() float64 { return s.Idle.Fraction() }

// Cardinality returns the snapshot's own cardinality estimate (Theorem 2).
func (s *Snapshot) Cardinality() float64 {
	rho, _ := clampRho(s.Rho(), s.W)
	return EstimateFromRho(rho, s.K, s.P(), s.W)
}

// Differ takes and compares pinned snapshots. Construct with NewDiffer;
// the zero value is not usable.
type Differ struct {
	cfg  Config
	pn   int
	seed uint64
}

// NewDiffer prepares a snapshot taker with the given configuration. The
// persistence numerator pn must suit the largest population that will be
// snapshotted (pick it with OptimalPn or FallbackPn for the expected
// scale); seed pins the tag-side randomness across all snapshots taken by
// this Differ.
//
// Snapshots must be taken over per-tag engines (channel.TagEngine, or
// MergedEngine over them): a tag's behaviour is then a pure function of
// (tag, seed), so a tag shared between two rounds replays identically and
// the set algebra below is exact. Synthetic engines (channel.BallsEngine)
// re-sample every frame and cannot pin shared tags — Union over such
// snapshots treats the populations as disjoint.
func NewDiffer(cfg Config, pn int, seed uint64) (*Differ, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if pn < 1 || pn >= cfg.PDenom {
		return nil, fmt.Errorf("core: pn %d out of [1, %d)", pn, cfg.PDenom)
	}
	return &Differ{cfg: cfg, pn: pn, seed: seed}, nil
}

// Take records one snapshot of the population behind the session. The
// frame uses the Differ's pinned seed, so repeated snapshots are
// comparable slot-by-slot.
func (d *Differ) Take(r *channel.Reader) (*Snapshot, error) {
	if r == nil {
		return nil, errors.New("core: nil session")
	}
	start := r.Cost()
	r.BroadcastParams(d.cfg.K*timing.SeedBits + timing.PnBits)
	vec := r.ExecuteFrame(channel.FrameRequest{
		W:    d.cfg.W,
		K:    d.cfg.K,
		P:    float64(d.pn) / float64(d.cfg.PDenom),
		Seed: d.seed,
	})
	return &Snapshot{
		Idle: vec.IdleSet(), // B(i) = 1 ⟺ idle: the complement, one NOT per word
		W:    d.cfg.W,
		K:    d.cfg.K,
		Pn:   d.pn,
		Den:  d.cfg.PDenom,
		Seed: d.seed,
		Cost: r.Cost().Sub(start),
	}, nil
}

// compatible reports whether two snapshots can be compared slot-by-slot.
func compatible(a, b *Snapshot) error {
	switch {
	case a == nil || b == nil:
		return errors.New("core: nil snapshot")
	case a.W != b.W || a.K != b.K:
		return errors.New("core: snapshot geometries differ")
	case a.Pn != b.Pn || a.Den != b.Den:
		return errors.New("core: snapshot persistence differs")
	case a.Seed != b.Seed:
		return errors.New("core: snapshot seeds differ (tag behaviour not pinned)")
	case a.Idle == nil || b.Idle == nil || a.Idle.Len() != b.Idle.Len():
		return errors.New("core: snapshot lengths differ")
	}
	return nil
}

// Union estimates |A ∪ B| from two pinned snapshots: a slot is idle under
// the union exactly when it is idle in both snapshots (a shared tag
// occupies the same slots in both), so the AND of the idle vectors is the
// union population's Bloom vector and Theorem 2 applies to it directly.
func Union(a, b *Snapshot) (float64, error) {
	if err := compatible(a, b); err != nil {
		return 0, err
	}
	bothIdle := a.Idle.AndCount(b.Idle)
	rho, _ := clampRho(float64(bothIdle)/float64(a.Idle.Len()), a.W)
	return EstimateFromRho(rho, a.K, a.P(), a.W), nil
}

// Intersection estimates |A ∩ B| by inclusion–exclusion over the
// snapshots' own cardinalities and the union estimate. Its variance is the
// sum of the three estimators' variances, so it is noisier than Union —
// appropriate for moderate overlaps, not for detecting a handful of
// shared tags.
func Intersection(a, b *Snapshot) (float64, error) {
	u, err := Union(a, b)
	if err != nil {
		return 0, err
	}
	inter := a.Cardinality() + b.Cardinality() - u
	if inter < 0 {
		inter = 0
	}
	return inter, nil
}

// Departures estimates |A \ B| — tags present in snapshot a but gone by
// snapshot b (e.g. shipped stock between two monitoring rounds):
// |A \ B| = |A ∪ B| − |B|.
func Departures(a, b *Snapshot) (float64, error) {
	u, err := Union(a, b)
	if err != nil {
		return 0, err
	}
	dep := u - b.Cardinality()
	if dep < 0 {
		dep = 0
	}
	return dep, nil
}

// Arrivals estimates |B \ A| — tags present in snapshot b that were not in
// snapshot a: |B \ A| = |A ∪ B| − |A|.
func Arrivals(a, b *Snapshot) (float64, error) {
	u, err := Union(a, b)
	if err != nil {
		return 0, err
	}
	arr := u - a.Cardinality()
	if arr < 0 {
		arr = 0
	}
	return arr, nil
}

// DifferentialStd returns the predicted standard deviation of the Union
// estimator at union cardinality n (per-slot idle probability e^{-λ},
// w observations): σ(n̂)/n = sqrt((e^λ − 1)/(w·λ²)). Use it to decide
// whether a measured arrival/departure count is signal or noise.
func DifferentialStd(n float64, k, w, pn, den int) float64 {
	lambda := Lambda(n, k, float64(pn)/float64(den), w)
	if lambda <= 0 {
		return math.Inf(1)
	}
	return n * math.Sqrt((math.Expm1(lambda))/(float64(w)*lambda*lambda))
}
