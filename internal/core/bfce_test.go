package core

import (
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/timing"
)

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg, err := (Config{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("zero config did not normalize to defaults: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{W: -1},
		{K: -2},
		{C: 1.5},
		{Epsilon: 1.0},
		{Delta: -0.1},
		{PDenom: 1},
		{InitialPn: 2000},
		{ProbeWindow: 9000},
		{RoughSlots: 9000},
		{MaxProbeRounds: -3},
	}
	for i, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Fatalf("New accepted bad config %d", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{W: -1})
}

func TestEstimateNilSession(t *testing.T) {
	e := MustNew(Config{})
	if _, err := e.Estimate(nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

// run executes one BFCE estimation over a fresh tag-level session.
func run(t *testing.T, n int, dist tags.Distribution, seed uint64, cfg Config) Result {
	t.Helper()
	pop := tags.Generate(n, dist, seed)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), seed+1)
	res, err := MustNew(cfg).Estimate(r)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEstimateAccuracyAcrossCardinalities(t *testing.T) {
	// Fig. 7(a)'s claim: accuracy stays within ε across n for (0.05, 0.05).
	for _, n := range []int{5000, 50000, 200000} {
		violations := 0
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			res := run(t, n, tags.T1, uint64(100+trial), Config{})
			if !res.Feasible {
				t.Fatalf("n=%d trial %d infeasible: %+v", n, trial, res)
			}
			if stats.RelError(res.Estimate, float64(n)) > 0.05 {
				violations++
			}
		}
		// δ = 0.05: one violation in 8 trials is already unlucky but
		// possible; two is outside any reasonable tolerance.
		if violations > 1 {
			t.Fatalf("n=%d: %d/%d trials violated epsilon", n, violations, trials)
		}
	}
}

func TestEstimateAcrossDistributions(t *testing.T) {
	// The estimate must be distribution-agnostic (§V-B).
	for _, d := range tags.Distributions {
		res := run(t, 100000, d, 7, Config{})
		if stats.RelError(res.Estimate, 100000) > 0.05 {
			t.Fatalf("%v: estimate %v outside 5%% of 100000", d, res.Estimate)
		}
	}
}

func TestEstimatePaperXORMode(t *testing.T) {
	// The literal tag-side implementation must still estimate well; its
	// persistence bias is (pn-1)/1024 vs pn/1024, within the (ε, δ) slack.
	pop := tags.Generate(100000, tags.T2, 9)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.PaperXOR), 10)
	res, err := MustNew(Config{}).Estimate(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.Estimate, 100000) > 0.08 {
		t.Fatalf("paper-xor estimate %v too far from 100000", res.Estimate)
	}
}

func TestLowerBoundHoldsMostly(t *testing.T) {
	// §IV-C: c = 0.5 "can guarantee n̂_low ≤ n hold in most cases".
	const trials = 20
	bad := 0
	for trial := 0; trial < trials; trial++ {
		res := run(t, 50000, tags.T1, uint64(500+trial), Config{})
		if res.LowerBound > 50000 {
			bad++
		}
	}
	if bad != 0 {
		t.Fatalf("lower bound exceeded n in %d/%d trials", bad, trials)
	}
}

func TestConstantSlotBudget(t *testing.T) {
	// The slot count must be probe·32 + 1024 + 8192 regardless of n.
	for _, n := range []int{2000, 200000, 1000000} {
		res := run(t, n, tags.T1, 77, Config{})
		fixed := res.Cost.TagSlots - 32*(res.ProbeRounds+1)
		if fixed != 1024+8192 {
			t.Fatalf("n=%d: non-probe slots = %d, want 9216 (cost %+v, probes %d)",
				n, fixed, res.Cost, res.ProbeRounds)
		}
	}
}

func TestExecutionTimeNearBudget(t *testing.T) {
	// §IV-E.1: t < 0.19 s plus the probe rounds the paper leaves out of
	// the closed form. Even with probing, a mid-size population finishes
	// fast and the non-probe part matches the budget.
	res := run(t, 500000, tags.T1, 3, Config{})
	budget := timing.BFCEBudgetSeconds(timing.C1G2)
	if res.Seconds > budget+0.05 {
		t.Fatalf("execution time %v s too far beyond the %v s budget", res.Seconds, budget)
	}
	if res.Seconds < 9216*18.88e-6 {
		t.Fatalf("execution time %v s below the bare slot time", res.Seconds)
	}
}

func TestProbeAdaptsDownward(t *testing.T) {
	// A huge population saturates the probe window at the initial 8/1024,
	// so the probe must lower p_s.
	res := run(t, 2000000, tags.T1, 5, Config{})
	if res.PsNum >= 8 {
		t.Fatalf("probe did not lower pn for n=2e6: ps=%d", res.PsNum)
	}
	if stats.RelError(res.Estimate, 2e6) > 0.05 {
		t.Fatalf("estimate %v outside 5%% of 2e6", res.Estimate)
	}
}

func TestProbeAdaptsUpward(t *testing.T) {
	// A small population almost surely leaves the first 32-slot window
	// idle at 8/1024 (per-slot busy probability ≈ 0.03% at n=800), so the
	// probe must raise p_s in the vast majority of trials.
	raised := 0
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		res := run(t, 800, tags.T1, seed, Config{})
		if res.PsNum > 8 {
			raised++
		}
	}
	if raised < trials-1 {
		t.Fatalf("probe raised pn in only %d/%d trials for n=800", raised, trials)
	}
}

func TestEmptyPopulation(t *testing.T) {
	// n = 0 must terminate (probe exhausts upward) and estimate ~0.
	cfg := Config{MaxProbeRounds: 16}
	res := run(t, 0, tags.T1, 8, cfg)
	if !res.Saturated {
		t.Fatal("empty population must saturate")
	}
	if res.Estimate > 50 {
		t.Fatalf("estimate for empty population = %v", res.Estimate)
	}
}

func TestTinyPopulationInfeasibleButEstimates(t *testing.T) {
	// Below ~500 tags Theorem 3 has no feasible p at (0.05, 0.05) — the
	// paper's stated scope is n ≥ 1000 — but BFCE must still return a
	// best-effort estimate via the fallback numerator.
	res := run(t, 120, tags.T1, 9, Config{})
	if res.Feasible {
		t.Fatalf("n=120 unexpectedly feasible (po=%d, low=%v)", res.PoNum, res.LowerBound)
	}
	if stats.RelError(res.Estimate, 120) > 0.5 {
		t.Fatalf("fallback estimate %v too far from 120", res.Estimate)
	}
}

func TestLooserAccuracyUsesSmallerP(t *testing.T) {
	// A looser ε needs less signal: p_o must not increase when ε grows.
	tight := run(t, 200000, tags.T1, 11, Config{Epsilon: 0.05})
	loose := run(t, 200000, tags.T1, 11, Config{Epsilon: 0.3})
	if loose.PoNum > tight.PoNum {
		t.Fatalf("po grew with looser epsilon: %d > %d", loose.PoNum, tight.PoNum)
	}
}

func TestResultString(t *testing.T) {
	res := run(t, 5000, tags.T1, 12, Config{})
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestEstimateWithBallsEngine(t *testing.T) {
	// The protocol must behave identically over the synthetic engine.
	r := channel.NewReader(channel.NewBallsEngine(300000, 13), 14)
	res, err := MustNew(Config{}).Estimate(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.Estimate, 300000) > 0.05 {
		t.Fatalf("balls-engine estimate %v outside 5%% of 3e5", res.Estimate)
	}
}

func TestEstimatorName(t *testing.T) {
	if MustNew(Config{}).Name() != "BFCE" {
		t.Fatal("name drifted")
	}
}

func TestClampRho(t *testing.T) {
	if v, deg := clampRho(0, 1024); !deg || v != 0.5/1024 {
		t.Fatalf("clamp low: %v %v", v, deg)
	}
	if v, deg := clampRho(1, 1024); !deg || v != 1-0.5/1024 {
		t.Fatalf("clamp high: %v %v", v, deg)
	}
	if v, deg := clampRho(0.5, 1024); deg || v != 0.5 {
		t.Fatalf("clamp mid: %v %v", v, deg)
	}
}
