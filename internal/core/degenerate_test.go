package core

import (
	"math"
	"testing"
)

// TestNormalizeRejectsNonFinite pins the NaN hole fixed in this package:
// a NaN ε (or δ, or C) fails both halves of a negated `<= 0 || >= 1`
// range check, so it used to pass Normalize and poison every downstream
// persistence computation. The check is now positively phrased.
func TestNormalizeRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	bad := []Config{
		{Epsilon: nan},
		{Delta: nan},
		{C: nan},
		{Epsilon: inf},
		{Delta: inf},
		{C: inf},
		{Epsilon: -inf},
		{Epsilon: 1.5},
		{Delta: -0.1},
		{C: 1.5},
	}
	for i, cfg := range bad {
		if _, err := cfg.Normalize(); err == nil {
			t.Errorf("case %d: Normalize accepted degenerate config %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted degenerate config %+v", i, cfg)
		}
	}
	// The zero config still normalizes to the paper defaults.
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("zero config normalized to %+v, want defaults", cfg)
	}
}
