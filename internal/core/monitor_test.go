package core

import (
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

func TestMonitorColdRoundMatchesEstimator(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	pop := tags.Generate(100000, tags.T1, 61)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 62)
	res, err := m.Estimate(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.Estimate, 100000) > 0.05 {
		t.Fatalf("cold round estimate %v", res.Estimate)
	}
	if m.Rounds() != 1 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
}

func TestMonitorWarmStartSkipsProbe(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// First round against a large population forces probe adjustments.
	pop := tags.Generate(2000000, tags.T1, 63)
	r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 64)
	first, err := m.Estimate(r)
	if err != nil {
		t.Fatal(err)
	}
	if first.ProbeRounds == 0 {
		t.Skip("population did not force probe adjustment under this seed")
	}
	// Second round over the same population: warm-started probe should
	// validate immediately.
	r2 := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), 65)
	second, err := m.Estimate(r2)
	if err != nil {
		t.Fatal(err)
	}
	if second.ProbeRounds != 0 {
		t.Fatalf("warm-started probe still adjusted %d times", second.ProbeRounds)
	}
	if stats.RelError(second.Estimate, 2000000) > 0.05 {
		t.Fatalf("warm round estimate %v", second.Estimate)
	}
}

func TestMonitorFastRoundsSkipRoughPhase(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.FastRounds = 2
	pop := tags.Generate(150000, tags.T1, 67)
	var costs []int
	for round := 0; round < 3; round++ {
		r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), uint64(68+round))
		res, err := m.Estimate(r)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelError(res.Estimate, 150000) > 0.05 {
			t.Fatalf("round %d estimate %v", round, res.Estimate)
		}
		costs = append(costs, res.Cost.TagSlots)
	}
	// Round 0 is full (probe + 1024 + 8192); rounds 1-2 are fast (8192).
	if costs[1] != 8192 || costs[2] != 8192 {
		t.Fatalf("fast rounds used %v slots, want 8192", costs[1:])
	}
	if costs[0] <= 8192 {
		t.Fatalf("full round used only %d slots", costs[0])
	}
}

func TestMonitorFastRoundsForcePeriodicFullRound(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.FastRounds = 1 // alternate full, fast, full, fast...
	pop := tags.Generate(100000, tags.T1, 71)
	var slots []int
	for round := 0; round < 4; round++ {
		r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), uint64(72+round))
		res, err := m.Estimate(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, res.Cost.TagSlots)
	}
	if slots[0] <= 8192 || slots[2] <= 8192 {
		t.Fatalf("full rounds missing: %v", slots)
	}
	if slots[1] != 8192 || slots[3] != 8192 {
		t.Fatalf("fast rounds missing: %v", slots)
	}
}

func TestMonitorTracksDrift(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.FastRounds = 3
	// Population grows 10% per round; fast rounds must keep up because
	// the lower bound discounts the previous estimate.
	n := 100000
	for round := 0; round < 6; round++ {
		pop := tags.Generate(n, tags.T1, uint64(80+round))
		r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), uint64(90+round))
		res, err := m.Estimate(r)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelError(res.Estimate, float64(n)) > 0.06 {
			t.Fatalf("round %d (n=%d): estimate %v", round, n, res.Estimate)
		}
		n = n * 110 / 100
	}
}

func TestMonitorSaturatedRoundDropsWarmStart(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.FastRounds = 8
	pop := tags.Generate(150000, tags.T1, 75)
	for round := 0; round < 2; round++ {
		r := channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), uint64(140+round))
		if _, err := m.Estimate(r); err != nil {
			t.Fatal(err)
		}
	}
	// The population crashes to zero mid-monitoring. The next fast round
	// observes an all-idle frame and saturates.
	empty := tags.Generate(0, tags.T1, 76)
	res, err := m.Estimate(channel.NewReader(channel.NewTagEngine(empty, channel.IdealRN), 142))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("crash round not saturated: %+v", res)
	}
	if res.Cost.TagSlots != 8192 {
		t.Fatalf("crash round ran %d slots, expected an 8192-slot fast round", res.Cost.TagSlots)
	}
	// The saturated result is a clamp artifact, not a measurement. The
	// round after it must re-run the full cold protocol; before the fix the
	// monitor warm-started from the clamped estimate and stayed in the fast
	// path (8192 slots) with a fabricated lower bound.
	next, err := m.Estimate(channel.NewReader(channel.NewTagEngine(empty, channel.IdealRN), 143))
	if err != nil {
		t.Fatal(err)
	}
	if next.Cost.TagSlots <= 8192 {
		t.Fatalf("post-saturation round warm-started: only %d slots", next.Cost.TagSlots)
	}
	if next.ProbeRounds == 0 {
		t.Fatalf("post-saturation round skipped the probe phase: %+v", next)
	}
}

func TestMonitorNilSession(t *testing.T) {
	m, err := NewMonitor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestMonitorBadConfig(t *testing.T) {
	if _, err := NewMonitor(Config{W: -1}); err == nil {
		t.Fatal("bad config accepted")
	}
}
