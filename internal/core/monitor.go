package core

import (
	"context"
	"errors"
	"fmt"

	"rfidest/internal/channel"
)

// Monitor performs repeated BFCE estimations of a (possibly drifting)
// population, warm-starting each round from the previous one. This is the
// incremental-monitoring mode the paper's applications imply (inventory
// surveillance runs the estimator continuously, not once):
//
//   - the probe phase starts from the persistence numerator the previous
//     round settled on, instead of the cold 8/1024, so a stable population
//     re-validates p_s in a single 32-slot window;
//   - the optimal-p search can reuse the previous round's estimate as the
//     rough input when the population is known to drift slowly, skipping
//     the 1024-slot rough frame entirely (FastRounds).
//
// Each call still ends with the full 8192-slot accurate frame, so the
// (ε, δ) guarantee of a round holds whenever its rough input undershoots
// the true cardinality — the same condition as single-shot BFCE, with the
// previous round's (1−ε)-scaled estimate playing the role of c·n̂_r.
//
// A Monitor is intentionally not safe for concurrent use: the Snap carried
// between rounds exists because round i+1's inputs are round i's outputs.
// The contract is one goroutine per Monitor; shard a deployment across
// several Monitors if rounds must overlap.
type Monitor struct {
	est  *Estimator
	snap Snap

	// FastRounds is how many consecutive rounds may skip the rough phase
	// and derive the lower bound from the previous estimate before a full
	// rough phase is forced again (guards against slow compounding drift).
	// Zero disables skipping: every round runs the full protocol.
	FastRounds int
}

// Snap is the warm-start state one monitoring round hands the next: the
// whole of what a Monitor carries. Snapshot/Restore move it across
// Monitors (or processes), so a monitoring loop can be checkpointed and
// resumed without losing its warm state.
type Snap struct {
	// Pn is the last valid probe persistence numerator (0 = cold: the
	// next round probes from the configured InitialPn).
	Pn int
	// N is the last round's accepted estimate (0 = cold: the next round
	// cannot run fast and executes the full protocol).
	N float64
	// Rounds is how many rounds completed; it drives the FastRounds
	// cadence (round r is full when r ≡ 0 mod FastRounds+1).
	Rounds int
}

// absorb folds a completed round's result into the snapshot. The
// saturated-round guard is part of the snapshot contract, not of any
// particular execution loop: a saturated round produced a clamped
// estimate (the observation was all-idle or all-busy), which is an
// upper/lower resolution bound, not a measurement. Warm-starting the next
// round from it would feed a fabricated lower bound into the optimal-p
// search — after a population crash, every subsequent fast round would
// keep probing at the stale rate and keep saturating. So a saturated
// round clears the warm fields and the next round runs fully cold.
func (s Snap) absorb(res Result) Snap {
	s.Rounds++
	if res.Saturated {
		s.Pn = 0
		s.N = 0
		return s
	}
	if res.PsNum > 0 {
		s.Pn = res.PsNum
	}
	s.N = res.Estimate
	return s
}

// NewMonitor returns a Monitor running the given estimator configuration.
func NewMonitor(cfg Config) (*Monitor, error) {
	est, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{est: est}, nil
}

// Rounds returns how many estimation rounds the monitor has completed.
func (m *Monitor) Rounds() int { return m.snap.Rounds }

// Snapshot returns the monitor's warm-start state.
func (m *Monitor) Snapshot() Snap { return m.snap }

// Restore overwrites the monitor's warm-start state with a snapshot —
// typically one taken from another Monitor (or an earlier process) over
// the same deployment.
func (m *Monitor) Restore(s Snap) error {
	if s.Pn < 0 || s.Pn >= m.est.cfg.PDenom {
		return fmt.Errorf("core: snapshot Pn %d outside [0, %d)", s.Pn, m.est.cfg.PDenom)
	}
	if !(s.N >= 0) { // positively phrased so NaN is rejected
		return fmt.Errorf("core: snapshot N %v must be >= 0", s.N)
	}
	if s.Rounds < 0 {
		return fmt.Errorf("core: negative snapshot round count %d", s.Rounds)
	}
	m.snap = s
	return nil
}

// stepper builds the round state machine for the next monitoring round
// from the current snapshot: warm probe start when Pn is set, and a fast
// accurate-only round when the FastRounds cadence and a warm estimate
// allow.
func (m *Monitor) stepper() *Stepper {
	cfg := m.est.cfg
	if m.snap.Pn > 0 {
		cfg.InitialPn = m.snap.Pn
	}
	if m.FastRounds > 0 && m.snap.N > 0 && m.snap.Rounds%(m.FastRounds+1) != 0 {
		return newFastStepper(cfg, m.snap.Pn, m.snap.N)
	}
	return (&Estimator{cfg: cfg}).Stepper()
}

// Estimate runs the next monitoring round over the session.
func (m *Monitor) Estimate(r *channel.Reader) (Result, error) {
	return m.EstimateContext(nil, r)
}

// EstimateContext is Estimate with per-round cancellation (see
// Estimator.EstimateContext). A cancelled round does not advance the
// monitor's warm-start state.
func (m *Monitor) EstimateContext(ctx context.Context, r *channel.Reader) (Result, error) {
	if r == nil {
		return Result{}, errors.New("core: nil session")
	}
	res, err := driveStepper(ctx, r, m.stepper())
	if err != nil {
		return res, err
	}
	m.snap = m.snap.absorb(res)
	return res, nil
}
