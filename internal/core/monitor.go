package core

import (
	"errors"

	"rfidest/internal/channel"
)

// Monitor performs repeated BFCE estimations of a (possibly drifting)
// population, warm-starting each round from the previous one. This is the
// incremental-monitoring mode the paper's applications imply (inventory
// surveillance runs the estimator continuously, not once):
//
//   - the probe phase starts from the persistence numerator the previous
//     round settled on, instead of the cold 8/1024, so a stable population
//     re-validates p_s in a single 32-slot window;
//   - the optimal-p search can reuse the previous round's estimate as the
//     rough input when the population is known to drift slowly, skipping
//     the 1024-slot rough frame entirely (FastRounds).
//
// Each call still ends with the full 8192-slot accurate frame, so the
// (ε, δ) guarantee of a round holds whenever its rough input undershoots
// the true cardinality — the same condition as single-shot BFCE, with the
// previous round's (1−ε)-scaled estimate playing the role of c·n̂_r.
//
// A Monitor is intentionally not safe for concurrent use: lastPn, lastN
// and rounds are carried between rounds because round i+1's inputs are
// round i's outputs. The contract is one goroutine per Monitor; shard a
// deployment across several Monitors if rounds must overlap.
type Monitor struct {
	est    *Estimator
	lastPn int     // last valid probe numerator (0 = cold)
	lastN  float64 // last round's final estimate (0 = cold)
	rounds int

	// FastRounds is how many consecutive rounds may skip the rough phase
	// and derive the lower bound from the previous estimate before a full
	// rough phase is forced again (guards against slow compounding drift).
	// Zero disables skipping: every round runs the full protocol.
	FastRounds int
}

// NewMonitor returns a Monitor running the given estimator configuration.
func NewMonitor(cfg Config) (*Monitor, error) {
	est, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{est: est}, nil
}

// Rounds returns how many estimation rounds the monitor has completed.
func (m *Monitor) Rounds() int { return m.rounds }

// Estimate runs the next monitoring round over the session.
func (m *Monitor) Estimate(r *channel.Reader) (Result, error) {
	if r == nil {
		return Result{}, errors.New("core: nil session")
	}
	cfg := m.est.cfg
	if m.lastPn > 0 {
		cfg.InitialPn = m.lastPn
	}

	fast := m.FastRounds > 0 && m.lastN > 0 && m.rounds%(m.FastRounds+1) != 0
	var res Result
	var err error
	if fast {
		res, err = m.fastRound(r, cfg)
	} else {
		est := &Estimator{cfg: cfg}
		res, err = est.Estimate(r)
	}
	if err != nil {
		return res, err
	}
	m.rounds++
	if res.Saturated {
		// A saturated round produced a clamped estimate (the observation was
		// all-idle or all-busy), which is an upper/lower resolution bound,
		// not a measurement. Warm-starting the next round from it would feed
		// a fabricated lower bound into the optimal-p search — after a
		// population crash, every subsequent fast round would keep probing
		// at the stale rate and keep saturating. Drop the warm-start state
		// so the next round runs the full cold protocol.
		m.lastPn = 0
		m.lastN = 0
		return res, nil
	}
	if res.PsNum > 0 {
		m.lastPn = res.PsNum
	}
	m.lastN = res.Estimate
	return res, nil
}

// fastRound runs only the accurate phase, deriving the lower bound from
// the previous round's estimate discounted by the confidence interval
// (and by c, to tolerate inter-round growth the same way a fresh rough
// estimate would).
func (m *Monitor) fastRound(r *channel.Reader, cfg Config) (Result, error) {
	var res Result
	startCost := r.Cost()
	res.PsNum = m.lastPn
	res.Rough = m.lastN
	res.LowerBound = cfg.C * (1 - cfg.Epsilon) * m.lastN
	if res.LowerBound < 1 {
		res.LowerBound = 1
	}

	po, feasible := OptimalPn(res.LowerBound, cfg.K, cfg.W, cfg.PDenom, cfg.Epsilon, cfg.Delta)
	if !feasible {
		po = FallbackPn(res.LowerBound, cfg.K, cfg.W, cfg.PDenom)
	}
	res.Feasible = feasible
	res.PoNum = po

	r.BroadcastParams(cfg.K*32 + 32)
	final := r.ExecuteFrame(channel.FrameRequest{
		W:    cfg.W,
		K:    cfg.K,
		P:    float64(po) / float64(cfg.PDenom),
		Seed: r.NextSeed(),
	})
	rho, saturated := clampRho(final.RhoIdle(), cfg.W)
	res.RhoFinal = rho
	res.Saturated = saturated
	res.Estimate = EstimateFromRho(rho, cfg.K, float64(po)/float64(cfg.PDenom), cfg.W)
	res.Cost = r.Cost().Sub(startCost)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}
