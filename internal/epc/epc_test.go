package epc

import (
	"testing"
	"testing/quick"

	"rfidest/internal/inventory"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/GENIBUS catalogue check value: "123456789" → 0xD64E.
	if got := CRC16(FromBytes([]byte("123456789"))); got != 0xd64e {
		t.Fatalf("CRC16 check = %#06x, want 0xd64e", got)
	}
}

func TestCRC16EmptyAndSensitivity(t *testing.T) {
	// Empty message: preset 0xFFFF complemented.
	if got := CRC16(nil); got != 0x0000 {
		t.Fatalf("CRC16(empty) = %#06x, want 0x0000", got)
	}
	a := CRC16(FromBytes([]byte{0x01}))
	b := CRC16(FromBytes([]byte{0x02}))
	if a == b {
		t.Fatal("CRC16 collision on single-bit difference")
	}
}

func TestCRC5KnownVector(t *testing.T) {
	// CRC-5/EPC-C1G2 catalogue check value: "123456789" → 0x00.
	if got := CRC5(FromBytes([]byte("123456789"))); got != 0x00 {
		t.Fatalf("CRC5 check = %#02x, want 0x00", got)
	}
}

func TestCRC5Range(t *testing.T) {
	f := func(data []byte) bool {
		return CRC5(FromBytes(data)) < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandLengthsMatchInventoryConstants(t *testing.T) {
	q, err := EncodeQuery(QueryParams{Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != inventory.QueryBits {
		t.Fatalf("Query encodes to %d bits, inventory prices %d", len(q), inventory.QueryBits)
	}
	qr, err := EncodeQueryRep(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr) != inventory.QueryRepBits {
		t.Fatalf("QueryRep encodes to %d bits, inventory prices %d", len(qr), inventory.QueryRepBits)
	}
	qa, err := EncodeQueryAdjust(0, QUp)
	if err != nil {
		t.Fatal(err)
	}
	if len(qa) != inventory.QueryAdjustBits {
		t.Fatalf("QueryAdjust encodes to %d bits, inventory prices %d", len(qa), inventory.QueryAdjustBits)
	}
	if len(EncodeAck(0xBEEF)) != inventory.AckBits {
		t.Fatalf("ACK encodes to %d bits, inventory prices %d", len(EncodeAck(0xBEEF)), inventory.AckBits)
	}
	if got := len(TagReply(0x3000, [12]byte{})); got != inventory.EPCReplyBits {
		t.Fatalf("tag reply encodes to %d bits, inventory prices %d", got, inventory.EPCReplyBits)
	}
}

func TestEncodeQueryFields(t *testing.T) {
	q, err := EncodeQuery(QueryParams{DR: true, M: 2, TRext: true, Sel: 1, Session: 3, Target: true, Q: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Command code 1000, then DR=1, M=10, TRext=1, Sel=01, Session=11,
	// Target=1, Q=1001.
	wantPrefix := "10001101011111001"
	if q.String()[:len(wantPrefix)] != wantPrefix {
		t.Fatalf("Query bits = %s, want prefix %s", q, wantPrefix)
	}
	// The appended CRC-5 must verify: recompute over the payload.
	payload := q[:17]
	if CRC5(payload) != uint8(Bits(q[17:]).Uint()) {
		t.Fatal("Query CRC-5 does not verify")
	}
}

func TestEncodeQueryValidation(t *testing.T) {
	bad := []QueryParams{{M: 4}, {Sel: 4}, {Session: 4}, {Q: 16}}
	for i, p := range bad {
		if _, err := EncodeQuery(p); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
	if _, err := EncodeQueryRep(4); err == nil {
		t.Fatal("bad session accepted")
	}
	if _, err := EncodeQueryAdjust(4, QUp); err == nil {
		t.Fatal("bad session accepted")
	}
	if _, err := EncodeQueryAdjust(0, UpDn(0b111)); err == nil {
		t.Fatal("bad UpDn accepted")
	}
}

func TestAckCarriesRN16(t *testing.T) {
	ack := EncodeAck(0xA5C3)
	if got := Bits(ack[2:]).Uint(); got != 0xA5C3 {
		t.Fatalf("ACK RN16 = %#x", got)
	}
	if ack[0] || !ack[1] {
		t.Fatal("ACK command code wrong")
	}
}

func TestTagReplyVerifies(t *testing.T) {
	reply := TagReply(0x3000, [12]byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8})
	if !VerifyTagReply(reply) {
		t.Fatal("genuine reply failed verification")
	}
	// Flip any single bit: verification must fail.
	for i := range reply {
		reply[i] = !reply[i]
		if VerifyTagReply(reply) {
			t.Fatalf("corrupted reply (bit %d) verified", i)
		}
		reply[i] = !reply[i]
	}
	if VerifyTagReply(nil) || VerifyTagReply(make(Bits, 10)) {
		t.Fatal("short reply verified")
	}
}

func TestBitsHelpers(t *testing.T) {
	b := Bits{}.appendUint(0b1011, 4)
	if b.Uint() != 0b1011 || b.String() != "1011" {
		t.Fatalf("bits helpers: %v %s", b.Uint(), b)
	}
	if FromBytes([]byte{0x80}).String() != "10000000" {
		t.Fatal("FromBytes MSB order wrong")
	}
}

func TestBitsUintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65-bit Uint did not panic")
		}
	}()
	make(Bits, 65).Uint()
}
