package epc

import "testing"

// FuzzTagReplyRoundTrip: every assembled tag reply must verify, and any
// single-bit corruption must be caught by the CRC-16.
func FuzzTagReplyRoundTrip(f *testing.F) {
	f.Add(uint16(0x3000), []byte("abcdefghijkl"), uint16(3))
	f.Add(uint16(0), []byte("123456789012"), uint16(100))
	f.Add(uint16(0xffff), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint16(0))
	f.Fuzz(func(t *testing.T, pc uint16, epcBytes []byte, flip uint16) {
		var epc96 [12]byte
		copy(epc96[:], epcBytes)
		reply := TagReply(pc, epc96)
		if !VerifyTagReply(reply) {
			t.Fatalf("genuine reply failed verification (pc=%#x)", pc)
		}
		i := int(flip) % len(reply)
		reply[i] = !reply[i]
		if VerifyTagReply(reply) {
			t.Fatalf("reply with bit %d flipped verified", i)
		}
	})
}

// FuzzCRCBounds: both CRCs stay in range and are deterministic for any
// input bits.
func FuzzCRCBounds(f *testing.F) {
	f.Add([]byte("123456789"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0xaa})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := FromBytes(data)
		if c := CRC5(bits); c >= 32 {
			t.Fatalf("CRC5 out of range: %d", c)
		}
		if CRC16(bits) != CRC16(bits) || CRC5(bits) != CRC5(bits) {
			t.Fatal("CRC not deterministic")
		}
	})
}

// FuzzEncodeQuery: any valid field combination must encode to exactly 22
// bits with a verifying CRC-5.
func FuzzEncodeQuery(f *testing.F) {
	f.Add(false, uint8(0), false, uint8(0), uint8(0), false, uint8(0))
	f.Add(true, uint8(3), true, uint8(3), uint8(3), true, uint8(15))
	f.Fuzz(func(t *testing.T, dr bool, m bool2, trext bool, sel, session bool2, target bool, q uint8) {
		p := QueryParams{
			DR: dr, M: m % 4, TRext: trext, Sel: sel % 4,
			Session: Session(session % 4), Target: target, Q: q % 16,
		}
		bits, err := EncodeQuery(p)
		if err != nil {
			t.Fatalf("valid params rejected: %v", err)
		}
		if len(bits) != 22 {
			t.Fatalf("Query length %d", len(bits))
		}
		if CRC5(bits[:17]) != uint8(Bits(bits[17:]).Uint()) {
			t.Fatal("CRC-5 does not verify")
		}
	})
}

// bool2 keeps the fuzz signature compact (uint8 restricted mod 4 above).
type bool2 = uint8
