// Package epc encodes EPCglobal Class-1 Generation-2 reader commands at
// the bit level, including the standard's CRC-5 and CRC-16 protections.
//
// The inventory simulator prices commands by their exact lengths (Query 22
// bits, QueryRep 4, QueryAdjust 9, ACK 18); this package is where those
// lengths come from — each command is actually assembled field by field
// per §6.3.2.12 of the air-interface spec, so the constants in
// internal/inventory are checked against real encodings rather than
// asserted.
//
//	Query       = 1000 DR M TRext Sel Session Target Q CRC-5   (22 bits)
//	QueryRep    = 00 Session                                   (4 bits)
//	QueryAdjust = 1001 Session UpDn                            (9 bits)
//	ACK         = 01 RN16                                      (18 bits)
package epc

import "fmt"

// Bits is a bit string, most significant bit first.
type Bits []bool

// Uint renders up to 64 bits as an integer (for tests and debugging).
func (b Bits) Uint() uint64 {
	if len(b) > 64 {
		panic("epc: Bits.Uint over 64 bits")
	}
	v := uint64(0)
	for _, bit := range b {
		v <<= 1
		if bit {
			v |= 1
		}
	}
	return v
}

// String renders the bits as 0s and 1s.
func (b Bits) String() string {
	out := make([]byte, len(b))
	for i, bit := range b {
		if bit {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// appendUint appends the low `width` bits of v, MSB first.
func (b Bits) appendUint(v uint64, width int) Bits {
	for i := width - 1; i >= 0; i-- {
		b = append(b, v>>uint(i)&1 == 1)
	}
	return b
}

// FromBytes converts bytes to Bits, MSB first.
func FromBytes(data []byte) Bits {
	b := make(Bits, 0, len(data)*8)
	for _, by := range data {
		b = b.appendUint(uint64(by), 8)
	}
	return b
}

// CRC5 computes the C1G2 CRC-5: polynomial x⁵+x³+1, preset 01001₂, no
// reflection, no final XOR (CRC-5/EPC-C1G2).
func CRC5(bits Bits) uint8 {
	reg := uint8(0x09)
	for _, bit := range bits {
		msb := reg>>4&1 == 1
		reg = reg << 1 & 0x1f
		if msb != bit {
			reg ^= 0x09
		}
	}
	return reg
}

// CRC16 computes the C1G2 CRC-16: polynomial x¹⁶+x¹²+x⁵+1 (0x1021),
// preset 0xFFFF, and the ones' complement of the register is transmitted
// (CRC-16/GENIBUS).
func CRC16(bits Bits) uint16 {
	reg := uint16(0xffff)
	for _, bit := range bits {
		msb := reg>>15&1 == 1
		reg <<= 1
		if msb != bit {
			reg ^= 0x1021
		}
	}
	return ^reg
}

// Session selects one of the four C1G2 inventory sessions S0–S3.
type Session uint8

// QueryParams carries the Query command's fields.
type QueryParams struct {
	DR      bool    // divide ratio (TRcal divide ratio selector)
	M       uint8   // cycles per symbol selector, 2 bits
	TRext   bool    // pilot tone
	Sel     uint8   // which tags respond, 2 bits
	Session Session // inventory session, 2 bits
	Target  bool    // inventoried flag A/B
	Q       uint8   // frame size exponent, 4 bits
}

func (p QueryParams) validate() error {
	switch {
	case p.M > 3:
		return fmt.Errorf("epc: M %d out of 2 bits", p.M)
	case p.Sel > 3:
		return fmt.Errorf("epc: Sel %d out of 2 bits", p.Sel)
	case p.Session > 3:
		return fmt.Errorf("epc: Session %d out of 2 bits", p.Session)
	case p.Q > 15:
		return fmt.Errorf("epc: Q %d out of 4 bits", p.Q)
	}
	return nil
}

func bit01(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// EncodeQuery assembles a Query command (22 bits including CRC-5).
func EncodeQuery(p QueryParams) (Bits, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	b := Bits{}.appendUint(0b1000, 4)
	b = b.appendUint(bit01(p.DR), 1)
	b = b.appendUint(uint64(p.M), 2)
	b = b.appendUint(bit01(p.TRext), 1)
	b = b.appendUint(uint64(p.Sel), 2)
	b = b.appendUint(uint64(p.Session), 2)
	b = b.appendUint(bit01(p.Target), 1)
	b = b.appendUint(uint64(p.Q), 4)
	return b.appendUint(uint64(CRC5(b)), 5), nil
}

// EncodeQueryRep assembles a QueryRep command (4 bits).
func EncodeQueryRep(s Session) (Bits, error) {
	if s > 3 {
		return nil, fmt.Errorf("epc: Session %d out of 2 bits", s)
	}
	return Bits{}.appendUint(0b00, 2).appendUint(uint64(s), 2), nil
}

// UpDn is QueryAdjust's Q adjustment field.
type UpDn uint8

// QueryAdjust UpDn codes (§6.3.2.12.1.2).
const (
	QSame UpDn = 0b000
	QUp   UpDn = 0b110
	QDown UpDn = 0b011
)

// EncodeQueryAdjust assembles a QueryAdjust command (9 bits).
func EncodeQueryAdjust(s Session, updn UpDn) (Bits, error) {
	if s > 3 {
		return nil, fmt.Errorf("epc: Session %d out of 2 bits", s)
	}
	switch updn {
	case QSame, QUp, QDown:
	default:
		return nil, fmt.Errorf("epc: invalid UpDn %03b", uint8(updn))
	}
	return Bits{}.appendUint(0b1001, 4).appendUint(uint64(s), 2).appendUint(uint64(updn), 3), nil
}

// EncodeAck assembles an ACK command (18 bits).
func EncodeAck(rn16 uint16) Bits {
	return Bits{}.appendUint(0b01, 2).appendUint(uint64(rn16), 16)
}

// TagReply assembles the PC + EPC + CRC-16 backscatter of an identified
// tag (for a 96-bit EPC: 16 + 96 + 16 = 128 bits).
func TagReply(pc uint16, epc96 [12]byte) Bits {
	b := Bits{}.appendUint(uint64(pc), 16)
	b = append(b, FromBytes(epc96[:])...)
	return b.appendUint(uint64(CRC16(b)), 16)
}

// VerifyTagReply checks a received PC+EPC+CRC-16 reply. Per the standard,
// the receiver recomputes the CRC over PC+EPC and compares it with the
// trailing 16 bits.
func VerifyTagReply(reply Bits) bool {
	if len(reply) < 17 {
		return false
	}
	payload := reply[:len(reply)-16]
	got := Bits(reply[len(reply)-16:]).Uint()
	return uint16(got) == CRC16(payload)
}
