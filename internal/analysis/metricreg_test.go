package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestMetricRegGolden(t *testing.T) {
	analysistest.Run(t, analysis.MetricReg, "testdata/metricreg")
}

func TestMetricRegScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		"internal/obs":     false, // the one package allowed to own export machinery
		".":                true,
		"internal/fleet":   true,
		"internal/channel": true,
		"cmd/rfidfleet":    true, // CLIs export via the obs snapshot, not expvar
		"examples":         true,
	} {
		if got := analysis.MetricReg.AppliesTo(rel); got != covered {
			t.Errorf("metricreg covers %q = %v, want %v", rel, got, covered)
		}
	}
}
