package analysis

import (
	"go/token"
	"testing"
)

type testFact string

func (f testFact) String() string { return string(f) }

func TestFactStoreDedupe(t *testing.T) {
	s := NewFactStore()
	if !s.add("a", "pkg.F", testFact("x")) {
		t.Error("first add reported no change")
	}
	if s.add("a", "pkg.F", testFact("x")) {
		t.Error("duplicate add reported a change")
	}
	if !s.add("a", "pkg.F", testFact("y")) {
		t.Error("distinct fact on same symbol reported no change")
	}
	if got := len(s.Facts("a", "pkg.F")); got != 2 {
		t.Errorf("facts on pkg.F = %d, want 2", got)
	}
}

func TestFactStoreNamespacedByAnalyzer(t *testing.T) {
	s := NewFactStore()
	s.add("a", "pkg.F", testFact("x"))
	if got := s.Facts("b", "pkg.F"); len(got) != 0 {
		t.Errorf("analyzer b sees analyzer a's facts: %v", got)
	}
	s.add("b", "pkg.G", testFact("y"))
	if syms := s.Symbols("a"); len(syms) != 1 || syms[0] != "pkg.F" {
		t.Errorf("Symbols(a) = %v, want [pkg.F]", syms)
	}
}

func TestFactStoreSymbolsSorted(t *testing.T) {
	s := NewFactStore()
	for _, sym := range []string{"pkg.Z", "pkg.A", "pkg.M"} {
		s.add("a", sym, testFact("x"))
	}
	syms := s.Symbols("a")
	want := []string{"pkg.A", "pkg.M", "pkg.Z"}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", syms, want)
		}
	}
}

// TestSortDiagnosticsTiebreak pins the full sort key: position first,
// then analyzer, then message — so co-located findings (possible when an
// interprocedural pass reports a call site once per consumed fact) keep
// a stable order in golden tests and -json/-sarif output.
func TestSortDiagnosticsTiebreak(t *testing.T) {
	at := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	diags := []Diagnostic{
		at("b.go", 1, 1, "aaa", "m"),
		at("a.go", 2, 1, "aaa", "m"),
		at("a.go", 1, 2, "aaa", "m"),
		at("a.go", 1, 1, "zzz", "m"),
		at("a.go", 1, 1, "aaa", "z-message"),
		at("a.go", 1, 1, "aaa", "a-message"),
	}
	sortDiagnostics(diags)
	want := []Diagnostic{
		at("a.go", 1, 1, "aaa", "a-message"),
		at("a.go", 1, 1, "aaa", "z-message"),
		at("a.go", 1, 1, "zzz", "m"),
		at("a.go", 1, 2, "aaa", "m"),
		at("a.go", 2, 1, "aaa", "m"),
		at("b.go", 1, 1, "aaa", "m"),
	}
	for i := range want {
		if diags[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, diags[i], want[i])
		}
	}
}
