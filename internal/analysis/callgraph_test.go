package analysis

import (
	"strings"
	"testing"
)

const obspairPath = "rfidest/internal/analysis/testdata/obspair"

func loadGraph(t *testing.T, dir string) (*Package, *CallGraph) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := NewCallGraph()
	g.AddPackage(pkg)
	return pkg, g
}

func TestCallGraphStaticEdges(t *testing.T) {
	_, g := loadGraph(t, "testdata/obspair")

	crossPair := obspairPath + ".crossPair"
	closer := obspairPath + ".closer"
	endPhase := "(*" + obspairPath + ".Reader).EndPhase"

	if !hasSymbol(g.Callees(crossPair), closer) {
		t.Errorf("crossPair callees %v missing %s", g.Callees(crossPair), closer)
	}
	if !hasSymbol(g.Callees(closer), endPhase) {
		t.Errorf("closer callees %v missing method %s", g.Callees(closer), endPhase)
	}
	if !hasSymbol(g.Callers(closer), crossPair) {
		t.Errorf("closer callers %v missing %s (edges must be symmetric)", g.Callers(closer), crossPair)
	}

	n := g.Node(crossPair)
	if n == nil || n.Decl == nil || n.Fn == nil {
		t.Fatalf("node for %s missing declaration info: %+v", crossPair, n)
	}
	if n.Decl.Name.Name != "crossPair" {
		t.Errorf("node decl is %s, want crossPair", n.Decl.Name.Name)
	}
}

func TestCallGraphReaches(t *testing.T) {
	_, g := loadGraph(t, "testdata/obspair")
	crossPair := obspairPath + ".crossPair"
	closer := obspairPath + ".closer"
	// Transitive: crossPair -> closer -> (*Reader).EndPhase.
	if !g.Reaches(crossPair, func(sym string) bool { return strings.HasSuffix(sym, ".EndPhase") }) {
		t.Errorf("%s does not reach EndPhase through the graph", crossPair)
	}
	if g.Reaches(closer, func(sym string) bool { return strings.HasSuffix(sym, ".StartPhase") }) {
		t.Errorf("%s reaches StartPhase, but calls only EndPhase", closer)
	}
}

// TestCallGraphDeterministicOrder pins Funcs() to insertion order: two
// builds over the same package must agree node for node, which is what
// keeps fact iteration and -json output reproducible.
func TestCallGraphDeterministicOrder(t *testing.T) {
	_, g1 := loadGraph(t, "testdata/obspair")
	_, g2 := loadGraph(t, "testdata/obspair")
	f1, f2 := g1.Funcs(), g2.Funcs()
	if len(f1) == 0 || len(f1) != len(f2) {
		t.Fatalf("node counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("node order diverges at %d: %s vs %s", i, f1[i], f2[i])
		}
	}
}

func hasSymbol(syms []string, want string) bool {
	for _, s := range syms {
		if s == want {
			return true
		}
	}
	return false
}
