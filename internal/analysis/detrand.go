package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenRandImports are randomness sources that bypass internal/xrand
// and therefore break the one-seed-pins-everything contract. math/rand's
// convenience functions are not part of Go's reproducibility promise, and
// crypto/rand is non-deterministic by design.
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// forbiddenTimeCalls are the wall-clock reads that make a simulation run
// depend on when it executed rather than on its seed. time.Duration
// arithmetic (internal/timing's air-time model) is fine — only sampling
// the clock is forbidden.
var forbiddenTimeCalls = map[string]bool{
	"Now":   true,
	"Since": true,
}

// DetRand enforces the determinism contract: inside the simulator, every
// source of randomness flows through internal/xrand and nothing reads the
// wall clock, so a single 64-bit seed pins an entire experiment.
//
// Covered packages are the module root and everything under internal/.
// cmd/ and examples/ are allowlisted: CLIs legitimately time their own
// execution and may seed from entropy. The one in-scope exception,
// internal/fleet's wall-clock throughput reporting, is suppressed at the
// use site with //lint:allow detrand so the exemption stays visible in
// the source (see the internal/fleet package doc for the policy).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand, crypto/rand and time.Now/time.Since in deterministic simulation packages; " +
		"randomness must flow through internal/xrand so one seed pins an experiment",
	AppliesTo: func(rel string) bool {
		return !strings.HasPrefix(rel, "cmd/") && rel != "cmd" &&
			!strings.HasPrefix(rel, "examples/") && rel != "examples"
	},
	Run: runDetRand,
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if forbiddenRandImports[path] {
				pass.Reportf(spec.Pos(),
					"import %q is forbidden in deterministic simulation packages: draw randomness from rfidest/internal/xrand so one seed pins the run",
					path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funName := calleePackageFunc(pass.Info, call)
			if pkgName == nil || pkgName.Imported().Path() != "time" {
				return true
			}
			if forbiddenTimeCalls[funName] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock and breaks determinism: simulated time must derive from the seed (deliberate wall-clock use needs a //lint:allow detrand comment)",
					funName)
			}
			return true
		})
	}
	return nil
}

// calleePackageFunc resolves a call of the form pkg.Fn to the imported
// package it names and the function name. It returns (nil, "") for
// method calls, locals, and anything else.
func calleePackageFunc(info *types.Info, call *ast.CallExpr) (*types.PkgName, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil, ""
	}
	return pkgName, sel.Sel.Name
}
