package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
)

// BenchmarkLintLoad measures the full lint pipeline on a representative
// target: pattern expansion, loading internal/fleet plus its transitive
// module-internal dependency closure (type-checked from source, stdlib
// included), call-graph construction, and all ten analyzers with fact
// propagation. Each iteration builds a fresh loader — cold-cache cost is
// the number CI pays on every push, so that is the number tracked
// (results/BENCH_lint.json).
func BenchmarkLintLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := analysis.Lint(analysis.All(), []string{"../fleet"})
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("internal/fleet is not lint-clean: %v", diags)
		}
	}
}
