package analysis

import (
	"strings"
)

// forbiddenMetricImports are process-global metric registries that bypass
// internal/obs. expvar publishes into a package-global map the first
// import wins; runtime/metrics reads are fine in principle but in this
// module always indicate a second, uncoordinated export path.
var forbiddenMetricImports = map[string]bool{
	"expvar":          true,
	"runtime/metrics": true,
}

// MetricReg enforces the single-registry observability policy: all metric
// registration and export flows through internal/obs (Observer hooks into
// an obs.Registry, snapshots via WriteJSON/WriteText), so the module has
// one snapshot of record instead of a scatter of process-global state.
// Only internal/obs itself may touch the stdlib's global registries.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc: "forbid expvar and runtime/metrics outside internal/obs; metric registration and export " +
		"must flow through the obs Observer/Registry so there is one snapshot of record",
	AppliesTo: func(rel string) bool {
		return rel != "internal/obs"
	},
	Run: runMetricReg,
}

func runMetricReg(pass *Pass) error {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if forbiddenMetricImports[path] {
				pass.Reportf(spec.Pos(),
					"import %q registers process-global metrics and bypasses the observability layer: report through rfidest/internal/obs instead",
					path)
			}
		}
	}
	return nil
}
