// Package analysis is a small, dependency-free static-analysis framework
// for this repository. It exists to machine-check the two contracts the
// reproduction rests on — determinism (all randomness flows through
// internal/xrand, so one 64-bit seed pins an experiment) and atomic access
// to shared counters (the PR-1 session-counter bug class) — instead of
// leaving them to doc comments and -race runs.
//
// The framework is built on the standard library alone (go/parser,
// go/types, go/ast, go/build); it deliberately avoids golang.org/x/tools
// so the module stays zero-dependency. Packages are type-checked with a
// source importer that resolves module-internal imports relative to go.mod
// and standard-library imports from $GOROOT/src (see load.go).
//
// # Writing an analyzer
//
// An Analyzer couples a name, a doc string, an optional package scope, and
// a Run function over a type-checked Pass:
//
//	var Example = &Analyzer{
//		Name:      "example",
//		Doc:       "reports uses of the frobnicate idiom",
//		AppliesTo: func(rel string) bool { return rel == "internal/foo" },
//		Run: func(pass *Pass) error {
//			for _, f := range pass.Files {
//				ast.Inspect(f, func(n ast.Node) bool { ... })
//			}
//			return nil
//		},
//	}
//
// Register it in All, add a testdata package with // want expectations
// (see analysistest), and the cmd/rfidlint driver picks it up.
//
// # Suppression
//
// A finding can be silenced at the use site with a
//
//	//lint:allow <name> <reason>
//
// comment (see suppress.go), either trailing the offending line or on the
// line directly above it. Suppressions are expected to carry a reason;
// they are the mechanism by which deliberate exceptions (for example the
// wall-clock throughput timing in internal/fleet) stay visible in the
// source instead of disappearing into linter configuration.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description shown by rfidlint -list.
	Doc string
	// AppliesTo reports whether the analyzer covers the package at the
	// given module-relative path ("." for the module root, or e.g.
	// "internal/fleet"). A nil AppliesTo covers every package. Scoping is
	// applied by Lint; Check (and the analysistest harness) run the
	// analyzer unconditionally so its behaviour is testable outside the
	// packages it normally covers.
	AppliesTo func(rel string) bool
	// Interprocedural marks analyzers that consume the call graph and
	// exported facts. Lint runs them in fact-only mode over dependency
	// packages outside the lint target set, so cross-package facts are
	// complete no matter which directories were asked for; rfidlint -list
	// surfaces the flag so the tool documents its own reach.
	Interprocedural bool
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path; Rel is the same path relative
	// to the module root ("." for the root package).
	Path string
	Rel  string
	// Graph is the call graph over the analysis scope: the whole loaded
	// package set under Lint, just this package under Check.
	Graph *CallGraph
	// Facts is the run-shared fact store. Under Lint, facts exported
	// while analyzing a dependency are visible here by the time any of
	// its importers is analyzed (packages run in dependency order).
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a finding at pos carrying a suggested fix that
// rfidlint -fix can apply mechanically.
func (p *Pass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Edit builds a TextEdit replacing the source range [pos, end) with
// newText, resolving positions against the pass's file set. An insertion
// passes end == pos.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	from := p.Fset.Position(pos)
	to := p.Fset.Position(end)
	return TextEdit{File: from.Filename, Start: from.Offset, End: to.Offset, NewText: newText}
}

// ExportFact records a fact about obj in the analyzer's namespace. Facts
// survive the pass: under Lint they are visible to later packages that
// import this one. It reports whether the fact is new, so fixpoint loops
// can detect convergence.
func (p *Pass) ExportFact(obj types.Object, f Fact) bool {
	return p.Facts.add(p.Analyzer.Name, Symbol(obj), f)
}

// FactsOn returns the facts the analyzer holds about obj (exported by
// this pass or any earlier package in the run).
func (p *Pass) FactsOn(obj types.Object) []Fact {
	if obj == nil {
		return nil
	}
	return p.Facts.get(p.Analyzer.Name, Symbol(obj))
}

// SymbolFacts is FactsOn addressed by symbol string, for consumers that
// walk the call graph rather than the syntax.
func (p *Pass) SymbolFacts(sym string) []Fact {
	return p.Facts.get(p.Analyzer.Name, sym)
}

// Diagnostic is one finding, located and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a mechanical repair rfidlint -fix applies.
	Fix *SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the registry of domain analyzers, in report order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, AtomicMix, FloatCmp, SeedLit, BoolFrame, MetricReg, CtxBg,
		SeedFlow, ErrDrop, ObsPair, RoundLoop, SleepCtx}
}

// Result is one analyzer's output over one package, together with the
// interprocedural context the run produced. The analysistest harness
// uses Facts and Graph to check // wantfact expectations and to apply
// suggested fixes.
type Result struct {
	Diagnostics []Diagnostic
	Facts       *FactStore
	Graph       *CallGraph
}

// Check runs one analyzer over one loaded package, applies //lint:allow
// suppressions, and returns the surviving findings sorted by position.
// Unlike Lint it ignores the analyzer's AppliesTo scope.
func Check(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	res, err := CheckPackage(a, pkg)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// CheckPackage is Check exposing the fact store and call graph of the
// (single-package) run alongside the findings.
func CheckPackage(a *Analyzer, pkg *Package) (*Result, error) {
	graph := NewCallGraph()
	graph.AddPackage(pkg)
	facts := NewFactStore()
	diags, err := runAnalyzer(a, pkg, graph, facts, true)
	if err != nil {
		return nil, err
	}
	return &Result{Diagnostics: diags, Facts: facts, Graph: graph}, nil
}

// runAnalyzer executes one analyzer over one package against the given
// interprocedural context. With report false the diagnostics are
// discarded — the fact-only mode Lint uses on dependency packages.
func runAnalyzer(a *Analyzer, pkg *Package, graph *CallGraph, facts *FactStore, report bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		Rel:      pkg.Rel,
		Graph:    graph,
		Facts:    facts,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
	}
	if !report {
		return nil, nil
	}
	diags = filterSuppressed(diags, suppressionsFor(pkg))
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by (file, line, column, analyzer,
// message). The message is part of the key so two findings by one
// analyzer on one position — possible since interprocedural passes can
// report a call site once per consumed fact — sort stably, keeping
// golden tests and -json/-sarif output deterministic.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
