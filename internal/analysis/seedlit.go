package analysis

import (
	"go/ast"
	"strings"
)

// seedRootFuncs are the xrand constructors/combiners whose FIRST argument
// is a root seed. Later arguments are domain-separation salts, where
// constant literals are exactly the idiom (xrand.Combine(seed, 0x5757)),
// so only the first position is checked.
var seedRootFuncs = map[string]bool{
	"New":           true,
	"NewStream":     true,
	"NewSplitMix64": true,
	"Combine":       true,
}

// SeedLit flags constant root seeds passed to xrand constructors outside
// tests and examples. A literal in the seed position pins that stream to
// one fixed sequence no matter what experiment seed the caller configured
// — trials silently stop being independent and every "replication" reuses
// identical randomness. Root seeds must be threaded in from configuration
// (and split with xrand.Combine(rootSeed, domainTag, ...)); _test.go files
// and examples/ may hard-code seeds for reproducibility of their output.
var SeedLit = &Analyzer{
	Name: "seedlit",
	Doc: "flag constant-literal root seeds passed to xrand.New*/Combine outside tests and examples; " +
		"a pinned seed silently destroys trial independence",
	AppliesTo: func(rel string) bool {
		return !strings.HasPrefix(rel, "examples/") && rel != "examples"
	},
	Run: runSeedLit,
}

func runSeedLit(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funName := calleePackageFunc(pass.Info, call)
			if pkgName == nil || !seedRootFuncs[funName] || len(call.Args) == 0 {
				return true
			}
			if path := pkgName.Imported().Path(); path != "rfidest/internal/xrand" && !strings.HasSuffix(path, "/internal/xrand") {
				return true
			}
			if seed := call.Args[0]; isConst(pass.Info, seed) {
				pass.Reportf(seed.Pos(),
					"constant root seed in xrand.%s pins this stream regardless of the configured experiment seed, destroying trial independence; derive it as xrand.Combine(rootSeed, ...)",
					funName)
			}
			return true
		})
	}
	return nil
}
