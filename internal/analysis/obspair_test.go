package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestObsPairGolden(t *testing.T) {
	analysistest.Run(t, analysis.ObsPair, "testdata/obspair")
}
