package analysis

import (
	"go/ast"
	"go/types"
)

// RoundLoop enforces the single-driver contract of the round-structured
// execution model: protocol rounds happen in exactly one place —
// channel.StepRound (and its Drive loop), which the root run loop and the
// interleaving scheduler funnel through. Driving a stepper by hand
// (x.Plan() / x.Absorb(...)) re-creates the pre-refactor world where each
// caller improvises its own loop and silently drops what the driver
// provides: per-round context cancellation, phase-span bookkeeping, the
// seed-draw order that bit-identity pins, and the legacy-round dispatch.
//
// A call is only a violation when it *drives*: composition is exempt. A
// stepper that wraps another stepper forwards Plan/Absorb from inside its
// own Plan, Absorb or RunLegacy methods (ZOE and SRC forward their rough
// phase this way), and those forwarding frames are part of the machine,
// not a second driver. internal/channel (the driver itself) and
// internal/sched (whose Runners step whole sessions, not raw steppers)
// own the loop and are out of scope.
var RoundLoop = &Analyzer{
	Name: "roundloop",
	Doc: "forbid hand-driving a round stepper: Plan/Absorb on a Plan+Absorb machine may only be called by " +
		"the shared driver (channel.StepRound/Drive) or forwarded from another stepper's Plan/Absorb/RunLegacy; " +
		"an improvised round loop loses cancellation, phase spans and the pinned seed-draw order",
	AppliesTo: func(rel string) bool {
		return rel != "internal/channel" && rel != "internal/sched"
	},
	Run: runRoundLoop,
}

// forwardingFrames are the method names inside which a stepper may
// legitimately call another stepper's Plan/Absorb: the call is one machine
// delegating a round to a sub-machine, and the real driver sits above both.
var forwardingFrames = map[string]bool{
	"Plan":      true,
	"Absorb":    true,
	"RunLegacy": true,
}

func runRoundLoop(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && forwardingFrames[fd.Name.Name] {
				continue // stepper composition, not driving
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Plan" && name != "Absorb" {
					return true
				}
				callee := CalleeFunc(pass.Info, call)
				if callee == nil || callee.Type().(*types.Signature).Recv() == nil {
					return true // not a method call
				}
				recv := pass.Info.Types[sel.X].Type
				if recv == nil || !isStepperType(recv, pass.Pkg) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s drives a protocol round by hand; rounds must go through channel.StepRound/Drive (or a sched.Runner stepping whole sessions) so cancellation, phase spans and the seed-draw order stay with the one driver",
					types.TypeString(recv, types.RelativeTo(pass.Pkg)), name)
				return true
			})
		}
	}
	return nil
}

// isStepperType reports whether t carries the full round-machine pair —
// both Plan and Absorb methods. A type with only one of them (a query
// planner, an event sink) is not a stepper and stays out of scope.
func isStepperType(t types.Type, from *types.Package) bool {
	return hasMethodNamed(t, "Plan", from) && hasMethodNamed(t, "Absorb", from)
}

func hasMethodNamed(t types.Type, name string, from *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, from, name)
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}
