package analysis

import (
	"strings"
)

// Suppression comments have the form
//
//	//lint:allow <name>[,<name>...] <reason>
//
// A trailing comment suppresses matching findings on its own line; a
// comment alone on a line suppresses findings on the line below it —
// only that line, never a whole block. The reason is free text saying
// why the exception is sound, and it is mandatory: an allow without a
// reason suppresses nothing, so every exception stays visible (and
// reviewable) at the use site with its justification attached.
const allowPrefix = "lint:allow"

// suppressions maps filename -> line -> analyzer names allowed there.
type suppressions map[string]map[int]map[string]bool

// suppressionsFor scans a package's comments for //lint:allow directives.
func suppressionsFor(pkg *Package) suppressions {
	sup := make(suppressions)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: the allow is inert
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if standalone(pkg.Src[pos.Filename], pos.Offset) {
					line = pkg.Fset.Position(c.End()).Line + 1
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				names := byLine[line]
				if names == nil {
					names = make(map[string]bool)
					byLine[line] = names
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						names[name] = true
					}
				}
			}
		}
	}
	return sup
}

// standalone reports whether the comment starting at offset is the first
// non-blank content on its source line.
func standalone(src []byte, offset int) bool {
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			// keep scanning
		default:
			return false
		}
	}
	return true
}

// filterSuppressed drops findings covered by a matching //lint:allow.
func filterSuppressed(diags []Diagnostic, sup suppressions) []Diagnostic {
	if len(sup) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if sup[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
