package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestApplyEditsBackToFront(t *testing.T) {
	content := []byte("abcdef")
	out, err := applyEdits(content, []TextEdit{
		{File: "x.go", Start: 1, End: 2, NewText: "BB"}, // b -> BB
		{File: "x.go", Start: 4, End: 5, NewText: ""},   // delete e
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "aBBcdf" {
		t.Errorf("applyEdits = %q, want %q", got, "aBBcdf")
	}
}

func TestApplyEditsRangeCheck(t *testing.T) {
	if _, err := applyEdits([]byte("ab"), []TextEdit{{Start: 1, End: 5}}); err == nil {
		t.Error("out-of-range edit did not error")
	}
}

// TestApplyFixesOverlapDropped pins the conflict rule: when two
// diagnostics' fixes overlap, the earlier diagnostic wins and the later
// fix is dropped — deterministically, since diagnostics arrive sorted.
func TestApplyFixesOverlapDropped(t *testing.T) {
	src := map[string][]byte{"x.go": []byte("package p\n\nvar v = 1\n")}
	edit := func(start, end int, text string) *SuggestedFix {
		return &SuggestedFix{Edits: []TextEdit{{File: "x.go", Start: start, End: end, NewText: text}}}
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "x.go", Line: 3}, Fix: edit(19, 20, "2")},
		{Pos: token.Position{Filename: "x.go", Line: 3}, Fix: edit(19, 20, "3")}, // overlaps: dropped
	}
	fixed, applied, err := ApplyFixes(diags, src)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("applied = %d, want 1 (overlapping fix dropped)", applied)
	}
	if got := string(fixed["x.go"]); !strings.Contains(got, "var v = 2") {
		t.Errorf("earlier fix did not win:\n%s", got)
	}
}

func TestApplyFixesRejectsInvalidGo(t *testing.T) {
	src := map[string][]byte{"x.go": []byte("package p\n")}
	diags := []Diagnostic{{
		Pos: token.Position{Filename: "x.go", Line: 1},
		Fix: &SuggestedFix{Edits: []TextEdit{{File: "x.go", Start: 0, End: 7, NewText: "pack"}}},
	}}
	if _, _, err := ApplyFixes(diags, src); err == nil {
		t.Error("fix producing invalid Go did not error")
	}
}

func TestUnifiedDiff(t *testing.T) {
	a := []byte("one\ntwo\nthree\nfour\n")
	b := []byte("one\ntwo changed\nthree\nfour\n")
	d := UnifiedDiff("x.go", a, b)
	for _, want := range []string{"--- x.go", "-two", "+two changed", "@@ -1,4 +1,4 @@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if UnifiedDiff("x.go", a, a) != "" {
		t.Error("identical contents produced a non-empty diff")
	}
}

// TestFixIdempotence is the acceptance gate for -fix: applying the
// errdrop fixes to a copy of the testdata, writing them out, and running
// the analyzer again over the FIXED (re-type-checked) sources must apply
// nothing — the explicit "_ =" discards the first pass introduced are
// diagnosed but carry no fix, so a second -fix is a no-op.
func TestFixIdempotence(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "errdrop", "errdrop.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixtest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "errdrop.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	apply := func() int {
		loader, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Check(ErrDrop, pkg)
		if err != nil {
			t.Fatal(err)
		}
		fixed, applied, err := ApplyFixes(diags, pkg.Src)
		if err != nil {
			t.Fatal(err)
		}
		for file, content := range fixed {
			if err := os.WriteFile(file, content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return applied
	}

	if first := apply(); first == 0 {
		t.Fatal("first application fixed nothing; the fixture should carry fixable findings")
	}
	if second := apply(); second != 0 {
		t.Errorf("second application applied %d fixes; -fix must be idempotent", second)
	}
}
