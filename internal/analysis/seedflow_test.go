package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestSeedFlowGolden(t *testing.T) {
	analysistest.Run(t, analysis.SeedFlow, "testdata/seedflow")
}

func TestSeedFlowScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/experiment": true,
		"internal/channel":    true,
		"cmd/rfidfleet":       true,
		"examples":            false,
		"examples/quickstart": false,
	} {
		if got := analysis.SeedFlow.AppliesTo(rel); got != covered {
			t.Errorf("seedflow covers %q = %v, want %v", rel, got, covered)
		}
	}
}
