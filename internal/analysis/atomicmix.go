package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix flags struct fields that are accessed both through sync/atomic
// functions and through plain reads, writes, or ++/-- anywhere in the same
// package. Mixed access is exactly the PR-1 session-counter bug: the plain
// access races with the atomic one, -race only catches it when the
// schedule cooperates, and on weakly-ordered hardware the plain read can
// observe a stale value forever. The fix is to make every access atomic —
// ideally by giving the field an atomic.Uint64-style type, which makes the
// mix unrepresentable.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic and via plain read/write/++ in the same package " +
		"(the session-counter bug class); make every access atomic or use an atomic.* typed field",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: find fields whose address feeds a sync/atomic call, and
	// remember those selector nodes so pass 2 does not re-flag them.
	atomicFields := make(map[*types.Var]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funName := calleePackageFunc(pass.Info, call)
			if pkgName == nil || pkgName.Imported().Path() != "sync/atomic" || !isAtomicOp(funName) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op.String() != "&" {
					continue
				}
				sel, ok := unary.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(pass.Info, sel); field != nil {
					atomicFields[field] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selection of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package but plainly here; mixed access races — use atomic ops everywhere or an atomic.* typed field",
				field.Name())
			return true
		})
	}
	return nil
}

// isAtomicOp reports whether name is a sync/atomic read/write operation.
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return nil
	}
	return field
}
