package analysis

import (
	"go/ast"
	"strings"
)

// CtxBg enforces the cancellation-plumbing contract that the fleet
// TrialTimeout work rests on: library code must thread its caller's
// context instead of minting a fresh root with context.Background() or
// context.TODO(). A silently-minted root context is how per-trial
// deadlines and batch cancellation get severed from the work they are
// supposed to bound (the pre-fix runJob bug: trials ran under
// context.Background() and ignored the batch deadline entirely).
//
// Covered packages are the module root and everything under internal/;
// cmd/ and examples/ are allowlisted because a process entry point is
// exactly where a root context is supposed to be created. In-scope
// deliberate roots — the deprecated Estimate* wrappers whose signatures
// predate context plumbing, the nil-ctx defaults inside Run, and the
// experiment helper's detached pool — are suppressed at the use site with
// //lint:allow ctxbg so each exemption stays visible and reasoned.
var CtxBg = &Analyzer{
	Name: "ctxbg",
	Doc: "forbid context.Background()/context.TODO() outside process entry points (cmd/, examples/); " +
		"library code must thread its caller's context so deadlines and cancellation reach the work they bound",
	AppliesTo: func(rel string) bool {
		return !strings.HasPrefix(rel, "cmd/") && rel != "cmd" &&
			!strings.HasPrefix(rel, "examples/") && rel != "examples"
	},
	Run: runCtxBg,
}

var forbiddenCtxRoots = map[string]bool{
	"Background": true,
	"TODO":       true,
}

func runCtxBg(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funName := calleePackageFunc(pass.Info, call)
			if pkgName == nil || pkgName.Imported().Path() != "context" {
				return true
			}
			if forbiddenCtxRoots[funName] {
				pass.Reportf(call.Pos(),
					"context.%s mints a root context inside library code, severing the caller's deadline and cancellation: thread the caller's ctx instead (a deliberate root needs a //lint:allow ctxbg comment)",
					funName)
			}
			return true
		})
	}
	return nil
}
