package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestFloatCmpGolden(t *testing.T) {
	analysistest.Run(t, analysis.FloatCmp, "testdata/floatcmp")
}

func TestFloatCmpScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/estimators": true,
		"internal/stats":      true,
		"internal/core":       true,
		"internal/missing":    true,
		"internal/channel":    false,
		"internal/analysis":   false,
		"cmd/experiments":     false,
		"examples/quickstart": false,
	} {
		if got := analysis.FloatCmp.AppliesTo(rel); got != covered {
			t.Errorf("floatcmp covers %q = %v, want %v", rel, got, covered)
		}
	}
}
