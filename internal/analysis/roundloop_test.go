package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestRoundLoopGolden(t *testing.T) {
	analysistest.Run(t, analysis.RoundLoop, "testdata/roundloop")
}

func TestRoundLoopScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/core":       true,
		"internal/estimators": true,
		"internal/fleet":      true,
		"internal/experiment": true,
		"cmd/rfidfleet":       true,
		"internal/channel":    false, // owns StepRound/Drive, the one sanctioned loop
		"internal/sched":      false, // steps whole sessions over the driver
	} {
		if got := analysis.RoundLoop.AppliesTo(rel); got != covered {
			t.Errorf("roundloop covers %q = %v, want %v", rel, got, covered)
		}
	}
}
