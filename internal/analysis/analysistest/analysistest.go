// Package analysistest runs an analyzer over a testdata package and
// checks its findings against // want expectation comments, golden-file
// style:
//
//	now := time.Now() // want `time\.Now reads the wall clock`
//
// Each want comment carries a regular expression (backquoted, or quoted
// with Go escaping) that must match the message of a finding reported on
// that line; every finding must in turn be claimed by a want. Multiple
// want comments on one line expect multiple findings. Suppression is
// exercised the same way: a line with a //lint:allow comment and no want
// asserts the finding is filtered.
//
// The analyzer's AppliesTo scope is deliberately ignored (see
// analysis.Check), so testdata packages can live under internal/analysis
// regardless of which packages the analyzer covers in production.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rfidest/internal/analysis"
)

// wantRe matches one expectation: // want `regexp` or // want "regexp".
var wantRe = regexp.MustCompile("// want (?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// Run loads the package in dir (relative to the calling test), runs the
// analyzer through the full pipeline (type-check, Run, suppression), and
// diffs the findings against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := analysis.Check(a, pkg)
	if err != nil {
		t.Fatalf("check %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		re   *regexp.Regexp
		used bool
	}
	wants := make(map[key][]*expectation)
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				pattern := m[1]
				if pattern == "" && m[2] != "" {
					unquoted, err := strconv.Unquote(`"` + m[2] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string: %v", file, i+1, err)
					}
					pattern = unquoted
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
				}
				k := key{file, i + 1}
				wants[k] = append(wants[k], &expectation{re: re})
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", d.Pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no %s finding matched %q", k.file, k.line, a.Name, w.re)
			}
		}
	}
}
