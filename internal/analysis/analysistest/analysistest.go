// Package analysistest runs an analyzer over a testdata package and
// checks its findings against // want expectation comments, golden-file
// style:
//
//	now := time.Now() // want `time\.Now reads the wall clock`
//
// Each want comment carries a regular expression (backquoted, or quoted
// with Go escaping) that must match the message of a finding reported on
// that line; every finding must in turn be claimed by a want. Multiple
// want comments on one line expect multiple findings. Suppression is
// exercised the same way: a line with a //lint:allow comment and no want
// asserts the finding is filtered.
//
// Interprocedural analyzers are additionally checked against // wantfact
// comments on function declaration lines:
//
//	func newEngine(seed uint64) *xrand.Rand { // wantfact `root seed flows in through parameter 0`
//
// Every fact the analyzer exports about a function declared in the
// package must be claimed by a wantfact on the declaration's line, and
// every wantfact must match an exported fact — the same two-way diff as
// findings, so tests pin the exact fact surface.
//
// RunFix exercises suggested fixes: it applies every fix the analyzer
// reports and compares each changed file against a <file>.golden sibling.
//
// The analyzer's AppliesTo scope is deliberately ignored (see
// analysis.Check), so testdata packages can live under internal/analysis
// regardless of which packages the analyzer covers in production.
package analysistest

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rfidest/internal/analysis"
)

// wantRe matches one expectation: // want `regexp` or // want "regexp".
var wantRe = regexp.MustCompile("// want (?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// wantfactRe matches one fact expectation: // wantfact `regexp`.
var wantfactRe = regexp.MustCompile("// wantfact `([^`]*)`")

type expectation struct {
	re   *regexp.Regexp
	used bool
}

type lineKey struct {
	file string
	line int
}

// Run loads the package in dir (relative to the calling test), runs the
// analyzer through the full pipeline (type-check, Run, suppression), and
// diffs the findings against the package's want comments and the
// exported facts against its wantfact comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, res := check(t, a, dir)

	wants := collectExpectations(t, pkg, wantRe)
	for _, d := range res.Diagnostics {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		if !claim(wants[k], d.Message) {
			t.Errorf("%s: unexpected finding: %s", d.Pos, d.Message)
		}
	}
	reportUnused(t, wants, a.Name+" finding")

	wantfacts := collectExpectations(t, pkg, wantfactRe)
	for _, sym := range res.Facts.Symbols(a.Name) {
		node := res.Graph.Node(sym)
		if node == nil || node.Decl == nil {
			continue // fact about a symbol declared outside the package
		}
		pos := pkg.Fset.Position(node.Decl.Pos())
		k := lineKey{pos.Filename, pos.Line}
		for _, f := range res.Facts.Facts(a.Name, sym) {
			if !claim(wantfacts[k], f.String()) {
				t.Errorf("%s: unexpected fact on %s: %s", pos, sym, f)
			}
		}
	}
	reportUnused(t, wantfacts, a.Name+" fact")
}

// RunFix applies every suggested fix the analyzer reports on the package
// in dir and compares each changed file against its <file>.golden
// sibling; files without fixes must have no golden, and a second
// application over the fixed sources must change nothing (fixes are
// idempotent by contract — see TestFixIdempotence for the type-checked
// version of that property).
func RunFix(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, res := check(t, a, dir)

	fixed, applied, err := analysis.ApplyFixes(res.Diagnostics, pkg.Src)
	if err != nil {
		t.Fatalf("apply fixes: %v", err)
	}
	if applied == 0 {
		t.Fatalf("no fixes applied in %s; RunFix needs at least one suggested fix", dir)
	}
	for file := range pkg.Src {
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		got, changed := fixed[file]
		switch {
		case err == nil && !changed:
			t.Errorf("%s exists but no fix changed %s", golden, file)
		case err != nil && changed:
			t.Errorf("fixes changed %s but %s does not exist", file, golden)
		case err == nil && changed && string(got) != string(want):
			t.Errorf("fixed %s differs from golden:\n%s", file,
				analysis.UnifiedDiff(golden, want, got))
		}
	}
}

// check loads dir and runs the analyzer with full interprocedural
// context.
func check(t *testing.T, a *analysis.Analyzer, dir string) (*analysis.Package, *analysis.Result) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	res, err := analysis.CheckPackage(a, pkg)
	if err != nil {
		t.Fatalf("check %s: %v", dir, err)
	}
	return pkg, res
}

// collectExpectations scans the package sources for expectation comments
// matching re (whose first or second submatch is the pattern).
func collectExpectations(t *testing.T, pkg *analysis.Package, re *regexp.Regexp) map[lineKey][]*expectation {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range re.FindAllStringSubmatch(line, -1) {
				pattern := m[1]
				if pattern == "" && len(m) > 2 && m[2] != "" {
					unquoted, err := strconv.Unquote(`"` + m[2] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string: %v", file, i+1, err)
					}
					pattern = unquoted
				}
				cre, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
				}
				k := lineKey{file, i + 1}
				wants[k] = append(wants[k], &expectation{re: cre})
			}
		}
	}
	return wants
}

// claim marks the first unused expectation matching msg as used.
func claim(ws []*expectation, msg string) bool {
	for _, w := range ws {
		if !w.used && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

// reportUnused fails the test for every expectation nothing matched.
func reportUnused(t *testing.T, wants map[lineKey][]*expectation, what string) {
	t.Helper()
	for k, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no %s matched %q", k.file, k.line, what, w.re)
			}
		}
	}
}
