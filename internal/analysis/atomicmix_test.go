package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestAtomicMixGolden(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "testdata/atomicmix")
}

func TestAtomicMixCoversEveryPackage(t *testing.T) {
	if analysis.AtomicMix.AppliesTo != nil {
		t.Fatal("atomicmix must cover every package: mixed atomic/plain access is never correct")
	}
}
