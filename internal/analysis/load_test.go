package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "rfidest" {
		t.Fatalf("module path = %q, want rfidest", l.ModulePath)
	}
	cwd, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	if rel, err := filepath.Rel(l.ModuleDir, cwd); err != nil || strings.HasPrefix(rel, "..") {
		t.Fatalf("module dir %q does not contain cwd %q", l.ModuleDir, cwd)
	}
}

func TestLoadDirTypeChecksRootPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(l.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "rfidest" || pkg.Rel != "." {
		t.Fatalf("root package path=%q rel=%q", pkg.Path, pkg.Rel)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
		t.Fatal("root package loaded without syntax or types")
	}
	// The root package pulls in module-internal and stdlib imports alike;
	// both must resolve through the same source importer.
	for _, dep := range []string{"rfidest/internal/channel", "sort"} {
		if _, err := l.Import(dep); err != nil {
			t.Fatalf("import %s: %v", dep, err)
		}
	}
}

func TestLoadDirSharesImportIdentity(t *testing.T) {
	// Loading a package for linting must not replace the memoized import
	// other packages type-checked against (the *channel.Reader identity
	// bug): dependents loaded afterwards still have to type-check.
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(l.ModuleDir); err != nil { // imports internal/channel et al.
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal/channel")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal/experiment")); err != nil {
		t.Fatalf("dependent package broken by relint of its dependency: %v", err)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandPatterns([]string{l.ModuleDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawAnalysis bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("pattern expansion must skip testdata, got %s", d)
		}
		if strings.HasSuffix(d, "internal/analysis") {
			sawAnalysis = true
		}
	}
	if !sawAnalysis {
		t.Fatal("expected internal/analysis itself among expanded dirs")
	}
	if len(dirs) < 15 {
		t.Fatalf("suspiciously few package dirs: %d (%v)", len(dirs), dirs)
	}
}
