package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestSleepCtxGolden(t *testing.T) {
	analysistest.Run(t, analysis.SleepCtx, "testdata/sleepctx")
}

func TestSleepCtxScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/client":     true,
		"internal/serve":      true,
		"internal/chaoshttp":  true,
		"internal/checkpoint": true,
		"cmd":                 false,
		"cmd/rfidserved":      false,
		"cmd/rfidload":        false,
		"examples":            false,
		"examples/quickstart": false,
	} {
		if got := analysis.SleepCtx.AppliesTo(rel); got != covered {
			t.Errorf("sleepctx covers %q = %v, want %v", rel, got, covered)
		}
	}
}
