package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestCtxBgGolden(t *testing.T) {
	analysistest.Run(t, analysis.CtxBg, "testdata/ctxbg")
}

func TestCtxBgScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/fleet":      true,
		"internal/experiment": true,
		"internal/channel":    true,
		"internal/analysis":   true,
		"cmd":                 false,
		"cmd/rfidfleet":       false,
		"cmd/experiments":     false,
		"examples":            false,
		"examples/quickstart": false,
	} {
		if got := analysis.CtxBg.AppliesTo(rel); got != covered {
			t.Errorf("ctxbg covers %q = %v, want %v", rel, got, covered)
		}
	}
}
