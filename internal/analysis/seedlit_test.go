package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestSeedLitGolden(t *testing.T) {
	analysistest.Run(t, analysis.SeedLit, "testdata/seedlit")
}

func TestSeedLitScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/experiment": true,
		"internal/xrand":      true,
		"cmd/rfidfleet":       true, // CLIs must thread their -seed flag through
		"examples":            false,
		"examples/quickstart": false,
	} {
		if got := analysis.SeedLit.AppliesTo(rel); got != covered {
			t.Errorf("seedlit covers %q = %v, want %v", rel, got, covered)
		}
	}
}
