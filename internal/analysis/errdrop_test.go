package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestErrDropGolden(t *testing.T) {
	analysistest.Run(t, analysis.ErrDrop, "testdata/errdrop")
}

// TestErrDropFix pins the suggested fixes against the golden file: bare
// contract calls gain explicit blanks ("_ = Run()", "_, _ = Merge(5)"),
// while the already-explicit discards (blank assigns, go, defer) carry
// no fix and stay untouched.
func TestErrDropFix(t *testing.T) {
	analysistest.RunFix(t, analysis.ErrDrop, "testdata/errdrop")
}
