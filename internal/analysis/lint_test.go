package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
)

// TestRepositoryIsLintClean is the acceptance gate in test form: the full
// analyzer registry over the whole module must report nothing. Every
// deliberate exception in the tree carries a //lint:allow comment with a
// reason; a failure here means a new contract violation (or an exception
// that has not justified itself).
func TestRepositoryIsLintClean(t *testing.T) {
	diags, err := analysis.Lint(analysis.All(), []string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSeededViolationsAreExclusive runs the FULL registry over each
// testdata package and asserts the seeded violations are reported by
// exactly the analyzer the package targets — no cross-reports. (The
// per-analyzer golden tests check the expected findings line by line;
// this closes the other direction.)
func TestSeededViolationsAreExclusive(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"detrand", "atomicmix", "floatcmp", "seedlit", "metricreg"} {
		pkg, err := loader.LoadDir("testdata/" + target)
		if err != nil {
			t.Fatalf("load testdata/%s: %v", target, err)
		}
		for _, a := range analysis.All() {
			diags, err := analysis.Check(a, pkg)
			if err != nil {
				t.Fatalf("%s on testdata/%s: %v", a.Name, target, err)
			}
			if a.Name == target {
				if len(diags) == 0 {
					t.Errorf("%s reported nothing on its own testdata", a.Name)
				}
				continue
			}
			for _, d := range diags {
				t.Errorf("%s cross-reported on testdata/%s: %s", a.Name, target, d)
			}
		}
	}
}
