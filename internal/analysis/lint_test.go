package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rfidest/internal/analysis"
)

// TestRepositoryIsLintClean is the acceptance gate in test form: the full
// analyzer registry over the whole module must report nothing. Every
// deliberate exception in the tree carries a //lint:allow comment with a
// reason; a failure here means a new contract violation (or an exception
// that has not justified itself).
func TestRepositoryIsLintClean(t *testing.T) {
	diags, err := analysis.Lint(analysis.All(), []string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSeededViolationsAreExclusive runs the FULL registry over each
// testdata package and asserts the seeded violations are reported by
// exactly the analyzer the package targets — no cross-reports. (The
// per-analyzer golden tests check the expected findings line by line;
// this closes the other direction.)
func TestSeededViolationsAreExclusive(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"detrand", "atomicmix", "floatcmp", "seedlit", "metricreg",
		"seedflow", "errdrop", "obspair"} {
		pkg, err := loader.LoadDir("testdata/" + target)
		if err != nil {
			t.Fatalf("load testdata/%s: %v", target, err)
		}
		for _, a := range analysis.All() {
			diags, err := analysis.Check(a, pkg)
			if err != nil {
				t.Fatalf("%s on testdata/%s: %v", a.Name, target, err)
			}
			if a.Name == target {
				if len(diags) == 0 {
					t.Errorf("%s reported nothing on its own testdata", a.Name)
				}
				continue
			}
			for _, d := range diags {
				t.Errorf("%s cross-reported on testdata/%s: %s", a.Name, target, d)
			}
		}
	}
}

// TestSeedFlowDefersDirectRootsToSeedlit pins the seedlit/seedflow
// partition at the DRIVER level: Lint fact-scans internal/xrand itself,
// whose constructor bodies thread seed onward, so xrand.New carries a
// seedParam fact — without sink precedence that fact would make seedflow
// re-report every syntactic constant seedlit already owns. (The harness
// golden tests cannot catch this: they do not fact-scan dependencies.)
func TestSeedFlowDefersDirectRootsToSeedlit(t *testing.T) {
	diags, err := analysis.Lint([]*analysis.Analyzer{analysis.SeedFlow}, []string{"testdata/seedlit"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("seedflow reported on seedlit territory: %s", d)
	}
}

// TestLintCrossPackageFacts exercises the full interprocedural driver
// path: linting ONLY testdata/factuse must still catch the constant
// laundered through factsrc.NewGen, because Lint loads the dependency
// closure and runs seedflow fact-only over factsrc before reporting on
// factuse. It also pins suppression of a fact-derived diagnostic whose
// evidence lives in another package (the sanctioned call), and silence
// on the threaded call.
func TestLintCrossPackageFacts(t *testing.T) {
	diags, err := analysis.Lint([]*analysis.Analyzer{analysis.SeedFlow}, []string{"testdata/factuse"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (pinned; sanctioned suppressed, threaded silent):\n%v",
			len(diags), diags)
	}
	d := diags[0]
	if !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), "testdata/factuse/factuse.go") {
		t.Errorf("finding in %s, want factuse.go", d.Pos.Filename)
	}
	if !strings.Contains(d.Message, "constant seed flows through NewGen") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}
