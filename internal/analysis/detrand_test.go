package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestDetRandGolden(t *testing.T) {
	analysistest.Run(t, analysis.DetRand, "testdata/detrand")
}

func TestDetRandScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/channel":    true,
		"internal/bloom":      true,
		"internal/xrand":      true,
		"internal/fleet":      true, // covered; exemptions are per-line //lint:allow
		"internal/analysis":   true,
		"cmd":                 false,
		"cmd/rfidest":         false,
		"cmd/experiments":     false,
		"examples":            false,
		"examples/quickstart": false,
	} {
		if got := analysis.DetRand.AppliesTo(rel); got != covered {
			t.Errorf("detrand covers %q = %v, want %v", rel, got, covered)
		}
	}
}
