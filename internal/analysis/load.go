package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path ("rfidest/internal/fleet")
	Rel   string // module-relative path ("internal/fleet", "." for root)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Src   map[string][]byte // filename -> source, for suppression scanning
}

// Loader parses and type-checks packages of one module. It implements
// types.Importer with a two-way resolution rule: import paths under the
// module path map to directories beneath go.mod, everything else resolves
// from $GOROOT/src and is type-checked from source. That keeps the linter
// free of golang.org/x/tools and of `go list` subprocesses while still
// giving analyzers full types.Info.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset    *token.FileSet
	ctxt    build.Context
	imports map[string]*types.Package // memoized type-checked imports
	loading map[string]bool           // cycle guard
}

// NewLoader finds the module containing dir (by walking up to go.mod) and
// returns a Loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// Type-check the pure-Go file set: the simulator has no cgo, and for
	// the standard library the !cgo fallback files are the ones that
	// type-check without a C toolchain.
	ctxt.CgoEnabled = false
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  modDir,
		fset:       token.NewFileSet(),
		ctxt:       ctxt,
		imports:    make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					path := strings.TrimSpace(rest)
					path = strings.Trim(path, `"`)
					if path == "" {
						break
					}
					return d, path, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// rel converts a directory under the module to its module-relative path.
func (l *Loader) rel(dir string) (string, error) {
	r, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(r), nil
}

// importPathFor returns the import path of the package in dir.
func (l *Loader) importPathFor(dir string) (string, error) {
	r, err := l.rel(dir)
	if err != nil {
		return "", err
	}
	if r == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(r, "../") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + r, nil
}

// dirFor maps an import path to its source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	// Everything else must be standard library: the module is zero-dep.
	return filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path)), nil
}

// goFiles lists the buildable non-test Go files of dir for the current
// platform (build constraints applied, cgo off).
func (l *Loader) goFiles(dir string) ([]string, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := append([]string(nil), bp.GoFiles...)
	sort.Strings(files)
	for i, f := range files {
		files[i] = filepath.Join(dir, f)
	}
	return files, nil
}

// parseDir parses the buildable files of dir, returning their syntax and
// raw source.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, map[string][]byte, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, nil, err
	}
	files := make([]*ast.File, 0, len(names))
	src := make(map[string][]byte, len(names))
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(l.fset, name, data, mode)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		src[name] = data
	}
	return files, src, nil
}

// Import implements types.Importer. Imported packages are type-checked
// from source (module-internal or $GOROOT/src) and memoized.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, _, err := l.parseDir(dir, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %v", path, err)
	}
	conf := types.Config{
		Importer: l,
		// Imported packages only need their exported shape; tolerate
		// non-fatal issues so linting never depends on dependency hygiene.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("analysis: type-check %q: %v", path, err)
	}
	l.imports[path] = pkg
	return pkg, nil
}

// LoadDir parses and fully type-checks the package in dir, with the
// complete types.Info analyzers need.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	rel, err := l.rel(abs)
	if err != nil {
		return nil, err
	}
	files, src, err := l.parseDir(abs, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, firstErr)
	}
	// Note: the freshly checked package must NOT replace an existing
	// l.imports entry — dependents already type-checked against the
	// memoized copy, and mixing the two identities makes identical types
	// unassignable.
	return &Package{
		Path:  path,
		Rel:   rel,
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Src:   src,
	}, nil
}
