package analysis

import "sort"

// A Fact is a durable, analyzer-defined statement about a function or
// other package-level object — "returns a constant-derived seed",
// "discarding this function's error drops a contract error", "this
// helper closes the open phase span". Facts are how analyzers see
// across package boundaries: Lint processes packages in dependency
// order with one shared FactStore, so when internal/fleet is analyzed,
// the facts its analyzers exported about fleet.Run are already in the
// store by the time cmd/rfidfleet (which imports it) is reached.
//
// Facts are keyed by (analyzer, Symbol(obj)) rather than by object
// identity: the loader type-checks a package twice over its lifetime
// (once strictly for analysis, once laxly as an import of its
// dependents), and string symbols are the identity that survives both.
type Fact interface {
	// String renders the fact; the analysistest harness matches it
	// against // wantfact expectations, and duplicate exports of a fact
	// with the same rendering are coalesced.
	String() string
}

type factKey struct {
	analyzer string
	symbol   string
}

// FactStore holds every fact exported during one analysis run. Each
// analyzer sees only its own facts (the store namespaces by analyzer
// name), so fact types cannot collide across analyzers.
type FactStore struct {
	facts map[factKey][]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey][]Fact)}
}

// add records f for (analyzer, symbol), coalescing duplicates by their
// String rendering. It reports whether the store changed — analyzers use
// that to drive their intra-package fixpoint loops.
func (s *FactStore) add(analyzer, symbol string, f Fact) bool {
	k := factKey{analyzer, symbol}
	for _, have := range s.facts[k] {
		if have.String() == f.String() {
			return false
		}
	}
	s.facts[k] = append(s.facts[k], f)
	return true
}

func (s *FactStore) get(analyzer, symbol string) []Fact {
	return s.facts[factKey{analyzer, symbol}]
}

// Facts returns the facts the named analyzer exported about symbol. It
// is the exported face of the store for harnesses and tests; analyzers
// use Pass.FactsOn.
func (s *FactStore) Facts(analyzer, symbol string) []Fact {
	return s.get(analyzer, symbol)
}

// Symbols returns, sorted, every symbol the named analyzer exported a
// fact about. It exists for tests and debugging output.
func (s *FactStore) Symbols(analyzer string) []string {
	var syms []string
	for k := range s.facts {
		if k.analyzer == analyzer {
			syms = append(syms, k.symbol)
		}
	}
	sort.Strings(syms)
	return syms
}
