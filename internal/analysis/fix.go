package analysis

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"sort"
	"strings"
)

// TextEdit replaces the bytes [Start, End) of File with NewText. Offsets
// are byte offsets into the file's original content; an insertion has
// Start == End.
type TextEdit struct {
	File       string
	Start, End int
	NewText    string
}

// SuggestedFix is a mechanical repair attached to a Diagnostic. Fixes
// must be conservative: applying one may leave a (now explicit) finding
// behind for a human to justify, but it must never change behaviour
// beyond what its message states, and the result must gofmt cleanly —
// ApplyFixes formats and re-parses every file it touches and fails
// loudly if a fix produced syntactically invalid code.
type SuggestedFix struct {
	// Message describes the repair ("make the discarded error explicit").
	Message string
	Edits   []TextEdit
}

// ApplyFixes computes the post-fix contents of every file touched by the
// diagnostics' suggested fixes. src seeds file contents (the loader's
// Package.Src, or nil to read from disk). Fixes are applied in
// diagnostic order; a fix whose edits overlap an already-accepted edit
// is dropped (deterministically — the earlier diagnostic wins), so the
// result is always a consistent single application. Every changed file
// is gofmt-formatted, which also verifies the fixed source still parses.
//
// The returned map holds only changed files; applied counts the fixes
// that made it in.
func ApplyFixes(diags []Diagnostic, src map[string][]byte) (fixed map[string][]byte, applied int, err error) {
	edits := make(map[string][]TextEdit)
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		if overlapsAny(edits, d.Fix.Edits) {
			continue
		}
		applied++
		for _, e := range d.Fix.Edits {
			edits[e.File] = append(edits[e.File], e)
		}
	}
	if applied == 0 {
		return nil, 0, nil
	}
	fixed = make(map[string][]byte, len(edits))
	for file, es := range edits {
		content, ok := src[file]
		if !ok {
			content, err = os.ReadFile(file)
			if err != nil {
				return nil, 0, err
			}
		}
		out, err := applyEdits(content, es)
		if err != nil {
			return nil, 0, fmt.Errorf("analysis: fix %s: %v", file, err)
		}
		formatted, err := format.Source(out)
		if err != nil {
			// A suggested fix produced unparseable Go: an analyzer bug,
			// surfaced instead of written to disk.
			return nil, 0, fmt.Errorf("analysis: fix %s produced invalid Go: %v", file, err)
		}
		fixed[file] = formatted
	}
	return fixed, applied, nil
}

// overlapsAny reports whether any of es overlaps an edit already
// accepted into acc. Two insertions at the same offset count as an
// overlap (their order would be ambiguous).
func overlapsAny(acc map[string][]TextEdit, es []TextEdit) bool {
	for _, e := range es {
		for _, have := range acc[e.File] {
			if e.Start < have.End && have.Start < e.End {
				return true
			}
			if e.Start == e.End && have.Start == have.End && e.Start == have.Start {
				return true
			}
		}
	}
	return false
}

// applyEdits applies non-overlapping edits to content, back to front so
// earlier offsets stay valid.
func applyEdits(content []byte, es []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), es...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start > sorted[j].Start })
	out := append([]byte(nil), content...)
	for _, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(content) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (len %d)", e.Start, e.End, len(content))
		}
		out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
	}
	return out, nil
}

// UnifiedDiff renders a unified diff (3 lines of context) between a and
// b, labelled name. It returns "" when the contents are identical. The
// diff is computed line-by-line with a plain LCS — quadratic, which is
// fine for source files.
func UnifiedDiff(name string, a, b []byte) string {
	if bytes.Equal(a, b) {
		return ""
	}
	al, bl := splitLines(a), splitLines(b)
	ops := diffOps(al, bl)

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s (fixed)\n", name, name)
	const ctx = 3
	for i := 0; i < len(ops); {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		// Expand a hunk around this run of changes.
		start := i
		end := i
		for end < len(ops) {
			if ops[end].kind == opEqual {
				// Close the hunk unless another change follows within
				// 2*ctx equal lines.
				run := 0
				for end+run < len(ops) && ops[end+run].kind == opEqual {
					run++
				}
				if end+run == len(ops) || run > 2*ctx {
					break
				}
				end += run
			}
			end++
		}
		lo := start - ctx
		if lo < 0 {
			lo = 0
		}
		hi := end + ctx
		if hi > len(ops) {
			hi = len(ops)
		}
		aStart, bStart, aN, bN := hunkRange(ops, lo, hi)
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", aStart+1, aN, bStart+1, bN)
		for _, op := range ops[lo:hi] {
			switch op.kind {
			case opEqual:
				sb.WriteString(" " + op.text + "\n")
			case opDelete:
				sb.WriteString("-" + op.text + "\n")
			case opInsert:
				sb.WriteString("+" + op.text + "\n")
			}
		}
		i = hi
	}
	return sb.String()
}

type diffOpKind int

const (
	opEqual diffOpKind = iota
	opDelete
	opInsert
)

type diffOp struct {
	kind   diffOpKind
	text   string
	aIndex int // line index in a (equal/delete)
	bIndex int // line index in b (equal/insert)
}

func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffOps computes an edit script between line slices via LCS.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEqual, a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDelete, a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{opInsert, b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDelete, a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opInsert, b[j], i, j})
	}
	return ops
}

// hunkRange returns the a/b start line indices and line counts covered
// by ops[lo:hi].
func hunkRange(ops []diffOp, lo, hi int) (aStart, bStart, aN, bN int) {
	aStart, bStart = ops[lo].aIndex, ops[lo].bIndex
	for _, op := range ops[lo:hi] {
		switch op.kind {
		case opEqual:
			aN++
			bN++
		case opDelete:
			aN++
		case opInsert:
			bN++
		}
	}
	return aStart, bStart, aN, bN
}
