package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the static call graph of a set of analyzed packages.
// Nodes are keyed by stable symbol strings (see Symbol) so the graph —
// like the fact store — survives the loader's two-identity world, where a
// package type-checked directly and the memoized copy its dependents
// imported are distinct *types.Package values for the same code.
//
// Edges come from two sources:
//
//   - static calls: every *ast.CallExpr whose callee resolves through
//     types.Info to a *types.Func (package functions, methods, and
//     qualified pkg.Fn calls). Calls inside function literals are
//     attributed to the enclosing declared function.
//   - method sets: a call through an interface method additionally gains
//     edges to every concrete method of an analyzed type whose method set
//     satisfies that interface — the over-approximation that makes
//     fact-driven analyzers sound for dynamic dispatch within the module.
type CallGraph struct {
	nodes map[string]*CallNode
	order []string // node insertion order, for deterministic iteration
}

// CallNode is one function in the call graph.
type CallNode struct {
	Symbol string
	// Fn is a representative types object for the function (from the
	// package that declared it when that package was analyzed, otherwise
	// from the first call site that resolved it).
	Fn *types.Func
	// Decl is the function's syntax when it was declared in an analyzed
	// package; nil for functions only seen as callees (stdlib, or module
	// packages outside the loaded set).
	Decl *ast.FuncDecl
	// Pkg is the analyzed package that declared the function, if any.
	Pkg *Package

	callees   []string
	callers   []string
	calleeSet map[string]bool
	callerSet map[string]bool
}

// NewCallGraph returns an empty graph.
func NewCallGraph() *CallGraph {
	return &CallGraph{nodes: make(map[string]*CallNode)}
}

// Symbol returns the stable, fully-qualified name of an object:
// "path/to/pkg.Fn" for package functions, "(path/to/pkg.T).M" (or the
// pointer-receiver form) for methods, and "pkg.Name" for other
// package-level objects. Two type-check universes of the same source
// agree on Symbol, which is why facts and call-graph nodes key on it.
func Symbol(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// Node returns the graph node for sym, or nil.
func (g *CallGraph) Node(sym string) *CallNode { return g.nodes[sym] }

// Funcs returns every node symbol in deterministic (insertion) order.
func (g *CallGraph) Funcs() []string { return g.order }

// Callees returns the symbols sym statically calls, in first-call order.
func (g *CallGraph) Callees(sym string) []string {
	if n := g.nodes[sym]; n != nil {
		return n.callees
	}
	return nil
}

// Callers returns the symbols that statically call sym.
func (g *CallGraph) Callers(sym string) []string {
	if n := g.nodes[sym]; n != nil {
		return n.callers
	}
	return nil
}

// Reaches reports whether from can reach (transitively, through any
// number of static calls) a symbol satisfying pred. from itself counts.
func (g *CallGraph) Reaches(from string, pred func(sym string) bool) bool {
	seen := make(map[string]bool)
	var walk func(string) bool
	walk = func(sym string) bool {
		if seen[sym] {
			return false
		}
		seen[sym] = true
		if pred(sym) {
			return true
		}
		for _, c := range g.Callees(sym) {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func (g *CallGraph) node(sym string) *CallNode {
	n := g.nodes[sym]
	if n == nil {
		n = &CallNode{
			Symbol:    sym,
			calleeSet: make(map[string]bool),
			callerSet: make(map[string]bool),
		}
		g.nodes[sym] = n
		g.order = append(g.order, sym)
	}
	return n
}

func (g *CallGraph) addEdge(caller, callee string) {
	from, to := g.node(caller), g.node(callee)
	if !from.calleeSet[callee] {
		from.calleeSet[callee] = true
		from.callees = append(from.callees, callee)
	}
	if !to.callerSet[caller] {
		to.callerSet[caller] = true
		to.callers = append(to.callers, caller)
	}
}

// AddPackage records pkg's function declarations and their static call
// edges. Packages must be added in a deterministic order (Lint adds them
// in dependency order) so node ordering is reproducible.
func (g *CallGraph) AddPackage(pkg *Package) {
	type ifaceCall struct {
		caller string
		iface  *types.Interface
		method string
	}
	var ifaceCalls []ifaceCall
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			caller := Symbol(obj)
			n := g.node(caller)
			n.Fn, n.Decl, n.Pkg = obj, decl, pkg
			ast.Inspect(decl.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeFunc(pkg.Info, call)
				if callee == nil {
					return true
				}
				g.addEdge(caller, Symbol(callee))
				if to := g.nodes[Symbol(callee)]; to.Fn == nil {
					to.Fn = callee
				}
				// A call through an interface method also (potentially)
				// dispatches to any implementation; resolved after all
				// declarations of this package are in the graph.
				if recv := callee.Type().(*types.Signature).Recv(); recv != nil {
					if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
						ifaceCalls = append(ifaceCalls, ifaceCall{caller, iface, callee.Name()})
					}
				}
				return true
			})
		}
	}
	for _, ic := range ifaceCalls {
		for _, impl := range implementations(pkg, ic.iface, ic.method) {
			g.addEdge(ic.caller, Symbol(impl))
			if to := g.nodes[Symbol(impl)]; to.Fn == nil {
				to.Fn = impl
			}
		}
	}
}

// implementations returns, in deterministic order, the concrete methods
// named method of pkg-scope named types whose method set satisfies iface.
func implementations(pkg *Package, iface *types.Interface, method string) []*types.Func {
	if pkg.Types == nil {
		return nil
	}
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	var impls []*types.Func
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, pkg.Types, method)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn)
		}
	}
	return impls
}

// CalleeFunc resolves the function a call expression statically invokes:
// a package-level function, a method (through types.Selections), or a
// qualified pkg.Fn reference. Conversions, calls of function-typed
// variables, and built-ins resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
