// Package atomicmixtest reproduces the PR-1 session-counter bug shape for
// the atomicmix golden test: a counter advanced atomically on the hot
// path but read and reset plainly elsewhere in the same package.
package atomicmixtest

import "sync/atomic"

type sessionCounter struct {
	sessions uint64 // accessed both ways below: every plain use is flagged
	resets   uint64 // plain-only: never flagged
	name     string
}

// next is the hot path: atomic advance, never flagged.
func (c *sessionCounter) next() uint64 {
	return atomic.AddUint64(&c.sessions, 1)
}

// snapshot is the bug: a plain read racing with next.
func (c *sessionCounter) snapshot() uint64 {
	return c.sessions // want `field sessions is accessed with sync/atomic elsewhere in this package but plainly here`
}

// reset mixes a plain write of the atomic field with a plain-only field.
func (c *sessionCounter) reset() {
	c.sessions = 0 // want `field sessions is accessed with sync/atomic`
	c.resets++
}

// bump is the ++ form of the same race.
func (c *sessionCounter) bump() {
	c.sessions++ // want `field sessions is accessed with sync/atomic`
}

// loadOK reads the field atomically: consistent access, never flagged.
func (c *sessionCounter) loadOK() uint64 {
	return atomic.LoadUint64(&c.sessions)
}

// label touches only non-atomic fields: never flagged.
func (c *sessionCounter) label() string { return c.name }

// peek is a deliberately suppressed plain read (e.g. a single-threaded
// constructor path) — the suppression must silence the finding.
func (c *sessionCounter) peek() uint64 {
	return c.sessions //lint:allow atomicmix golden-test fixture for suppression
}
