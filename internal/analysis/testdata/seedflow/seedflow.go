// Package seedflowtest seeds interprocedural constant-seed flows for the
// seedflow golden test: literals laundered through constructors, constant
// helpers feeding roots, and the threaded-seed idioms that must stay
// silent. Syntactic constants directly in xrand roots are deliberately
// absent — those belong to the seedlit testdata (the analyzers partition
// the bug class).
package seedflowtest

import "rfidest/internal/xrand"

// newEngine threads its seed into an xrand generator root: the analysis
// learns that callers must not pass constants.
func newEngine(seed uint64) *xrand.Rand { // wantfact `root seed flows in through parameter 0`
	return xrand.New(seed)
}

// launder passes a literal through the constructor — invisible to the
// file-local seedlit, caught by fact propagation.
func launder() *xrand.Rand {
	return newEngine(42) // want `constant seed flows through newEngine`
}

// deeper forwards its seed one more hop; the parameter fact is
// transitive.
func deeper(seed uint64) *xrand.Rand { // wantfact `root seed flows in through parameter 0`
	return newEngine(seed)
}

func launderDeep() *xrand.Rand {
	return deeper(41) // want `constant seed flows through deeper`
}

// defaultSeed returns a constant: using it as a root seed pins the
// stream just like writing the literal in place.
func defaultSeed() uint64 { // wantfact `returns a constant-derived seed`
	return 0xfeed
}

func useDefault() *xrand.Rand {
	return xrand.New(defaultSeed()) // want `seed derived only from constants`
}

// viaLocal pins through a local variable rather than a literal in place.
func viaLocal() *xrand.Rand {
	s := uint64(99)
	return xrand.New(s) // want `seed derived only from constants`
}

// saltOf derives its result from its parameter — a seed-threading
// helper, so constant arguments taint its result.
func saltOf(seed uint64) uint64 { // wantfact `returns a value derived from parameter 0`
	return xrand.Combine(seed, 0x5a17)
}

func useSalt() *xrand.Rand {
	return xrand.New(saltOf(3)) // want `seed derived only from constants`
}

// threaded is the correct idiom end to end: the root seed arrives as a
// parameter and literals appear only as domain-separation salts.
func threaded(rootSeed uint64) *xrand.Rand { // wantfact `root seed flows in through parameter 0`
	return newEngine(xrand.Combine(rootSeed, 0x77))
}

// threadedSalt keeps a parameter-derived value flowing cleanly through
// the helper chain: never flagged.
func threadedSalt(rootSeed uint64, trial int) *xrand.Rand { // wantfact `root seed flows in through parameter 0`
	return newEngine(saltOf(rootSeed) + uint64(trial))
}

// sanctioned is a deliberately pinned probe, kept visible with a
// reasoned suppression.
func sanctioned() *xrand.Rand {
	return newEngine(7) //lint:allow seedflow golden-test fixture for suppression
}
