// Package sleepctxtest seeds deliberate uninterruptible waits for the
// sleepctx golden test: bare time.Sleep calls inside library-style code,
// the context-bounded wait that is the sanctioned shape, and the
// //lint:allow escape hatch.
package sleepctxtest

import (
	"context"
	"time"
)

// blockingRetry waits in a way nothing upstream can interrupt.
func blockingRetry() {
	time.Sleep(100 * time.Millisecond) // want `time\.Sleep blocks uninterruptibly inside library code`
	for i := 0; i < 3; i++ {
		time.Sleep(time.Second) // want `time\.Sleep blocks uninterruptibly inside library code`
	}
}

// boundedWait is the correct shape: the timer select surrenders to the
// caller's context immediately on cancellation.
func boundedWait(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sanctionedSleep exercises the trailing suppression form.
func sanctionedSleep() {
	time.Sleep(time.Millisecond) //lint:allow sleepctx golden-test fixture for trailing suppression
}

// sanctionedSleepAbove exercises the standalone (line-above) form.
func sanctionedSleepAbove() {
	//lint:allow sleepctx golden-test fixture for standalone suppression
	time.Sleep(time.Millisecond)
}

// timerUseOK references the time package without sleeping.
func timerUseOK(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}
