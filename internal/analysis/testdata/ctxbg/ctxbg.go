// Package ctxbgtest seeds deliberate cancellation-plumbing violations for
// the ctxbg golden test: freshly minted root contexts inside library-style
// code, plus the sanctioned //lint:allow escape hatch.
package ctxbgtest

import "context"

// detachedRun severs the caller's deadline by minting its own roots.
func detachedRun() context.Context {
	ctx := context.Background() // want `context\.Background mints a root context inside library code`
	_ = context.TODO()          // want `context\.TODO mints a root context inside library code`
	return ctx
}

// threadedRun is the correct shape: the caller's context flows through.
func threadedRun(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// defaultedRun is the sanctioned escape hatch: a nil-ctx convenience
// default, suppressed with a reason at the use site.
func defaultedRun(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxbg golden-test fixture for trailing suppression
	}
	return ctx
}

// defaultedRunAbove exercises the standalone (line-above) suppression form.
func defaultedRunAbove() context.Context {
	//lint:allow ctxbg golden-test fixture for standalone suppression
	return context.TODO()
}

// valueUseOK references the context package without minting a root.
func valueUseOK(ctx context.Context) interface{} {
	return ctx.Value("key")
}
