// Package roundlooptest seeds hand-driven round loops for the roundloop
// golden test: direct Plan/Absorb driving (forbidden), stepper-to-stepper
// forwarding (exempt), single-method look-alikes (out of scope), and the
// //lint:allow escape hatch.
package roundlooptest

// spec/obs stand in for channel.RoundSpec/RoundObs; the analyzer matches
// the Plan+Absorb method pair, not the concrete round types, so the
// fixture stays self-contained.
type spec struct{ frame int }

type obsv struct{ idle bool }

// machine is a full round stepper: it carries both halves of the pair.
type machine struct{ round int }

func (m *machine) Plan() spec                  { return spec{frame: m.round} }
func (m *machine) Absorb(o obsv) (bool, error) { m.round++; return m.round > 3, nil }

// stepperIface mirrors channel.Stepper for interface-typed call sites.
type stepperIface interface {
	Plan() spec
	Absorb(obsv) (bool, error)
}

// handDriven is the violation the analyzer exists for: an improvised
// run-to-completion loop outside the shared driver.
func handDriven(m *machine) error {
	for {
		s := m.Plan() // want `\*machine\.Plan drives a protocol round by hand`
		_ = s
		done, err := m.Absorb(obsv{}) // want `\*machine\.Absorb drives a protocol round by hand`
		if err != nil || done {
			return err
		}
	}
}

// handDrivenIface: driving through the interface is the same violation.
func handDrivenIface(s stepperIface) {
	_ = s.Plan()            // want `stepperIface\.Plan drives a protocol round by hand`
	_, _ = s.Absorb(obsv{}) // want `stepperIface\.Absorb drives a protocol round by hand`
}

// wrapper is stepper composition: forwarding Plan/Absorb to a sub-machine
// from inside the wrapper's own Plan/Absorb is part of the machine, not a
// second driver — the real driver sits above both.
type wrapper struct {
	inner *machine
	done  bool
}

func (w *wrapper) Plan() spec {
	if !w.done {
		return w.inner.Plan() // exempt: forwarding frame
	}
	return spec{}
}

func (w *wrapper) Absorb(o obsv) (bool, error) {
	if !w.done {
		done, err := w.inner.Absorb(o) // exempt: forwarding frame
		w.done = done
		return false, err
	}
	return true, nil
}

// RunLegacy is the third forwarding frame: a legacy adapter may drain its
// sub-machine inside the driver-dispatched legacy round.
func (w *wrapper) RunLegacy(r *struct{}) (bool, error) {
	_ = w.inner.Plan() // exempt: forwarding frame
	return w.inner.Absorb(obsv{})
}

// planner has Plan but no Absorb: not a round machine, out of scope.
type planner struct{}

func (planner) Plan() spec { return spec{} }

// sink has Absorb but no Plan: likewise out of scope.
type sink struct{}

func (sink) Absorb(o obsv) (bool, error) { return true, nil }

func lookalikes(p planner, s sink) {
	_ = p.Plan()
	_, _ = s.Absorb(obsv{})
}

// Plan as a free function (no receiver) is not a stepper method.
func Plan() spec { return spec{} }

func freeFunc() {
	_ = Plan()
}

// allowed is the sanctioned escape hatch, reason attached at the site.
func allowed(m *machine) {
	_ = m.Plan() //lint:allow roundloop golden-test fixture for the suppression path
}

// notMethodDriving: calling Plan on a non-receiver selector (package-level
// func value in a struct field) stays out of scope.
type holder struct {
	plan func() spec
}

func fieldCall(h holder) {
	_ = h.plan()
}
