// Package errdroptest seeds discarded contract errors for the errdrop
// golden test. The contract predicate is by function name within the
// module, so the package is self-contained: its own Run and Merge stand
// in for the estimation pipeline's entry points, and trial/trialVia are
// the fact-marked wrappers that inherit the must-handle rule.
package errdroptest

import "errors"

// Run is a contract API by name: its error result is load-bearing.
func Run() error {
	return errors.New("saturated")
}

// Merge returns a value alongside a contract error.
func Merge(n int) (int, error) {
	return n, errors.New("infeasible")
}

// trial forwards Run's error — a wrapper that inherits the contract.
func trial() error { // wantfact `returns a contract error`
	return Run()
}

// trialVia forwards through a local variable.
func trialVia() error { // wantfact `returns a contract error`
	err := Run()
	return err
}

func dropBare() {
	Run() // want `error returned by Run is silently discarded`
}

func dropBareTuple() {
	Merge(5) // want `error returned by Merge is silently discarded`
}

func dropWrapper() {
	trial() // want `error returned by trial is silently discarded`
}

func dropBlank() {
	_ = Run() // want `error returned by Run is discarded into _`
}

func dropTuple() {
	n, _ := Merge(3) // want `error returned by Merge is discarded into _`
	_ = n
}

func dropGo() {
	go Run() // want `error returned by Run is discarded by go`
}

func dropDefer() {
	defer Run() // want `error returned by Run is discarded by defer`
}

// handled is the correct shape throughout — and, because it returns the
// contract error it received, it becomes a contract API itself.
func handled() error { // wantfact `returns a contract error`
	if err := Run(); err != nil {
		return err
	}
	n, err := Merge(4)
	_ = n
	return err
}

// deliberate is a sanctioned discard, kept visible with a reason.
func deliberate() {
	_ = Run() //lint:allow errdrop golden-test fixture for suppression
}
