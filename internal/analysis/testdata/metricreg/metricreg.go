// Package metricregtest seeds deliberate observability-policy violations
// for the metricreg golden test: both forbidden global-registry imports,
// plus the sanctioned //lint:allow escape hatch.
package metricregtest

import (
	"expvar" // want `import "expvar" registers process-global metrics and bypasses the observability layer`

	"runtime/metrics" // want `import "runtime/metrics" registers process-global metrics and bypasses the observability layer`
)

// sessionsVar publishes into expvar's process-global map — the exact
// second-registry scatter the policy forbids.
var sessionsVar = expvar.NewInt("sessions")

// readHeap samples the runtime's own metric registry.
func readHeap() uint64 {
	samples := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(samples)
	return samples[0].Value.Uint64()
}

func bump() { sessionsVar.Add(1) }
