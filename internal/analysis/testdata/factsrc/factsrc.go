// Package factsrc is the provider half of the cross-package fact test:
// a constructor whose parameter flows into an xrand root, exporting
// seedflow's parameter fact for the consumer package to trip over.
package factsrc

import "rfidest/internal/xrand"

// NewGen seeds a generator from its argument; callers must thread the
// experiment seed in.
func NewGen(seed uint64) *xrand.Rand {
	return xrand.New(seed)
}
