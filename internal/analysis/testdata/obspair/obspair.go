// Package obspairtest seeds phase-span pairing violations for the
// obspair golden test. The span surface is matched by method name, so a
// local Reader with StartPhase/EndPhase keeps the package self-contained
// while exercising every pairing shape: early-return leaks, deferred
// closes, cross-function closers, goroutine hand-offs, and deliberate
// openers that export the close obligation to their callers.
package obspairtest

// Reader mimics the channel session's span surface.
type Reader struct{ phase int }

// StartPhase opens a span for phase p (closing any open one implicitly).
func (r *Reader) StartPhase(p int) { r.phase = p }

// EndPhase closes the open span.
func (r *Reader) EndPhase() { r.phase = 0 }

// balanced opens and closes on its single path: silent, and entering it
// with a span open also ends closed.
func balanced(r *Reader) { // wantfact `closes the caller's open phase span`
	r.StartPhase(1)
	r.EndPhase()
}

// leakyReturn forgets the close on the early path only.
func leakyReturn(r *Reader, bail bool) {
	r.StartPhase(1)
	if bail {
		return // want `return with the phase span opened at line \d+ still open`
	}
	r.EndPhase()
}

// deferred closes via defer, covering every path at once.
func deferred(r *Reader, bail bool) { // wantfact `closes the caller's open phase span`
	r.StartPhase(2)
	defer r.EndPhase()
	if bail {
		return
	}
}

// closer ends the span for its caller: the endsPhaseFact carrier.
func closer(r *Reader) { // wantfact `closes the caller's open phase span`
	r.EndPhase()
}

// crossPair starts here and ends in the callee: silent.
func crossPair(r *Reader) { // wantfact `closes the caller's open phase span`
	r.StartPhase(3)
	closer(r)
}

// handOff transfers the close obligation to a goroutine that
// demonstrably closes.
func handOff(r *Reader) { // wantfact `closes the caller's open phase span`
	r.StartPhase(4)
	go closer(r)
}

// handOffLit hands off to a goroutine literal that closes.
func handOffLit(r *Reader) { // wantfact `closes the caller's open phase span`
	r.StartPhase(5)
	go func() { r.EndPhase() }()
}

// opener uniformly leaves the span open: a deliberate opener carries a
// reasoned allow, and the exported fact keeps its callers checked.
func opener(r *Reader) { // wantfact `leaves a phase span open for its caller`
	r.StartPhase(6) //lint:allow obspair golden-test fixture: deliberate opener, callers must close
}

// openerUser closes what opener left open: silent.
func openerUser(r *Reader) { // wantfact `closes the caller's open phase span`
	opener(r)
	r.EndPhase()
}

// openerLeak inherits the obligation from opener and drops it.
func openerLeak(r *Reader) { // wantfact `leaves a phase span open for its caller`
	opener(r) // want `phase span opened here never reaches EndPhase`
}

// forgot never closes at all.
func forgot(r *Reader) { // wantfact `leaves a phase span open for its caller`
	r.StartPhase(7) // want `phase span opened here never reaches EndPhase`
}

// switchPaths must close in every case; the default clause makes the
// case exits exhaustive.
func switchPaths(r *Reader, k int) { // wantfact `closes the caller's open phase span`
	r.StartPhase(8)
	switch k {
	case 0:
		r.EndPhase()
	default:
		r.EndPhase()
	}
}
