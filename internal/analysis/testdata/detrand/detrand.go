// Package detrandtest seeds deliberate determinism violations for the
// detrand golden test: forbidden randomness imports, wall-clock reads,
// and the sanctioned //lint:allow escape hatch.
package detrandtest

import (
	crand "crypto/rand" // want `import "crypto/rand" is forbidden in deterministic simulation packages`
	"math/rand"         // want `import "math/rand" is forbidden in deterministic simulation packages`
	"time"
)

// frameDeadline reads the wall clock twice; both reads are violations.
func frameDeadline() time.Time {
	start := time.Now()          // want `time\.Now reads the wall clock and breaks determinism`
	elapsed := time.Since(start) // want `time\.Since reads the wall clock and breaks determinism`
	return start.Add(-elapsed)
}

// entropySeed uses both forbidden randomness sources (flagged at the
// imports above, not per call site).
func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return rand.Int63()
	}
	return int64(b[0])
}

// reportStamp is the sanctioned escape hatch: a trailing, reasoned
// suppression keeps the wall-clock read visible but unflagged.
func reportStamp() time.Time {
	return time.Now() //lint:allow detrand golden-test fixture for trailing suppression
}

// reportStampAbove exercises the standalone (line-above) suppression form.
func reportStampAbove() time.Time {
	//lint:allow detrand golden-test fixture for standalone suppression
	return time.Now()
}

// durationMathOK uses time.Duration arithmetic, which never reads the
// clock and is allowed (the air-time model depends on it).
func durationMathOK(slots int) time.Duration {
	return time.Duration(slots) * 300 * time.Microsecond
}
