// Package boolframetest seeds deliberate []bool frame buffers for the
// boolframe golden test, plus the sanctioned escape hatches: a //lint:allow
// suppression and the reference.go file carve-out.
package boolframetest

// runFrame rebuilds a byte-per-slot frame buffer; every []bool type
// expression is a violation.
func runFrame(w int) []bool { // want `\[\]bool on the frame observation path`
	busy := make([]bool, w) // want `\[\]bool on the frame observation path`
	return busy
}

// frameField smuggles the buffer into a struct.
type frameField struct {
	slots []bool // want `\[\]bool on the frame observation path`
}

// frames is a nested slice: one finding at the outer type, not two.
var frames [][]bool // want `\[\]bool on the frame observation path`

// fixedFlags is a fixed-size array, not a frame buffer: arrays of known
// length are out of scope.
var fixedFlags [4]bool

// notBools is a slice of a named bool type, which cannot be a frame buffer
// the channel package would produce.
type tristate bool

var notBools []tristate

// coverageFlags is the sanctioned escape hatch: a reasoned suppression
// keeps a deliberate non-frame bool slice visible but unflagged.
var coverageFlags = make([]bool, 8) //lint:allow boolframe golden-test fixture for trailing suppression
