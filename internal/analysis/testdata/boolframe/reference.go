package boolframetest

// This file exercises the reference.go carve-out: it is full of []bool
// and must produce no findings.

type refFrame []bool

func refRun(w int) refFrame {
	return make([]bool, w)
}
