// Package factuse is the consumer half of the cross-package fact test:
// it launders a constant through factsrc.NewGen, which only the fact
// exported while analyzing factsrc can catch. The lint driver loads the
// dependency closure of its targets, so linting this package alone
// still finds the flow — and the suppressed variant shows //lint:allow
// filtering a fact-derived diagnostic whose evidence lives in another
// package.
package factuse

import "rfidest/internal/analysis/testdata/factsrc"

func pinned() {
	factsrc.NewGen(123) // want `constant seed flows through NewGen`
}

func threaded(seed uint64) {
	factsrc.NewGen(seed)
}

func sanctioned() {
	factsrc.NewGen(9) //lint:allow seedflow cross-package suppression fixture
}
