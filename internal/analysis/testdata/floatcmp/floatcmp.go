// Package floatcmptest seeds floating-point equality comparisons for the
// floatcmp golden test, alongside the integer and constant-folded forms
// that must stay silent.
package floatcmptest

type reading struct {
	estimate float64
	slots    int
}

// converged compares two float pipeline results exactly: flagged.
func converged(prev, cur float64) bool {
	return prev == cur // want `floating-point == comparison depends on rounding`
}

// drifted is the != form, with one operand a struct field.
func drifted(r reading, target float64) bool {
	return r.estimate != target // want `floating-point != comparison depends on rounding`
}

// nanCheck is the x != x NaN idiom — still flagged; math.IsNaN is the
// readable spelling.
func nanCheck(x float64) bool {
	return x != x // want `floating-point != comparison`
}

// typedFloat shows that named types with a float underlying kind are
// still caught.
type probability float64

func certain(p probability) bool {
	return p == 1 // want `floating-point == comparison`
}

// intSlots compares integers: never flagged.
func intSlots(a, b reading) bool { return a.slots == b.slots }

// constFolded is decided at compile time, independent of rounding mode:
// never flagged.
func constFolded() bool { return 1.0 == 2.0 }

// zeroSentinel is the sanctioned exception — an exact zero-value check on
// a field no arithmetic feeds — kept visible with a reasoned suppression.
func zeroSentinel(x float64) bool {
	return x == 0 //lint:allow floatcmp golden-test fixture: unset-field sentinel
}
