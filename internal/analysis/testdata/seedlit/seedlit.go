// Package seedlittest seeds constant-root-seed calls for the seedlit
// golden test, alongside the derived-seed and domain-tag idioms that must
// stay silent.
package seedlittest

import "rfidest/internal/xrand"

// pinnedStream hard-codes the generator seed: every caller replays the
// same sequence no matter what the experiment configured.
func pinnedStream() uint64 {
	rng := xrand.New(42) // want `constant root seed in xrand\.New pins this stream`
	return rng.Uint64()
}

// pinnedCombine pins the root word of a Combine; per-trial salts cannot
// rescue independence from a fixed root.
func pinnedCombine(trial uint64) uint64 {
	return xrand.Combine(0xa5, trial) // want `constant root seed in xrand\.Combine`
}

const fixedSeed = 7

// pinnedNamedConst shows that named constants are just as pinned as
// literals.
func pinnedNamedConst() *xrand.Rand {
	return xrand.NewStream(fixedSeed, 0x5eed) // want `constant root seed in xrand\.NewStream`
}

// pinnedSplitMix covers the fourth constructor.
func pinnedSplitMix() *xrand.SplitMix64 {
	return xrand.NewSplitMix64(1) // want `constant root seed in xrand\.NewSplitMix64`
}

// derived threads a root seed through and uses literals only as
// domain-separation tags: the house idiom, never flagged.
func derived(rootSeed, trial uint64) uint64 {
	return xrand.Combine(rootSeed, 0xa5, trial)
}

// seededStream takes its seed from the caller: never flagged.
func seededStream(seed uint64) *xrand.Rand {
	return xrand.NewStream(seed, 0x5eed)
}

// quickCheck is a sanctioned pinned probe (e.g. a smoke-test helper),
// kept visible with a reasoned suppression.
func quickCheck() *xrand.Rand {
	return xrand.New(1) //lint:allow seedlit golden-test fixture for suppression
}
