package analysis

import (
	"go/ast"
	"go/token"
)

// ObsPair enforces the span-pairing contract of the observability layer:
// every phase span a function opens (channel.Reader.StartPhase) must
// reach a matching EndPhase on every return path — otherwise the span's
// cost accounting silently attributes the rest of the session to the
// unfinished phase (PhaseEnd never fires, histograms and per-phase slot
// counters skew, and the next StartPhase papers over it via the implicit
// close).
//
// The analysis walks each function body as a block-structured control
// flow approximation, tracking whether a span is open. Pairings may
// cross function boundaries: a callee that closes the caller's open span
// on all its paths exports endsPhaseFact and counts as an EndPhase at
// the call site (including via defer or a goroutine hand-off — "go
// closer(r)" transfers the obligation to a goroutine that demonstrably
// closes); a helper that uniformly leaves a span open exports
// opensPhaseFact, is itself reported (a deliberate opener carries a
// reasoned //lint:allow obspair), and makes every caller inherit the
// close obligation.
var ObsPair = &Analyzer{
	Name: "obspair",
	Doc: "require every StartPhase to reach a matching EndPhase on all return paths, " +
		"across function boundaries and goroutine hand-offs; an unclosed span corrupts per-phase cost accounting",
	Interprocedural: true,
	Run:             runObsPair,
}

// endsPhaseFact marks a function that, entered with a span open, closes
// it on every path — calling it counts as an EndPhase.
type endsPhaseFact struct{}

func (endsPhaseFact) String() string { return "closes the caller's open phase span" }

// opensPhaseFact marks a function that uniformly exits with a span open
// — calling it counts as a StartPhase and passes the close obligation to
// the caller.
type opensPhaseFact struct{}

func (opensPhaseFact) String() string { return "leaves a phase span open for its caller" }

func runObsPair(pass *Pass) error {
	op := &obspair{pass: pass}
	decls := packageFuncDecls(pass)
	for range decls {
		changed := false
		for _, d := range decls {
			if op.analyzeFunc(d, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, d := range decls {
		op.analyzeFunc(d, true)
	}
	return nil
}

type obspair struct {
	pass *Pass
}

// spanExit records one way out of a function: a return statement or the
// fall-through end of the body, with the span state at that point.
type spanExit struct {
	pos    token.Pos // where the exit happens
	openAt token.Pos // where the still-open span was opened; NoPos if closed
}

// spanScan walks one function body. open is the position of the
// currently-open span's StartPhase (NoPos when closed).
type spanScan struct {
	op          *obspair
	defersClose bool
	exits       []spanExit
}

func (op *obspair) analyzeFunc(decl *ast.FuncDecl, report bool) bool {
	pass := op.pass
	obj := pass.Info.Defs[decl.Name]
	if obj == nil {
		return false
	}

	// Entered-closed scan: the function's own obligations.
	closedScan := &spanScan{op: op}
	exitOpen, terminated := closedScan.block(decl.Body.List, token.NoPos)
	if !terminated {
		closedScan.exits = append(closedScan.exits, spanExit{pos: decl.Body.Rbrace, openAt: exitOpen})
	}
	var openExits, closedExits []spanExit
	for _, e := range closedScan.exits {
		if e.openAt != token.NoPos && !closedScan.defersClose {
			openExits = append(openExits, e)
		} else {
			closedExits = append(closedExits, e)
		}
	}

	changed := false
	switch {
	case len(openExits) > 0 && len(closedExits) == 0:
		// Uniform opener: exports the obligation to its callers, and is
		// reported once at the opening — a deliberate opener suppresses
		// with a reason and its callers stay checked via the fact.
		if op.pass.ExportFact(obj, opensPhaseFact{}) {
			changed = true
		}
		if report {
			pass.Reportf(openExits[0].openAt,
				"phase span opened here never reaches EndPhase in this function; close it on every return path, hand it off to a closer, or mark a deliberate opener with //lint:allow obspair")
		}
	case len(openExits) > 0:
		// Mixed paths: a genuine leak on the open ones.
		if report {
			for _, e := range openExits {
				pass.Reportf(e.pos,
					"return with the phase span opened at line %d still open; every return path must EndPhase (or defer it)",
					pass.Fset.Position(e.openAt).Line)
			}
		}
	}

	// Entered-open scan: does calling this function close an open span on
	// every path? (The implicit-close semantics of StartPhase make a
	// start-then-end body a closer too.)
	openScan := &spanScan{op: op}
	sentinel := decl.Body.Lbrace // any non-NoPos marker for "open at entry"
	exitOpen, terminated = openScan.block(decl.Body.List, sentinel)
	allClosed := true
	if !terminated && exitOpen != token.NoPos && !openScan.defersClose {
		allClosed = false
	}
	for _, e := range openScan.exits {
		if e.openAt != token.NoPos && !openScan.defersClose {
			allClosed = false
		}
	}
	// Only a function that actually touches spans is a closer; otherwise
	// every leaf function would export the fact vacuously.
	if allClosed && op.touchesSpans(decl) {
		if op.pass.ExportFact(obj, endsPhaseFact{}) {
			changed = true
		}
	}
	return changed
}

// touchesSpans reports whether the function body contains any span
// operation (direct or fact-carrying call).
func (op *obspair) touchesSpans(decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, _ := op.classify(call); k != spanNone {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

type spanEffect int

const (
	spanNone spanEffect = iota
	spanOpen
	spanClose
)

// classify resolves the span effect of one call: StartPhase (by name, or
// an opensPhaseFact callee) opens, EndPhase (by name, or an endsPhaseFact
// callee) closes. An immediately invoked function literal is inlined by
// the caller, not classified.
func (op *obspair) classify(call *ast.CallExpr) (spanEffect, token.Pos) {
	fn := CalleeFunc(op.pass.Info, call)
	if fn == nil {
		return spanNone, token.NoPos
	}
	switch fn.Name() {
	case "StartPhase":
		return spanOpen, call.Pos()
	case "EndPhase":
		return spanClose, token.NoPos
	}
	for _, f := range op.pass.FactsOn(fn) {
		switch f.(type) {
		case opensPhaseFact:
			return spanOpen, call.Pos()
		case endsPhaseFact:
			return spanClose, token.NoPos
		}
	}
	return spanNone, token.NoPos
}

// closesWhenRun reports whether running e (a go/defer operand, or a
// function literal) with a span open would close it on all paths.
func (op *obspair) closesWhenRun(call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		s := &spanScan{op: op}
		sentinel := lit.Body.Lbrace
		exitOpen, terminated := s.block(lit.Body.List, sentinel)
		if !terminated && exitOpen != token.NoPos && !s.defersClose {
			return false
		}
		for _, e := range s.exits {
			if e.openAt != token.NoPos && !s.defersClose {
				return false
			}
		}
		return true
	}
	k, _ := op.classify(call)
	return k == spanClose
}

// stmt processes one statement, returning the new open state and whether
// the path terminated (return / terminating branch).
func (s *spanScan) stmt(st ast.Stmt, open token.Pos) (token.Pos, bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.exprCalls(st.X, open), false
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			open = s.exprCalls(rhs, open)
		}
		return open, false
	case *ast.DeferStmt:
		if s.op.closesWhenRun(st.Call) {
			s.defersClose = true
		}
		return open, false
	case *ast.GoStmt:
		if s.op.closesWhenRun(st.Call) {
			return token.NoPos, false // hand-off: the goroutine closes it
		}
		return open, false
	case *ast.ReturnStmt:
		s.exits = append(s.exits, spanExit{pos: st.Pos(), openAt: open})
		return open, true
	case *ast.BlockStmt:
		return s.block(st.List, open)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, open)
	case *ast.IfStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		thenOpen, thenTerm := s.block(st.Body.List, open)
		elseOpen, elseTerm := open, false
		if st.Else != nil {
			elseOpen, elseTerm = s.stmt(st.Else, open)
		}
		return mergeBranches(open, thenOpen, thenTerm, elseOpen, elseTerm)
	case *ast.ForStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		bodyOpen, _ := s.block(st.Body.List, open)
		return joinOpen(open, bodyOpen), false // body may run zero times
	case *ast.RangeStmt:
		bodyOpen, _ := s.block(st.Body.List, open)
		return joinOpen(open, bodyOpen), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		return s.clauses(st.Body, open)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			open, _ = s.stmt(st.Init, open)
		}
		return s.clauses(st.Body, open)
	case *ast.SelectStmt:
		return s.clauses(st.Body, open)
	case *ast.BranchStmt:
		// break/continue/goto end this linear path; the target re-enters
		// with a state we already tracked conservatively.
		return open, true
	default:
		return open, false
	}
}

// exprCalls applies the span effects of the calls syntactically inside
// e, in evaluation order. An immediately invoked function literal is
// inlined.
func (s *spanScan) exprCalls(e ast.Expr, open token.Pos) token.Pos {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // non-invoked literal bodies are separate functions
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			open, _ = s.block(lit.Body.List, open)
			return false
		}
		eff, pos := s.op.classify(call)
		switch eff {
		case spanOpen:
			open = pos
		case spanClose:
			open = token.NoPos
		}
		return true
	})
	return open
}

// block scans a statement list, returning the open state at its end and
// whether every path through it terminated.
func (s *spanScan) block(stmts []ast.Stmt, open token.Pos) (token.Pos, bool) {
	for _, st := range stmts {
		var term bool
		open, term = s.stmt(st, open)
		if term {
			return open, true
		}
	}
	return open, false
}

// clauses scans the case bodies of a switch/select, merging their exit
// states. Without a default clause the zero-cases-taken fall-through
// keeps the entry state alive; with one, only the case exits matter.
func (s *spanScan) clauses(body *ast.BlockStmt, open token.Pos) (token.Pos, bool) {
	merged := token.NoPos
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			stmts = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		caseOpen, caseTerm := s.block(stmts, open)
		if !caseTerm {
			merged = joinOpen(merged, caseOpen)
		}
	}
	if !hasDefault {
		merged = joinOpen(merged, open)
	}
	return merged, false
}

// mergeBranches joins the two arms of an if.
func mergeBranches(entry, thenOpen token.Pos, thenTerm bool, elseOpen token.Pos, elseTerm bool) (token.Pos, bool) {
	switch {
	case thenTerm && elseTerm:
		return entry, true
	case thenTerm:
		return elseOpen, false
	case elseTerm:
		return thenOpen, false
	default:
		return joinOpen(thenOpen, elseOpen), false
	}
}

// joinOpen merges two path states: open (either side) wins, keeping the
// earlier opening position for stable reporting.
func joinOpen(a, b token.Pos) token.Pos {
	if a == token.NoPos {
		return b
	}
	if b == token.NoPos {
		return a
	}
	if b < a {
		return b
	}
	return a
}
