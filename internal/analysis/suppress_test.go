package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseSuppressPackage builds the minimal Package suppressionsFor needs
// (syntax, positions, raw source) from one in-memory file.
func parseSuppressPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Fset:  fset,
		Files: []*ast.File{f},
		Src:   map[string][]byte{"test.go": []byte(src)},
	}
}

func TestStandalone(t *testing.T) {
	src := []byte("x := 1 // trailing\n\t//lint:allow detrand reason\n")
	trailing := 7 // offset of "//" after "x := 1 "
	alone := 20   // offset of "//" after "\n\t"
	if standalone(src, trailing) {
		t.Error("comment after code classified as standalone")
	}
	if !standalone(src, alone) {
		t.Error("indented comment-only line not classified as standalone")
	}
	if !standalone(src, 0) {
		t.Error("comment at start of file not classified as standalone")
	}
}

func TestFilterSuppressed(t *testing.T) {
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer}
	}
	sup := suppressions{
		"a.go": {10: {"detrand": true}},
	}
	in := []Diagnostic{
		diag("a.go", 10, "detrand"), // suppressed
		diag("a.go", 10, "seedlit"), // other analyzer: kept
		diag("a.go", 11, "detrand"), // other line: kept
		diag("b.go", 10, "detrand"), // other file: kept
	}
	out := filterSuppressed(in, sup)
	if len(out) != 3 {
		t.Fatalf("kept %d diagnostics, want 3: %v", len(out), out)
	}
	for _, d := range out {
		if d.Pos.Filename == "a.go" && d.Pos.Line == 10 && d.Analyzer == "detrand" {
			t.Fatal("suppressed diagnostic survived")
		}
	}
}

// TestSuppressMultipleAnalyzers covers the comma form: one allow comment
// silencing two analyzers on the same line (the internal/experiment
// parallelMap shape, where ctxbg and errdrop fire together).
func TestSuppressMultipleAnalyzers(t *testing.T) {
	pkg := parseSuppressPackage(t, `package p

func f() {
	_ = 1 //lint:allow ctxbg,errdrop both findings are one deliberate design choice
}
`)
	sup := suppressionsFor(pkg)
	names := sup["test.go"][4]
	if !names["ctxbg"] || !names["errdrop"] {
		t.Errorf("line 4 allows = %v, want both ctxbg and errdrop", names)
	}
	if names["detrand"] {
		t.Error("unlisted analyzer suppressed")
	}
}

// TestSuppressRequiresReason pins the mandatory-reason rule: an allow
// with analyzer names but no justification suppresses nothing.
func TestSuppressRequiresReason(t *testing.T) {
	pkg := parseSuppressPackage(t, `package p

func f() {
	_ = 1 //lint:allow detrand
	_ = 2 //lint:allow detrand a reason makes it count
}
`)
	sup := suppressionsFor(pkg)
	if sup["test.go"][4] != nil {
		t.Errorf("reasonless allow on line 4 produced suppressions: %v", sup["test.go"][4])
	}
	if !sup["test.go"][5]["detrand"] {
		t.Error("reasoned allow on line 5 did not suppress")
	}
}

// TestSuppressStandaloneCoversOnlyNextLine pins the scope of a
// standalone allow comment: exactly the next line, never the whole
// following block.
func TestSuppressStandaloneCoversOnlyNextLine(t *testing.T) {
	pkg := parseSuppressPackage(t, `package p

func f() {
	//lint:allow detrand covers only the next line
	_ = 1
	_ = 2
}
`)
	sup := suppressionsFor(pkg)
	if !sup["test.go"][5]["detrand"] {
		t.Error("standalone allow did not cover the next line")
	}
	if sup["test.go"][4] != nil {
		t.Errorf("standalone allow covered its own line: %v", sup["test.go"][4])
	}
	if sup["test.go"][6] != nil {
		t.Errorf("standalone allow leaked past the next line: %v", sup["test.go"][6])
	}
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "test.go", Line: 5}, Analyzer: "detrand"},
		{Pos: token.Position{Filename: "test.go", Line: 6}, Analyzer: "detrand"},
	}
	out := filterSuppressed(diags, sup)
	if len(out) != 1 || out[0].Pos.Line != 6 {
		t.Errorf("filter kept %v, want only the line-6 finding", out)
	}
}
