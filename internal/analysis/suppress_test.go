package analysis

import (
	"go/token"
	"testing"
)

func TestStandalone(t *testing.T) {
	src := []byte("x := 1 // trailing\n\t//lint:allow detrand reason\n")
	trailing := 7 // offset of "//" after "x := 1 "
	alone := 20   // offset of "//" after "\n\t"
	if standalone(src, trailing) {
		t.Error("comment after code classified as standalone")
	}
	if !standalone(src, alone) {
		t.Error("indented comment-only line not classified as standalone")
	}
	if !standalone(src, 0) {
		t.Error("comment at start of file not classified as standalone")
	}
}

func TestFilterSuppressed(t *testing.T) {
	diag := func(file string, line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer}
	}
	sup := suppressions{
		"a.go": {10: {"detrand": true}},
	}
	in := []Diagnostic{
		diag("a.go", 10, "detrand"), // suppressed
		diag("a.go", 10, "seedlit"), // other analyzer: kept
		diag("a.go", 11, "detrand"), // other line: kept
		diag("b.go", 10, "detrand"), // other file: kept
	}
	out := filterSuppressed(in, sup)
	if len(out) != 3 {
		t.Fatalf("kept %d diagnostics, want 3: %v", len(out), out)
	}
	for _, d := range out {
		if d.Pos.Filename == "a.go" && d.Pos.Line == 10 && d.Analyzer == "detrand" {
			t.Fatal("suppressed diagnostic survived")
		}
	}
}
