package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow is the interprocedural upgrade of seedlit: it tracks the
// provenance of root seeds through call chains. seedlit catches a
// literal written directly into xrand.New(...); seedflow catches the
// laundered forms —
//
//   - a literal passed to a constructor whose parameter flows into an
//     xrand root position two calls down (NewEngine(42) where NewEngine
//     eventually calls xrand.New(seed)),
//   - a helper that returns a constant ("func defaultSeed() uint64
//     { return 0xfeed }") used as a root seed,
//   - a local variable holding only constant-derived values reaching a
//     root position.
//
// The analysis is fact-driven: for every function it learns whether a
// parameter flows into a root-seed position (seedParamFact), whether the
// function returns a constant-derived value (constSeedFact), and whether
// its return value is derived from one of its parameters
// (seedRetParamFact). Facts propagate across package boundaries through
// the Lint run's shared store, so a constructor in internal/channel
// taints its call sites in internal/core. Syntactically constant
// arguments directly in an xrand root position are left to seedlit —
// the two analyzers partition the bug class, not overlap on it.
//
// xrand.Combine root words are deliberately NOT a sink: a Combine result
// used as a domain-separation salt of an outer Combine that carries the
// real root seed is the house idiom (experiment's tagSession), and
// flagging inner Combine roots would outlaw it. Constant-derived Combine
// RESULTS still taint: xrand.New(xrand.Combine(1, 2)) is reported.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "track constant seed provenance through call chains into xrand generator roots; " +
		"a literal laundered through a constructor pins the stream as surely as one written in place",
	AppliesTo: func(rel string) bool {
		return !strings.HasPrefix(rel, "examples/") && rel != "examples"
	},
	Interprocedural: true,
	Run:             runSeedFlow,
}

// constSeedFact marks a function whose return value derives only from
// compile-time constants.
type constSeedFact struct{}

func (constSeedFact) String() string { return "returns a constant-derived seed" }

// seedParamFact marks a function parameter that flows (transitively)
// into an xrand generator root position.
type seedParamFact struct{ Index int }

func (f seedParamFact) String() string {
	return fmt.Sprintf("root seed flows in through parameter %d", f.Index)
}

// seedRetParamFact marks a function whose return value derives from its
// Index-th parameter (a seed-threading helper like
// "func salt(seed uint64) uint64 { return xrand.Combine(seed, tag) }").
type seedRetParamFact struct{ Index int }

func (f seedRetParamFact) String() string {
	return fmt.Sprintf("returns a value derived from parameter %d", f.Index)
}

// xrandRootFuncs are the generator constructors whose first argument is
// a root seed. Combine is handled as provenance, not as a sink (see the
// analyzer doc).
var xrandRootFuncs = map[string]bool{
	"New":           true,
	"NewStream":     true,
	"NewSplitMix64": true,
}

// xrandDeriveFuncs propagate the provenance of their arguments into
// their result.
var xrandDeriveFuncs = map[string]bool{
	"Combine": true,
	"Mix64":   true,
}

func isXrandPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "rfidest/internal/xrand" || strings.HasSuffix(path, "/internal/xrand")
}

// seed provenance lattice: unknown ⊔ const ⊔ param(i).
type provKind int

const (
	provUnknown provKind = iota
	provConst
	provParam
)

type prov struct {
	kind  provKind
	param int // valid when kind == provParam
}

func runSeedFlow(pass *Pass) error {
	sf := &seedflow{pass: pass}
	decls := packageFuncDecls(pass)
	// Fact fixpoint: facts about one sibling can create sinks in another
	// (a laundering chain inside one package), so iterate until stable.
	for range decls {
		changed := false
		for _, d := range decls {
			if sf.analyzeFunc(d, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, d := range decls {
		sf.analyzeFunc(d, true)
	}
	return nil
}

// packageFuncDecls lists the package's function declarations with bodies
// in source order.
func packageFuncDecls(pass *Pass) []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	return decls
}

type seedflow struct {
	pass *Pass
}

// analyzeFunc computes seed provenance inside one function, exporting
// facts about it; with report set it also emits the diagnostics. It
// reports whether any new fact was exported.
func (sf *seedflow) analyzeFunc(decl *ast.FuncDecl, report bool) bool {
	pass := sf.pass
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	params := make(map[types.Object]int)
	if decl.Type.Params != nil {
		idx := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	ev := &seedEval{pass: pass, params: params, constLocals: make(map[types.Object]bool)}
	// First sweep: settle which locals are constant-derived (assignment
	// order approximated by source order; a single reassignment to a
	// non-constant value demotes the local).
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || len(st.Rhs) != len(st.Lhs) {
					continue
				}
				if ev.prov(st.Rhs[i]).kind == provConst {
					if _, demoted := ev.nonConstLocals[obj]; !demoted {
						ev.constLocals[obj] = true
					}
				} else {
					delete(ev.constLocals, obj)
					ev.demote(obj)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if name.Name == "_" || i >= len(st.Values) {
					continue
				}
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if ev.prov(st.Values[i]).kind == provConst {
					ev.constLocals[obj] = true
				}
			}
		}
		return true
	})

	changed := false
	// Sink sweep: xrand constructor roots and fact-marked parameters.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		sinks := sf.sinkArgs(callee, call)
		for _, s := range sinks {
			arg := call.Args[s.index]
			if isConst(pass.Info, arg) {
				// A syntactic constant directly in an xrand root is
				// seedlit's finding; one laundered through a parameter
				// is ours.
				if report && !s.xrand {
					pass.Reportf(arg.Pos(),
						"constant seed flows through %s into an xrand generator root, pinning the stream regardless of the configured experiment seed; thread the experiment seed in instead",
						callee.Name())
				}
				continue
			}
			switch p := ev.prov(arg); p.kind {
			case provConst:
				if report {
					pass.Reportf(arg.Pos(),
						"seed derived only from constants reaches the root position of %s, pinning the stream regardless of the configured experiment seed; derive it from the experiment seed instead",
						callee.Name())
				}
			case provParam:
				if pass.ExportFact(fn, seedParamFact{Index: p.param}) {
					changed = true
				}
			}
		}
		return true
	})

	// Return sweep: does the function return constant- or
	// parameter-derived values? Only single-result integer returns are
	// seed-shaped enough to matter.
	if res := fn.Type().(*types.Signature).Results(); res.Len() == 1 {
		if basic, ok := res.At(0).Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
			kind, param, any := provConst, -1, false
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // returns inside literals are not ours
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				any = true
				switch p := ev.prov(ret.Results[0]); p.kind {
				case provConst:
					// const stays const; param absorbs const
				case provParam:
					if kind == provParam && param != p.param {
						kind = provUnknown
					} else if kind != provUnknown {
						kind, param = provParam, p.param
					}
				default:
					kind = provUnknown
				}
				return true
			})
			if any {
				switch kind {
				case provConst:
					if pass.ExportFact(fn, constSeedFact{}) {
						changed = true
					}
				case provParam:
					if pass.ExportFact(fn, seedRetParamFact{Index: param}) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

type seedSink struct {
	index int
	xrand bool // true when the sink is an xrand constructor itself
}

// sinkArgs returns which argument positions of a call are root-seed
// sinks: position 0 of xrand generator constructors, plus every
// fact-marked parameter of module functions.
func (sf *seedflow) sinkArgs(callee *types.Func, call *ast.CallExpr) []seedSink {
	var sinks []seedSink
	seen := make(map[int]bool)
	if isXrandPkg(callee.Pkg()) && xrandRootFuncs[callee.Name()] && len(call.Args) > 0 {
		// The direct root sink claims index 0 outright: the xrand
		// constructors' own bodies thread seed onward, so a fact pass over
		// xrand also marks them seedParam — without precedence here that
		// stacked sink would re-report syntactic constants seedlit owns.
		sinks = append(sinks, seedSink{index: 0, xrand: true})
		seen[0] = true
	}
	for _, f := range sf.pass.FactsOn(callee) {
		if pf, ok := f.(seedParamFact); ok && pf.Index < len(call.Args) && call.Ellipsis == 0 && !seen[pf.Index] {
			seen[pf.Index] = true
			sinks = append(sinks, seedSink{index: pf.Index})
		}
	}
	return sinks
}

// seedEval evaluates expression provenance inside one function.
type seedEval struct {
	pass           *Pass
	params         map[types.Object]int
	constLocals    map[types.Object]bool
	nonConstLocals map[types.Object]bool
}

func (ev *seedEval) demote(obj types.Object) {
	if ev.nonConstLocals == nil {
		ev.nonConstLocals = make(map[types.Object]bool)
	}
	ev.nonConstLocals[obj] = true
}

func (ev *seedEval) factsOf(fn *types.Func) []Fact { return ev.pass.FactsOn(fn) }

func (ev *seedEval) prov(e ast.Expr) prov {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return prov{kind: provConst}
	case *ast.Ident:
		if ev.pass.Info.Types[x].Value != nil {
			return prov{kind: provConst}
		}
		obj := ev.pass.Info.Uses[x]
		if obj == nil {
			obj = ev.pass.Info.Defs[x]
		}
		if obj == nil {
			return prov{}
		}
		if idx, ok := ev.params[obj]; ok {
			return prov{kind: provParam, param: idx}
		}
		if ev.constLocals[obj] {
			return prov{kind: provConst}
		}
		return prov{}
	case *ast.UnaryExpr:
		return ev.prov(x.X)
	case *ast.BinaryExpr:
		return mergeProv(ev.prov(x.X), ev.prov(x.Y))
	case *ast.CallExpr:
		// Conversion: uint64(x) keeps x's provenance.
		if tv, ok := ev.pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return ev.prov(x.Args[0])
		}
		callee := CalleeFunc(ev.pass.Info, x)
		if callee == nil {
			return prov{}
		}
		if isXrandPkg(callee.Pkg()) && xrandDeriveFuncs[callee.Name()] {
			p := prov{kind: provConst}
			for _, arg := range x.Args {
				p = mergeProv(p, ev.prov(arg))
			}
			return p
		}
		for _, f := range ev.factsOf(callee) {
			switch ft := f.(type) {
			case constSeedFact:
				return prov{kind: provConst}
			case seedRetParamFact:
				if ft.Index < len(x.Args) && x.Ellipsis == 0 {
					return ev.prov(x.Args[ft.Index])
				}
			}
		}
		return prov{}
	default:
		if tv, ok := ev.pass.Info.Types[e]; ok && tv.Value != nil {
			return prov{kind: provConst}
		}
		return prov{}
	}
}

// mergeProv joins two operand provenances: constants absorb into either
// side, a parameter wins over constants, anything unknown poisons.
func mergeProv(a, b prov) prov {
	if a.kind == provUnknown || b.kind == provUnknown {
		return prov{}
	}
	if a.kind == provParam {
		return a
	}
	if b.kind == provParam {
		return b
	}
	return prov{kind: provConst}
}
