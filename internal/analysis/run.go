package analysis

import (
	"fmt"
	"go/build"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Lint expands the go-style patterns (a directory, or dir/... for a
// recursive walk), loads each matched package, and runs every registered
// analyzer whose scope covers it. Findings come back suppressed, merged
// and position-sorted.
func Lint(analyzers []*Analyzer, patterns []string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := NewLoader(".")
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return diags, err
		}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Rel) {
				continue
			}
			ds, err := Check(a, pkg)
			if err != nil {
				return diags, err
			}
			diags = append(diags, ds...)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// expandPatterns resolves patterns to package directories. Like the go
// tool, the recursive form skips testdata, vendor, and dot/underscore
// directories, and only keeps directories holding buildable Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasBuildableGoFiles(root) {
				return nil, fmt.Errorf("no buildable Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasBuildableGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGoFiles reports whether dir holds a non-test Go package for
// the current platform.
func hasBuildableGoFiles(dir string) bool {
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return false
	}
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
