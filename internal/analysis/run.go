package analysis

import (
	"fmt"
	"go/build"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Lint expands the go-style patterns (a directory, or dir/... for a
// recursive walk), loads each matched package plus the module-internal
// packages they (transitively) import, orders everything by dependency,
// and runs every registered analyzer. Findings are reported only for the
// pattern-matched packages; dependency packages outside the pattern set
// get a fact-only pass of the interprocedural analyzers, so facts about,
// say, internal/xrand are present even when only internal/fleet was
// asked for. Findings come back suppressed, merged and position-sorted.
func Lint(analyzers []*Analyzer, patterns []string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := NewLoader(".")
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	pkgs, targets, err := loadWithDeps(loader, dirs)
	if err != nil {
		return nil, err
	}
	pkgs = dependencyOrder(pkgs)
	graph := NewCallGraph()
	for _, pkg := range pkgs {
		graph.AddPackage(pkg)
	}
	facts := NewFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			report := targets[pkg.Path] && (a.AppliesTo == nil || a.AppliesTo(pkg.Rel))
			if !report && !a.Interprocedural {
				continue // nothing to report, no facts to gather
			}
			ds, err := runAnalyzer(a, pkg, graph, facts, report)
			if err != nil {
				return diags, err
			}
			diags = append(diags, ds...)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// loadWithDeps loads the packages in dirs and then the transitive
// closure of their module-internal imports. targets marks the import
// paths of the pattern-matched packages (the ones whose findings Lint
// reports).
func loadWithDeps(loader *Loader, dirs []string) ([]*Package, map[string]bool, error) {
	targets := make(map[string]bool)
	loaded := make(map[string]*Package)
	queued := make(map[string]bool)
	var pkgs []*Package
	var queue []string // directories still to load
	for _, dir := range dirs {
		if !queued[dir] {
			queued[dir] = true
			queue = append(queue, dir)
		}
	}
	targetCount := len(queue)
	for i := 0; i < len(queue); i++ {
		pkg, err := loader.LoadDir(queue[i])
		if err != nil {
			return nil, nil, err
		}
		if i < targetCount {
			targets[pkg.Path] = true
		}
		if loaded[pkg.Path] != nil {
			continue
		}
		loaded[pkg.Path] = pkg
		pkgs = append(pkgs, pkg)
		for _, imp := range moduleImports(loader, pkg) {
			if loaded[imp] != nil {
				continue
			}
			dir, err := loader.dirFor(imp)
			if err != nil {
				return nil, nil, err
			}
			if !queued[dir] {
				queued[dir] = true
				queue = append(queue, dir)
			}
		}
	}
	return pkgs, targets, nil
}

// moduleImports returns pkg's direct module-internal imports, sorted.
func moduleImports(loader *Loader, pkg *Package) []string {
	if pkg.Types == nil {
		return nil
	}
	var paths []string
	for _, imp := range pkg.Types.Imports() {
		p := imp.Path()
		if p == loader.ModulePath || strings.HasPrefix(p, loader.ModulePath+"/") {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	return paths
}

// dependencyOrder sorts packages so every package follows all of its
// module-internal imports — the order that makes fact propagation work:
// by the time a package is analyzed, facts about everything it imports
// are already in the store. Ties (unrelated packages) break by path.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	seen := make(map[string]bool, len(pkgs))
	var out []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		if p.Types != nil {
			var deps []string
			for _, imp := range p.Types.Imports() {
				if byPath[imp.Path()] != nil {
					deps = append(deps, imp.Path())
				}
			}
			sort.Strings(deps)
			for _, d := range deps {
				visit(byPath[d])
			}
		}
		out = append(out, p)
	}
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// expandPatterns resolves patterns to package directories. Like the go
// tool, the recursive form skips testdata, vendor, and dot/underscore
// directories, and only keeps directories holding buildable Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasBuildableGoFiles(root) {
				return nil, fmt.Errorf("no buildable Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasBuildableGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGoFiles reports whether dir holds a non-test Go package for
// the current platform.
func hasBuildableGoFiles(dir string) bool {
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return false
	}
	bp, err := build.Default.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
