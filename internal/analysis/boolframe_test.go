package analysis_test

import (
	"testing"

	"rfidest/internal/analysis"
	"rfidest/internal/analysis/analysistest"
)

func TestBoolFrameGolden(t *testing.T) {
	analysistest.Run(t, analysis.BoolFrame, "testdata/boolframe")
}

func TestBoolFrameScope(t *testing.T) {
	for rel, covered := range map[string]bool{
		".":                   true,
		"internal/channel":    true,
		"internal/core":       true,
		"internal/estimators": true,
		"internal/experiment": true,
		"internal/fleet":      true,
		"internal/missing":    true,
		"internal/bitset":     false, // owns the packed type and its []bool bridges
		"internal/bloom":      false,
		"internal/workload":   false,
		"cmd/rfidest":         false,
		"examples/quickstart": false,
	} {
		if got := analysis.BoolFrame.AppliesTo(rel); got != covered {
			t.Errorf("boolframe covers %q = %v, want %v", rel, got, covered)
		}
	}
}
