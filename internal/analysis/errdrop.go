package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop enforces error handling on the repository's contract APIs —
// the calls whose errors carry correctness information an estimation
// pipeline must not lose: System.Run/RunBFCEDetail, Merge,
// core.EstimateRetry, the Estimate* wrappers, and the fleet entry points
// (Run, Map). Dropping one of these errors is how a saturated or
// infeasible round silently becomes a plausible-looking estimate.
//
// The check is interprocedural: a module function that merely forwards a
// contract error ("func trial() error { return sys.Run(...) }") exports
// a fact and becomes a contract API itself, so discarding ITS error two
// calls up is flagged just the same — the laundering the file-local
// analyzers could not see.
//
// Three discard shapes are reported: a bare call statement (implicit
// drop — carries a suggested fix that inserts the explicit blanks, so
// rfidlint -fix turns the invisible discard into a visible one for a
// human to justify or handle), an explicit blank assignment of the
// error position ("_ = sys.Run(...)", "res, _ := fleet.Run(...)"), and
// a call discarded wholesale by go/defer. Deliberate discards take a
// reasoned //lint:allow errdrop at the use site.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag contract-API errors (Run, Merge, EstimateRetry, fleet.Run/Map, and their wrappers) " +
		"discarded anywhere in the call chain; a dropped error turns a failed round into a fake estimate",
	Interprocedural: true,
	Run:             runErrDrop,
}

// contractErrNames are the module functions/methods whose error result
// is load-bearing by contract. Wrappers that forward these errors are
// discovered by fact propagation, not listed.
var contractErrNames = map[string]bool{
	"Run":                true,
	"RunBFCEDetail":      true,
	"Merge":              true,
	"Estimate":           true,
	"EstimateRetry":      true,
	"EstimateBFCE":       true,
	"EstimateWith":       true,
	"EstimateWithSalt":   true,
	"EstimateBFCEDetail": true,
	"Map":                true,
}

// contractErrFact marks a module function that returns a contract
// error it received from a callee — it inherits the must-handle rule.
type contractErrFact struct{}

func (contractErrFact) String() string { return "returns a contract error" }

func runErrDrop(pass *Pass) error {
	ed := &errdrop{pass: pass, module: moduleOf(pass)}
	decls := packageFuncDecls(pass)
	for range decls {
		changed := false
		for _, d := range decls {
			if ed.analyzeFunc(d, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, d := range decls {
		ed.analyzeFunc(d, true)
	}
	return nil
}

// moduleOf recovers the module path from a pass ("rfidest" for package
// rfidest/internal/fleet at rel internal/fleet).
func moduleOf(pass *Pass) string {
	if pass.Rel == "." {
		return pass.Path
	}
	return strings.TrimSuffix(pass.Path, "/"+pass.Rel)
}

type errdrop struct {
	pass   *Pass
	module string
}

// isContractCall reports whether calling fn yields an error the caller
// must handle: a module function with an error last result that is
// either named in the contract list or fact-marked as forwarding one.
func (ed *errdrop) isContractCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != ed.module && !strings.HasPrefix(path, ed.module+"/") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return false
	}
	if contractErrNames[fn.Name()] {
		return true
	}
	for _, f := range ed.pass.FactsOn(fn) {
		if _, ok := f.(contractErrFact); ok {
			return true
		}
	}
	return false
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	named, ok := res.At(res.Len() - 1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// contractCallOf returns the contract callee of e when e is a call to
// one, nil otherwise.
func (ed *errdrop) contractCallOf(e ast.Expr) *types.Func {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := CalleeFunc(ed.pass.Info, call)
	if fn != nil && ed.isContractCall(fn) {
		return fn
	}
	return nil
}

// analyzeFunc scans one function for discarded contract errors and
// exports the forwarding fact; it reports whether a new fact appeared.
func (ed *errdrop) analyzeFunc(decl *ast.FuncDecl, report bool) bool {
	pass := ed.pass
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}

	// Locals holding a contract error (err := sys.Run(...) patterns):
	// returning one forwards the contract.
	contractErrVars := make(map[types.Object]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		if ed.contractCallOf(st.Rhs[0]) == nil {
			return true
		}
		if len(st.Lhs) == 0 {
			return true
		}
		last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
		if !ok || last.Name == "_" {
			return true
		}
		if obj := pass.Info.Defs[last]; obj != nil {
			contractErrVars[obj] = true
		} else if obj := pass.Info.Uses[last]; obj != nil {
			contractErrVars[obj] = true
		}
		return true
	})

	changed := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ed.contractCallOf(call)
			if callee == nil {
				return true
			}
			if report {
				sig := callee.Type().(*types.Signature)
				blanks := strings.Repeat("_, ", sig.Results().Len()-1) + "_ = "
				fix := &SuggestedFix{
					Message: "make the discarded error explicit",
					Edits:   []TextEdit{pass.Edit(call.Pos(), call.Pos(), blanks)},
				}
				pass.ReportFixf(call.Pos(), fix,
					"error returned by %s is silently discarded; handle it or make the discard explicit (then justify it with //lint:allow errdrop)",
					callee.Name())
			}
		case *ast.GoStmt:
			if callee := ed.contractCallOf(st.Call); callee != nil && report {
				pass.Reportf(st.Pos(),
					"error returned by %s is discarded by go; run it through a worker that collects errors (fleet.Run) or handle it in the goroutine",
					callee.Name())
			}
		case *ast.DeferStmt:
			if callee := ed.contractCallOf(st.Call); callee != nil && report {
				pass.Reportf(st.Pos(),
					"error returned by %s is discarded by defer; wrap it in a closure that handles the error",
					callee.Name())
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			callee := ed.contractCallOf(st.Rhs[0])
			if callee == nil || len(st.Lhs) == 0 {
				return true
			}
			last, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident)
			if ok && last.Name == "_" && report {
				pass.Reportf(last.Pos(),
					"error returned by %s is discarded into _; handle it or justify the discard with //lint:allow errdrop",
					callee.Name())
			}
		case *ast.ReturnStmt:
			// Forwarding: the function's own last result is an error fed
			// by a contract call (directly or through a local).
			sig := fn.Type().(*types.Signature)
			if !lastResultIsError(sig) || len(st.Results) == 0 {
				return true
			}
			lastExpr := st.Results[len(st.Results)-1]
			forwards := false
			if len(st.Results) == 1 && sig.Results().Len() > 1 {
				// return f(...) covering all results
				forwards = ed.contractCallOf(lastExpr) != nil
			} else if ed.contractCallOf(lastExpr) != nil {
				forwards = true
			} else if id, ok := ast.Unparen(lastExpr).(*ast.Ident); ok {
				obj := pass.Info.Uses[id]
				forwards = obj != nil && contractErrVars[obj]
			}
			if forwards && pass.ExportFact(fn, contractErrFact{}) {
				changed = true
			}
		}
		return true
	})
	return changed
}
