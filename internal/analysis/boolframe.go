package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// boolFramePackages are the packages on the frame observation path, where
// a []bool is overwhelmingly likely to be a channel frame buffer. The rest
// of the module (bitset's conversion helpers, workload configs, ...) is out
// of scope.
var boolFramePackages = map[string]bool{
	".":                   true,
	"internal/channel":    true,
	"internal/core":       true,
	"internal/estimators": true,
	"internal/experiment": true,
	"internal/fleet":      true,
	"internal/missing":    true,
}

// BoolFrame guards the word-packed frame refactor: channel frames are
// bitset-backed BitVecs, and new []bool buffers on the observation path
// reintroduce the slow byte-per-slot representation the refactor removed.
// It reports every []bool type expression in frame-path packages.
//
// internal/channel/reference.go is carved out by name: it deliberately
// retains the pre-packing []bool implementation as the behavioural
// reference for equivalence tests and benchmarks. Other deliberate uses
// (conversion bridges, non-frame flag slices) are suppressed per line with
// //lint:allow boolframe <reason>.
var BoolFrame = &Analyzer{
	Name: "boolframe",
	Doc: "forbid new []bool frame buffers on the channel observation path; " +
		"frames are word-packed (channel.BitVec over internal/bitset), and byte-per-slot buffers undo that",
	AppliesTo: func(rel string) bool { return boolFramePackages[rel] },
	Run:       runBoolFrame,
}

func runBoolFrame(pass *Pass) error {
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "reference.go" {
			continue // the retained []bool reference implementation
		}
		ast.Inspect(f, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok || at.Len != nil {
				return true
			}
			if elt := pass.Info.TypeOf(at.Elt); elt == nil || !types.Identical(elt, types.Typ[types.Bool]) {
				return true
			}
			pass.Reportf(at.Pos(),
				"[]bool on the frame observation path: frames are word-packed (channel.BitVec / internal/bitset); a deliberate non-frame or bridge use needs a //lint:allow boolframe comment")
			return false // don't re-report nested [][]bool elements
		})
	}
	return nil
}
