package analysis

import (
	"go/ast"
	"strings"
)

// SleepCtx enforces the bounded-wait contract the resilience layer rests
// on: library code must not call time.Sleep. A bare sleep cannot be
// interrupted — not by the caller's context, not by shutdown, not by a
// test's deadline — so every one is a latent drain stall and an
// untestable wait (a fake clock cannot advance through it). The repo's
// shape for a wait is a time.NewTimer select against ctx.Done() (see
// internal/client's backoff), which cancellation interrupts immediately
// and the race detector can drive.
//
// Covered packages are the module root and everything under internal/;
// cmd/ and examples/ are allowlisted (a demo pacing its output with a
// sleep is fine — nothing upstream needs to cancel it). A deliberate
// in-scope sleep needs a //lint:allow sleepctx comment with its reason.
var SleepCtx = &Analyzer{
	Name: "sleepctx",
	Doc: "forbid time.Sleep outside process entry points (cmd/, examples/); " +
		"library waits must be context-bounded (timer + select on ctx.Done()) so cancellation and shutdown reach them",
	AppliesTo: func(rel string) bool {
		return !strings.HasPrefix(rel, "cmd/") && rel != "cmd" &&
			!strings.HasPrefix(rel, "examples/") && rel != "examples"
	},
	Run: runSleepCtx,
}

func runSleepCtx(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgName, funName := calleePackageFunc(pass.Info, call)
			if pkgName == nil || pkgName.Imported().Path() != "time" {
				return true
			}
			if funName == "Sleep" {
				pass.Reportf(call.Pos(),
					"time.Sleep blocks uninterruptibly inside library code: wait on a time.NewTimer select against ctx.Done() so cancellation reaches it (a deliberate sleep needs a //lint:allow sleepctx comment)")
			}
			return true
		})
	}
	return nil
}
