package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in estimator
// and statistics code. Estimates, relative errors and probabilities are
// the results of long float pipelines; exact equality on them is almost
// always a latent bug (it silently depends on rounding), and the house
// idiom is a math.Abs tolerance (see internal/stats). Tests are out of
// scope: golden transcripts legitimately assert bit-identical floats.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= between floating-point operands in estimator/stats code; " +
		"compare with a math.Abs tolerance instead",
	AppliesTo: func(rel string) bool {
		switch rel {
		case ".", "internal/estimators", "internal/stats", "internal/core", "internal/missing":
			return true
		}
		return false
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, cmp.X) && !isFloat(pass.Info, cmp.Y) {
				return true
			}
			// A comparison folded at compile time cannot depend on
			// runtime rounding.
			if isConst(pass.Info, cmp.X) && isConst(pass.Info, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.Pos(),
				"floating-point %s comparison depends on rounding; use a math.Abs tolerance (or math.IsNaN for NaN checks)",
				cmp.Op)
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}
