package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestC1G2Constants(t *testing.T) {
	// §V-A: 26.5 kb/s reader → 37.76 µs/bit; 53 kb/s tag → 18.88 µs/bit.
	if C1G2.ReaderBitUS != 37.76 || C1G2.TagBitUS != 18.88 || C1G2.IntervalUS != 302 {
		t.Fatalf("C1G2 profile drifted: %+v", C1G2)
	}
}

func TestSeedBroadcastCost(t *testing.T) {
	// §V-A: it takes 1510 µs for the reader to broadcast a 32-bit seed
	// (32·37.76 + 302).
	var cl Clock
	cl.Broadcast(SeedBits)
	us := cl.Cost().Microseconds(C1G2)
	if math.Abs(us-1510.32) > 1e-9 {
		t.Fatalf("32-bit seed broadcast = %v µs, want 1510.32", us)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{ReaderBits: 1, TagSlots: 2, Intervals: 3}
	b := Cost{ReaderBits: 10, TagSlots: 20, Intervals: 30}
	a.Add(b)
	if a != (Cost{11, 22, 33}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestCostPricingLinear(t *testing.T) {
	f := func(rb, ts, iv uint8) bool {
		c := Cost{ReaderBits: int(rb), TagSlots: int(ts), Intervals: int(iv)}
		want := float64(rb)*37.76 + float64(ts)*18.88 + float64(iv)*302
		return math.Abs(c.Microseconds(C1G2)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockAccounting(t *testing.T) {
	var cl Clock
	cl.Broadcast(100)
	cl.Listen(8192)
	c := cl.Cost()
	if c.ReaderBits != 100 || c.TagSlots != 8192 || c.Intervals != 2 {
		t.Fatalf("clock cost = %+v", c)
	}
	cl.Reset()
	if cl.Cost() != (Cost{}) {
		t.Fatal("Reset did not clear")
	}
}

func TestClockPanics(t *testing.T) {
	var cl Clock
	for _, f := range []func(){func() { cl.Broadcast(-1) }, func() { cl.Listen(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative count did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSecondsAndDuration(t *testing.T) {
	c := Cost{TagSlots: 1000000} // 18.88 s
	if math.Abs(c.Seconds(C1G2)-18.88) > 1e-9 {
		t.Fatalf("Seconds = %v", c.Seconds(C1G2))
	}
	if d := c.Duration(C1G2); math.Abs(d.Seconds()-18.88) > 1e-6 {
		t.Fatalf("Duration = %v", d)
	}
}

func TestBFCEBudgetUnderPoint19(t *testing.T) {
	// §IV-E.1: "the overall temporal overhead of BFCE is less than 0.19s".
	got := BFCEBudgetSeconds(C1G2)
	if got >= 0.19 {
		t.Fatalf("BFCE budget %.6f s, paper promises < 0.19 s", got)
	}
	// And it should be in the right ballpark, not trivially small:
	// 256·37.76µs + 3·302µs + 9216·18.88µs = 184.58 ms.
	want := (256*37.76 + 3*302 + 9216*18.88) / 1e6
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("BFCE budget = %v, want %v", got, want)
	}
}

func TestCostString(t *testing.T) {
	if (Cost{}).String() == "" {
		t.Fatal("empty String()")
	}
}
