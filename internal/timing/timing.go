// Package timing models the air-interface time of an RFID estimation
// protocol under the EPCglobal C1G2 standard, using the constants from
// BFCE §IV-E.1 / §V-A:
//
//   - reader → tag: 26.5 kb/s, i.e. 37.76 µs per bit,
//   - tag → reader: 53 kb/s, i.e. 18.88 µs per bit (one bit-slot),
//   - any two consecutive transmissions (in either direction) are separated
//     by a waiting interval of 302 µs.
//
// Protocols account their communication as three counters — reader bits,
// tag bit-slots, and inter-transmission intervals — and this package turns
// the counters into wall-clock air time. Keeping the raw counters (rather
// than a single accumulated duration) lets experiments re-price a protocol
// under a different radio profile without re-running the simulation.
package timing

import (
	"fmt"
	"time"
)

// Profile holds the per-unit costs of the air interface, in microseconds.
type Profile struct {
	ReaderBitUS float64 // time for the reader to transmit 1 bit
	TagBitUS    float64 // time for tags to transmit 1 bit (one bit-slot)
	IntervalUS  float64 // gap between consecutive transmissions
}

// C1G2 is the EPCglobal Class-1 Generation-2 profile used throughout the
// paper's evaluation.
var C1G2 = Profile{ReaderBitUS: 37.76, TagBitUS: 18.88, IntervalUS: 302}

// Cost counts the communication units a protocol consumed.
type Cost struct {
	ReaderBits int // bits broadcast by the reader (parameters, seeds)
	TagSlots   int // tag→reader bit-slots sensed by the reader
	Intervals  int // inter-transmission gaps
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.ReaderBits += other.ReaderBits
	c.TagSlots += other.TagSlots
	c.Intervals += other.Intervals
}

// Sub returns c minus other, component-wise. Estimators use it to report
// the cost of their own run when composed after another protocol on the
// same session (ZOE's rough phase runs LOF first).
func (c Cost) Sub(other Cost) Cost {
	return Cost{
		ReaderBits: c.ReaderBits - other.ReaderBits,
		TagSlots:   c.TagSlots - other.TagSlots,
		Intervals:  c.Intervals - other.Intervals,
	}
}

// Microseconds prices the cost under profile p.
func (c Cost) Microseconds(p Profile) float64 {
	return float64(c.ReaderBits)*p.ReaderBitUS +
		float64(c.TagSlots)*p.TagBitUS +
		float64(c.Intervals)*p.IntervalUS
}

// Seconds prices the cost under profile p, in seconds.
func (c Cost) Seconds(p Profile) float64 { return c.Microseconds(p) / 1e6 }

// Duration prices the cost under profile p as a time.Duration.
func (c Cost) Duration(p Profile) time.Duration {
	return time.Duration(c.Microseconds(p) * float64(time.Microsecond))
}

// String renders the counters and the C1G2 price.
func (c Cost) String() string {
	return fmt.Sprintf("readerBits=%d tagSlots=%d intervals=%d (%.4fs under C1G2)",
		c.ReaderBits, c.TagSlots, c.Intervals, c.Seconds(C1G2))
}

// Clock accumulates Cost across the frames of a protocol run. The zero
// value is ready to use.
type Clock struct {
	cost Cost
}

// Broadcast accounts a reader transmission of the given number of bits,
// preceded by one inter-transmission interval.
func (cl *Clock) Broadcast(bits int) {
	if bits < 0 {
		panic("timing: negative broadcast size")
	}
	cl.cost.ReaderBits += bits
	cl.cost.Intervals++
}

// Listen accounts the reader sensing the given number of tag bit-slots,
// preceded by one inter-transmission interval (the turnaround from the
// reader's command to the tags' response).
func (cl *Clock) Listen(slots int) {
	if slots < 0 {
		panic("timing: negative slot count")
	}
	cl.cost.TagSlots += slots
	cl.cost.Intervals++
}

// Charge adds a pre-computed cost to the clock. Fault models use it to
// account recovery time (retransmission stalls, resynchronization gaps)
// that is not a plain broadcast or listen.
func (cl *Clock) Charge(c Cost) {
	if c.ReaderBits < 0 || c.TagSlots < 0 || c.Intervals < 0 {
		panic("timing: negative charge")
	}
	cl.cost.Add(c)
}

// Cost returns the accumulated counters.
func (cl *Clock) Cost() Cost { return cl.cost }

// Seconds returns the accumulated air time under profile p.
func (cl *Clock) Seconds(p Profile) float64 { return cl.cost.Seconds(p) }

// Reset clears the accumulated counters.
func (cl *Clock) Reset() { cl.cost = Cost{} }

// SeedBits is the length of one random seed broadcast by the reader (§V-A
// assumes 32-bit seeds; broadcasting one takes 32·37.76 + 302 ≈ 1510 µs).
const SeedBits = 32

// PnBits is the length of the persistence-probability numerator broadcast
// (§IV-E.1 restricts l_p to 32 bits).
const PnBits = 32

// BFCEBudgetSeconds is the paper's closed-form bound on BFCE's overall
// execution time (§IV-E.1): t = (6·l_R + 2·l_p)·t_r→t + 3·t_int + 9216·t_t→r
// with 32-bit seeds, i.e. "less than 0.19 s".
func BFCEBudgetSeconds(p Profile) float64 {
	us := float64(6*SeedBits+2*PnBits)*p.ReaderBitUS + 3*p.IntervalUS + 9216*p.TagBitUS
	return us / 1e6
}
