package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// EZB is the Enhanced Zero-Based estimator of Kodialam, Nandagopal and Lau
// [18], designed for anonymous tracking: over R identically parameterized
// frames it averages the number of zero (empty) slots and inverts
// E[Z] = f·e^{-np/f}. Unlike UPE it never needs singleton/collision
// discrimination, so we run it over plain bit-slot frames.
//
// The persistence probability is set from a rough LOF estimate so the
// per-slot load sits at the variance-minimizing λ*; R is sized so the
// averaged zero count meets (ε, δ).
type EZB struct {
	// FrameSize is the frame length (default 1024).
	FrameSize int
	// Rough supplies the load-setting estimate; nil uses LOF (10 rounds).
	Rough Estimator
	// MaxRounds caps the averaging phase (default 256).
	MaxRounds int
}

// NewEZB returns EZB with the default frame size.
func NewEZB() *EZB { return &EZB{} }

// Name implements Estimator.
func (e *EZB) Name() string { return "EZB" }

// Estimate implements Estimator.
func (e *EZB) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	f := e.FrameSize
	if f <= 0 {
		f = 1024
	}
	maxRounds := e.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 256
	}

	rough := e.Rough
	if rough == nil {
		rough = NewLOF()
	}
	roughRes, err := rough.Estimate(r, acc)
	if err != nil {
		return Result{}, err
	}
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	p := lambdaStarZOE * float64(f) / nRough
	if p > 1 {
		p = 1
	}

	// R frames so the pooled f·R observations meet (ε, δ) at the design
	// load (same variance law as every zero estimator).
	d := stats.D(acc.Delta)
	need := d * d * (math.Exp(lambdaStarZOE) - 1) /
		(acc.Epsilon * acc.Epsilon * lambdaStarZOE * lambdaStarZOE * float64(f))
	rounds := int(math.Ceil(need))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}

	idle := 0
	for i := 0; i < rounds; i++ {
		r.BroadcastParams(timing.SeedBits + timing.PnBits)
		vec := r.ExecuteFrame(channel.FrameRequest{
			W: f, K: 1, P: p, Seed: r.NextSeed(),
		})
		idle += vec.CountIdle()
	}
	m := rounds * f
	rho := clampRho(float64(idle)/float64(m), m)
	res := Result{
		Estimate: zeroEstimate(rho, p, f),
		Rounds:   rounds + roughRes.Rounds,
		Slots:    m + roughRes.Slots,
		Guarded:  true,
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}
