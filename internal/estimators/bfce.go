package estimators

import (
	"rfidest/internal/channel"
	"rfidest/internal/core"
)

// BFCE adapts the paper's estimator (internal/core) to the comparison
// interface, so the bake-off harness can run it side by side with ZOE, SRC
// and the related work. The (ε, δ) requirement of each call overrides the
// base configuration's.
type BFCE struct {
	// Config is the base configuration; zero fields take the paper
	// defaults.
	Config core.Config
}

// NewBFCE returns the adapter with the paper's default configuration.
func NewBFCE() *BFCE { return &BFCE{} }

// Name implements Estimator.
func (b *BFCE) Name() string { return "BFCE" }

// Estimate implements Estimator: it builds the round state machine
// (Stepper) and hands it to the shared driver.
func (b *BFCE) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	st, err := b.Stepper(acc)
	if err != nil {
		return Result{}, err
	}
	return Run(nil, r, st)
}
