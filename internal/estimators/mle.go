package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// MLE is the Maximum Likelihood Estimator of Li et al. [21], proposed for
// energy-constrained active tags: tags respond with a persistence
// probability in framed slots, and the reader maximizes the likelihood of
// the observed idle/busy pattern over n instead of inverting a single
// moment.
//
// With R frames of f slots at persistence p, each slot is idle with
// probability q(n) = (1−p/f)^n and the log-likelihood is
//
//	ℓ(n) = Σ_r [idle_r·ln q(n) + (f−idle_r)·ln(1−q(n))]
//
// which is unimodal in n; we maximize it by golden-section search. Round
// count is sized like the zero estimator's (the MLE is asymptotically
// efficient, so the same Fisher-information budget applies).
type MLE struct {
	// FrameSize is the frame length (default 512 — smaller frames, more
	// rounds: the protocol targets tag energy, not reader time).
	FrameSize int
	// Rough supplies the load-setting estimate; nil uses LOF (10 rounds).
	Rough Estimator
	// MaxRounds caps the measurement phase (default 512).
	MaxRounds int
}

// NewMLE returns MLE with default settings.
func NewMLE() *MLE { return &MLE{} }

// Name implements Estimator.
func (m *MLE) Name() string { return "MLE" }

// Estimate implements Estimator.
func (m *MLE) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	f := m.FrameSize
	if f <= 0 {
		f = 512
	}
	maxRounds := m.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 512
	}

	rough := m.Rough
	if rough == nil {
		rough = NewLOF()
	}
	roughRes, err := rough.Estimate(r, acc)
	if err != nil {
		return Result{}, err
	}
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	p := lambdaStarZOE * float64(f) / nRough
	if p > 1 {
		p = 1
	}

	d := stats.D(acc.Delta)
	need := d * d * (math.Exp(lambdaStarZOE) - 1) /
		(acc.Epsilon * acc.Epsilon * lambdaStarZOE * lambdaStarZOE * float64(f))
	rounds := int(math.Ceil(need))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}

	idleTotal := 0
	for i := 0; i < rounds; i++ {
		r.BroadcastParams(timing.SeedBits + timing.PnBits)
		vec := r.ExecuteFrame(channel.FrameRequest{
			W: f, K: 1, P: p, Seed: r.NextSeed(),
		})
		idleTotal += vec.CountIdle()
	}

	res := Result{
		Estimate: mleMaximize(idleTotal, rounds*f, p, f),
		Rounds:   rounds + roughRes.Rounds,
		Slots:    rounds*f + roughRes.Slots,
		Guarded:  true,
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// mleMaximize returns argmax_n ℓ(n) for idle idle slots out of total, with
// per-slot idle probability q(n) = (1−p/f)^n. Since all frames share (p, f)
// the sufficient statistic is the pooled idle count, and the MLE has the
// closed form q(n̂) = idle/total ⇒ n̂ = ln(idle/total)/ln(1−p/f); the
// golden-section search below exists to keep the estimator honest if the
// likelihood is later extended with per-frame parameters, and to document
// that ℓ is unimodal. It returns the closed form when the search brackets
// degenerate.
func mleMaximize(idle, total int, p float64, f int) float64 {
	rho := clampRho(float64(idle)/float64(total), total)
	lq := math.Log1p(-p / float64(f))
	closed := math.Log(rho) / lq

	ll := func(n float64) float64 {
		q := math.Exp(n * lq)
		q = clampRho(q, 1<<30)
		return float64(idle)*math.Log(q) + float64(total-idle)*math.Log(1-q)
	}
	lo, hi := closed/4, closed*4+16
	if lo < 0 {
		lo = 0
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := ll(x1), ll(x2)
	for i := 0; i < 120 && b-a > 1e-6*(1+b); i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = ll(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = ll(x1)
		}
	}
	return (a + b) / 2
}
