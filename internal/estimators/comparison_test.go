package estimators

import (
	"testing"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

// newSession returns a reader over a synthetic population of n tags.
func newSession(n int, seed uint64) *channel.Reader {
	return channel.NewReader(channel.NewBallsEngine(n, seed), seed+1)
}

// newTagSession returns a reader over a per-tag population.
func newTagSession(t *testing.T, n int, dist tags.Distribution, seed uint64) *channel.Reader {
	t.Helper()
	pop := tags.Generate(n, dist, seed)
	return channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN), seed+1)
}

func TestLOFRoughAccuracy(t *testing.T) {
	// LOF is a constant-factor rough estimator: demand a factor of 2 on
	// the mean over a few runs.
	for _, n := range []int{1000, 50000, 1000000} {
		var sum float64
		const trials = 6
		for trial := 0; trial < trials; trial++ {
			res, err := NewLOF().Estimate(newSession(n, uint64(trial*100+n%97)), Default)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Estimate
		}
		mean := sum / trials
		if mean < float64(n)/2 || mean > float64(n)*2 {
			t.Fatalf("LOF mean estimate %v for n=%d outside factor 2", mean, n)
		}
	}
}

func TestLOFEmptyPopulation(t *testing.T) {
	res, err := NewLOF().Estimate(newSession(0, 3), Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("LOF on empty population = %v", res.Estimate)
	}
}

func TestLOFCostAccounting(t *testing.T) {
	r := newSession(1000, 5)
	res, err := NewLOF().Estimate(r, Default)
	if err != nil {
		t.Fatal(err)
	}
	// 10 rounds × (32-bit seed + 32 slots).
	if res.Cost.ReaderBits != 320 || res.Cost.TagSlots != 320 {
		t.Fatalf("LOF cost = %+v", res.Cost)
	}
	if res.Rounds != 10 || res.Slots != 320 {
		t.Fatalf("LOF rounds/slots = %d/%d", res.Rounds, res.Slots)
	}
}

func TestLOFNilSession(t *testing.T) {
	if _, err := NewLOF().Estimate(nil, Default); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestZOESlotsFormula(t *testing.T) {
	// m = ⌈(d·0.5/(e^{-λ*}(1−e^{-ελ*})))²⌉: for (0.05, 0.05), d=1.96 →
	// edge = 0.2032·0.0766 and m ≈ 3960.
	m := ZOESlots(Accuracy{0.05, 0.05})
	if m < 3700 || m > 4200 {
		t.Fatalf("ZOE slots for (0.05,0.05) = %d, want ~3960", m)
	}
	// Looser ε shrinks m roughly quadratically (the 1−e^{-ελ} edge is
	// slightly sublinear in ε, so the ratio lands below 36).
	m2 := ZOESlots(Accuracy{0.3, 0.05})
	if ratio := float64(m) / float64(m2); ratio < 20 || ratio > 30 {
		t.Fatalf("slot ratio eps 0.05→0.3 = %v, want ~24.5", ratio)
	}
}

func TestZOEAccuracy(t *testing.T) {
	violations := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		res, err := NewZOE().Estimate(newSession(500000, uint64(trial)), Default)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelError(res.Estimate, 500000) > 0.05 {
			violations++
		}
	}
	if violations > 2 {
		t.Fatalf("ZOE violated epsilon in %d/%d trials", violations, trials)
	}
}

func TestZOEDominatedByReaderTraffic(t *testing.T) {
	// The paper's central observation: ZOE's reader→tag time (m×32 bits)
	// dwarfs its tag→reader time (m×1 bit).
	res, err := NewZOE().Estimate(newSession(100000, 9), Default)
	if err != nil {
		t.Fatal(err)
	}
	readerUS := float64(res.Cost.ReaderBits) * 37.76
	tagUS := float64(res.Cost.TagSlots) * 18.88
	if readerUS < 10*tagUS {
		t.Fatalf("reader time %v µs not dominant over tag time %v µs", readerUS, tagUS)
	}
	if res.Seconds < 1 {
		t.Fatalf("ZOE at (0.05,0.05) should take seconds, got %v", res.Seconds)
	}
}

func TestZOEMaxSlotsCap(t *testing.T) {
	z := &ZOE{MaxSlots: 100}
	res, err := z.Estimate(newSession(10000, 11), Accuracy{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots > 100+320 {
		t.Fatalf("cap ignored: %d slots", res.Slots)
	}
}

func TestSRCFrameSizeFormula(t *testing.T) {
	// l = ⌈7.72/ε²⌉ → 3088 at ε=0.05, 86 at ε=0.3.
	if l := SRCFrameSize(0.05); l < 3000 || l > 3200 {
		t.Fatalf("SRC frame at eps=0.05 = %d", l)
	}
	if l := SRCFrameSize(0.3); l < 80 || l > 95 {
		t.Fatalf("SRC frame at eps=0.3 = %d", l)
	}
}

func TestSRCRoundsRule(t *testing.T) {
	if SRCRounds(0.2, 0) != 1 || SRCRounds(0.3, 0) != 1 {
		t.Fatal("delta >= 0.2 must use a single round")
	}
	if SRCRounds(0.05, 0) != 7 {
		t.Fatalf("delta=0.05 rounds = %d, want 7", SRCRounds(0.05, 0))
	}
}

func TestSRCAccuracy(t *testing.T) {
	violations := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		res, err := NewSRC().Estimate(newSession(500000, uint64(40+trial)), Default)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelError(res.Estimate, 500000) > 0.05 {
			violations++
		}
	}
	// SRC occasionally misses when its rough phase is far off (the paper
	// shows exactly this, Fig. 9); more than a couple is a bug.
	if violations > 2 {
		t.Fatalf("SRC violated epsilon in %d/%d trials", violations, trials)
	}
}

func TestSRCRoundCount(t *testing.T) {
	res, err := NewSRC().Estimate(newSession(100000, 13), Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7+1 { // 7 accurate rounds + 1 rough LOF round
		t.Fatalf("SRC rounds = %d", res.Rounds)
	}
}

func TestBFCEAdapter(t *testing.T) {
	res, err := NewBFCE().Estimate(newSession(200000, 15), Default)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.Estimate, 200000) > 0.05 {
		t.Fatalf("BFCE adapter estimate %v", res.Estimate)
	}
	if !res.Guarded {
		t.Fatal("BFCE at n=200000 must be feasible/guarded")
	}
	if name := NewBFCE().Name(); name != "BFCE" {
		t.Fatal("name drifted")
	}
}

func TestRelativeSpeeds(t *testing.T) {
	// Fig. 10's shape: time(ZOE) >> time(SRC) > time(BFCE) at (0.05,0.05).
	n := 500000
	bfce, err := NewBFCE().Estimate(newSession(n, 21), Default)
	if err != nil {
		t.Fatal(err)
	}
	zoe, err := NewZOE().Estimate(newSession(n, 22), Default)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSRC().Estimate(newSession(n, 23), Default)
	if err != nil {
		t.Fatal(err)
	}
	if bfce.Seconds > 0.30 {
		t.Fatalf("BFCE took %v s, want ~0.19", bfce.Seconds)
	}
	if zoe.Seconds < 5*bfce.Seconds {
		t.Fatalf("ZOE %v s not much slower than BFCE %v s", zoe.Seconds, bfce.Seconds)
	}
	if src.Seconds < bfce.Seconds {
		t.Fatalf("SRC %v s faster than BFCE %v s at tight accuracy", src.Seconds, bfce.Seconds)
	}
	if src.Seconds > zoe.Seconds {
		t.Fatalf("SRC %v s slower than ZOE %v s", src.Seconds, zoe.Seconds)
	}
}

func TestEstimatorsOnTagEngine(t *testing.T) {
	// All three comparison protocols must run over the per-tag engine too.
	for _, e := range []Estimator{NewBFCE(), NewSRC(), &ZOE{MaxSlots: 4000}} {
		r := newTagSession(t, 50000, tags.T2, 31)
		res, err := e.Estimate(r, Accuracy{0.1, 0.1})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if stats.RelError(res.Estimate, 50000) > 0.15 {
			t.Fatalf("%s estimate %v too far from 50000", e.Name(), res.Estimate)
		}
	}
}

func TestAccuracyValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad accuracy did not panic")
		}
	}()
	(Accuracy{0, 0.5}).Validate()
}

func TestClampRho(t *testing.T) {
	if clampRho(0, 100) != 0.005 {
		t.Fatal("low clamp")
	}
	if clampRho(1, 100) != 0.995 {
		t.Fatal("high clamp")
	}
	if clampRho(0.4, 100) != 0.4 {
		t.Fatal("mid clamp")
	}
}
