package estimators

import (
	"math"
	"testing"

	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

// relatedWork lists the §II estimators with a loose accuracy target; they
// are breadth implementations whose job is to land near the truth with
// sensible costs, not to reproduce their own papers' exact constants.
func relatedWork() []Estimator {
	return []Estimator{NewUPE(), NewEZB(), NewFNEB(), NewMLE(), NewART(), NewPET()}
}

func TestRelatedWorkNames(t *testing.T) {
	want := map[string]bool{"UPE": true, "EZB": true, "FNEB": true, "MLE": true, "ART": true, "PET": true}
	for _, e := range relatedWork() {
		if !want[e.Name()] {
			t.Fatalf("unexpected name %q", e.Name())
		}
	}
	if (&UPE{CollisionBased: true}).Name() != "UPE-collision" {
		t.Fatal("UPE collision name drifted")
	}
}

func TestRelatedWorkNilSession(t *testing.T) {
	for _, e := range relatedWork() {
		if _, err := e.Estimate(nil, Default); err == nil {
			t.Fatalf("%s accepted nil session", e.Name())
		}
	}
}

func TestRelatedWorkAccuracy(t *testing.T) {
	// Each estimator, run at (0.1, 0.1), must land within 15% of truth on
	// a 100k population (their own guarantee plus implementation slack).
	const n = 100000
	acc := Accuracy{Epsilon: 0.1, Delta: 0.1}
	for _, e := range relatedWork() {
		res, err := e.Estimate(newSession(n, 301), acc)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if rel := stats.RelError(res.Estimate, n); rel > 0.15 {
			t.Fatalf("%s: estimate %v (rel %v)", e.Name(), res.Estimate, rel)
		}
		if res.Seconds <= 0 || res.Cost.TagSlots <= 0 {
			t.Fatalf("%s: missing cost accounting: %+v", e.Name(), res)
		}
	}
}

func TestUPECollisionVariant(t *testing.T) {
	e := &UPE{CollisionBased: true}
	res, err := e.Estimate(newSession(50000, 303), Accuracy{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelError(res.Estimate, 50000); rel > 0.2 {
		t.Fatalf("UPE-collision estimate %v (rel %v)", res.Estimate, rel)
	}
}

func TestUPECalibrationHalvesP(t *testing.T) {
	// A million tags saturate a 1024-slot frame at p=1: calibration must
	// run several halving rounds before measuring.
	res, err := NewUPE().Estimate(newSession(1000000, 305), Accuracy{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 5 {
		t.Fatalf("calibration too short: %d rounds", res.Rounds)
	}
	if rel := stats.RelError(res.Estimate, 1e6); rel > 0.15 {
		t.Fatalf("UPE estimate %v (rel %v)", res.Estimate, rel)
	}
}

func TestUPEAlohaSlotPricing(t *testing.T) {
	// UPE slots cost AlohaSlotBits tag bits each.
	res, err := NewUPE().Estimate(newSession(10000, 307), Accuracy{0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.TagSlots != res.Slots*AlohaSlotBits {
		t.Fatalf("tag bits %d != slots %d × %d", res.Cost.TagSlots, res.Slots, AlohaSlotBits)
	}
}

func TestFNEBScanCost(t *testing.T) {
	// FNEB senses only ~L/n slots per round, far fewer than a frame.
	res, err := NewFNEB().Estimate(newSession(100000, 309), Accuracy{0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	perRound := float64(res.Slots-320) / float64(res.Rounds-10) // minus rough LOF
	if perRound > 1000 {
		t.Fatalf("FNEB scans %v slots/round, expected ~65", perRound)
	}
}

func TestFNEBEmptyPopulation(t *testing.T) {
	res, err := NewFNEB().Estimate(newSession(0, 311), Accuracy{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("FNEB on empty population = %v", res.Estimate)
	}
}

func TestMLEMatchesClosedForm(t *testing.T) {
	// The golden-section maximizer must agree with the closed form.
	got := mleMaximize(3000, 8192, 0.01, 1024)
	want := math.Log(3000.0/8192) / math.Log1p(-0.01/1024)
	if math.Abs(got-want)/want > 0.001 {
		t.Fatalf("mleMaximize = %v, closed form %v", got, want)
	}
}

func TestPETProbeBudget(t *testing.T) {
	// PET touches only ⌈log2 depth⌉ slots per round.
	p := &PET{Depth: 32, MaxRounds: 50}
	res, err := p.Estimate(newSession(100000, 313), Accuracy{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots > res.Rounds*5 {
		t.Fatalf("PET probed %d slots in %d rounds (> 5/round)", res.Slots, res.Rounds)
	}
}

func TestPETEmptyPopulation(t *testing.T) {
	res, err := NewPET().Estimate(newSession(0, 315), Accuracy{0.3, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("PET on empty population = %v", res.Estimate)
	}
}

func TestARTRunStatistic(t *testing.T) {
	// ART at moderate n with a per-tag engine (it reads run structure,
	// which the balls engine also reproduces — cross-check both).
	r := newTagSession(t, 50000, tags.T3, 317)
	res, err := NewART().Estimate(r, Accuracy{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := stats.RelError(res.Estimate, 50000); rel > 0.15 {
		t.Fatalf("ART estimate %v (rel %v)", res.Estimate, rel)
	}
}

func TestCollisionInvert(t *testing.T) {
	// Round-trip: c(λ) = 1 − e^{-λ}(1+λ).
	for _, lambda := range []float64{0.1, 0.5, 1, 2, 5} {
		c := 1 - math.Exp(-lambda)*(1+lambda)
		got := collisionInvert(c, 1000) / 1000
		if math.Abs(got-lambda)/lambda > 0.001 {
			t.Fatalf("collisionInvert(λ=%v) = %v", lambda, got)
		}
	}
	if collisionInvert(0, 10) != 0 {
		t.Fatal("c=0 must invert to 0")
	}
	if got := collisionInvert(1, 10); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("c=1 must stay finite, got %v", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 64, 1: 64, 64: 64, 65: 128, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 32: 5, 33: 6, 1024: 10}
	for in, want := range cases {
		if got := bitsFor(in); got != want {
			t.Fatalf("bitsFor(%d) = %d, want %d", in, got, want)
		}
	}
}
