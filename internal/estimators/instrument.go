package estimators

import (
	"rfidest/internal/channel"
	"rfidest/internal/obs"
)

// Instrument wraps est so every run reports a session span to o: a
// SessionOpen before the protocol starts and a SessionClose carrying the
// run's registry-level accounting (rounds, slots, reader bits, air time,
// tag transmissions) when it completes. The wrapper also installs o as the
// session observer for the duration of the run, so the channel-level hooks
// (frames, broadcasts, phase spans) land in the same sink.
//
// Instrumentation is passive — the wrapped estimator's Result and error
// are returned untouched. When o is nil or obs.Nop, est is returned
// unwrapped so the uninstrumented path stays free of the indirection.
func Instrument(est Estimator, o obs.Observer) Estimator {
	if est == nil || o == nil || o == obs.Nop {
		return est
	}
	return instrumented{est: est, obs: o}
}

type instrumented struct {
	est Estimator
	obs obs.Observer
}

func (i instrumented) Name() string { return i.est.Name() }

func (i instrumented) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	prev := r.Observer()
	r.SetObserver(obs.Multi(prev, i.obs))
	defer r.SetObserver(prev)

	i.obs.SessionOpen(i.est.Name())
	res, err := i.est.Estimate(r, acc)
	i.obs.SessionClose(obs.SessionStats{
		Estimator:        i.est.Name(),
		Estimate:         res.Estimate,
		Rounds:           res.Rounds,
		Slots:            res.Slots,
		ReaderBits:       res.Cost.ReaderBits,
		Seconds:          res.Seconds,
		TagTransmissions: r.TagTransmissions(),
		Guarded:          res.Guarded,
		Err:              err != nil,
	})
	return res, err
}
