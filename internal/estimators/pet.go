package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// PET is the Probabilistic Estimating Tree of Zheng and Li [13]: tags hash
// geometrically onto the leaves of a virtual binary tree and the reader
// locates the boundary between the loaded and empty region with a binary
// search, touching only O(log log n) slots per round instead of scanning a
// frame.
//
// Per round, the reader binary-searches for the first idle position of the
// geometric lottery pattern: each probe broadcasts the probed position and
// senses one bit-slot. The located position F estimates log2(φ·n) exactly
// as in LOF, but at ⌈log2 W⌉ probed slots per round. (The lottery pattern
// is monotone only in expectation; occasional non-monotone frames add
// variance, which the round budget absorbs — PET's tree walk has the same
// property.) Rounds are sized from the Flajolet–Martin variance: one round
// of first-idle position has σ(F) ≈ 1.12 bits, so σ(n̂)/n ≈ ln2·1.12 and
// R = ⌈(1.12·ln2·d/ε)²⌉.
type PET struct {
	// Depth is the tree depth / lottery range (default 32, enough for
	// cardinalities to ~2^32).
	Depth int
	// MaxRounds caps the averaging (default 4096).
	MaxRounds int
}

// NewPET returns PET with default settings.
func NewPET() *PET { return &PET{} }

// Name implements Estimator.
func (p *PET) Name() string { return "PET" }

// fmSigma is the standard deviation (in bit positions) of one
// first-idle observation of a geometric lottery pattern.
const fmSigma = 1.12

// petBinaryBias is the mean excess (in bit positions) of the
// binary-searched first-idle position over the linear-scan position: the
// search can jump across an early idle slot when the probed midpoint is
// busy, so it converges to a later boundary. Calibrated by simulation over
// n ∈ [10³, 5·10⁶] (20k frames per point: bias 0.59–0.72 bits, mean 0.67).
const petBinaryBias = 0.673

// Estimate implements Estimator.
func (p *PET) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	depth := p.Depth
	if depth <= 0 {
		depth = 32
	}
	maxRounds := p.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4096
	}

	d := stats.D(acc.Delta)
	rel := fmSigma * math.Ln2
	rounds := int(math.Ceil((rel * d / acc.Epsilon) * (rel * d / acc.Epsilon)))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}

	sumF := 0.0
	slots := 0
	responded := false
	for i := 0; i < rounds; i++ {
		seed := r.NextSeed()
		// One seed broadcast arms the round; each probe then announces a
		// position (log2(depth) bits) and senses one bit-slot.
		r.BroadcastParams(timing.SeedBits)
		vec := r.Engine.RunFrame(channel.FrameRequest{
			W: depth, K: 1, P: 1, Dist: channel.Geometric, Seed: seed,
		})
		// Binary search for the first idle position over the materialized
		// pattern (each probe is charged individually: PET's whole point
		// is that only these probes ever cross the air interface).
		lo, hi := 0, depth
		posBits := bitsFor(depth)
		for lo < hi {
			mid := (lo + hi) / 2
			r.BroadcastParams(posBits)
			r.ListenSlots(1)
			slots++
			if vec.Get(mid) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			responded = true
		}
		sumF += float64(lo)
	}
	res := Result{Rounds: rounds, Slots: slots, Guarded: true}
	if !responded {
		res.Estimate = 0
	} else {
		res.Estimate = math.Exp2(sumF/float64(rounds)-petBinaryBias) / fmPhi
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// bitsFor returns the bits needed to address positions in [0, depth).
func bitsFor(depth int) int {
	b := 0
	for v := depth - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
