package estimators

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// This file is the round-structured execution model at the estimator
// level. A Stepper is a protocol as a resumable state machine (see
// channel.Stepper for the round vocabulary); Run is the one driver loop
// every protocol executes under. BFCE, ZOE, SRC and LOF step natively —
// their Plan/Absorb transitions reproduce the old monolithic Estimate
// methods round for round — while the remaining related-work estimators
// (UPE, EZB, FNEB, MLE, ART, PET and the variants) ride the legacy
// adapter: a single "round" that executes the whole run-to-completion
// protocol through the same driver, so every protocol, converted or not,
// hangs off one loop.

// Stepper is a resumable estimation protocol: channel.Stepper's
// Plan/Absorb round machine plus the estimator-level finishing moves.
//
// Result finalizes the run given the session cost the driver measured
// around it; it must only be called once Absorb has reported done.
// Snapshot and Restore carry the machine's full mid-run state (held
// seeds, partial observations, sub-phase progress), so a restored copy
// resumes exactly where the snapshot was taken.
type Stepper interface {
	channel.Stepper
	// Name returns the protocol's short name (as used in the paper).
	Name() string
	// Result finalizes the run: cost is the communication the driver
	// measured across the run, profile the session's timing profile.
	Result(cost timing.Cost, profile timing.Profile) Result
	// Snapshot returns an opaque copy of the machine's state.
	Snapshot() any
	// Restore overwrites the machine's state with a snapshot previously
	// taken from a Stepper of the same protocol and configuration.
	Restore(snap any) error
}

// Steppable is implemented by estimators that convert natively into round
// state machines. Estimators without it run through the legacy adapter
// (see AsStepper).
type Steppable interface {
	Estimator
	// Stepper returns a fresh round machine for one run at the accuracy
	// target. Like Estimate, it panics on a degenerate accuracy and
	// errors on an invalid protocol configuration.
	Stepper(acc Accuracy) (Stepper, error)
}

// AsStepper converts any registered estimator into a Stepper: natively
// when the protocol implements Steppable, otherwise through the legacy
// adapter, whose single round runs the old Estimate to completion. Either
// way the result is driven by Run — one execution path for every
// protocol, with per-round cancellation and interleaving available
// exactly where native stepping exists.
func AsStepper(est Estimator, acc Accuracy) (Stepper, error) {
	if est == nil {
		return nil, errors.New("estimators: nil estimator")
	}
	if s, ok := est.(Steppable); ok {
		return s.Stepper(acc)
	}
	return &legacyStepper{est: est, acc: acc}, nil
}

// Run drives st over the session r to completion and finalizes its
// Result, measuring the run's communication cost around the drive. It is
// the thin loop behind every Estimate method; ctx, when non-nil, cancels
// between rounds (see channel.Drive).
func Run(ctx context.Context, r *channel.Reader, st Stepper) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	start := r.Cost()
	if err := channel.Drive(ctx, r, st); err != nil {
		return Result{}, err
	}
	return st.Result(r.Cost().Sub(start), r.Profile), nil
}

// ---------------------------------------------------------------------
// Legacy adapter: one round = one whole run-to-completion protocol.

// legacyStepper adapts an unconverted estimator to the Stepper interface.
// Its Plan is a single Legacy round; RunLegacy executes the estimator's
// monolithic Estimate over the session, so the driven run is bit-identical
// to calling Estimate directly. Legacy runs are not resumable: there is
// exactly one round, and Snapshot carries no mid-run state.
type legacyStepper struct {
	est  Estimator
	acc  Accuracy
	res  Result
	done bool
}

func (l *legacyStepper) Name() string { return l.est.Name() }

func (l *legacyStepper) Plan() channel.RoundSpec {
	return channel.RoundSpec{Legacy: true}
}

func (l *legacyStepper) Absorb(channel.RoundObs) (bool, error) {
	return false, errors.New("estimators: legacy stepper rounds execute via RunLegacy")
}

// RunLegacy implements channel.LegacyRunner.
func (l *legacyStepper) RunLegacy(r *channel.Reader) (bool, error) {
	if l.done {
		return true, errors.New("estimators: legacy stepper re-driven after completion")
	}
	res, err := l.est.Estimate(r, l.acc)
	if err != nil {
		return false, err
	}
	l.res = res
	l.done = true
	return true, nil
}

// Result returns the inner Estimate's result untouched: the monolithic
// protocol already measured its own cost over the same span the driver
// did, so re-stamping would be a no-op.
func (l *legacyStepper) Result(timing.Cost, timing.Profile) Result { return l.res }

// Snapshot returns nil: a legacy run has no resumable mid-run state.
func (l *legacyStepper) Snapshot() any { return nil }

// Restore accepts only the nil snapshot Snapshot produces.
func (l *legacyStepper) Restore(snap any) error {
	if snap != nil {
		return fmt.Errorf("estimators: %s runs via the legacy adapter and is not resumable", l.est.Name())
	}
	return nil
}

// ---------------------------------------------------------------------
// BFCE: wraps the core round machine.

// bfceStepper adapts the core BFCE Stepper to the comparison interface.
type bfceStepper struct {
	core *core.Stepper
}

// Stepper implements Steppable.
func (b *BFCE) Stepper(acc Accuracy) (Stepper, error) {
	acc.Validate()
	cfg := b.Config
	cfg.Epsilon = acc.Epsilon
	cfg.Delta = acc.Delta
	est, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &bfceStepper{core: est.Stepper()}, nil
}

func (s *bfceStepper) Name() string                            { return "BFCE" }
func (s *bfceStepper) Plan() channel.RoundSpec                 { return s.core.Plan() }
func (s *bfceStepper) Absorb(o channel.RoundObs) (bool, error) { return s.core.Absorb(o) }

func (s *bfceStepper) Result(cost timing.Cost, profile timing.Profile) Result {
	res := s.core.Result()
	return Result{
		Estimate:  res.Estimate,
		Rounds:    1,
		Slots:     cost.TagSlots,
		Cost:      cost,
		Seconds:   cost.Seconds(profile),
		Guarded:   res.Feasible,
		Saturated: res.Saturated,
	}
}

func (s *bfceStepper) Snapshot() any { return s.core.Snapshot() }

func (s *bfceStepper) Restore(snap any) error {
	v, ok := snap.(core.Stepper)
	if !ok {
		return fmt.Errorf("estimators: BFCE restore from foreign snapshot %T", snap)
	}
	s.core.Restore(v)
	return nil
}

// ---------------------------------------------------------------------
// LOF: R rounds of geometric lottery frames.

type lofStepper struct {
	frame  int // frame length
	rounds int // total rounds

	round     int
	slots     int
	sumR      float64
	responded bool
}

// Stepper implements Steppable. Accuracy does not size LOF (it is a
// fixed-budget rough estimator), matching Estimate.
func (l *LOF) Stepper(Accuracy) (Stepper, error) {
	f := l.FrameSize
	if f <= 0 {
		f = 32
	}
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	return &lofStepper{frame: f, rounds: rounds}, nil
}

func (s *lofStepper) Name() string { return "LOF" }

func (s *lofStepper) Plan() channel.RoundSpec {
	return channel.RoundSpec{
		Broadcast: timing.SeedBits,
		Frame: channel.FrameRequest{
			W:    s.frame,
			K:    1,
			P:    1,
			Dist: channel.Geometric,
		},
	}
}

func (s *lofStepper) Absorb(o channel.RoundObs) (bool, error) {
	s.slots += s.frame
	// The observation is the number of leading busy slots (the first
	// idle position); a fully busy frame reports its length.
	first := o.Frame.FirstIdle()
	if first > 0 {
		s.responded = true
	}
	s.sumR += float64(first)
	s.round++
	return s.round >= s.rounds, nil
}

func (s *lofStepper) Result(cost timing.Cost, profile timing.Profile) Result {
	res := Result{Rounds: s.rounds, Slots: s.slots, Cost: cost, Seconds: cost.Seconds(profile)}
	if s.responded {
		res.Estimate = math.Exp2(s.sumR/float64(s.rounds)) / fmPhi
	}
	return res
}

func (s *lofStepper) Snapshot() any { return *s }

func (s *lofStepper) Restore(snap any) error {
	v, ok := snap.(lofStepper)
	if !ok {
		return fmt.Errorf("estimators: LOF restore from foreign snapshot %T", snap)
	}
	*s = v
	return nil
}

// ---------------------------------------------------------------------
// ZOE: rough sub-stepper, then m single-slot frames.

type zoeStepper struct {
	acc      Accuracy
	maxSlots int

	rough       Stepper
	roughDone   bool
	roughRounds int
	roughSlots  int

	p    float64
	m    int
	slot int
	idle int
}

// Stepper implements Steppable. The rough phase runs as a sub-stepper —
// natively when the configured rough estimator is Steppable (the default
// LOF is), through the legacy adapter otherwise — so a custom rough
// estimator never blocks ZOE from stepping.
func (z *ZOE) Stepper(acc Accuracy) (Stepper, error) {
	acc.Validate()
	roughEst := z.Rough
	if roughEst == nil {
		roughEst = NewLOF()
	}
	rough, err := AsStepper(roughEst, acc)
	if err != nil {
		return nil, err
	}
	return &zoeStepper{acc: acc, maxSlots: z.MaxSlots, rough: rough}, nil
}

func (s *zoeStepper) Name() string { return "ZOE" }

func (s *zoeStepper) Plan() channel.RoundSpec {
	if !s.roughDone {
		return s.rough.Plan()
	}
	// One seed broadcast per slot — ZOE's defining (and costly) trait.
	return channel.RoundSpec{
		Broadcast: timing.SeedBits,
		Frame:     channel.FrameRequest{W: 1, K: 1, P: s.p},
	}
}

func (s *zoeStepper) Absorb(o channel.RoundObs) (bool, error) {
	if !s.roughDone {
		done, err := s.rough.Absorb(o)
		if err != nil {
			return false, err
		}
		if done {
			s.finishRough()
		}
		return false, nil
	}
	if !o.Frame.Get(0) {
		s.idle++
	}
	s.slot++
	return s.slot >= s.m, nil
}

// RunLegacy implements channel.LegacyRunner by forwarding a legacy rough
// round to the sub-stepper (ZOE's own accurate rounds are always native).
func (s *zoeStepper) RunLegacy(r *channel.Reader) (bool, error) {
	lr, ok := s.rough.(channel.LegacyRunner)
	if s.roughDone || !ok {
		return false, errors.New("estimators: unexpected legacy round in ZOE")
	}
	done, err := lr.RunLegacy(r)
	if err != nil {
		return false, err
	}
	if done {
		s.finishRough()
	}
	return false, nil
}

// finishRough sizes the accurate phase from the rough estimate, exactly
// as the monolithic Estimate did.
func (s *zoeStepper) finishRough() {
	roughRes := s.rough.Result(timing.Cost{}, timing.Profile{})
	s.roughRounds = roughRes.Rounds
	s.roughSlots = roughRes.Slots
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	s.p = lambdaStarZOE / nRough
	if s.p > 1 {
		s.p = 1
	}
	m := ZOESlots(s.acc)
	if max := s.maxSlots; max > 0 && m > max {
		m = max
	} else if s.maxSlots == 0 && m > 65536 {
		m = 65536
	}
	s.m = m
	s.roughDone = true
}

func (s *zoeStepper) Result(cost timing.Cost, profile timing.Profile) Result {
	rho := clampRho(float64(s.idle)/float64(s.m), s.m)
	return Result{
		Estimate: -math.Log(rho) / s.p,
		Rounds:   1 + s.roughRounds,
		Slots:    s.m + s.roughSlots,
		Guarded:  true,
		Cost:     cost,
		Seconds:  cost.Seconds(profile),
	}
}

// zoeSnap carries the stepper's own state plus the rough sub-machine's.
type zoeSnap struct {
	self  zoeStepper
	rough any
}

func (s *zoeStepper) Snapshot() any {
	self := *s
	self.rough = nil
	return zoeSnap{self: self, rough: s.rough.Snapshot()}
}

func (s *zoeStepper) Restore(snap any) error {
	v, ok := snap.(zoeSnap)
	if !ok {
		return fmt.Errorf("estimators: ZOE restore from foreign snapshot %T", snap)
	}
	rough := s.rough
	*s = v.self
	s.rough = rough
	return s.rough.Restore(v.rough)
}

// ---------------------------------------------------------------------
// SRC: rough sub-stepper, then median-combined zero-estimator rounds.

type srcStepper struct {
	acc       Accuracy
	maxRounds int

	rough       Stepper
	roughDone   bool
	roughRounds int

	l, rounds int
	p         float64
	round     int
	slots     int
	estimates []float64
}

// Stepper implements Steppable; the rough phase composes like ZOE's.
func (src *SRC) Stepper(acc Accuracy) (Stepper, error) {
	acc.Validate()
	roughEst := src.Rough
	if roughEst == nil {
		roughEst = &LOF{FrameSize: 32, Rounds: 1}
	}
	rough, err := AsStepper(roughEst, acc)
	if err != nil {
		return nil, err
	}
	return &srcStepper{acc: acc, maxRounds: src.MaxRounds, rough: rough}, nil
}

func (s *srcStepper) Name() string { return "SRC" }

func (s *srcStepper) Plan() channel.RoundSpec {
	if !s.roughDone {
		return s.rough.Plan()
	}
	return channel.RoundSpec{
		Broadcast: timing.SeedBits + timing.PnBits,
		Frame:     channel.FrameRequest{W: s.l, K: 1, P: s.p},
	}
}

func (s *srcStepper) Absorb(o channel.RoundObs) (bool, error) {
	if !s.roughDone {
		done, err := s.rough.Absorb(o)
		if err != nil {
			return false, err
		}
		if done {
			s.finishRough()
		}
		return false, nil
	}
	s.slots += s.l
	rho := clampRho(o.Frame.RhoIdle(), s.l)
	s.estimates = append(s.estimates, zeroEstimate(rho, s.p, s.l))
	s.round++
	return s.round >= s.rounds, nil
}

// RunLegacy implements channel.LegacyRunner for a legacy rough estimator.
func (s *srcStepper) RunLegacy(r *channel.Reader) (bool, error) {
	lr, ok := s.rough.(channel.LegacyRunner)
	if s.roughDone || !ok {
		return false, errors.New("estimators: unexpected legacy round in SRC")
	}
	done, err := lr.RunLegacy(r)
	if err != nil {
		return false, err
	}
	if done {
		s.finishRough()
	}
	return false, nil
}

func (s *srcStepper) finishRough() {
	roughRes := s.rough.Result(timing.Cost{}, timing.Profile{})
	s.roughRounds = roughRes.Rounds
	s.slots = roughRes.Slots
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	s.l = SRCFrameSize(s.acc.Epsilon)
	s.rounds = SRCRounds(s.acc.Delta, s.maxRounds)
	s.p = lambdaStarZOE * float64(s.l) / nRough
	if s.p > 1 {
		s.p = 1
	}
	s.estimates = make([]float64, 0, s.rounds)
	s.roughDone = true
}

func (s *srcStepper) Result(cost timing.Cost, profile timing.Profile) Result {
	return Result{
		Estimate: stats.Median(s.estimates),
		Rounds:   s.rounds + s.roughRounds,
		Slots:    s.slots,
		Guarded:  true,
		Cost:     cost,
		Seconds:  cost.Seconds(profile),
	}
}

// srcSnap carries the stepper's own state plus the rough sub-machine's.
type srcSnap struct {
	self  srcStepper
	rough any
}

func (s *srcStepper) Snapshot() any {
	self := *s
	self.rough = nil
	self.estimates = append([]float64(nil), s.estimates...)
	return srcSnap{self: self, rough: s.rough.Snapshot()}
}

func (s *srcStepper) Restore(snap any) error {
	v, ok := snap.(srcSnap)
	if !ok {
		return fmt.Errorf("estimators: SRC restore from foreign snapshot %T", snap)
	}
	rough := s.rough
	*s = v.self
	s.estimates = append([]float64(nil), v.self.estimates...)
	s.rough = rough
	return s.rough.Restore(v.rough)
}

// The native conversions the tentpole names.
var (
	_ Steppable = (*BFCE)(nil)
	_ Steppable = (*ZOE)(nil)
	_ Steppable = (*SRC)(nil)
	_ Steppable = (*LOF)(nil)
)
