package estimators

import (
	"math"
	"testing"

	"rfidest/internal/stats"
)

func TestBFCEMultiAveragesDown(t *testing.T) {
	// The multi-round variant's error distribution must be tighter than a
	// single round's: compare mean absolute errors over trials.
	const n, trials = 200000, 8
	var single, multi float64
	for trial := 0; trial < trials; trial++ {
		r1 := newSession(n, uint64(400+trial))
		s, err := NewBFCE().Estimate(r1, Default)
		if err != nil {
			t.Fatal(err)
		}
		single += stats.RelError(s.Estimate, n)

		r2 := newSession(n, uint64(500+trial))
		m, err := NewBFCEMulti().Estimate(r2, Default)
		if err != nil {
			t.Fatal(err)
		}
		multi += stats.RelError(m.Estimate, n)
	}
	if multi >= single {
		t.Fatalf("multi-round mean error %v not below single-round %v", multi/trials, single/trials)
	}
}

func TestBFCEMultiCostScalesWithRounds(t *testing.T) {
	r := newSession(100000, 42)
	res, err := (&BFCEMulti{Rounds: 3}).Estimate(r, Default)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// 3 × (probe + 1024 + 8192) slots at minimum.
	if res.Slots < 3*9216 {
		t.Fatalf("slots = %d, want >= %d", res.Slots, 3*9216)
	}
	if res.Seconds < 0.5 || res.Seconds > 0.75 {
		t.Fatalf("3-round air time %v s, want ~0.57", res.Seconds)
	}
}

func TestBFCEMultiNilSession(t *testing.T) {
	if _, err := NewBFCEMulti().Estimate(nil, Default); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestZOEBatchedMatchesZOEAccuracy(t *testing.T) {
	const n = 300000
	res, err := NewZOEBatched().Estimate(newSession(n, 77), Default)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.Estimate, n) > 0.05 {
		t.Fatalf("batched ZOE estimate %v", res.Estimate)
	}
}

func TestZOEBatchedCollapsesCost(t *testing.T) {
	// The ablation's whole point: same observations, ~40x less air time,
	// because the per-slot seed broadcasts are gone.
	n := 300000
	zoe, err := NewZOE().Estimate(newSession(n, 81), Default)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewZOEBatched().Estimate(newSession(n, 82), Default)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Seconds > zoe.Seconds/10 {
		t.Fatalf("batched %v s not << ZOE %v s", batched.Seconds, zoe.Seconds)
	}
	// And the observation counts are the same.
	if math.Abs(float64(batched.Slots-zoe.Slots)) > 1 {
		t.Fatalf("slot counts differ: %d vs %d", batched.Slots, zoe.Slots)
	}
}

func TestZOEBatchedNilSession(t *testing.T) {
	if _, err := NewZOEBatched().Estimate(nil, Default); err == nil {
		t.Fatal("nil session accepted")
	}
}

func TestVariantNames(t *testing.T) {
	if NewBFCEMulti().Name() != "BFCE-multi" || NewZOEBatched().Name() != "ZOE-batched" {
		t.Fatal("variant names drifted")
	}
}
