package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// BFCEMulti runs BFCE for several independent rounds and averages the
// estimates. Fig. 8 of the paper observes that BFCE "offers more accurate
// estimation after multiple runs"; this variant makes that mode a
// first-class estimator so the accuracy-vs-time tradeoff can be swept
// (R rounds cost R × 0.19 s and shrink the standard error by √R).
type BFCEMulti struct {
	// Rounds is the number of independent estimations averaged
	// (default 5).
	Rounds int
	// Inner configures the per-round estimator; nil uses paper defaults.
	Inner *BFCE
}

// NewBFCEMulti returns the multi-round variant with 5 rounds.
func NewBFCEMulti() *BFCEMulti { return &BFCEMulti{Rounds: 5} }

// Name implements Estimator.
func (m *BFCEMulti) Name() string { return "BFCE-multi" }

// Estimate implements Estimator.
func (m *BFCEMulti) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	rounds := m.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	inner := m.Inner
	if inner == nil {
		inner = NewBFCE()
	}
	start := r.Cost()
	var estimates []float64
	slots := 0
	guarded := true
	for i := 0; i < rounds; i++ {
		res, err := inner.Estimate(r, acc)
		if err != nil {
			return Result{}, err
		}
		estimates = append(estimates, res.Estimate)
		slots += res.Slots
		guarded = guarded && res.Guarded
	}
	res := Result{
		Estimate: stats.Mean(estimates),
		Rounds:   rounds,
		Slots:    slots,
		Guarded:  guarded,
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// ZOEBatched is a what-if ablation of ZOE, not a published protocol: the
// same m single-bit observations, but tags derive each slot's coin from a
// counter under ONE broadcast seed instead of receiving a fresh 32-bit
// seed per slot. It isolates the source of ZOE's cost — with the per-slot
// broadcast gone, the m slots run back-to-back as one frame and the
// protocol's time collapses toward BFCE's, at identical estimation
// quality. (The published ZOE broadcasts per slot because C1G2 tags lack a
// trusted per-slot counter; the variant assumes the §IV-E.2 tag model,
// which can XOR a counter into its prestored RN.)
type ZOEBatched struct {
	// MaxSlots caps the observation count (default 65536).
	MaxSlots int
}

// NewZOEBatched returns the batched ZOE ablation.
func NewZOEBatched() *ZOEBatched { return &ZOEBatched{} }

// Name implements Estimator.
func (z *ZOEBatched) Name() string { return "ZOE-batched" }

// Estimate implements Estimator.
func (z *ZOEBatched) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()

	rough, err := NewLOF().Estimate(r, acc)
	if err != nil {
		return Result{}, err
	}
	nRough := rough.Estimate
	if nRough < 1 {
		nRough = 1
	}
	p := lambdaStarZOE / nRough
	if p > 1 {
		p = 1
	}
	m := ZOESlots(acc)
	max := z.MaxSlots
	if max <= 0 {
		max = 65536
	}
	if m > max {
		m = max
	}

	// One seed broadcast, then m back-to-back single-bit observations.
	// Each observation is an independent per-slot coin for every tag;
	// modelled as m W=1 frames under counter-derived seeds, but priced as
	// one contiguous listen.
	r.BroadcastParams(timing.SeedBits + timing.PnBits)
	base := r.NextSeed()
	idle := 0
	for i := 0; i < m; i++ {
		vec := r.Engine.RunFrame(channel.FrameRequest{
			W: 1, K: 1, P: p, Seed: base + uint64(i),
		})
		if !vec.Get(0) {
			idle++
		}
	}
	r.ListenSlots(m)

	rho := clampRho(float64(idle)/float64(m), m)
	res := Result{
		Estimate: -math.Log(rho) / p,
		Rounds:   1 + rough.Rounds,
		Slots:    m + rough.Slots,
		Guarded:  true,
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}
