package estimators

import (
	"context"
	"strings"
	"testing"

	"rfidest/internal/channel"
)

// The snapshot/resume contract: a stepper frozen mid-run and restored into
// a fresh machine continues the protocol as if nothing happened — same
// estimate, same accounting — because Snapshot carries the entire mid-run
// state (held seeds, partial observations, sub-phase progress) and the
// session's seed stream lives in the Reader, untouched by the freeze.

// stepN drives st for up to n rounds over r, returning how many rounds ran
// and whether the protocol completed.
func stepN(t *testing.T, r *channel.Reader, st Stepper, n int) (int, bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		done, err := channel.StepRound(nil, r, st)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if done {
			return i + 1, true
		}
	}
	return n, false
}

func TestStepperSnapshotResume(t *testing.T) {
	type tc struct {
		name string
		est  Steppable
		k    int // rounds to run before freezing
	}
	cases := []tc{
		{"BFCE", NewBFCE(), 2},
		{"LOF", NewLOF(), 4},
		{"ZOE", NewZOE(), 40},      // past the rough phase, into singleton slots
		{"SRC", NewSRC(), 3},       // mid rough phase
		{"ZOE-early", NewZOE(), 2}, // frozen inside the rough sub-stepper
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const n, seed = 20000, 77
			acc := Default

			// Straight run for the reference result.
			want, err := c.est.Estimate(newSession(n, seed), acc)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: k rounds, freeze, thaw into a fresh
			// machine, finish on the same session.
			r := newSession(n, seed)
			start := r.Cost()
			st, err := c.est.Stepper(acc)
			if err != nil {
				t.Fatal(err)
			}
			ran, done := stepN(t, r, st, c.k)
			if done {
				t.Fatalf("protocol finished in %d rounds; pick a smaller k than %d", ran, c.k)
			}
			snap := st.Snapshot()

			resumed, err := c.est.Stepper(acc)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if _, done := stepN(t, r, resumed, 1<<20); !done {
				t.Fatal("resumed run never completed")
			}
			r.EndPhase()
			got := resumed.Result(r.Cost().Sub(start), r.Profile)
			if got != want {
				t.Errorf("resumed run diverged:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestStepperRestoreRejectsForeignSnapshot: a snapshot only thaws into the
// machine type that produced it.
func TestStepperRestoreRejectsForeignSnapshot(t *testing.T) {
	acc := Default
	bfce, err := NewBFCE().Stepper(acc)
	if err != nil {
		t.Fatal(err)
	}
	lof, err := NewLOF().Stepper(acc)
	if err != nil {
		t.Fatal(err)
	}
	if err := bfce.Restore(lof.Snapshot()); err == nil {
		t.Error("BFCE stepper accepted a LOF snapshot")
	}
	if err := lof.Restore(bfce.Snapshot()); err == nil {
		t.Error("LOF stepper accepted a BFCE snapshot")
	}
}

// TestAsStepperLegacy: an unconverted estimator rides the legacy adapter —
// a single driver round that reproduces Estimate exactly.
func TestAsStepperLegacy(t *testing.T) {
	for _, name := range []string{"UPE", "EZB", "FNEB", "MLE", "ART", "PET"} {
		est, err := New(name)
		if err != nil {
			t.Fatalf("estimator %q missing from registry: %v", name, err)
		}
		if _, ok := est.(Steppable); ok {
			t.Fatalf("%s is Steppable now; move it out of the legacy test", name)
		}
		const n, seed = 5000, 31
		want, err := est.Estimate(newSession(n, seed), Default)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := AsStepper(fresh, Default)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(context.Background(), newSession(n, seed), st)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s via legacy adapter:\n got  %+v\n want %+v", name, got, want)
		}
		if snap := st.Snapshot(); snap != nil {
			t.Errorf("%s: legacy snapshot = %v, want nil", name, snap)
		}
		if err := st.Restore(nil); err != nil {
			t.Errorf("%s: Restore(nil) = %v", name, err)
		}
		if err := st.Restore(42); err == nil {
			t.Errorf("%s: legacy adapter accepted a non-nil snapshot", name)
		}
	}
}

// TestAsStepperNative: the natively-converted protocols do NOT take the
// legacy path — their first planned round is a real frame, not a Legacy
// dispatch (except ZOE/SRC with a custom unconverted rough estimator,
// which forward one legacy round for it).
func TestAsStepperNative(t *testing.T) {
	for _, name := range []string{"BFCE", "ZOE", "SRC", "LOF"} {
		est, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := AsStepper(est, Default)
		if err != nil {
			t.Fatal(err)
		}
		if spec := st.Plan(); spec.Legacy {
			t.Errorf("%s plans a legacy round; expected native stepping", name)
		}
	}
}

// TestZOECustomRoughViaStepper: a ZOE configured with an unconverted rough
// estimator still runs under the driver — the outer stepper forwards the
// rough phase as one legacy round — and matches the monolithic result.
func TestZOECustomRoughViaStepper(t *testing.T) {
	mk := func() *ZOE { return &ZOE{Rough: NewUPE()} }
	const n, seed = 20000, 13
	want, err := mk().Estimate(newSession(n, seed), Default)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mk().Stepper(Default)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), newSession(n, seed), st)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ZOE{Rough: UPE} via stepper:\n got  %+v\n want %+v", got, want)
	}
}

func TestAsStepperNil(t *testing.T) {
	if _, err := AsStepper(nil, Default); err == nil ||
		!strings.Contains(err.Error(), "nil") {
		t.Errorf("AsStepper(nil): err = %v", err)
	}
}

// TestRunNilSession matches the monolithic nil-session diagnostic.
func TestRunNilSession(t *testing.T) {
	st, err := AsStepper(NewLOF(), Default)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), nil, st); err == nil ||
		!strings.Contains(err.Error(), "nil session") {
		t.Errorf("Run(nil reader): err = %v", err)
	}
}
