package estimators

import "sort"

// registry maps protocol names to fresh estimator instances. It is the
// single source of truth for which protocols exist: the root package's
// EstimateWith and every CLI resolve names through New/Names below.
var registry = map[string]func() Estimator{
	"BFCE":        func() Estimator { return NewBFCE() },
	"BFCE-multi":  func() Estimator { return NewBFCEMulti() },
	"ZOE":         func() Estimator { return NewZOE() },
	"ZOE-batched": func() Estimator { return NewZOEBatched() },
	"SRC":         func() Estimator { return NewSRC() },
	"LOF":         func() Estimator { return NewLOF() },
	"UPE":         func() Estimator { return NewUPE() },
	"EZB":         func() Estimator { return NewEZB() },
	"FNEB":        func() Estimator { return NewFNEB() },
	"MLE":         func() Estimator { return NewMLE() },
	"ART":         func() Estimator { return NewART() },
	"PET":         func() Estimator { return NewPET() },
}

// New returns a fresh instance of the named protocol, or nil if the name
// is unknown (see Names for the accepted set).
func New(name string) Estimator {
	mk, ok := registry[name]
	if !ok {
		return nil
	}
	return mk()
}

// Names returns the protocol names accepted by New, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
