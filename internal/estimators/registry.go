package estimators

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownEstimator is the sentinel wrapped by New for names outside the
// registry. Callers that turn estimator lookup into a protocol-level
// response (the serving layer's 400, a CLI's usage message) test for it
// with errors.Is instead of string-matching.
var ErrUnknownEstimator = errors.New("unknown estimator")

// registry maps protocol names to fresh estimator instances. It is the
// single source of truth for which protocols exist: the root package's
// Run options and every CLI resolve names through New/Names below.
var registry = map[string]func() Estimator{
	"BFCE":        func() Estimator { return NewBFCE() },
	"BFCE-multi":  func() Estimator { return NewBFCEMulti() },
	"ZOE":         func() Estimator { return NewZOE() },
	"ZOE-batched": func() Estimator { return NewZOEBatched() },
	"SRC":         func() Estimator { return NewSRC() },
	"LOF":         func() Estimator { return NewLOF() },
	"UPE":         func() Estimator { return NewUPE() },
	"EZB":         func() Estimator { return NewEZB() },
	"FNEB":        func() Estimator { return NewFNEB() },
	"MLE":         func() Estimator { return NewMLE() },
	"ART":         func() Estimator { return NewART() },
	"PET":         func() Estimator { return NewPET() },
}

// New returns a fresh instance of the named protocol. An unrecognized name
// yields an error wrapping ErrUnknownEstimator that lists the accepted set
// (see Names).
func New(name string) (Estimator, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("estimators: %w %q (known: %s)",
			ErrUnknownEstimator, name, strings.Join(Names(), ", "))
	}
	return mk(), nil
}

// Names returns the protocol names accepted by New, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
