// Package estimators implements the comparison and related-work RFID
// cardinality estimators surrounding BFCE:
//
//   - ZOE  [14] and SRC [15] — the state-of-the-art comparators of §V,
//   - LOF  [19] — the lottery-frame estimator, also ZOE's rough phase,
//   - UPE [17], EZB [18], FNEB [20], MLE [21], ART [23], PET [13] — the
//     related-work estimators of §II, used by the extension benches.
//
// All estimators speak the same channel vocabulary (channel.Reader) and are
// charged for every broadcast bit and sensed slot, so their Result.Seconds
// values are directly comparable — this is exactly the paper's argument:
// slot counts alone hide the reader→tag broadcast cost that dominates ZOE.
package estimators

import (
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// Accuracy is an (ε, δ) estimation requirement: the estimate n̂ must
// satisfy P(|n̂ − n| ≤ ε·n) ≥ 1 − δ.
type Accuracy struct {
	Epsilon float64
	Delta   float64
}

// Default is the (0.05, 0.05) requirement used for most of the paper's
// evaluation.
var Default = Accuracy{Epsilon: 0.05, Delta: 0.05}

// Validate panics if the accuracy requirement is degenerate. NaN and ±Inf
// parameters fail the positively-phrased range check along with
// out-of-range values.
func (a Accuracy) Validate() {
	if !stats.InUnitInterval(a.Epsilon) || !stats.InUnitInterval(a.Delta) {
		panic("estimators: accuracy parameters must be in (0, 1)")
	}
}

// Result is the outcome of one estimation run.
type Result struct {
	Estimate float64     // n̂
	Rounds   int         // protocol rounds / repeated phases executed
	Slots    int         // tag→reader slots sensed (protocol's own unit)
	Cost     timing.Cost // full communication counters
	Seconds  float64     // air time under the session profile
	Guarded  bool        // the (ε, δ) guarantee machinery was in effect
	// Saturated reports that a phase observed a degenerate all-idle or
	// all-busy vector and the estimate is a clamp artifact, not a
	// measurement. Only BFCE distinguishes saturation; other protocols
	// leave it false.
	Saturated bool
}

// Estimator is a cardinality estimation protocol.
type Estimator interface {
	// Name returns the protocol's short name (as used in the paper).
	Name() string
	// Estimate runs the protocol over session r to the accuracy target.
	Estimate(r *channel.Reader, acc Accuracy) (Result, error)
}

// clampRho keeps an observed idle fraction away from the degenerate 0 and 1
// (at the resolution of m observations) so log-inversion stays finite.
func clampRho(rho float64, m int) float64 {
	lo := 0.5 / float64(m)
	if rho < lo {
		return lo
	}
	if rho > 1-lo {
		return 1 - lo
	}
	return rho
}

// zeroEstimate inverts the zero-estimator relation ρ̄ = e^{-n·p/w} for a
// uniform single-hash frame: n̂ = -w·ln(ρ̄)/p.
func zeroEstimate(rho float64, p float64, w int) float64 {
	return -float64(w) * math.Log(rho) / p
}

// fmPhi is the Flajolet–Martin bias constant: the first idle slot R of a
// geometric lottery frame satisfies E[R] ≈ log2(φ·n) with φ ≈ 0.77351,
// giving n̂ = 2^R / φ.
const fmPhi = 0.77351
