package estimators

import (
	"testing"

	"rfidest/internal/channel"
)

// collectTrace runs an estimator with tracing enabled and returns the
// event list.
func collectTrace(t *testing.T, e Estimator, n int, acc Accuracy, seed uint64) []channel.TraceEvent {
	t.Helper()
	r := channel.NewReader(channel.NewBallsEngine(n, seed), seed+1)
	var events []channel.TraceEvent
	r.SetTrace(func(ev channel.TraceEvent) { events = append(events, ev) })
	if _, err := e.Estimate(r, acc); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestZOETranscript pins ZOE's defining dialogue: after the 10-round LOF
// rough phase, every accurate-phase slot is its own (broadcast, 1-slot
// frame) pair — the structure that makes its time reader-dominated.
func TestZOETranscript(t *testing.T) {
	events := collectTrace(t, NewZOE(), 100000, Default, 61)
	m := ZOESlots(Default)
	var lofFrames, slotFrames, broadcasts int
	for _, e := range events {
		switch {
		case e.Kind == "frame" && e.W == 32:
			lofFrames++
		case e.Kind == "frame" && e.W == 1:
			slotFrames++
		case e.Kind == "broadcast":
			broadcasts++
		}
	}
	if lofFrames != 10 {
		t.Fatalf("LOF rough frames = %d, want 10", lofFrames)
	}
	if slotFrames != m {
		t.Fatalf("single-slot frames = %d, want %d", slotFrames, m)
	}
	if broadcasts != 10+m {
		t.Fatalf("broadcasts = %d, want %d (one per LOF round + one per slot)", broadcasts, 10+m)
	}
}

// TestSRCTranscript pins SRC's dialogue: one LOF round, then exactly
// SRCRounds frames of SRCFrameSize slots, each under a single broadcast.
func TestSRCTranscript(t *testing.T) {
	events := collectTrace(t, NewSRC(), 100000, Default, 63)
	l := SRCFrameSize(Default.Epsilon)
	rounds := SRCRounds(Default.Delta, 0)
	var accurate int
	for _, e := range events {
		if e.Kind == "frame" && e.W == l {
			accurate++
			if e.Observe != l {
				t.Fatalf("accurate frame truncated: %+v", e)
			}
		}
	}
	if accurate != rounds {
		t.Fatalf("accurate frames = %d, want %d", accurate, rounds)
	}
}

// TestBFCEMultiTranscript: R rounds, each with the single-protocol shape
// (3+probe broadcasts, 3+probe frames).
func TestBFCEMultiTranscript(t *testing.T) {
	events := collectTrace(t, &BFCEMulti{Rounds: 2}, 100000, Default, 65)
	fullFrames := 0
	for _, e := range events {
		if e.Kind == "frame" && e.Observe == 8192 {
			fullFrames++
		}
	}
	if fullFrames != 2 {
		t.Fatalf("accurate frames = %d, want 2 (one per round)", fullFrames)
	}
}

// TestZOEBatchedTranscript: exactly one broadcast before the observation
// run — the whole point of the ablation.
func TestZOEBatchedTranscript(t *testing.T) {
	events := collectTrace(t, NewZOEBatched(), 100000, Default, 67)
	broadcasts := 0
	for _, e := range events {
		if e.Kind == "broadcast" {
			broadcasts++
		}
	}
	// 10 LOF seed broadcasts + 1 batched-phase broadcast.
	if broadcasts != 11 {
		t.Fatalf("broadcasts = %d, want 11", broadcasts)
	}
}
