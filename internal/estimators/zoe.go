package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
)

// ZOE is the Zero-One Estimator of Zheng and Li [14], as configured in the
// paper's comparison (§V-C): a rough phase (LOF run for 10 rounds) followed
// by m single-slot frames.
//
// In the accurate phase each frame is exactly one bit-slot: the reader
// broadcasts a fresh 32-bit seed, every tag hashes (RN, seed) and responds
// with persistence probability p = λ*/n̂_rough, and the reader senses one
// slot. The idle fraction ρ̄ over the m slots estimates e^{-p·n}, so
// n̂ = −ln(ρ̄)/p.
//
// The slot count m is ZOE's published sizing, quoted in §I of the BFCE
// paper: the estimate meets (ε, δ) when d·σ(ρ̄) fits inside the ε-interval
// in ρ-space, with σ(X) conservatively bounded by σ(x)max = 0.5:
//
//	m = ⌈( d·σ(x)max / (e^{-λ*}·(1−e^{-ε·λ*})) )²⌉,  d = √2·erfinv(1−δ)
//
// (the paper's expression has e^{ελ} with a sign typo; the interval edge is
// e^{-λ}−e^{-λ(1+ε)} = e^{-λ}(1−e^{-ελ})). Because every slot carries
// its own 32-bit seed broadcast, ZOE's execution time is dominated by
// reader→tag traffic (m × 1510 µs) — the observation that motivates BFCE.
type ZOE struct {
	// Rough supplies the first-phase estimate; nil uses LOF with the
	// paper's 10 rounds.
	Rough Estimator
	// MaxSlots caps the accurate phase (guards against a rough estimate
	// so bad the formula explodes). Default 65536.
	MaxSlots int
}

// NewZOE returns ZOE configured as in the paper's comparison.
func NewZOE() *ZOE { return &ZOE{} }

// Name implements Estimator.
func (z *ZOE) Name() string { return "ZOE" }

// lambdaStarZOE is the variance-minimizing per-slot load of the zero
// estimator (root of λe^λ = 2(e^λ−1)).
const lambdaStarZOE = 1.5936242600400401

// ZOESlots returns the accurate-phase slot count m for an (ε, δ) target,
// using ZOE's conservative σ(x)max = 0.5 bound at the design load λ*.
func ZOESlots(acc Accuracy) int {
	acc.Validate()
	d := stats.D(acc.Delta)
	const sigmaMax = 0.5
	edge := math.Exp(-lambdaStarZOE) * (1 - math.Exp(-acc.Epsilon*lambdaStarZOE))
	root := d * sigmaMax / edge
	return int(math.Ceil(root * root))
}

// Estimate implements Estimator: it builds the round state machine
// (Stepper) and hands it to the shared driver.
func (z *ZOE) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	st, err := z.Stepper(acc)
	if err != nil {
		return Result{}, err
	}
	return Run(nil, r, st)
}
