package estimators

import (
	"errors"

	"rfidest/internal/channel"
)

// LOF is the Lottery Frame estimator of Qian et al. [19]: every tag hashes
// itself into a frame with geometrically decaying slot probabilities
// (slot j with probability 2^{-(j+1)}), and the position R of the first
// idle slot estimates log2(φ·n). Averaging R over multiple rounds and
// inverting gives n̂ = 2^{R̄}/φ.
//
// LOF converges quickly to a constant-factor estimate but needs many rounds
// for tight ε — which is why ZOE and SRC use it (or a sibling) only as a
// rough first phase. The paper invokes LOF with 10 rounds as ZOE's rough
// estimator (§V-C).
type LOF struct {
	// FrameSize is the lottery frame length; 32 slots express
	// cardinalities up to ~2^32 (default 32).
	FrameSize int
	// Rounds is the number of averaged frames (default 10, the paper's
	// choice for ZOE's rough phase). Accuracy.Epsilon/Delta are not used
	// to size LOF: it is a fixed-budget rough estimator.
	Rounds int
}

// NewLOF returns a LOF estimator with the paper's settings (32-slot frames,
// 10 rounds).
func NewLOF() *LOF { return &LOF{FrameSize: 32, Rounds: 10} }

// Name implements Estimator.
func (l *LOF) Name() string { return "LOF" }

// Estimate implements Estimator: it builds the round state machine
// (Stepper) and hands it to the shared driver.
func (l *LOF) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	st, err := l.Stepper(acc)
	if err != nil {
		return Result{}, err
	}
	return Run(nil, r, st)
}
