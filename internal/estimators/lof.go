package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/timing"
)

// LOF is the Lottery Frame estimator of Qian et al. [19]: every tag hashes
// itself into a frame with geometrically decaying slot probabilities
// (slot j with probability 2^{-(j+1)}), and the position R of the first
// idle slot estimates log2(φ·n). Averaging R over multiple rounds and
// inverting gives n̂ = 2^{R̄}/φ.
//
// LOF converges quickly to a constant-factor estimate but needs many rounds
// for tight ε — which is why ZOE and SRC use it (or a sibling) only as a
// rough first phase. The paper invokes LOF with 10 rounds as ZOE's rough
// estimator (§V-C).
type LOF struct {
	// FrameSize is the lottery frame length; 32 slots express
	// cardinalities up to ~2^32 (default 32).
	FrameSize int
	// Rounds is the number of averaged frames (default 10, the paper's
	// choice for ZOE's rough phase). Accuracy.Epsilon/Delta are not used
	// to size LOF: it is a fixed-budget rough estimator.
	Rounds int
}

// NewLOF returns a LOF estimator with the paper's settings (32-slot frames,
// 10 rounds).
func NewLOF() *LOF { return &LOF{FrameSize: 32, Rounds: 10} }

// Name implements Estimator.
func (l *LOF) Name() string { return "LOF" }

// Estimate implements Estimator.
func (l *LOF) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	start := r.Cost()
	f := l.FrameSize
	if f <= 0 {
		f = 32
	}
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	sumR := 0.0
	slots := 0
	responded := false
	for i := 0; i < rounds; i++ {
		r.BroadcastParams(timing.SeedBits)
		vec := r.ExecuteFrame(channel.FrameRequest{
			W:    f,
			K:    1,
			P:    1,
			Dist: channel.Geometric,
			Seed: r.NextSeed(),
		})
		slots += f
		// The observation is the number of leading busy slots (the first
		// idle position); a fully busy frame reports its length.
		first := vec.FirstIdle()
		if first > 0 {
			responded = true
		}
		sumR += float64(first)
	}
	res := Result{Rounds: rounds, Slots: slots}
	if !responded {
		// Every frame had an idle slot 0: no tag answered at all.
		res.Estimate = 0
	} else {
		res.Estimate = math.Exp2(sumR/float64(rounds)) / fmPhi
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}
