package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
)

// SRC is the Simple RFID Counting protocol of Chen, Zhou and Yu [15]: a
// rough phase that brackets n within a constant factor, then a
// balls-and-bins accurate phase whose frame size is Θ(1/ε²), repeated and
// median-combined to drive the error probability down to δ.
//
// Accurate phase, per round: the reader announces a frame of l slots and a
// persistence probability p = λ*·l/n̂_rough, tags hash uniformly into the
// frame, and the zero estimator inverts the idle fraction. The frame is
// sized with Chebyshev so a single round is (ε, 0.2)-accurate:
//
//	P(|n̂−n| > εn) ≤ Var(n̂)/(εn)² = (e^{λ*}−1)/(l·λ*²·ε²) ≤ 0.2
//	⇒ l = ⌈(e^{λ*}−1)/(0.2·λ*²·ε²)⌉ ≈ ⌈7.72/ε²⌉.
//
// For δ < 0.2 the phase is repeated m times and the median taken, where m
// is the smallest odd integer with Σ_{i=(m+1)/2}^m C(m,i)·0.8^i·0.2^{m−i}
// ≥ 1−δ — exactly the repetition rule §V-C states.
type SRC struct {
	// Rough supplies the first-phase estimate; nil uses a single-round
	// LOF (constant-factor bracketing, as in SRC's own first phase).
	Rough Estimator
	// MaxRounds caps the median repetition (default 99).
	MaxRounds int
}

// NewSRC returns SRC configured as in the paper's comparison.
func NewSRC() *SRC { return &SRC{} }

// Name implements Estimator.
func (s *SRC) Name() string { return "SRC" }

// SRCFrameSize returns the accurate-phase frame length l for a confidence
// interval ε (single-round success probability 0.8 via Chebyshev).
func SRCFrameSize(eps float64) int {
	l := (math.Exp(lambdaStarZOE) - 1) /
		(0.2 * lambdaStarZOE * lambdaStarZOE * eps * eps)
	return int(math.Ceil(l))
}

// SRCRounds returns the number of accurate-phase repetitions for δ.
func SRCRounds(delta float64, maxRounds int) int {
	if delta >= 0.2 {
		return 1
	}
	if maxRounds <= 0 {
		maxRounds = 99
	}
	return stats.MajorityRounds(0.8, delta, maxRounds)
}

// Estimate implements Estimator: it builds the round state machine
// (Stepper) and hands it to the shared driver.
func (s *SRC) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	st, err := s.Stepper(acc)
	if err != nil {
		return Result{}, err
	}
	return Run(nil, r, st)
}
