package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// FNEB is the First Non-Empty Based estimator of Han et al. [20]: tags hash
// uniformly into a large frame and the reader senses slots only until the
// first reply. With n tags in a frame of L slots the first busy position u
// has E[u] ≈ L/(n+1), so ū over R rounds inverts to n̂ = L/ū − 1.
//
// The coefficient of variation of a single round is ≈ 1 (the minimum is
// nearly exponential), so R = ⌈(d/ε)²⌉ rounds meet (ε, δ) — FNEB's round
// count is what makes it slow at tight accuracy. The frame size L is set
// from a rough LOF estimate so the expected scan is a handful of slots.
type FNEB struct {
	// Rough supplies the frame-sizing estimate; nil uses LOF (10 rounds).
	Rough Estimator
	// MaxRounds caps the averaging phase (default 4096).
	MaxRounds int
}

// NewFNEB returns FNEB with default settings.
func NewFNEB() *FNEB { return &FNEB{} }

// Name implements Estimator.
func (f *FNEB) Name() string { return "FNEB" }

// Estimate implements Estimator.
func (f *FNEB) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	maxRounds := f.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4096
	}

	rough := f.Rough
	if rough == nil {
		rough = NewLOF()
	}
	roughRes, err := rough.Estimate(r, acc)
	if err != nil {
		return Result{}, err
	}
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	// Frame large enough that the first reply lands well inside it:
	// L ≈ 64·n̂_rough keeps P(first busy > L) negligible while the
	// expected scan cost stays ~L/n ≈ 64 slots.
	L := nextPow2(int(64 * nRough))

	d := stats.D(acc.Delta)
	rounds := int(math.Ceil((d / acc.Epsilon) * (d / acc.Epsilon)))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}

	sumU := 0.0
	slots := roughRes.Slots
	hits := 0
	for i := 0; i < rounds; i++ {
		r.BroadcastParams(timing.SeedBits)
		pos := r.ScanFirstBusy(channel.FrameRequest{
			W: L, K: 1, P: 1, Seed: r.NextSeed(),
		}, L)
		if pos < 0 {
			// Idle frame (only possible for an empty population): count
			// the full scan and record the frame bound.
			slots += L
			sumU += float64(L)
			continue
		}
		hits++
		slots += pos + 1
		// Continuous-minimum correction: the minimum of n uniforms on
		// [0, L) has mean L/(n+1); the slot index floors it, so add 1/2.
		sumU += float64(pos) + 0.5
	}
	res := Result{Rounds: rounds + roughRes.Rounds, Slots: slots, Guarded: true}
	if hits == 0 {
		res.Estimate = 0
	} else {
		uBar := sumU / float64(rounds)
		res.Estimate = float64(L)/uBar - 1
		if res.Estimate < 0 {
			res.Estimate = 0
		}
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// nextPow2 returns the smallest power of two >= v (and at least 64).
func nextPow2(v int) int {
	p := 64
	for p < v {
		p <<= 1
	}
	return p
}
