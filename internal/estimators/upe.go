package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// AlohaSlotBits is the length of one framed-Aloha slot for the
// pre-bit-slot estimators (UPE, EZB): slots carry a short reply (we use 10
// bits), which is what lets the reader distinguish singletons from
// collisions but also makes each slot ~10× costlier than a bit-slot.
const AlohaSlotBits = 10

// UPE is the Unified Probabilistic Estimator of Kodialam and Nandagopal
// [17]. It runs framed slotted Aloha with a persistence probability and
// estimates the cardinality from the number of empty slots (the "zero
// estimator" of their paper; they also derive a collision-based variant,
// which CollisionBased selects).
//
// Structure here: a calibration phase halves p until the frame is no
// longer saturated, then R measurement frames are pooled, with R sized
// from the estimator variance at the operating load so the pooled
// estimate meets (ε, δ).
type UPE struct {
	// FrameSize is the Aloha frame length (default 1024 slots).
	FrameSize int
	// CollisionBased selects the collision estimator instead of the
	// zero estimator.
	CollisionBased bool
	// MaxRounds caps the measurement phase (default 256).
	MaxRounds int
}

// NewUPE returns UPE with the zero estimator and a 1024-slot frame.
func NewUPE() *UPE { return &UPE{} }

// Name implements Estimator.
func (u *UPE) Name() string {
	if u.CollisionBased {
		return "UPE-collision"
	}
	return "UPE"
}

// Estimate implements Estimator.
func (u *UPE) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	f := u.FrameSize
	if f <= 0 {
		f = 1024
	}
	maxRounds := u.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 256
	}

	// Calibration: halve p while the frame has no empty slots (load too
	// high to invert), starting from p = 1.
	p := 1.0
	rounds := 0
	slots := 0
	var occ channel.Occupancy
	for {
		r.BroadcastParams(timing.SeedBits + timing.PnBits)
		occ = r.ExecuteFrameOccupancy(channel.FrameRequest{
			W: f, K: 1, P: p, Seed: r.NextSeed(),
		}, AlohaSlotBits)
		rounds++
		slots += f
		if occ.Count(channel.Empty) > f/100 || p < 1e-7 {
			break
		}
		p /= 2
	}

	// The calibration frame doubles as the first measurement; estimate
	// the load to size the measurement phase.
	lambda := -math.Log(clampRho(float64(occ.Count(channel.Empty))/float64(f), f))
	d := stats.D(acc.Delta)
	need := d * d * (math.Exp(lambda) - 1) /
		(acc.Epsilon * acc.Epsilon * lambda * lambda * float64(f))
	measure := int(math.Ceil(need))
	if measure < 1 {
		measure = 1
	}
	if measure > maxRounds {
		measure = maxRounds
	}

	empty := occ.Count(channel.Empty)
	collision := occ.Count(channel.Collision)
	for i := 1; i < measure; i++ {
		r.BroadcastParams(timing.SeedBits + timing.PnBits)
		occ := r.ExecuteFrameOccupancy(channel.FrameRequest{
			W: f, K: 1, P: p, Seed: r.NextSeed(),
		}, AlohaSlotBits)
		empty += occ.Count(channel.Empty)
		collision += occ.Count(channel.Collision)
		slots += f
		rounds++
	}

	m := measure * f
	var nhat float64
	if u.CollisionBased {
		nhat = collisionInvert(float64(collision)/float64(m), f) / p
	} else {
		rho := clampRho(float64(empty)/float64(m), m)
		nhat = zeroEstimate(rho, p, f)
	}
	res := Result{
		Estimate: nhat,
		Rounds:   rounds,
		Slots:    slots,
		Guarded:  true,
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}

// collisionInvert solves for the per-frame load n·p from the collision
// fraction c = 1 − e^{-λ}(1+λ) (λ = n·p/f), by bisection, and returns n·p.
func collisionInvert(c float64, f int) float64 {
	if c <= 0 {
		return 0
	}
	if c >= 1 {
		c = 1 - 1e-9
	}
	lo, hi := 0.0, 64.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		got := 1 - math.Exp(-mid)*(1+mid)
		if got < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2 * float64(f)
}
