package estimators

import (
	"errors"
	"math"

	"rfidest/internal/channel"
	"rfidest/internal/stats"
	"rfidest/internal/timing"
)

// ART is the Average Run based Tag estimation of Shahzad and Liu [23]: it
// observes the average length of runs of busy slots in a frame and inverts
// the run-length statistic instead of the idle fraction.
//
// For a frame whose slots are busy independently with probability
// b = 1 − (1−p/f)^n, the expected busy-run length is 1/(1−b), so the
// observed average run length r̄ gives b̂ = 1 − 1/r̄ and
//
//	n̂ = ln(1−b̂) / ln(1−p/f).
//
// (Slot states in a single-hash frame are negatively correlated rather
// than independent; at the loads used here the correlation is O(1/f) and
// vanishes in the estimate — ART's own analysis makes the same
// approximation.) Rounds are sized with the zero-estimator variance law
// times a small inflation, reflecting that run statistics carry slightly
// less information per slot.
type ART struct {
	// FrameSize is the frame length (default 1024).
	FrameSize int
	// Rough supplies the load-setting estimate; nil uses LOF (10 rounds).
	Rough Estimator
	// MaxRounds caps the measurement phase (default 256).
	MaxRounds int
}

// NewART returns ART with default settings.
func NewART() *ART { return &ART{} }

// Name implements Estimator.
func (a *ART) Name() string { return "ART" }

// artInflation compensates the run statistic's larger variance relative to
// the idle-fraction statistic at the same load.
const artInflation = 1.5

// Estimate implements Estimator.
func (a *ART) Estimate(r *channel.Reader, acc Accuracy) (Result, error) {
	if r == nil {
		return Result{}, errors.New("estimators: nil session")
	}
	acc.Validate()
	start := r.Cost()
	f := a.FrameSize
	if f <= 0 {
		f = 1024
	}
	maxRounds := a.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 256
	}

	rough := a.Rough
	if rough == nil {
		rough = NewLOF()
	}
	roughRes, err := rough.Estimate(r, acc)
	if err != nil {
		return Result{}, err
	}
	nRough := roughRes.Estimate
	if nRough < 1 {
		nRough = 1
	}
	// ART operates best at moderate busy probability; target b ≈ 0.5,
	// i.e. load λ = ln 2.
	p := math.Ln2 * float64(f) / nRough
	if p > 1 {
		p = 1
	}

	d := stats.D(acc.Delta)
	need := artInflation * d * d * (math.Exp(math.Ln2) - 1) /
		(acc.Epsilon * acc.Epsilon * math.Ln2 * math.Ln2 * float64(f))
	rounds := int(math.Ceil(need))
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}

	totalRunLen, totalRuns := 0, 0
	for i := 0; i < rounds; i++ {
		r.BroadcastParams(timing.SeedBits + timing.PnBits)
		vec := r.ExecuteFrame(channel.FrameRequest{
			W: f, K: 1, P: p, Seed: r.NextSeed(),
		})
		for _, run := range vec.Runs() {
			totalRunLen += run
			totalRuns++
		}
	}
	res := Result{Rounds: rounds + roughRes.Rounds, Slots: rounds*f + roughRes.Slots, Guarded: true}
	if totalRuns == 0 {
		res.Estimate = 0
	} else {
		rBar := float64(totalRunLen) / float64(totalRuns)
		b := 1 - 1/rBar
		if b < 0 {
			b = 0
		}
		b = math.Min(b, 1-1e-9)
		res.Estimate = math.Log1p(-b) / math.Log1p(-p/float64(f))
	}
	res.Cost = r.Cost().Sub(start)
	res.Seconds = res.Cost.Seconds(r.Profile)
	return res, nil
}
