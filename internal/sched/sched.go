// Package sched interleaves the protocol rounds of several estimation
// sessions under one deterministic scheduler.
//
// The round-structured execution model (channel.Stepper and the shared
// driver) makes a session resumable at every round boundary; this package
// is the piece that exploits it: N sessions advance one round at a time,
// round-robin, so a fleet's air time is spent breadth-first instead of
// session-by-session — the schedule a multi-reader deployment with one
// shared medium would actually follow.
//
// Determinism is the design constraint, not an afterthought. The scheduler
// runs on a single goroutine and draws its visit order from a seeded
// xrand stream, so a given (seed, sessions) pair produces the same
// interleaving on every machine and at every GOMAXPROCS — and because each
// session owns its seed stream and observer, an interleaved session's
// estimate is bit-identical to the same session run alone. Observability
// accounting stays per-session: every runner carries its own observer
// wiring (session spans, phase spans, metrics), so interleaving reorders
// hook timing across sessions but never the hooks within one.
package sched

import (
	"context"
	"errors"

	"rfidest/internal/xrand"
)

// Runner is one resumable session: Step executes its next protocol round
// and reports completion. (*rfidest.RunSession).Step satisfies it.
type Runner interface {
	Step(ctx context.Context) (done bool, err error)
}

// Config parameterizes one Interleave call.
type Config struct {
	// Seed keys the scheduler's visit-order stream. Equal seeds replay
	// equal interleavings; zero is a valid (and distinct) seed.
	Seed uint64
}

// Result reports one scheduled session's outcome.
type Result struct {
	// Rounds is how many protocol rounds the session executed.
	Rounds int
	// Err is the session's terminal error; nil means it completed. A
	// context cancellation lands here for every session still live when
	// the scheduler stopped.
	Err error
}

// Interleave drives every runner to completion, one round per visit, in
// epochs: each epoch visits the still-live sessions once, in an order
// drawn from the seeded stream, so no session can starve (per epoch every
// live session runs exactly one round) while the rotation still exercises
// every relative order across epochs.
//
// ctx, when non-nil, is checked at every round boundary — between any two
// Step calls, not merely between sessions — so a deadline cuts the whole
// batch at round granularity; sessions still live are marked with ctx's
// error. A session's own error stops that session only.
//
// Results are indexed like runners. Interleave is single-goroutine and
// deterministic for a given (Config, runners) pair.
func Interleave(ctx context.Context, cfg Config, runners []Runner) []Result {
	res := make([]Result, len(runners))
	live := make([]int, 0, len(runners))
	for i, r := range runners {
		if r == nil {
			res[i].Err = errors.New("sched: nil runner")
			continue
		}
		live = append(live, i)
	}
	rng := xrand.NewStream(cfg.Seed, 0x5c4ed)
	for len(live) > 0 {
		rng.Shuffle(len(live), func(a, b int) { live[a], live[b] = live[b], live[a] })
		keep := live[:0]
		stopped := false
		for _, i := range live {
			if stopped {
				keep = append(keep, i)
				continue
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					res[i].Err = err
					stopped = true
					continue
				}
			}
			done, err := runners[i].Step(ctx)
			if err != nil {
				res[i].Err = err
				continue
			}
			res[i].Rounds++
			if !done {
				keep = append(keep, i)
			}
		}
		live = keep
		if stopped {
			for _, i := range live {
				res[i].Err = ctx.Err()
			}
			break
		}
	}
	return res
}
