package sched

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// fakeRunner completes after a fixed number of rounds, optionally failing
// at one of them, and records every visit into a shared trace.
type fakeRunner struct {
	id     int
	rounds int
	failAt int // 1-based round to fail at; 0 = never
	step   int
	trace  *[]int
}

func (f *fakeRunner) Step(ctx context.Context) (bool, error) {
	f.step++
	if f.trace != nil {
		*f.trace = append(*f.trace, f.id)
	}
	if f.failAt > 0 && f.step == f.failAt {
		return false, errors.New("boom")
	}
	return f.step >= f.rounds, nil
}

func runners(trace *[]int, rounds ...int) []Runner {
	rs := make([]Runner, len(rounds))
	for i, n := range rounds {
		rs[i] = &fakeRunner{id: i, rounds: n, trace: trace}
	}
	return rs
}

func TestInterleaveCompletesAndCounts(t *testing.T) {
	var trace []int
	res := Interleave(context.Background(), Config{Seed: 1}, runners(&trace, 3, 1, 5))
	want := []int{3, 1, 5}
	total := 0
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("runner %d: %v", i, r.Err)
		}
		if r.Rounds != want[i] {
			t.Errorf("runner %d: %d rounds, want %d", i, r.Rounds, want[i])
		}
		total += r.Rounds
	}
	if len(trace) != total {
		t.Errorf("trace length %d, want %d", len(trace), total)
	}
	// No starvation: within any epoch every live session steps exactly
	// once, so after 3 epochs the short runner has stepped once and the
	// long one three times — the first three trace entries must be a
	// permutation of all runners.
	seen := map[int]int{}
	for _, id := range trace[:3] {
		seen[id]++
	}
	if len(seen) != 3 {
		t.Errorf("first epoch visited %v, want each runner once", trace[:3])
	}
}

// TestInterleaveDeterministic: the visit order is a pure function of the
// seed and the runner set — replays are identical, and a different seed
// produces a different rotation.
func TestInterleaveDeterministic(t *testing.T) {
	order := func(seed uint64) []int {
		var trace []int
		Interleave(context.Background(), Config{Seed: seed}, runners(&trace, 4, 4, 4, 4, 4, 4, 4, 4))
		return trace
	}
	a, b := order(42), order(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at visit %d: %v vs %v", i, a, b)
		}
	}
	c := order(43)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Error("seeds 42 and 43 produced the same visit order")
	}
}

// TestInterleaveGOMAXPROCSIndependent: the scheduler is single-goroutine,
// so the parallelism setting cannot change the visit order.
func TestInterleaveGOMAXPROCSIndependent(t *testing.T) {
	order := func() []int {
		var trace []int
		Interleave(context.Background(), Config{Seed: 9}, runners(&trace, 6, 2, 4, 8, 3))
		return trace
	}
	prev := runtime.GOMAXPROCS(1)
	a := order()
	runtime.GOMAXPROCS(8)
	b := order()
	runtime.GOMAXPROCS(prev)
	if len(a) != len(b) {
		t.Fatalf("visit counts diverge across GOMAXPROCS: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit order diverges at %d: %v vs %v", i, a, b)
		}
	}
}

// TestInterleaveErrorIsolation: one session's failure stops that session
// only; the rest run to completion.
func TestInterleaveErrorIsolation(t *testing.T) {
	rs := []Runner{
		&fakeRunner{id: 0, rounds: 4},
		&fakeRunner{id: 1, rounds: 4, failAt: 2},
		&fakeRunner{id: 2, rounds: 4},
	}
	res := Interleave(context.Background(), Config{Seed: 5}, rs)
	if res[1].Err == nil || res[1].Err.Error() != "boom" {
		t.Errorf("failing runner: err = %v", res[1].Err)
	}
	if res[1].Rounds != 1 {
		t.Errorf("failing runner counted %d rounds, want 1 (the failed round does not count)", res[1].Rounds)
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || res[i].Rounds != 4 {
			t.Errorf("runner %d: rounds=%d err=%v, want 4/nil", i, res[i].Rounds, res[i].Err)
		}
	}
}

// TestInterleaveNilRunner: nil entries are reported, not stepped.
func TestInterleaveNilRunner(t *testing.T) {
	res := Interleave(context.Background(), Config{}, []Runner{nil, &fakeRunner{id: 1, rounds: 2}})
	if res[0].Err == nil || res[0].Rounds != 0 {
		t.Errorf("nil runner: %+v", res[0])
	}
	if res[1].Err != nil || res[1].Rounds != 2 {
		t.Errorf("live runner: %+v", res[1])
	}
}

// TestInterleaveCancellation: a context cancelled mid-schedule marks every
// still-live session with the context's error at the next round boundary.
func TestInterleaveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	stopAfter := 5
	rs := make([]Runner, 3)
	for i := range rs {
		i := i
		rs[i] = runnerFunc(func(context.Context) (bool, error) {
			n++
			if n == stopAfter {
				cancel()
			}
			_ = i
			return false, nil
		})
	}
	res := Interleave(ctx, Config{Seed: 2}, rs)
	live := 0
	for i, r := range res {
		if errors.Is(r.Err, context.Canceled) {
			live++
		} else if r.Err != nil {
			t.Errorf("runner %d: unexpected error %v", i, r.Err)
		}
	}
	if live != 3 {
		t.Errorf("%d sessions marked cancelled, want all 3 (none had finished)", live)
	}
	if n != stopAfter {
		t.Errorf("%d rounds ran after cancellation, want exactly %d", n, stopAfter)
	}
	// A pre-cancelled context runs nothing at all.
	res = Interleave(ctx, Config{Seed: 2}, runners(nil, 1, 1))
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) || r.Rounds != 0 {
			t.Errorf("pre-cancelled runner %d: %+v", i, r)
		}
	}
}

// runnerFunc adapts a function to Runner for cancellation tests.
type runnerFunc func(context.Context) (bool, error)

func (f runnerFunc) Step(ctx context.Context) (bool, error) { return f(ctx) }

func TestInterleaveEmpty(t *testing.T) {
	if res := Interleave(context.Background(), Config{}, nil); len(res) != 0 {
		t.Errorf("empty schedule returned %d results", len(res))
	}
}
