package experiment

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/estimators"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/timing"
)

// comparisonSet builds the three protocols of the paper's comparison
// (§V-C): BFCE, ZOE (with LOF×10 as its rough phase) and SRC.
func comparisonSet() []estimators.Estimator {
	return []estimators.Estimator{
		estimators.NewBFCE(),
		estimators.NewZOE(),
		estimators.NewSRC(),
	}
}

// comparisonCell runs one estimator once and returns (accuracy, seconds).
func comparisonCell(o Options, e estimators.Estimator, n int, acc estimators.Accuracy, salt uint64) (float64, float64) {
	r := o.session(n, tags.T2, salt)
	res, err := e.Estimate(r, acc)
	if err != nil {
		panic(err) // unreachable: session is non-nil by construction
	}
	return stats.RelError(res.Estimate, float64(n)), res.Seconds
}

// comparisonSweep renders accuracy or time for the three protocols over the
// paper's three sweeps (n, ε, δ) on the T2 tagID set.
func comparisonSweep(o Options, title string, timeMetric bool) *Table {
	t := NewTable(title,
		"sweep", "value", "BFCE", "ZOE", "SRC")
	pick := func(acc, sec float64) float64 {
		if timeMetric {
			return sec
		}
		return acc
	}
	// (a) varying n at (0.05, 0.05).
	for _, n := range []int{50000, 100000, 200000, 500000, 1000000} {
		row := []interface{}{"n", n}
		for _, e := range comparisonSet() {
			a, s := comparisonCell(o, e, n, estimators.Default, uint64(n)^0x9a)
			row = append(row, pick(a, s))
		}
		t.Addf(row...)
	}
	// (b) varying ε at n = 500000, δ = 0.05.
	for _, eps := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
		row := []interface{}{"eps", eps}
		for _, e := range comparisonSet() {
			a, s := comparisonCell(o, e, 500000,
				estimators.Accuracy{Epsilon: eps, Delta: 0.05}, uint64(eps*1e4)^0x9b)
			row = append(row, pick(a, s))
		}
		t.Addf(row...)
	}
	// (c) varying δ at n = 500000, ε = 0.05.
	for _, delta := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
		row := []interface{}{"delta", delta}
		for _, e := range comparisonSet() {
			a, s := comparisonCell(o, e, 500000,
				estimators.Accuracy{Epsilon: 0.05, Delta: delta}, uint64(delta*1e4)^0x9c)
			row = append(row, pick(a, s))
		}
		t.Addf(row...)
	}
	return t
}

// Fig9 reproduces Fig. 9: estimation accuracy of BFCE vs ZOE vs SRC with
// varying n, ε and δ on the T2 tagID set. Each cell is one run, as in the
// paper; ZOE/SRC occasionally exceed the requirement when their rough
// phase misfires, BFCE should not.
func Fig9(o Options) *Table {
	t := comparisonSweep(o, "Fig. 9 — accuracy comparison on T2 (one run per cell)", false)
	t.Note = "cells are |n̂−n|/n; requirement is the row's eps (0.05 unless swept)"
	return t
}

// Fig10 reproduces Fig. 10: overall execution time of BFCE vs ZOE vs SRC
// under the same sweeps. Expected shape: BFCE constant ≈ 0.19 s; ZOE
// seconds (dominated by per-slot seed broadcasts), ~30× BFCE on average;
// SRC in between, ~2× BFCE at tight accuracy.
func Fig10(o Options) *Table {
	t := comparisonSweep(o, "Fig. 10 — execution time comparison on T2 (seconds)", true)
	bfceTotal, zoeTotal, srcTotal := 0.0, 0.0, 0.0
	rows := 0
	for _, row := range t.Rows {
		var b, z, s float64
		fmt.Sscanf(row[2], "%g", &b)
		fmt.Sscanf(row[3], "%g", &z)
		fmt.Sscanf(row[4], "%g", &s)
		bfceTotal += b
		zoeTotal += z
		srcTotal += s
		rows++
	}
	t.Note = fmt.Sprintf("mean seconds: BFCE=%.3f ZOE=%.3f SRC=%.3f — ZOE/BFCE=%.1fx SRC/BFCE=%.1fx (paper: 30x and 2x)",
		bfceTotal/float64(rows), zoeTotal/float64(rows), srcTotal/float64(rows),
		zoeTotal/bfceTotal, srcTotal/bfceTotal)
	return t
}

// Overhead reproduces the §IV-E.1 overhead analysis: the closed-form
// temporal budget of BFCE next to the measured counters of an actual run.
func Overhead(o Options) *Table {
	t := NewTable("§IV-E.1 — BFCE temporal overhead: closed form vs measured",
		"quantity", "closed form", "measured (n=500000)")
	prof := timing.C1G2
	budget := timing.BFCEBudgetSeconds(prof)

	est := core.MustNew(core.Config{})
	r := o.tagSession(500000, tags.T2, channel.IdealRN, 0x0e)
	res, err := est.Estimate(r)
	if err != nil {
		panic(err) // unreachable: session is non-nil by construction
	}
	t.Addf("reader bits", 6*timing.SeedBits+2*timing.PnBits, res.Cost.ReaderBits)
	t.Addf("tag bit-slots", 9216, res.Cost.TagSlots)
	t.Addf("intervals", 3, res.Cost.Intervals)
	t.Addf("seconds", budget, res.Seconds)
	t.Note = fmt.Sprintf("probe rounds (%d, outside the paper's closed form) add %d reader bits and %d slots",
		res.ProbeRounds, res.ProbeRounds*timing.PnBits, res.ProbeRounds*32)
	return t
}
