package experiment

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/inventory"
	"rfidest/internal/missing"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// MissingTags sweeps the round budget of the missing-tag detector over a
// 20k-tag inventory with 2% of the tags absent: identification coverage
// climbs geometrically with rounds while the air-time cost stays a small
// fraction of a full inventory's.
func MissingTags(o Options) *Table {
	t := NewTable("Extension — missing-tag detection vs round budget (n=20000, 400 missing)",
		"rounds", "identified", "estimate", "coverage", "air s", "vs inventory")
	const n, gone = 20000, 400
	universe := tags.Generate(n, tags.T1, xrand.Combine(o.Seed, 0x3155))
	present := &tags.Population{
		Tags: append(append([]tags.Tag{}, universe.Tags[:6000]...), universe.Tags[6000+gone:]...),
		Dist: universe.Dist,
		Seed: universe.Seed,
	}

	inv, err := inventory.Run(len(present.Tags), inventory.Config{}, xrand.Combine(o.Seed, 0x3156))
	if err != nil {
		panic(err) // unreachable: config is the validated default
	}

	for _, rounds := range []int{1, 2, 4, 8, 16} {
		r := channel.NewReader(channel.NewTagEngine(present, channel.IdealRN),
			xrand.Combine(o.Seed, 0x3157, uint64(rounds)))
		res, err := missing.Detect(r, universe.Tags, missing.Config{Rounds: rounds})
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		t.Addf(rounds, len(res.MissingIDs), res.EstimateCount, res.Coverage,
			res.Seconds, fmt.Sprintf("%.1f%%", 100*res.Seconds/inv.Seconds))
	}
	t.Note = fmt.Sprintf("full inventory of the %d present tags: %.0f s; convictions are exact (no false accusations under a perfect channel)",
		len(present.Tags), inv.Seconds)
	return t
}
