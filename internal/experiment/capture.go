package experiment

import (
	"rfidest/internal/channel"
	"rfidest/internal/estimators"
	"rfidest/internal/stats"
	"rfidest/internal/xrand"
)

// AblationCapture sweeps the capture-effect probability (a collision slot
// read as a singleton): collision-counting estimators (UPE-collision) are
// biased low as capture grows, empty-slot estimators (UPE's zero variant)
// shrug, and bit-slot protocols (BFCE) are immune by construction — busy
// is busy whether or not a reply was decodable.
func AblationCapture(o Options) *Table {
	trials := o.trials(8)
	t := NewTable("Ablation — capture effect (n=100000, (0.1,0.1), mean acc)",
		"capture prob", "BFCE", "UPE (zero)", "UPE (collision)")
	const n = 100000
	acc := estimators.Accuracy{Epsilon: 0.1, Delta: 0.1}
	for _, pc := range []float64{0, 0.1, 0.3, 0.5} {
		means := make([]float64, 3)
		protos := []estimators.Estimator{
			estimators.NewBFCE(),
			estimators.NewUPE(),
			&estimators.UPE{CollisionBased: true},
		}
		for pi, e := range protos {
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				seed := xrand.Combine(o.Seed, 0xcae, uint64(pc*100), uint64(pi), uint64(trial))
				eng := channel.NewCaptureEngine(channel.NewBallsEngine(n, seed), pc, seed+1)
				r := channel.NewReader(eng, seed+2)
				res, err := e.Estimate(r, acc)
				if err != nil {
					panic(err) // unreachable: session is non-nil by construction
				}
				sum += stats.RelError(res.Estimate, n)
			}
			means[pi] = sum / float64(trials)
		}
		t.Addf(pc, means[0], means[1], means[2])
	}
	t.Note = "capture converts collision slots to singletons; only protocols that distinguish the two are affected"
	return t
}
