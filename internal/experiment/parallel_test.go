package experiment

import (
	"runtime"
	"testing"
)

func TestParallelMapOrderAndCompleteness(t *testing.T) {
	got := parallelMap(0, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
}

func TestParallelMapEmpty(t *testing.T) {
	if got := parallelMap(0, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestParallelMapSingle(t *testing.T) {
	got := parallelMap(0, 1, func(i int) string { return "x" })
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestParallelMapMoreWorkUnitsThanCPUs(t *testing.T) {
	n := 4*runtime.GOMAXPROCS(0) + 3
	got := parallelMap(0, n, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("index %d = %d", i, v)
		}
	}
}

func TestParallelMapMatchesSequentialFig8(t *testing.T) {
	// Parallelism must not change results: Fig8 with the same options is
	// bit-identical across runs (each trial is seeded by its index).
	o := DefaultOptions()
	o.Trials = 6
	a := Fig8(o)
	b := Fig8(o)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("Fig8 not reproducible at [%d][%d]: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
