package experiment

import (
	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/faults"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// Faults sweeps the channel-fault severity knob against BFCE, with and
// without degenerate-round retries, quantifying what the fault-injection
// subsystem is for: burst noise, erasures, truncation and reader stalls
// degrade accuracy and occasionally saturate a round outright, and the
// retry policy (re-run with fresh frame seeds under an air-time budget)
// buys back most of the saturation-induced failures at a measured cost.
func Faults(o Options) *Table {
	trials := o.trials(10)
	retries := 2
	if o.Retries > 0 {
		retries = o.Retries
	}
	t := NewTable("Extension — channel-fault severity sweep (n=200000, (0.05,0.05), BFCE)",
		"severity", "mean acc", "p95 acc", "sat%",
		"mean acc(retry)", "sat%(retry)", "retries/run", "extra air s")
	est := core.MustNew(core.Config{})
	for _, sev := range []float64{0, 0.25, 0.5, 0.75, 1} {
		var plain, retried []float64
		satPlain, satRetried, retryCount := 0, 0, 0
		extraAir := 0.0
		for trial := 0; trial < trials; trial++ {
			session := func(salt uint64) *channel.Reader {
				seed := xrand.Combine(o.Seed, 0xfa17, uint64(trial), uint64(sev*100), salt)
				var eng channel.Engine = channel.NewTagEngine(tags.Generate(200000, tags.T2, seed), channel.IdealRN)
				if sev > 0 {
					eng = faults.New(eng, faults.Severity(sev), seed+3)
				}
				return o.observed(channel.NewReader(eng, seed+1))
			}
			res, err := est.Estimate(session(1))
			if err != nil {
				panic(err) // unreachable: session is non-nil by construction
			}
			plain = append(plain, stats.RelError(res.Estimate, 200000))
			if res.Saturated {
				satPlain++
			}
			rres, err := est.EstimateRetry(nil, session(2), core.RetryPolicy{MaxRetries: retries})
			if err != nil {
				panic(err) // unreachable: session is non-nil by construction
			}
			retried = append(retried, stats.RelError(rres.Estimate, 200000))
			if rres.Saturated {
				satRetried++
			}
			retryCount += rres.Retries
			if rres.Retries > 0 {
				extraAir += rres.Seconds - res.Seconds
			}
		}
		p, r := stats.Summarize(plain), stats.Summarize(retried)
		t.Addf(sev, p.Mean, p.P95, 100*float64(satPlain)/float64(trials),
			r.Mean, 100*float64(satRetried)/float64(trials),
			float64(retryCount)/float64(trials), extraAir/float64(trials))
	}
	// The degenerate row the retry policy exists for: an empty
	// interrogation zone saturates every round (all-idle frames), so every
	// allowed retry is spent before the run degrades to the clamp bound.
	// Accuracy columns are meaningless at n=0 and render as "-".
	satPlain, retryCount := 0, 0
	extraAir := 0.0
	for trial := 0; trial < trials; trial++ {
		session := func(salt uint64) *channel.Reader {
			seed := xrand.Combine(o.Seed, 0xfa17, uint64(trial), 0xe0, salt)
			eng := channel.NewTagEngine(tags.Generate(0, tags.T2, seed), channel.IdealRN)
			return o.observed(channel.NewReader(o.faulted(eng, seed), seed+1))
		}
		res, err := est.Estimate(session(1))
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		if res.Saturated {
			satPlain++
		}
		rres, err := est.EstimateRetry(nil, session(2), core.RetryPolicy{MaxRetries: retries})
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		retryCount += rres.Retries
		if rres.Retries > 0 {
			extraAir += rres.Seconds - res.Seconds
		}
	}
	t.Addf("empty(n=0)", "-", "-", 100*float64(satPlain)/float64(trials),
		"-", 100.0, float64(retryCount)/float64(trials), extraAir/float64(trials))
	t.Note = "severity scales all four injectors together (see internal/faults); retry re-runs saturated rounds with fresh frame seeds"
	return t
}
