package experiment

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/inventory"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// InventoryCrossover quantifies the paper's scoping argument (§III-A):
// below some scale, a full C1G2 identification is faster than estimating;
// beyond it, BFCE's constant 0.19 s wins by a factor that grows linearly
// with n. The table sweeps n and reports the air time of both, the exact
// count, and the estimate.
func InventoryCrossover(o Options) *Table {
	t := NewTable("Extension — exact inventory vs BFCE estimation (air seconds)",
		"n", "inventory s", "BFCE s", "inventory/BFCE", "BFCE acc")
	est := core.MustNew(core.Config{})
	for _, n := range []int{10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000} {
		inv, err := inventory.Run(n, inventory.Config{}, xrand.Combine(o.Seed, uint64(n), 0xc0))
		if err != nil {
			panic(err) // unreachable: config is the validated default
		}
		var bfceSec, acc float64
		if n >= 1000 {
			r := o.tagSession(n, tags.T2, channel.IdealRN, uint64(n)^0xc1)
			res, err := est.Estimate(r)
			if err != nil {
				panic(err) // unreachable: session is non-nil by construction
			}
			bfceSec = res.Seconds
			acc = stats.RelError(res.Estimate, float64(n))
			t.Addf(n, inv.Seconds, bfceSec, inv.Seconds/bfceSec, acc)
		} else {
			// Below the paper's stated scope (n ≥ 1000) the protocol still
			// runs, but the interesting number is just the inventory time.
			t.Addf(n, inv.Seconds, "-", "-", "-")
		}
	}
	t.Note = fmt.Sprintf("BFCE budget: %.4f s constant; inventory is Θ(n) at ~6-8 ms/tag under the 302 µs C1G2 turnaround", 0.19)
	return t
}
