package experiment

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/estimators"
	"rfidest/internal/stats"
	"rfidest/internal/xrand"
)

// Guarantee validates the (ε, δ) contract empirically: for each
// requirement, each protocol runs many independent estimations of a 300k
// population and the fraction of runs with |n̂−n| > ε·n is compared
// against δ. Theorem 4 promises BFCE's rate stays below δ; ZOE's and
// SRC's rates expose their rough-phase sensitivity (§V-C's "exceptions").
func Guarantee(o Options) *Table {
	trials := o.trials(200)
	t := NewTable(fmt.Sprintf("Extension — empirical (eps,delta) validation (n=300000, %d runs per cell)", trials),
		"eps", "delta", "BFCE viol.", "ZOE viol.", "SRC viol.", "BFCE mean acc")
	const n = 300000
	pairs := [][2]float64{
		{0.05, 0.05}, {0.05, 0.2}, {0.1, 0.05}, {0.1, 0.1}, {0.2, 0.1}, {0.3, 0.3},
	}
	makers := []func() estimators.Estimator{
		func() estimators.Estimator { return estimators.NewBFCE() },
		func() estimators.Estimator { return estimators.NewZOE() },
		func() estimators.Estimator { return estimators.NewSRC() },
	}
	for _, pair := range pairs {
		acc := estimators.Accuracy{Epsilon: pair[0], Delta: pair[1]}
		rates := make([]float64, len(makers))
		bfceAcc := 0.0
		for mi, mk := range makers {
			mi, mk := mi, mk
			errs := parallelMap(o.Workers, trials, func(trial int) float64 {
				seed := xrand.Combine(o.Seed, 0x9a4, uint64(mi),
					uint64(pair[0]*1e4), uint64(pair[1]*1e4), uint64(trial))
				r := channel.NewReader(channel.NewBallsEngine(n, seed), seed+1)
				res, err := mk().Estimate(r, acc)
				if err != nil {
					panic(err) // unreachable: session is non-nil by construction
				}
				return stats.RelError(res.Estimate, n)
			})
			viol := 0
			for _, e := range errs {
				if e > pair[0] {
					viol++
				}
			}
			rates[mi] = float64(viol) / float64(trials)
			if mi == 0 {
				bfceAcc = stats.Mean(errs)
			}
		}
		t.Addf(pair[0], pair[1], rates[0], rates[1], rates[2], bfceAcc)
	}
	t.Note = "a protocol honours its contract when its violation rate stays at or below the row's delta"
	return t
}
