package experiment

import (
	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/estimators"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// bfceTrialStats runs BFCE `trials` times with cfg over per-tag sessions
// and returns summary statistics of the relative error, the mean seconds,
// and the lower-bound violation rate.
func bfceTrialStats(o Options, cfg core.Config, n, trials int, salt uint64) (acc stats.Summary, meanSec float64, lbViolations float64) {
	est := core.MustNew(cfg)
	results := parallelMap(o.Workers, trials, func(trial int) core.Result {
		r := o.tagSession(n, tags.T2, channel.IdealRN, xrand.Combine(salt, uint64(trial)))
		res, err := est.Estimate(r)
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		return res
	})
	var errs []float64
	secs, viol := 0.0, 0
	for _, res := range results {
		errs = append(errs, stats.RelError(res.Estimate, float64(n)))
		secs += res.Seconds
		if res.LowerBound > float64(n) {
			viol++
		}
	}
	return stats.Summarize(errs), secs / float64(trials), float64(viol) / float64(trials)
}

// AblationK sweeps the hash count k (paper fixes k = 3 as a tradeoff:
// small k → variance from pseudo-random hashing; large k → more seeds to
// broadcast and more tag work).
func AblationK(o Options) *Table {
	trials := o.trials(12)
	t := NewTable("Ablation — hash count k (n=200000, (0.05,0.05))",
		"k", "mean acc", "p95 acc", "mean seconds", "seed bits/phase")
	for k := 1; k <= 8; k++ {
		acc, sec, _ := bfceTrialStats(o, core.Config{K: k}, 200000, trials, uint64(k)^0xa1)
		t.Addf(k, acc.Mean, acc.P95, sec, k*32+32)
	}
	t.Note = "paper's choice k=3: past it, accuracy gains flatten while broadcast cost keeps growing"
	return t
}

// AblationW sweeps the Bloom vector length w (paper fixes w = 8192: the
// scalability window is 0.000326·w … 2365.9·w, and w bounds both accuracy
// and air time).
func AblationW(o Options) *Table {
	trials := o.trials(12)
	t := NewTable("Ablation — vector length w (n=200000, (0.05,0.05))",
		"w", "mean acc", "p95 acc", "mean seconds", "max cardinality")
	for _, w := range []int{1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		rough := w / 8
		acc, sec, _ := bfceTrialStats(o, core.Config{W: w, RoughSlots: rough}, 200000, trials, uint64(w)^0xa2)
		t.Addf(w, acc.Mean, acc.P95, sec, core.MaxCardinality(3, w, 1024))
	}
	t.Note = "rough phase scaled to w/8 slots (paper: 1024 of 8192)"
	return t
}

// AblationC sweeps the rough lower-bound coefficient c ∈ [0.1, 0.9]
// (paper: c = 0.5 "can guarantee n̂_low ≤ n hold in most cases"). Larger c
// tightens p_o (better accuracy) but risks n̂_low > n, which voids
// Theorem 4's transfer.
func AblationC(o Options) *Table {
	trials := o.trials(25)
	t := NewTable("Ablation — lower-bound coefficient c (n=200000, (0.05,0.05))",
		"c", "mean acc", "p95 acc", "lower-bound violation rate")
	for _, c := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		acc, _, viol := bfceTrialStats(o, core.Config{C: c}, 200000, trials, uint64(c*100)^0xa3)
		t.Addf(c, acc.Mean, acc.P95, viol)
	}
	return t
}

// AblationRoughSlots sweeps the rough phase's early-termination point
// (paper: 1024 of the 8192 slots suffice because E[ρ̄] is the same for any
// prefix).
func AblationRoughSlots(o Options) *Table {
	trials := o.trials(12)
	t := NewTable("Ablation — rough-phase slots (n=200000, (0.05,0.05))",
		"rough slots", "mean acc", "p95 acc", "mean seconds")
	for _, s := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		acc, sec, _ := bfceTrialStats(o, core.Config{RoughSlots: s}, 200000, trials, uint64(s)^0xa4)
		t.Addf(s, acc.Mean, acc.P95, sec)
	}
	return t
}

// AblationHashMode compares the tag-side hash implementations across the
// three tagID distributions: the ideal mixer over RN, the ideal mixer over
// the tagID itself, and the paper's literal XOR/bitget scheme with its
// (p_n−1)/1024 persistence bias.
func AblationHashMode(o Options) *Table {
	trials := o.trials(8)
	t := NewTable("Ablation — tag-side hash mode × tagID distribution (n=200000, mean acc)",
		"mode", "T1-uniform", "T2-approx-normal", "T3-normal")
	est := core.MustNew(core.Config{})
	for _, mode := range []channel.HashMode{channel.IdealRN, channel.IdealID, channel.PaperXOR} {
		row := []interface{}{mode.String()}
		for _, d := range tags.Distributions {
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				r := o.tagSession(200000, d, mode, xrand.Combine(o.Seed, 0xa5, uint64(trial)))
				res, err := est.Estimate(r)
				if err != nil {
					panic(err) // unreachable: session is non-nil by construction
				}
				sum += stats.RelError(res.Estimate, 200000)
			}
			row = append(row, sum/float64(trials))
		}
		t.Addf(row...)
	}
	return t
}

// AblationNoise probes the perfect-channel assumption (§III-A): BFCE
// accuracy under symmetric per-slot reader errors.
func AblationNoise(o Options) *Table {
	trials := o.trials(10)
	t := NewTable("Ablation — channel noise (n=200000, (0.05,0.05), mean acc)",
		"false-busy", "false-idle", "mean acc", "p95 acc")
	est := core.MustNew(core.Config{})
	for _, rates := range [][2]float64{{0, 0}, {0.001, 0}, {0.01, 0}, {0, 0.001}, {0, 0.01}, {0.01, 0.01}, {0.05, 0.05}} {
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Combine(o.Seed, 0xa6, uint64(trial), uint64(rates[0]*1e4), uint64(rates[1]*1e4))
			pop := tags.Generate(200000, tags.T2, seed)
			eng := channel.NewNoisyEngine(channel.NewTagEngine(pop, channel.IdealRN), rates[0], rates[1], seed+1)
			r := channel.NewReader(eng, seed+2)
			res, err := est.Estimate(r)
			if err != nil {
				panic(err) // unreachable: session is non-nil by construction
			}
			errs = append(errs, stats.RelError(res.Estimate, 200000))
		}
		s := stats.Summarize(errs)
		t.Addf(rates[0], rates[1], s.Mean, s.P95)
	}
	t.Note = "false-busy hides idle slots (over-estimate); false-idle reveals phantom idles (under-estimate)"
	return t
}

// Bakeoff is an extension beyond the paper: all ten estimators in the
// repository on the same population and accuracy target, one run each.
func Bakeoff(o Options) *Table {
	t := NewTable("Extension — ten-estimator bake-off (n=200000, (0.1,0.1), one run)",
		"estimator", "estimate", "acc", "seconds", "slots", "rounds", "tx/tag")
	all := []estimators.Estimator{
		estimators.NewBFCE(), estimators.NewZOE(), estimators.NewSRC(),
		estimators.NewLOF(), estimators.NewUPE(), estimators.NewEZB(),
		estimators.NewFNEB(), estimators.NewMLE(), estimators.NewART(),
		estimators.NewPET(),
	}
	acc := estimators.Accuracy{Epsilon: 0.1, Delta: 0.1}
	for i, e := range all {
		r := o.session(200000, tags.T2, uint64(i)^0xba)
		res, err := e.Estimate(r, acc)
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		t.Addf(e.Name(), res.Estimate, stats.RelError(res.Estimate, 200000),
			res.Seconds, res.Slots, res.Rounds,
			float64(r.TagTransmissions())/200000)
	}
	t.Note = "LOF is a rough estimator: its accuracy target is a constant factor, not (eps,delta)"
	return t
}
