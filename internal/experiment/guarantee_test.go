package experiment

import "testing"

func TestGuaranteeBFCEHonoursContract(t *testing.T) {
	o := DefaultOptions()
	o.Trials = 60
	tab := Guarantee(o)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		delta := cellFloat(t, row[1])
		viol := cellFloat(t, row[2])
		// Allow the binomial noise of 60 trials on top of delta.
		slack := 3 * 0.065 // ~3·sqrt(delta(1-delta)/60) at delta=0.3
		if viol > delta+slack {
			t.Fatalf("BFCE violation rate %v exceeds delta %v (row %v)", viol, delta, row)
		}
	}
}

func TestMissingTagsExperiment(t *testing.T) {
	tab := MissingTags(DefaultOptions())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Coverage and identification must be monotone in the round budget.
	prevID, prevCov := -1.0, -1.0
	for _, row := range tab.Rows {
		id := cellFloat(t, row[1])
		cov := cellFloat(t, row[3])
		if id < prevID || cov < prevCov {
			t.Fatalf("identification not monotone in rounds: %v", tab.Rows)
		}
		prevID, prevCov = id, cov
	}
	// The largest budget must identify essentially all 400.
	if last := cellFloat(t, tab.Rows[4][1]); last < 398 {
		t.Fatalf("16 rounds identified only %v of 400", last)
	}
}

func TestMonitoringExperiment(t *testing.T) {
	tab := Monitoring(DefaultOptions())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	fast := 0
	for _, row := range tab.Rows {
		if acc := cellFloat(t, row[3]); acc > 0.05 {
			t.Fatalf("monitoring accuracy %v exceeded eps: %v", acc, row)
		}
		if row[4] == "8192" {
			fast++
		}
	}
	// With FastRounds=3, at least half the rounds must be warm-started.
	if fast < 6 {
		t.Fatalf("only %d of 12 rounds were fast", fast)
	}
}

func TestCrossoverExperiment(t *testing.T) {
	tab := InventoryCrossover(DefaultOptions())
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Inventory time is monotone in n, and the largest scale must show a
	// three-orders-of-magnitude ratio.
	prev := 0.0
	for _, row := range tab.Rows {
		inv := cellFloat(t, row[1])
		if inv <= prev {
			t.Fatalf("inventory time not increasing: %v", tab.Rows)
		}
		prev = inv
	}
	lastRatio := cellFloat(t, tab.Rows[8][3])
	if lastRatio < 1000 {
		t.Fatalf("inventory/BFCE at n=100k = %v, want > 1000", lastRatio)
	}
}

func TestZOECostExperiment(t *testing.T) {
	tab := AblationZOECost(DefaultOptions())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		zoe := cellFloat(t, row[1])
		batched := cellFloat(t, row[2])
		if batched > zoe/5 {
			t.Fatalf("batched ZOE %v not ≪ ZOE %v", batched, zoe)
		}
	}
}
