package experiment

import (
	"rfidest/internal/channel"
	"rfidest/internal/faults"
	"rfidest/internal/obs"
	"rfidest/internal/tags"
	"rfidest/internal/xrand"
)

// EngineKind selects the channel fidelity an experiment runs at.
type EngineKind int

const (
	// Synthetic (the default) samples exact frame statistics without
	// iterating tags. The comparison sweeps (Fig. 9–10) rely on it: ZOE's
	// thousands of per-slot frames make per-tag iteration needlessly
	// slow, and its frame statistics are identical by construction (see
	// channel.BallsEngine and TestEnginesAgree).
	Synthetic EngineKind = iota
	// TagLevel iterates real tag populations (per-tag fidelity). Figures
	// whose claim involves tagID distributions (Fig. 6–8 and the
	// ablations) force it through tagSession regardless of this option.
	TagLevel
)

// String names the engine kind.
func (k EngineKind) String() string {
	if k == TagLevel {
		return "tag-level"
	}
	return "synthetic"
}

// Options configures an experiment run.
type Options struct {
	// Seed pins all randomness; the same Options reproduce the same table.
	Seed uint64
	// Engine selects channel fidelity; figure runners that require a
	// specific fidelity override it.
	Engine EngineKind
	// Trials overrides the per-point repetition count of experiments that
	// report rates or distributions (0 keeps each figure's default).
	Trials int
	// Workers bounds the trial worker pool (0 = GOMAXPROCS). Results are
	// independent of the worker count by construction; the knob exists for
	// constrained machines and for verifying exactly that.
	Workers int
	// Observer, when non-nil, is attached to every session an experiment
	// opens; observation is passive, so tables are identical either way.
	Observer obs.Observer
	// Faults, when positive, installs the severity-scaled channel-fault
	// plan (see internal/faults) on every session an experiment opens —
	// the whole suite then reports what the paper's figures look like over
	// a lossy channel. 0 (the default) keeps every table bit-identical to
	// the fault-free baseline.
	Faults float64
	// Retries overrides the degenerate-round retry budget of experiments
	// that exercise the retry policy (currently the "faults" sweep);
	// 0 keeps their defaults.
	Retries int
}

// DefaultOptions is used by the experiments binary and the benches.
func DefaultOptions() Options { return Options{Seed: 0x20150701} }

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// session builds a reader over a population of n tags under o.Engine. Each
// distinct (n, dist, salt) gets independent randomness derived from o.Seed.
func (o Options) session(n int, dist tags.Distribution, salt uint64) *channel.Reader {
	seed := xrand.Combine(o.Seed, uint64(n), uint64(dist), salt)
	var eng channel.Engine
	if o.Engine == TagLevel {
		eng = channel.NewTagEngine(tags.Generate(n, dist, seed), channel.IdealRN)
	} else {
		eng = channel.NewBallsEngine(n, seed)
	}
	return o.observed(channel.NewReader(o.faulted(eng, seed), seed+1))
}

// tagSession is session pinned to per-tag fidelity with a specific hash
// mode (the hash-mode ablation and the distribution figures need it).
func (o Options) tagSession(n int, dist tags.Distribution, mode channel.HashMode, salt uint64) *channel.Reader {
	seed := xrand.Combine(o.Seed, uint64(n), uint64(dist), uint64(mode), salt)
	eng := channel.NewTagEngine(tags.Generate(n, dist, seed), mode)
	return o.observed(channel.NewReader(o.faulted(eng, seed), seed+1))
}

// faulted wraps eng in the severity-scaled fault injector when the global
// fault knob is set (same salt offset as System.sessionAt: engine at seed,
// reader at seed+1, injector at seed+3).
func (o Options) faulted(eng channel.Engine, seed uint64) channel.Engine {
	if o.Faults > 0 {
		return faults.New(eng, faults.Severity(o.Faults), seed+3)
	}
	return eng
}

// observed attaches the configured observer, if any, to a fresh session.
func (o Options) observed(r *channel.Reader) *channel.Reader {
	if o.Observer != nil {
		r.SetObserver(o.Observer)
	}
	return r
}
