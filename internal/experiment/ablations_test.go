package experiment

import (
	"strings"
	"testing"
)

func ablOpts() Options {
	o := DefaultOptions()
	o.Trials = 2
	return o
}

func TestAblationKSweep(t *testing.T) {
	tab := AblationK(ablOpts())
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Seed-bit column grows linearly with k.
	if tab.Rows[0][4] != "64" || tab.Rows[7][4] != "288" {
		t.Fatalf("seed bits column wrong: %v / %v", tab.Rows[0], tab.Rows[7])
	}
}

func TestAblationWSweep(t *testing.T) {
	tab := AblationW(ablOpts())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Max cardinality scales with w.
	first := cellFloat(t, tab.Rows[0][4])
	last := cellFloat(t, tab.Rows[6][4])
	if last < 60*first {
		t.Fatalf("max cardinality did not scale with w: %v → %v", first, last)
	}
}

func TestAblationCSweep(t *testing.T) {
	tab := AblationC(ablOpts())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At c=0.1 the lower bound must never exceed n; violations can only
	// appear as c grows.
	if v := cellFloat(t, tab.Rows[0][3]); v != 0 {
		t.Fatalf("c=0.1 lower-bound violation rate = %v", v)
	}
}

func TestAblationRoughSlotsSweep(t *testing.T) {
	tab := AblationRoughSlots(ablOpts())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationHashModeAllAccurate(t *testing.T) {
	o := ablOpts()
	tab := AblationHashMode(o)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if acc := cellFloat(t, cell); acc > 0.08 {
				t.Fatalf("hash mode %s accuracy %v too poor", row[0], acc)
			}
		}
	}
}

func TestAblationNoiseDegradesGracefully(t *testing.T) {
	tab := AblationNoise(ablOpts())
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	clean := cellFloat(t, tab.Rows[0][2])
	worst := cellFloat(t, tab.Rows[6][2])
	if clean > 0.05 {
		t.Fatalf("clean-channel accuracy %v", clean)
	}
	if worst <= clean {
		t.Fatalf("5%% symmetric noise should hurt: clean %v worst %v", clean, worst)
	}
}

func TestBakeoffRunsAll(t *testing.T) {
	tab := Bakeoff(ablOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
		if sec := cellFloat(t, row[3]); sec <= 0 {
			t.Fatalf("%s has no cost", row[0])
		}
	}
	for _, want := range []string{"BFCE", "ZOE", "SRC", "LOF", "UPE", "EZB", "FNEB", "MLE", "ART", "PET"} {
		if !names[want] {
			t.Fatalf("bake-off missing %s", want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(IDs()) != 25 {
		t.Fatalf("registry size = %d", len(IDs()))
	}
	for _, id := range IDs() {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("id %q not resolvable", id)
		}
		if Describe(id) == "" {
			t.Fatalf("id %q has no description", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
	if Describe("nope") != "" {
		t.Fatal("unknown id described")
	}
}

func TestRunAllSubset(t *testing.T) {
	var b strings.Builder
	if err := RunAll(&b, testOpts(), "fig4", "fig5"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "Fig. 5") {
		t.Fatalf("subset output missing figures:\n%s", out)
	}
	if strings.Contains(out, "Fig. 3") {
		t.Fatal("subset ran unselected figure")
	}
}

func TestRunAllUnknownID(t *testing.T) {
	var b strings.Builder
	if err := RunAll(&b, testOpts(), "fig4", "bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if b.Len() != 0 {
		t.Fatal("output written despite error")
	}
}
