package experiment

import (
	"rfidest/internal/estimators"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

// AblationZOECost isolates where ZOE's execution time comes from — the
// paper's central argument made quantitative. ZOE-batched is ZOE with the
// per-slot 32-bit seed broadcast replaced by one counter-derived seed
// (identical observations, hence identical estimation quality); the gap
// between the two columns is purely reader→tag traffic. BFCE is alongside
// for scale, and BFCE-multi shows how BFCE spends extra constant-time
// rounds to buy accuracy.
func AblationZOECost(o Options) *Table {
	t := NewTable("Ablation — where ZOE's time goes (n=500000, seconds and accuracy)",
		"eps", "ZOE s", "ZOE-batched s", "BFCE s", "BFCE-multi s",
		"ZOE acc", "ZOE-batched acc", "BFCE acc", "BFCE-multi acc")
	all := []estimators.Estimator{
		estimators.NewZOE(),
		estimators.NewZOEBatched(),
		estimators.NewBFCE(),
		estimators.NewBFCEMulti(),
	}
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.3} {
		acc := estimators.Accuracy{Epsilon: eps, Delta: 0.05}
		secs := make([]interface{}, 0, len(all))
		errs := make([]interface{}, 0, len(all))
		for i, e := range all {
			r := o.session(500000, tags.T2, uint64(eps*1e4)+uint64(i)*7919)
			res, err := e.Estimate(r, acc)
			if err != nil {
				panic(err) // unreachable: session is non-nil by construction
			}
			secs = append(secs, res.Seconds)
			errs = append(errs, stats.RelError(res.Estimate, 500000))
		}
		row := append([]interface{}{eps}, secs...)
		row = append(row, errs...)
		t.Addf(row...)
	}
	t.Note = "ZOE minus ZOE-batched = the per-slot seed broadcasts; the observations (and accuracy) are statistically identical"
	return t
}
