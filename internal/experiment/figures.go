package experiment

import (
	"fmt"
	"sort"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

// Fig3 reproduces the feasibility study of Fig. 3: the number of 0s and 1s
// in the Bloom vector B against the tag cardinality, for w = 8192, k = 3
// and p ∈ {0.1, 0.2}. (Paper convention: B(i) = 1 for an idle slot.) The
// linear relationship over the sweep is what makes the estimator workable.
func Fig3(o Options) *Table {
	t := NewTable("Fig. 3 — feasibility: 0s/1s in B vs n (w=8192, k=3)",
		"n", "ones(p=0.1)", "zeros(p=0.1)", "E[ones](p=0.1)",
		"ones(p=0.2)", "zeros(p=0.2)", "E[ones](p=0.2)")
	const w, k = 8192, 3
	for n := 10000; n <= 100000; n += 10000 {
		row := []interface{}{n}
		for _, p := range []float64{0.1, 0.2} {
			r := o.session(n, tags.T1, uint64(n)^0xf3)
			vec := r.ExecuteFrame(channel.FrameRequest{
				W: w, K: k, P: p, Seed: r.NextSeed(),
			})
			ones := vec.CountIdle() // B(i)=1 ⟺ idle
			expect := float64(w) * core.RhoExpected(float64(n), k, p, w)
			row = append(row, ones, w-ones, expect)
		}
		t.Addf(row...)
	}
	return t
}

// Fig4 reproduces the scalability study of Fig. 4: γ = −ln(ρ̄)/(3p) over
// the (p, ρ̄) grid, whose extrema bound the cardinalities expressible by a
// w-slot vector: 0.000326·w ≤ n̂ ≤ 2365.9·w.
func Fig4(o Options) *Table {
	t := NewTable("Fig. 4 — γ = -ln(ρ̄)/(3p) over the (p, ρ̄) grid",
		"p", "γ(ρ̄=0.1)", "γ(ρ̄=0.3)", "γ(ρ̄=0.5)", "γ(ρ̄=0.7)", "γ(ρ̄=0.9)")
	rhos := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	for _, p := range []float64{1.0 / 1024, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1023.0 / 1024} {
		row := []interface{}{fmt.Sprintf("%.6f", p)}
		for _, rho := range rhos {
			row = append(row, core.Gamma(rho, p, 3))
		}
		t.Addf(row...)
	}
	gmin, gmax := core.GammaBounds(3, 1024)
	t.Note = fmt.Sprintf("grid extrema: %.6f <= γ <= %.1f (paper: 0.000326 <= γ <= 2365.9); max cardinality at w=8192: %.3g",
		gmin, gmax, core.MaxCardinality(3, 8192, 1024))
	return t
}

// Fig5 reproduces the monotonicity study of Fig. 5: f1 and f2 as functions
// of n for a small persistence probability (p = 3/1024), w = 8192, k = 3,
// ε = 0.05, with the ±d(0.05) feasibility thresholds alongside.
func Fig5(o Options) *Table {
	d := stats.D(0.05)
	t := NewTable("Fig. 5 — monotonicity of f1 (dec.) and f2 (inc.) in n (p=3/1024, eps=0.05)",
		"n", "f1", "f2", "-d", "d", "feasible")
	const p = 3.0 / 1024
	for n := 100000.0; n <= 1000000.0; n += 100000 {
		f1 := core.F1(n, 3, p, 8192, 0.05)
		f2 := core.F2(n, 3, p, 8192, 0.05)
		t.Addf(n, f1, f2, -d, d, fmt.Sprintf("%v", f1 <= -d && f2 >= d))
	}
	return t
}

// Fig6 reproduces the tagID distribution study of Fig. 6: histograms of the
// three tagID sets T1 (uniform), T2 (approximately normal) and T3 (normal)
// over [1, 10^15].
func Fig6(o Options) *Table {
	t := NewTable("Fig. 6 — tagID distributions over [1, 1e15] (fraction per decile)",
		"decile", "T1-uniform", "T2-approx-normal", "T3-normal")
	const n = 100000
	hs := make([]*stats.Histogram, len(tags.Distributions))
	for i, d := range tags.Distributions {
		pop := tags.Generate(n, d, o.Seed+uint64(i))
		hs[i] = stats.NewHistogram(pop.IDs(), 0, float64(tags.IDSpace), 10)
	}
	for bin := 0; bin < 10; bin++ {
		t.Addf(fmt.Sprintf("%d–%d%%", bin*10, (bin+1)*10),
			hs[0].Fraction(bin), hs[1].Fraction(bin), hs[2].Fraction(bin))
	}
	return t
}

// bfceOnce runs one BFCE estimation at the given accuracy over a per-tag
// session and returns the result.
func bfceOnce(o Options, n int, dist tags.Distribution, eps, delta float64, salt uint64) core.Result {
	est := core.MustNew(core.Config{Epsilon: eps, Delta: delta})
	r := o.tagSession(n, dist, channel.IdealRN, salt)
	res, err := est.Estimate(r)
	if err != nil {
		panic(err) // unreachable: session is non-nil by construction
	}
	return res
}

// Fig7a reproduces Fig. 7(a): BFCE estimation accuracy against the actual
// cardinality n under all three tagID distributions, for the (0.05, 0.05)
// requirement with c = 0.5. As in the paper, each point is the accuracy of
// a single estimation round.
func Fig7a(o Options) *Table {
	t := NewTable("Fig. 7(a) — accuracy vs n, (eps,delta)=(0.05,0.05), c=0.5",
		"n", "acc(T1)", "acc(T2)", "acc(T3)")
	for _, n := range []int{1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000} {
		row := []interface{}{n}
		for _, d := range tags.Distributions {
			res := bfceOnce(o, n, d, 0.05, 0.05, 0x7a)
			row = append(row, stats.RelError(res.Estimate, float64(n)))
		}
		t.Addf(row...)
	}
	return t
}

// Fig7b reproduces Fig. 7(b): accuracy with ε varied from 0.05 to 0.3 at
// n = 500000, δ = 0.05.
func Fig7b(o Options) *Table {
	t := NewTable("Fig. 7(b) — accuracy vs eps, n=500000, delta=0.05",
		"eps", "acc(T1)", "acc(T2)", "acc(T3)")
	for _, eps := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		row := []interface{}{eps}
		for _, d := range tags.Distributions {
			res := bfceOnce(o, 500000, d, eps, 0.05, uint64(eps*1000))
			row = append(row, stats.RelError(res.Estimate, 500000))
		}
		t.Addf(row...)
	}
	return t
}

// Fig7c reproduces Fig. 7(c): accuracy with δ varied from 0.05 to 0.3 at
// n = 500000, ε = 0.05.
func Fig7c(o Options) *Table {
	t := NewTable("Fig. 7(c) — accuracy vs delta, n=500000, eps=0.05",
		"delta", "acc(T1)", "acc(T2)", "acc(T3)")
	for _, delta := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		row := []interface{}{delta}
		for _, d := range tags.Distributions {
			res := bfceOnce(o, 500000, d, 0.05, delta, uint64(delta*1000)^0x7c)
			row = append(row, stats.RelError(res.Estimate, 500000))
		}
		t.Addf(row...)
	}
	return t
}

// Fig8 reproduces Fig. 8: the cumulative distribution of BFCE's estimates
// over repeated runs at n = 500000, (0.05, 0.05), under each tagID
// distribution. The paper runs 100 rounds; Options.Trials overrides.
func Fig8(o Options) *Table {
	trials := o.trials(100)
	t := NewTable(fmt.Sprintf("Fig. 8 — CDF of %d BFCE estimates, n=500000, (0.05,0.05)", trials),
		"CDF", "n̂(T1)", "n̂(T2)", "n̂(T3)")
	const n = 500000
	samples := make([][]float64, len(tags.Distributions))
	for i, d := range tags.Distributions {
		d := d
		samples[i] = parallelMap(o.Workers, trials, func(trial int) float64 {
			return bfceOnce(o, n, d, 0.05, 0.05, uint64(0x800+trial)).Estimate
		})
	}
	sorted := make([][]float64, len(samples))
	for i, s := range samples {
		sorted[i] = append([]float64(nil), s...)
		sort.Float64s(sorted[i])
	}
	probs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	for _, q := range probs {
		row := []interface{}{q}
		for i := range sorted {
			row = append(row, stats.Quantile(sorted[i], q))
		}
		t.Addf(row...)
	}
	within := func(s []float64) float64 {
		c := 0
		for _, v := range s {
			if stats.RelError(v, n) <= 0.05 {
				c++
			}
		}
		return float64(c) / float64(len(s))
	}
	t.Note = fmt.Sprintf("fraction within ±5%%: T1=%.2f T2=%.2f T3=%.2f (requirement: >= 0.95)",
		within(samples[0]), within(samples[1]), within(samples[2]))
	return t
}
