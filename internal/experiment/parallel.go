package experiment

import (
	"runtime"
	"sync"
)

// parallelMap evaluates fn(0..n-1) across GOMAXPROCS workers and returns
// the results in index order. Trials in this package derive all their
// randomness from their index (via xrand.Combine with the experiment
// seed), so the output is bit-identical to a sequential loop regardless of
// scheduling — parallelism changes wall-clock time, never results.
func parallelMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return out
}
