package experiment

import (
	"context"

	"rfidest/internal/fleet"
)

// parallelMap evaluates fn(0..n-1) across a bounded worker pool (workers
// <= 0 means GOMAXPROCS) and returns the results in index order. It is a
// thin wrapper over fleet.Map, the job-level pool the whole repository
// runs on. Trials in this package derive all their randomness from their
// index (via xrand.Combine with the experiment seed), so the output is
// bit-identical to a sequential loop regardless of scheduling —
// parallelism changes wall-clock time, never results.
func parallelMap[T any](workers, n int, fn func(i int) T) []T {
	out, _ := fleet.Map(context.Background(), workers, n, fn) //lint:allow ctxbg,errdrop experiments are uncancellable by design (ctx is Background, so Map's only error source cannot fire) and a partial sweep is not a result
	return out
}
