package experiment

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(Options) *Table

// registry maps experiment ids (as used by `cmd/experiments -run`) to
// their runners, in the order DESIGN.md lists them.
var registry = []struct {
	ID     string
	Desc   string
	Runner Runner
}{
	{"fig3", "feasibility: 0s/1s in B vs n", Fig3},
	{"fig4", "gamma over the (p, rho) grid + scalability bounds", Fig4},
	{"fig5", "monotonicity of f1/f2 in n", Fig5},
	{"fig6", "tagID distributions T1/T2/T3", Fig6},
	{"fig7a", "BFCE accuracy vs n under T1/T2/T3", Fig7a},
	{"fig7b", "BFCE accuracy vs eps", Fig7b},
	{"fig7c", "BFCE accuracy vs delta", Fig7c},
	{"fig8", "CDF of repeated BFCE estimates", Fig8},
	{"fig9", "accuracy comparison BFCE/ZOE/SRC", Fig9},
	{"fig10", "execution-time comparison BFCE/ZOE/SRC", Fig10},
	{"overhead", "closed-form vs measured BFCE overhead", Overhead},
	{"ablation-k", "hash count k sweep", AblationK},
	{"ablation-w", "vector length w sweep", AblationW},
	{"ablation-c", "lower-bound coefficient c sweep", AblationC},
	{"ablation-rough", "rough-phase slot count sweep", AblationRoughSlots},
	{"ablation-hash", "tag-side hash mode x distribution", AblationHashMode},
	{"ablation-noise", "channel noise sweep", AblationNoise},
	{"ablation-zoecost", "ZOE vs seed-free ZOE vs BFCE: cost attribution", AblationZOECost},
	{"ablation-capture", "capture effect: collision-counting vs bit-slot protocols", AblationCapture},
	{"faults", "channel-fault severity sweep: BFCE accuracy/saturation, with and without retries", Faults},
	{"bakeoff", "all ten estimators side by side", Bakeoff},
	{"crossover", "exact C1G2 inventory vs BFCE estimation", InventoryCrossover},
	{"monitoring", "warm-started monitoring + differential snapshots under drift", Monitoring},
	{"missing", "missing-tag identification vs round budget", MissingTags},
	{"guarantee", "empirical (eps,delta) violation rates", Guarantee},
}

// IDs returns the registered experiment ids in registry order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Describe returns the one-line description for an id ("" if unknown).
func Describe(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.Desc
		}
	}
	return ""
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner, true
		}
	}
	return nil, false
}

// RunAll executes every registered experiment and renders each table to w.
// ids restricts the run when non-empty; unknown ids are reported as an
// error before anything executes.
func RunAll(w io.Writer, o Options, ids ...string) error {
	selected := registry
	if len(ids) > 0 {
		seen := map[string]bool{}
		for _, id := range ids {
			if _, ok := Lookup(id); !ok {
				known := IDs()
				sort.Strings(known)
				return fmt.Errorf("experiment: unknown id %q (known: %v)", id, known)
			}
			seen[id] = true
		}
		selected = nil
		for _, e := range registry {
			if seen[e.ID] {
				selected = append(selected, e)
			}
		}
	}
	for _, e := range selected {
		if err := e.Runner(o).Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
