package experiment

import (
	"strings"
	"testing"
)

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tab := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	tab.AddRow("only one")
}

func TestTableAddf(t *testing.T) {
	tab := NewTable("t", "a", "b", "c")
	tab.Addf("x", 42, 3.14159)
	if tab.Rows[0][0] != "x" || tab.Rows[0][1] != "42" {
		t.Fatalf("row = %v", tab.Rows[0])
	}
	if tab.Rows[0][2] != "3.142" {
		t.Fatalf("float cell = %q", tab.Rows[0][2])
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "col1", "col2")
	tab.Note = "a note"
	tab.Addf("v", 1)
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "a note", "col1", "col2", "v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if tab.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Addf(1, 2)
	tab.Addf("x,y", "z")
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `"x,y",z` {
		t.Fatalf("quoted cell = %q", lines[2])
	}
}

func TestEngineKindString(t *testing.T) {
	if Synthetic.String() != "synthetic" || TagLevel.String() != "tag-level" {
		t.Fatal("engine kind names drifted")
	}
}

func TestOptionsTrials(t *testing.T) {
	if (Options{}).trials(7) != 7 {
		t.Fatal("default trials")
	}
	if (Options{Trials: 3}).trials(7) != 3 {
		t.Fatal("override trials")
	}
}
