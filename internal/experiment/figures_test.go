package experiment

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func testOpts() Options {
	o := DefaultOptions()
	o.Trials = 3
	return o
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", cell, err)
	}
	return v
}

func TestFig3MatchesExpectation(t *testing.T) {
	tab := Fig3(testOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("Fig3 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ones := cellFloat(t, row[1])
		expect := cellFloat(t, row[3])
		// One frame of 8192 slots: sd of the idle count is < 46.
		if math.Abs(ones-expect) > 200 {
			t.Fatalf("Fig3 measured %v far from expected %v (row %v)", ones, expect, row)
		}
		zeros := cellFloat(t, row[2])
		if ones+zeros != 8192 {
			t.Fatalf("Fig3 ones+zeros = %v", ones+zeros)
		}
	}
}

func TestFig3MonotoneInN(t *testing.T) {
	tab := Fig3(testOpts())
	// Expected idle count decreases with n.
	prev := math.Inf(1)
	for _, row := range tab.Rows {
		e := cellFloat(t, row[3])
		if e >= prev {
			t.Fatal("Fig3 expected idle count not decreasing in n")
		}
		prev = e
	}
}

func TestFig4BoundsInNote(t *testing.T) {
	tab := Fig4(testOpts())
	if !strings.Contains(tab.Note, "2365") {
		t.Fatalf("Fig4 note missing the paper's gamma max: %q", tab.Note)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("Fig4 rows = %d", len(tab.Rows))
	}
}

func TestFig5FeasibilityTransition(t *testing.T) {
	tab := Fig5(testOpts())
	// At p=3/1024, (0.05,0.05): infeasible at n=1e5, feasible from 2e5 on.
	if tab.Rows[0][5] != "false" {
		t.Fatalf("Fig5 first row should be infeasible: %v", tab.Rows[0])
	}
	for _, row := range tab.Rows[1:] {
		if row[5] != "true" {
			t.Fatalf("Fig5 row should be feasible: %v", row)
		}
	}
	// Monotonicity: f1 decreasing, f2 increasing down the rows.
	prev1, prev2 := math.Inf(1), math.Inf(-1)
	for _, row := range tab.Rows {
		f1, f2 := cellFloat(t, row[1]), cellFloat(t, row[2])
		if f1 >= prev1 || f2 <= prev2 {
			t.Fatalf("Fig5 monotonicity broken at row %v", row)
		}
		prev1, prev2 = f1, f2
	}
}

func TestFig6Shapes(t *testing.T) {
	tab := Fig6(testOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("Fig6 rows = %d", len(tab.Rows))
	}
	// T1 deciles ≈ 0.1 each; T2/T3 peak in the middle.
	var t1Sum, t2Mid, t2Edge float64
	for i, row := range tab.Rows {
		t1Sum += cellFloat(t, row[1])
		if i == 4 || i == 5 {
			t2Mid += cellFloat(t, row[2])
		}
		if i == 0 || i == 9 {
			t2Edge += cellFloat(t, row[2])
		}
	}
	if math.Abs(t1Sum-1) > 1e-3 { // cells carry %.4g rounding
		t.Fatalf("Fig6 T1 fractions sum to %v", t1Sum)
	}
	if t2Mid < 3*t2Edge {
		t.Fatalf("Fig6 T2 not bell shaped: mid %v edge %v", t2Mid, t2Edge)
	}
}

func TestFig7aWithinEpsilon(t *testing.T) {
	tab := Fig7a(testOpts())
	if len(tab.Rows) != 10 {
		t.Fatalf("Fig7a rows = %d", len(tab.Rows))
	}
	violations := 0
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if cellFloat(t, cell) > 0.05 {
				violations++
			}
		}
	}
	// 30 single-run cells at δ=0.05: more than 3 violations is suspect.
	if violations > 3 {
		t.Fatalf("Fig7a epsilon violations: %d of 30", violations)
	}
}

func TestFig7bWithinEpsilon(t *testing.T) {
	tab := Fig7b(testOpts())
	for _, row := range tab.Rows {
		eps := cellFloat(t, row[0])
		for _, cell := range row[1:] {
			if cellFloat(t, cell) > eps {
				t.Fatalf("Fig7b accuracy %v exceeds eps %v", cell, eps)
			}
		}
	}
}

func TestFig7cWithinEpsilon(t *testing.T) {
	tab := Fig7c(testOpts())
	bad := 0
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if cellFloat(t, cell) > 0.05 {
				bad++
			}
		}
	}
	// 18 cells at δ up to 0.3: a few excursions beyond ε are permitted by
	// the requirement itself at large δ.
	if bad > 4 {
		t.Fatalf("Fig7c epsilon violations: %d of 18", bad)
	}
}

func TestFig8QuantilesBracketTruth(t *testing.T) {
	o := testOpts()
	o.Trials = 12
	tab := Fig8(o)
	if len(tab.Rows) != 12 {
		t.Fatalf("Fig8 rows = %d", len(tab.Rows))
	}
	// The median row must be near 500000 for every distribution.
	for _, row := range tab.Rows {
		if cellFloat(t, row[0]) == 0.5 {
			for _, cell := range row[1:] {
				v := cellFloat(t, cell)
				if math.Abs(v-500000)/500000 > 0.05 {
					t.Fatalf("Fig8 median %v too far from 500000", v)
				}
			}
		}
	}
	if !strings.Contains(tab.Note, "fraction within") {
		t.Fatalf("Fig8 note missing coverage: %q", tab.Note)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := Fig9(testOpts())
	if len(tab.Rows) != 17 {
		t.Fatalf("Fig9 rows = %d", len(tab.Rows))
	}
	// BFCE column must respect the row's requirement in every cell.
	for _, row := range tab.Rows {
		eps := 0.05
		if row[0] == "eps" {
			eps = cellFloat(t, row[1])
		}
		if acc := cellFloat(t, row[2]); acc > eps {
			t.Fatalf("Fig9 BFCE accuracy %v exceeds eps %v (row %v)", acc, eps, row)
		}
	}
}

func TestFig10ConstantBFCEAndOrdering(t *testing.T) {
	tab := Fig10(testOpts())
	var bfceMin, bfceMax = math.Inf(1), math.Inf(-1)
	for _, row := range tab.Rows {
		b := cellFloat(t, row[2])
		bfceMin = math.Min(bfceMin, b)
		bfceMax = math.Max(bfceMax, b)
	}
	// Fig. 10's headline: BFCE's time is constant across every sweep.
	if bfceMax-bfceMin > 0.02 {
		t.Fatalf("BFCE time not constant: [%v, %v]", bfceMin, bfceMax)
	}
	if bfceMax > 0.30 {
		t.Fatalf("BFCE time %v s, want ~0.19", bfceMax)
	}
	// At the tight default row, ZOE must dwarf both.
	firstRow := tab.Rows[0]
	z, s := cellFloat(t, firstRow[3]), cellFloat(t, firstRow[4])
	if z < 10*bfceMax {
		t.Fatalf("ZOE %v s not >> BFCE %v s", z, bfceMax)
	}
	if s < bfceMax || s > z {
		t.Fatalf("SRC %v s not between BFCE %v and ZOE %v", s, bfceMax, z)
	}
	if !strings.Contains(tab.Note, "mean seconds") {
		t.Fatalf("Fig10 note missing summary: %q", tab.Note)
	}
}

func TestOverheadTable(t *testing.T) {
	tab := Overhead(testOpts())
	if len(tab.Rows) != 4 {
		t.Fatalf("Overhead rows = %d", len(tab.Rows))
	}
	// Measured seconds within 25% of the closed form (probe rounds and
	// per-phase turnaround intervals are on top of the paper's form).
	closed := cellFloat(t, tab.Rows[3][1])
	measured := cellFloat(t, tab.Rows[3][2])
	if measured < closed*0.9 || measured > closed*1.25 {
		t.Fatalf("Overhead: measured %v vs closed form %v", measured, closed)
	}
}
