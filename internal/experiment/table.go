// Package experiment regenerates every table and figure of the paper's
// evaluation (§V), plus the ablations DESIGN.md calls out. Each runner is a
// pure function of an Options value, so a fixed seed reproduces a figure
// bit-for-bit; the cmd/experiments binary and the repository's benchmark
// suite are thin wrappers over these runners.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid of formatted cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics if the cell count does not match the
// header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row with %d cells in a %d-column table",
			len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of fmt.Sprintf-formatted cells: values are rendered
// with %v for strings and ints and %.4g for floats.
func (t *Table) Addf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (header row first).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
