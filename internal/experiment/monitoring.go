package experiment

import (
	"fmt"

	"rfidest/internal/channel"
	"rfidest/internal/core"
	"rfidest/internal/stats"
	"rfidest/internal/tags"
	"rfidest/internal/workload"
	"rfidest/internal/xrand"
)

// windowSession builds a tag-level session over universe window
// [start, start+n) so consecutive rounds share unmoved tags.
func windowSession(o Options, tl *workload.Timeline, round int, salt uint64) *channel.Reader {
	r := tl.Rounds[round]
	universe := tags.Generate(r.End(), tags.T1, xrand.Combine(o.Seed, tl.UniverseSeed))
	pop := &tags.Population{Tags: universe.Tags[r.Start:r.End()], Dist: universe.Dist, Seed: universe.Seed}
	return channel.NewReader(channel.NewTagEngine(pop, channel.IdealRN),
		xrand.Combine(o.Seed, tl.UniverseSeed, uint64(round), salt))
}

// Monitoring runs the incremental-monitoring extension over a drifting
// deployment: a warm-started BFCE monitor (rough phase skipped on 3 of
// every 4 rounds) tracks the cardinality while pinned differential
// snapshots report per-round arrivals and departures — all from
// constant-time frames. Columns compare against the workload's ground
// truth.
func Monitoring(o Options) *Table {
	t := NewTable("Extension — monitoring a drifting deployment (warm-started BFCE + differential snapshots)",
		"round", "true n", "monitor n̂", "acc", "slots",
		"true dep", "est dep", "true arr", "est arr")
	tl, err := workload.Drift(12, 150000, 0.06, 0.06, xrand.Combine(o.Seed, 0xd1))
	if err != nil {
		panic(err) // unreachable: parameters are static and valid
	}

	mon, err := core.NewMonitor(core.Config{})
	if err != nil {
		panic(err) // unreachable: default config is valid
	}
	mon.FastRounds = 3

	cfg := core.DefaultConfig()
	pn, ok := core.OptimalPn(150000, cfg.K, cfg.W, cfg.PDenom, cfg.Epsilon, cfg.Delta)
	if !ok {
		pn = core.FallbackPn(150000, cfg.K, cfg.W, cfg.PDenom)
	}
	differ, err := core.NewDiffer(cfg, pn, xrand.Combine(o.Seed, 0xd1ff))
	if err != nil {
		panic(err) // unreachable: pn is in range by construction
	}

	var prev *core.Snapshot
	for round := range tl.Rounds {
		n := tl.Rounds[round].N

		res, err := mon.Estimate(windowSession(o, tl, round, 1))
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}

		snap, err := differ.Take(windowSession(o, tl, round, 2))
		if err != nil {
			panic(err) // unreachable: session is non-nil by construction
		}
		estDep, estArr := "-", "-"
		if prev != nil {
			dep, err := core.Departures(prev, snap)
			if err != nil {
				panic(err) // unreachable: snapshots share the differ's pinning
			}
			arr, err := core.Arrivals(prev, snap)
			if err != nil {
				panic(err) // unreachable: snapshots share the differ's pinning
			}
			estDep = fmt.Sprintf("%.0f", dep)
			estArr = fmt.Sprintf("%.0f", arr)
		}
		prev = snap

		t.Addf(round, n, res.Estimate, stats.RelError(res.Estimate, float64(n)),
			res.Cost.TagSlots, tl.Departures(round), estDep, tl.Arrivals(round), estArr)
	}
	t.Note = "monitor rounds with slots=8192 skipped the probe and rough phases (warm start); snapshots add 8192 slots each"
	return t
}
