// Package stats provides the statistical substrate for the estimator
// library: streaming moments, quantiles, empirical CDFs, histograms, the
// normal-quantile constant d = √2·erfinv(1−δ) that BFCE's feasibility test
// uses (Theorem 3), and the binomial tail that sizes SRC's round count.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's algorithm),
// numerically stable for long runs. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Summary is a compact five-number-plus summary of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P25, P50, P75 float64
	P90, P95, P99, Max float64
}

// Summarize computes a Summary of xs. It does not modify xs.
func Summarize(xs []float64) Summary {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s := Summary{N: w.N(), Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max()}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P25 = Quantile(sorted, 0.25)
	s.P50 = Quantile(sorted, 0.50)
	s.P75 = Quantile(sorted, 0.75)
	s.P90 = Quantile(sorted, 0.90)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g p50=%.6g p95=%.6g max=%.6g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice using linear interpolation between order statistics. It panics on
// an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// InUnitInterval reports whether x lies strictly inside (0, 1) — the
// domain of the (ε, δ) accuracy parameters and of BFCE's lower-bound
// coefficient. It is the one NaN-proof domain check behind every accuracy
// validation in the module: the comparisons are phrased positively, so NaN
// (for which both x <= 0 and x >= 1 are false) fails instead of slipping
// through a negated range check, and ±Inf fail with it.
func InUnitInterval(x float64) bool { return x > 0 && x < 1 }

// InClosedUnitInterval reports whether x lies in [0, 1] — the domain of
// probabilities and rates (channel error rates, fault-injection rates).
// Like InUnitInterval it rejects NaN and ±Inf by construction.
func InClosedUnitInterval(x float64) bool { return x >= 0 && x <= 1 }

// Median returns the median of xs (copies and sorts internally).
func Median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (the input is copied).
func NewECDF(xs []float64) *ECDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Points returns k evenly spaced (value, cumulative-probability) pairs
// spanning the sample, suitable for plotting a CDF curve (Fig. 8).
func (e *ECDF) Points(k int) (values, probs []float64) {
	n := len(e.sorted)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	values = make([]float64, k)
	probs = make([]float64, k)
	for i := 0; i < k; i++ {
		idx := (i * (n - 1)) / (k - 1 + boolToInt(k == 1))
		values[i] = e.sorted[idx]
		probs[i] = float64(idx+1) / float64(n)
	}
	return values, probs
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Histogram bins a sample into nbins equal-width bins over [lo, hi].
// Values outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of xs. It panics if hi <= lo or nbins <= 0.
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fraction returns the fraction of the sample in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
