package stats

import (
	"math"
	"testing"

	"rfidest/internal/xrand"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Fatalf("identical samples KS = %v", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KSStatistic(xs, ys); d != 1 {
		t.Fatalf("disjoint samples KS = %v", d)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if KSStatistic(nil, []float64{1}) != 1 {
		t.Fatal("empty sample must give KS = 1")
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// xs = {1,2,3,4}, ys = {2.5, 3.5}: CDF gap peaks at 0.5 (just below
	// 2.5: F_x = 0.5, F_y = 0).
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.5, 3.5}
	if d := KSStatistic(xs, ys); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSameDistributionAccepts(t *testing.T) {
	rng := xrand.New(41)
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Norm()
		ys[i] = rng.Norm()
	}
	if !SameDistribution(xs, ys, 0.001) {
		t.Fatal("two normal samples rejected")
	}
}

func TestKSSameDistributionRejects(t *testing.T) {
	rng := xrand.New(43)
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Norm()
		ys[i] = rng.Norm() + 0.5 // shifted
	}
	if SameDistribution(xs, ys, 0.001) {
		t.Fatal("shifted samples accepted")
	}
}

func TestKSPValueMonotone(t *testing.T) {
	prev := 1.0
	for d := 0.0; d <= 1.0; d += 0.05 {
		p := KSPValue(d, 500, 500)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone at d=%v", d)
		}
		prev = p
	}
	if KSPValue(0.5, 0, 10) != 0 {
		t.Fatal("empty sample p-value must be 0")
	}
}
