package stats

import (
	"math"
	"testing"
)

func TestDKnownValues(t *testing.T) {
	// d(0.05) is the familiar 1.95996..., d(0.3173) ~ 1.
	cases := []struct{ delta, want, tol float64 }{
		{0.05, 1.959964, 1e-4},
		{0.01, 2.575829, 1e-4},
		{0.10, 1.644854, 1e-4},
		{0.3173, 1.0, 1e-3},
	}
	for _, c := range cases {
		if got := D(c.delta); math.Abs(got-c.want) > c.tol {
			t.Fatalf("D(%v) = %v, want %v", c.delta, got, c.want)
		}
	}
}

func TestDPanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("D(%v) did not panic", bad)
				}
			}()
			D(bad)
		}()
	}
}

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{3, 0.998650},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-4 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999} {
		z := NormalQuantile(p)
		if back := NormalCDF(z); math.Abs(back-p) > 1e-9 {
			t.Fatalf("round trip failed: p=%v z=%v back=%v", p, z, back)
		}
	}
}

func TestDConsistentWithQuantile(t *testing.T) {
	// d(δ) must equal the (1-δ/2) normal quantile.
	for _, delta := range []float64{0.05, 0.1, 0.2, 0.3} {
		if math.Abs(D(delta)-NormalQuantile(1-delta/2)) > 1e-9 {
			t.Fatalf("D(%v) inconsistent with NormalQuantile", delta)
		}
	}
}

func TestBinomialTailExact(t *testing.T) {
	// Binomial(3, 0.8): P(X>=2) = 3·0.64·0.2 + 0.512 = 0.896.
	if got := BinomialTail(3, 2, 0.8); math.Abs(got-0.896) > 1e-12 {
		t.Fatalf("BinomialTail(3,2,0.8) = %v", got)
	}
	// P(X>=0) = 1, P(X>m) = 0.
	if BinomialTail(5, 0, 0.3) != 1 {
		t.Fatal("tail at 0 must be 1")
	}
	if BinomialTail(5, 6, 0.3) != 0 {
		t.Fatal("tail beyond m must be 0")
	}
}

func TestBinomialTailMonotone(t *testing.T) {
	prev := 1.0
	for k := 0; k <= 20; k++ {
		v := BinomialTail(20, k, 0.7)
		if v > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d", k)
		}
		prev = v
	}
}

func TestMajorityRoundsPaperFormula(t *testing.T) {
	// With per-round success 0.8 (the SRC constant):
	// m=1: 0.8; m=3: 0.896; m=5: 0.94208; m=7: 0.966656 — so δ=0.05 → 7.
	cases := []struct {
		delta float64
		want  int
	}{
		{0.25, 1},
		{0.15, 3},
		{0.06, 5},
		{0.05, 7},
		{0.01, 13},
	}
	for _, c := range cases {
		if got := MajorityRounds(0.8, c.delta, 99); got != c.want {
			t.Fatalf("MajorityRounds(0.8, %v) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestMajorityRoundsCaps(t *testing.T) {
	if got := MajorityRounds(0.51, 1e-12, 9); got != 9 {
		t.Fatalf("capped rounds = %d, want 9", got)
	}
	if got := MajorityRounds(0.51, 1e-12, 8); got != 9 {
		t.Fatalf("even cap must round up to odd, got %d", got)
	}
}

func TestRelError(t *testing.T) {
	if RelError(110, 100) != 0.1 {
		t.Fatal("RelError(110,100) != 0.1")
	}
	if RelError(90, 100) != 0.1 {
		t.Fatal("RelError(90,100) != 0.1")
	}
	if RelError(100, 100) != 0 {
		t.Fatal("RelError(100,100) != 0")
	}
}

func TestRelErrorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RelError with n=0 did not panic")
		}
	}()
	RelError(1, 0)
}
