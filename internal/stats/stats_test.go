package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if !almostEqual(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum, sumSq := 0.0, 0.0
		for _, v := range raw {
			x := float64(v)
			w.Add(x)
			sum += x
			sumSq += x * x
		}
		n := float64(len(raw))
		mean := sum / n
		variance := (sumSq - n*mean*mean) / (n - 1)
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Var(), variance, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if !almostEqual(Quantile(xs, 0.5), 3, 1e-12) {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if !almostEqual(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	if !almostEqual(Quantile(xs, 0.1), 1.4, 1e-12) {
		t.Fatalf("q10 = %v", Quantile(xs, 0.1))
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile([]) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMedianEvenOdd(t *testing.T) {
	if !almostEqual(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Fatal("odd median")
	}
	if !almostEqual(Median([]float64{4, 1, 3, 2}), 2.5, 1e-12) {
		t.Fatal("even median")
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean wrong")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if !almostEqual(s.P50, 50, 1e-9) || !almostEqual(s.P95, 95, 1e-9) {
		t.Fatalf("quantiles wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestECDFMonotone(t *testing.T) {
	xs := []float64{5, 1, 3, 3, 9}
	e := NewECDF(xs)
	if e.At(0) != 0 {
		t.Fatalf("At(0) = %v", e.At(0))
	}
	if e.At(9) != 1 {
		t.Fatalf("At(9) = %v", e.At(9))
	}
	if !almostEqual(e.At(3), 0.6, 1e-12) {
		t.Fatalf("At(3) = %v", e.At(3))
	}
	prev := -1.0
	for x := 0.0; x <= 10; x += 0.25 {
		p := e.At(x)
		if p < prev {
			t.Fatalf("ECDF not monotone at %v", x)
		}
		prev = p
	}
}

func TestECDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	e := NewECDF(xs)
	vals, probs := e.Points(10)
	if len(vals) != 10 || len(probs) != 10 {
		t.Fatalf("Points lengths: %d, %d", len(vals), len(probs))
	}
	if !sort.Float64sAreSorted(vals) || !sort.Float64sAreSorted(probs) {
		t.Fatal("Points not sorted")
	}
	if probs[len(probs)-1] != 1 {
		t.Fatalf("last prob = %v", probs[len(probs)-1])
	}
}

func TestECDFPointsEdge(t *testing.T) {
	e := NewECDF(nil)
	if v, p := e.Points(5); v != nil || p != nil {
		t.Fatal("empty ECDF must return nil points")
	}
	e = NewECDF([]float64{42})
	v, p := e.Points(1)
	if len(v) != 1 || v[0] != 42 || p[0] != 1 {
		t.Fatalf("single-point ECDF: %v %v", v, p)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-5, 0.1, 0.5, 0.9, 99}
	h := NewHistogram(xs, 0, 1, 10)
	if h.Total != 5 {
		t.Fatalf("Total = %d", h.Total)
	}
	if h.Counts[0] != 1 { // -5 clamped in... plus 0.1 lands in bin 1
		t.Fatalf("clamp low failed: %v", h.Counts)
	}
	if h.Counts[9] != 2 { // 0.9 in bin 9 and 99 clamped
		t.Fatalf("clamp high failed: %v", h.Counts)
	}
	if !almostEqual(h.BinCenter(0), 0.05, 1e-12) {
		t.Fatalf("BinCenter = %v", h.BinCenter(0))
	}
	if !almostEqual(h.Fraction(9), 0.4, 1e-12) {
		t.Fatalf("Fraction = %v", h.Fraction(9))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(nil, 1, 1, 10)
}
