package stats

import "math"

// D returns the constant d of BFCE Theorem 3: the half-width, in standard
// normal units, of a symmetric interval with mass 1−δ:
//
//	d = √2 · erfinv(1 − δ),  so that  P(−d ≤ Y ≤ d) = 1 − δ
//
// for a standard normal Y. D panics if δ is outside (0, 1).
func D(delta float64) float64 {
	if delta <= 0 || delta >= 1 {
		panic("stats: D requires delta in (0, 1)")
	}
	return math.Sqrt2 * math.Erfinv(1-delta)
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns z such that NormalCDF(z) = p, for p in (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0, 1)")
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// BinomialTail returns P(X >= k) for X ~ Binomial(m, p), computed by
// summing exact terms in log space. It is used to size SRC's round count:
// the smallest odd m with BinomialTail(m, (m+1)/2, 0.8) >= 1−δ.
func BinomialTail(m, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > m {
		return 0
	}
	total := 0.0
	lp := math.Log(p)
	lq := math.Log1p(-p)
	for i := k; i <= m; i++ {
		lc := lchoose(m, i)
		total += math.Exp(lc + float64(i)*lp + float64(m-i)*lq)
	}
	if total > 1 {
		total = 1
	}
	return total
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// MajorityRounds returns the smallest odd m such that a majority of m
// independent trials, each succeeding with probability p, succeeds with
// probability at least 1−δ:
//
//	Σ_{i=(m+1)/2}^{m} C(m,i)·p^i·(1−p)^{m−i} ≥ 1−δ
//
// This is exactly the expression BFCE §V-C uses to size SRC's repetition of
// its second phase (with p = 0.8). maxM bounds the search; MajorityRounds
// returns maxM (rounded up to odd) if no smaller m suffices.
func MajorityRounds(p, delta float64, maxM int) int {
	for m := 1; m <= maxM; m += 2 {
		if BinomialTail(m, (m+1)/2, p) >= 1-delta {
			return m
		}
	}
	if maxM%2 == 0 {
		maxM++
	}
	return maxM
}

// RelError returns the paper's accuracy metric |n̂ − n| / n (§V-A).
// It panics if n <= 0.
func RelError(nhat, n float64) float64 {
	if n <= 0 {
		panic("stats: RelError with non-positive n")
	}
	return math.Abs(nhat-n) / n
}
