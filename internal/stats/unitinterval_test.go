package stats

import (
	"math"
	"testing"
)

func TestUnitIntervalHelpers(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		x            float64
		open, closed bool
	}{
		{0.5, true, true},
		{0.05, true, true},
		{1e-12, true, true},
		{1 - 1e-12, true, true},
		{0, false, true},
		{1, false, true},
		{-0.1, false, false},
		{1.1, false, false},
		{nan, false, false},
		{inf, false, false},
		{-inf, false, false},
	}
	for _, c := range cases {
		if got := InUnitInterval(c.x); got != c.open {
			t.Errorf("InUnitInterval(%v) = %v, want %v", c.x, got, c.open)
		}
		if got := InClosedUnitInterval(c.x); got != c.closed {
			t.Errorf("InClosedUnitInterval(%v) = %v, want %v", c.x, got, c.closed)
		}
	}
}
