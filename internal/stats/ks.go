package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic — the
// maximum vertical distance between the empirical CDFs of xs and ys. The
// channel tests use it to verify that the per-tag engine and the synthetic
// engine sample the same frame-statistic distributions, which is a far
// stronger check than comparing means.
func KSStatistic(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 1
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	i, j := 0, 0
	d := 0.0
	for i < len(a) && j < len(b) {
		var v float64
		if a[i] <= b[j] {
			v = a[i]
		} else {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value of the two-sample KS statistic d
// for sample sizes n and m (Kolmogorov distribution tail,
// Q(λ) = 2·Σ (−1)^{k−1} e^{−2k²λ²}). Small p-values reject the hypothesis
// that both samples come from the same distribution.
func KSPValue(d float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 0
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// SameDistribution reports whether the two samples are consistent with one
// underlying distribution at the given significance level (it fails to
// reject the KS test).
func SameDistribution(xs, ys []float64, alpha float64) bool {
	return KSPValue(KSStatistic(xs, ys), len(xs), len(ys)) >= alpha
}
