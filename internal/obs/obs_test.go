package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseRun: "run", PhaseProbe: "probe", PhaseRough: "rough",
		PhaseAccurate: "accurate", NumPhases: "invalid",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4.99, 5, 6, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	// Bucket i collects bounds[i-1] < v <= bounds[i]; values past the last
	// bound land in the overflow bucket: {0.5,1}, {1.5,2}, {4.99,5}, {6,100}.
	got := s.Counts
	want := []int64{2, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if math.Abs(s.Sum-(0.5+1+1.5+2+4.99+5+6+100)) > 1e-9 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {2, 1},
		"equal":    {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%s) did not panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

// TestRegistryAccounting drives one synthetic session through the hooks
// and checks every series it should touch.
func TestRegistryAccounting(t *testing.T) {
	r := NewRegistry()
	r.SessionOpen("BFCE")
	r.PhaseStart(PhaseProbe)
	r.Broadcast(PhaseProbe, 128)
	r.Frame(PhaseProbe, FrameStats{W: 8192, Observed: 32, Busy: 7})
	r.ProbeRounds(3)
	r.PhaseEnd(PhaseProbe, PhaseStats{Slots: 32, ReaderBits: 128, Seconds: 0.002})
	r.Listen(PhaseRun, 10)
	r.SessionClose(SessionStats{
		Estimator: "BFCE", Estimate: 1000, Rounds: 1, Slots: 42,
		ReaderBits: 128, Seconds: 0.19, TagTransmissions: 55, Guarded: true,
	})
	r.EstimateError(0.015)

	s := r.Snapshot()
	if s.Sessions != 1 || s.Errors != 0 || s.Frames != 1 {
		t.Fatalf("sessions/errors/frames = %d/%d/%d", s.Sessions, s.Errors, s.Frames)
	}
	if s.Slots != 42 { // 32 from the frame + 10 from the listen
		t.Errorf("slots = %d, want 42", s.Slots)
	}
	if s.ReaderBits != 128 || s.TagTransmissions != 55 || s.ProbeRoundsTotal != 3 {
		t.Errorf("bits/tagTx/probeRounds = %d/%d/%d", s.ReaderBits, s.TagTransmissions, s.ProbeRoundsTotal)
	}
	probe := s.Phases[PhaseProbe]
	if probe.Phase != "probe" || probe.Spans != 1 || probe.Slots != 32 ||
		probe.ReaderBits != 128 || probe.Frames != 1 || probe.BusySlots != 7 {
		t.Errorf("probe phase snapshot: %+v", probe)
	}
	if probe.Seconds.Count != 1 {
		t.Errorf("probe seconds count = %d", probe.Seconds.Count)
	}
	if run := s.Phases[PhaseRun]; run.Slots != 10 {
		t.Errorf("run phase slots = %d, want 10", run.Slots)
	}
	if len(s.Estimators) != 1 {
		t.Fatalf("estimators: %+v", s.Estimators)
	}
	e := s.Estimators[0]
	if e.Estimator != "BFCE" || e.Sessions != 1 || e.Rounds != 1 || e.Slots != 42 ||
		e.AirSeconds != 0.19 || e.TagTransmissions != 55 || e.Guarded != 1 {
		t.Errorf("estimator snapshot: %+v", e)
	}
	if s.AirTimeSeconds.Count != 1 || s.ProbeRounds.Count != 1 || s.EstimateRelErr.Count != 1 {
		t.Errorf("histogram counts: air=%d probe=%d err=%d",
			s.AirTimeSeconds.Count, s.ProbeRounds.Count, s.EstimateRelErr.Count)
	}
}

// TestRegistryErrorSessions: failed sessions count as errors and do not
// pollute the cost series.
func TestRegistryErrorSessions(t *testing.T) {
	r := NewRegistry()
	r.SessionOpen("ZOE")
	r.SessionClose(SessionStats{Estimator: "ZOE", Err: true, TagTransmissions: -1})
	s := r.Snapshot()
	if s.Sessions != 1 || s.Errors != 1 {
		t.Fatalf("sessions/errors = %d/%d", s.Sessions, s.Errors)
	}
	if s.AirTimeSeconds.Count != 0 {
		t.Errorf("air-time histogram observed an errored session")
	}
	if s.TagTransmissions != 0 {
		t.Errorf("unmetered -1 leaked into tag transmissions: %d", s.TagTransmissions)
	}
	if e := s.Estimators[0]; e.Errors != 1 || e.Sessions != 1 || e.AirSeconds != 0 {
		t.Errorf("estimator error accounting: %+v", e)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi should collapse to Nop")
	}
	r := NewRegistry()
	if Multi(nil, r, Nop) != Observer(r) {
		t.Error("single-entry Multi should unwrap")
	}
	r2 := NewRegistry()
	m := Multi(r, r2)
	m.SessionOpen("BFCE")
	m.SessionClose(SessionStats{Estimator: "BFCE", Seconds: 0.1, TagTransmissions: -1})
	m.PhaseStart(PhaseRough)
	m.PhaseEnd(PhaseRough, PhaseStats{Seconds: 0.01})
	m.Frame(PhaseRough, FrameStats{W: 8192, Observed: 1024, Busy: 100})
	m.Broadcast(PhaseRough, 96)
	m.Listen(PhaseRun, 5)
	m.ProbeRounds(2)
	m.EstimateError(0.01)
	for i, reg := range []*Registry{r, r2} {
		s := reg.Snapshot()
		if s.Sessions != 1 || s.Slots != 1029 || s.ReaderBits != 96 || s.ProbeRoundsTotal != 2 {
			t.Errorf("registry %d missed teed hooks: %+v", i, s)
		}
	}
}

// TestNopIsZeroAllocation pins the noop-overhead contract: the default
// observer allocates nothing on any hook, and neither does the Registry's
// hot path (phase/frame/broadcast/listen counters).
func TestNopIsZeroAllocation(t *testing.T) {
	reg := NewRegistry()
	reg.SessionClose(SessionStats{Estimator: "BFCE"}) // pre-create the map cell
	for name, o := range map[string]Observer{"nop": Nop, "registry": reg} {
		allocs := testing.AllocsPerRun(100, func() {
			o.SessionOpen("BFCE")
			o.PhaseStart(PhaseProbe)
			o.Broadcast(PhaseProbe, 96)
			o.Frame(PhaseProbe, FrameStats{W: 8192, Observed: 32, Busy: 3})
			o.Listen(PhaseProbe, 4)
			o.ProbeRounds(1)
			o.PhaseEnd(PhaseProbe, PhaseStats{Slots: 36, ReaderBits: 96, Seconds: 0.001})
			o.SessionClose(SessionStats{Estimator: "BFCE", Seconds: 0.19, TagTransmissions: 10})
			o.EstimateError(0.01)
		})
		if allocs != 0 {
			t.Errorf("%s observer allocated %.1f times per session", name, allocs)
		}
	}
}

func TestSnapshotTextExport(t *testing.T) {
	r := NewRegistry()
	r.SessionOpen("BFCE")
	r.PhaseStart(PhaseAccurate)
	r.Frame(PhaseAccurate, FrameStats{W: 8192, Observed: 8192, Busy: 3000})
	r.PhaseEnd(PhaseAccurate, PhaseStats{Slots: 8192, Seconds: 0.155})
	r.ProbeRounds(4)
	r.SessionClose(SessionStats{Estimator: "BFCE", Seconds: 0.19, Rounds: 1, Slots: 9248, TagTransmissions: -1})

	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"obs.sessions 1\n",
		"obs.phase.accurate.slots 8192\n",
		"obs.phase.accurate.seconds.count 1\n",
		"obs.phase.accurate.seconds.le0.19 1\n",
		"obs.probe_rounds.le4 1\n",
		"obs.estimator.BFCE.rounds 1\n",
		"obs.airtime_s.le0.19 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q in:\n%s", want, text)
		}
	}
	// Deterministic: two renders of the same state are byte-identical.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("text export is not deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SessionOpen("SRC")
	r.SessionClose(SessionStats{Estimator: "SRC", Seconds: 0.09, Rounds: 6, Slots: 3897, TagTransmissions: 100})
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Sessions != 1 || len(back.Estimators) != 1 || back.Estimators[0].Slots != 3897 {
		t.Errorf("round-tripped snapshot: %+v", back)
	}
}
