package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of a Registry, suitable for export.
// Slices are ordered deterministically (phases by enum order, estimators
// by name) so two snapshots of identical state render identically.
type Snapshot struct {
	Sessions         int64 `json:"sessions"`
	Errors           int64 `json:"errors"`
	Frames           int64 `json:"frames"`
	Slots            int64 `json:"slots"`
	ReaderBits       int64 `json:"reader_bits"`
	TagTransmissions int64 `json:"tag_transmissions"`
	ProbeRoundsTotal int64 `json:"probe_rounds_total"`
	Retries          int64 `json:"retries"`
	Degraded         int64 `json:"degraded"`

	Phases     []PhaseSnapshot     `json:"phases"`
	Estimators []EstimatorSnapshot `json:"estimators"`
	Faults     FaultSnapshot       `json:"faults"`

	AirTimeSeconds HistogramSnapshot `json:"airtime_s"`
	ProbeRounds    HistogramSnapshot `json:"probe_rounds"`
	EstimateRelErr HistogramSnapshot `json:"est_rel_err"`
}

// FaultSnapshot aggregates the channel-injector counters across sessions.
type FaultSnapshot struct {
	Sessions    int64             `json:"sessions"`
	Frames      int64             `json:"frames"`
	BurstFlips  int64             `json:"burst_flips"`
	Erasures    int64             `json:"erasures"`
	Truncations int64             `json:"truncations"`
	Stalls      int64             `json:"stalls"`
	StallSlots  int64             `json:"stall_slots"`
	PerSession  HistogramSnapshot `json:"per_session"`
}

// PhaseSnapshot is the per-phase series: slot/bit/frame counters fed by
// the channel hooks and the span air-time histogram.
type PhaseSnapshot struct {
	Phase      string            `json:"phase"`
	Spans      int64             `json:"spans"`
	Slots      int64             `json:"slots"`
	ReaderBits int64             `json:"reader_bits"`
	Frames     int64             `json:"frames"`
	BusySlots  int64             `json:"busy_slots"`
	Seconds    HistogramSnapshot `json:"seconds"`
}

// EstimatorSnapshot is the registry-level per-protocol accounting.
type EstimatorSnapshot struct {
	Estimator        string  `json:"estimator"`
	Sessions         int64   `json:"sessions"`
	Errors           int64   `json:"errors"`
	Rounds           int64   `json:"rounds"`
	Slots            int64   `json:"slots"`
	ReaderBits       int64   `json:"reader_bits"`
	AirSeconds       float64 `json:"air_seconds"`
	TagTransmissions int64   `json:"tag_transmissions"`
	Guarded          int64   `json:"guarded"`
	Retries          int64   `json:"retries"`
	Degraded         int64   `json:"degraded"`
}

// Snapshot copies the registry's current state. Counters are read
// individually (not under one lock), so a snapshot taken while sessions
// are in flight is internally consistent per counter, not across them —
// take snapshots at quiescence for exact cross-counter invariants.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Sessions:         r.sessions.Load(),
		Errors:           r.errors.Load(),
		Frames:           r.frames.Load(),
		Slots:            r.slots.Load(),
		ReaderBits:       r.readerBits.Load(),
		TagTransmissions: r.tagTransmissions.Load(),
		ProbeRoundsTotal: r.probeRoundsTotal.Load(),
		Retries:          r.retries.Load(),
		Degraded:         r.degraded.Load(),
		AirTimeSeconds:   r.airTime.snapshot(),
		ProbeRounds:      r.probeRounds.snapshot(),
		EstimateRelErr:   r.estErr.snapshot(),
		Faults: FaultSnapshot{
			Sessions:    r.faults.sessions.Load(),
			Frames:      r.faults.frames.Load(),
			BurstFlips:  r.faults.burstFlips.Load(),
			Erasures:    r.faults.erasures.Load(),
			Truncations: r.faults.truncations.Load(),
			Stalls:      r.faults.stalls.Load(),
			StallSlots:  r.faults.stallSlots.Load(),
			PerSession:  r.faults.perSession.snapshot(),
		},
	}
	for p := Phase(0); p < NumPhases; p++ {
		m := &r.phases[p]
		s.Phases = append(s.Phases, PhaseSnapshot{
			Phase:      p.String(),
			Spans:      m.spans.Load(),
			Slots:      m.slots.Load(),
			ReaderBits: m.readerBits.Load(),
			Frames:     m.frames.Load(),
			BusySlots:  m.busySlots.Load(),
			Seconds:    m.seconds.snapshot(),
		})
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.estimators))
	for name := range r.estimators {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.estimators[name]
		s.Estimators = append(s.Estimators, EstimatorSnapshot{
			Estimator:        name,
			Sessions:         m.sessions.Load(),
			Errors:           m.errors.Load(),
			Rounds:           m.rounds.Load(),
			Slots:            m.slots.Load(),
			ReaderBits:       m.readerBits.Load(),
			AirSeconds:       m.airSeconds.Load(),
			TagTransmissions: m.tagTx.Load(),
			Guarded:          m.guarded.Load(),
			Retries:          m.retries.Load(),
			Degraded:         m.degraded.Load(),
		})
	}
	r.mu.RUnlock()
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as expvar-style "name value" lines, one
// series per line, in deterministic order. Histogram buckets render as
// cumulative-free le<bound> counts plus a gt<last bound> overflow line.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := &textWriter{w: w}
	tw.line("obs.sessions", s.Sessions)
	tw.line("obs.errors", s.Errors)
	tw.line("obs.frames", s.Frames)
	tw.line("obs.slots", s.Slots)
	tw.line("obs.reader_bits", s.ReaderBits)
	tw.line("obs.tag_transmissions", s.TagTransmissions)
	tw.line("obs.probe_rounds_total", s.ProbeRoundsTotal)
	tw.line("obs.retries", s.Retries)
	tw.line("obs.degraded", s.Degraded)
	for _, p := range s.Phases {
		prefix := "obs.phase." + p.Phase
		tw.line(prefix+".spans", p.Spans)
		tw.line(prefix+".slots", p.Slots)
		tw.line(prefix+".reader_bits", p.ReaderBits)
		tw.line(prefix+".frames", p.Frames)
		tw.line(prefix+".busy_slots", p.BusySlots)
		tw.histogram(prefix+".seconds", p.Seconds)
	}
	for _, e := range s.Estimators {
		prefix := "obs.estimator." + e.Estimator
		tw.line(prefix+".sessions", e.Sessions)
		tw.line(prefix+".errors", e.Errors)
		tw.line(prefix+".rounds", e.Rounds)
		tw.line(prefix+".slots", e.Slots)
		tw.line(prefix+".reader_bits", e.ReaderBits)
		tw.lineFloat(prefix+".air_seconds", e.AirSeconds)
		tw.line(prefix+".tag_transmissions", e.TagTransmissions)
		tw.line(prefix+".guarded", e.Guarded)
		tw.line(prefix+".retries", e.Retries)
		tw.line(prefix+".degraded", e.Degraded)
	}
	tw.line("obs.faults.sessions", s.Faults.Sessions)
	tw.line("obs.faults.frames", s.Faults.Frames)
	tw.line("obs.faults.burst_flips", s.Faults.BurstFlips)
	tw.line("obs.faults.erasures", s.Faults.Erasures)
	tw.line("obs.faults.truncations", s.Faults.Truncations)
	tw.line("obs.faults.stalls", s.Faults.Stalls)
	tw.line("obs.faults.stall_slots", s.Faults.StallSlots)
	tw.histogram("obs.faults.per_session", s.Faults.PerSession)
	tw.histogram("obs.airtime_s", s.AirTimeSeconds)
	tw.histogram("obs.probe_rounds", s.ProbeRounds)
	tw.histogram("obs.est_rel_err", s.EstimateRelErr)
	return tw.err
}

type textWriter struct {
	w   io.Writer
	err error
}

func (t *textWriter) line(name string, v int64) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, "%s %d\n", name, v)
	}
}

func (t *textWriter) lineFloat(name string, v float64) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
	}
}

func (t *textWriter) histogram(name string, h HistogramSnapshot) {
	t.line(name+".count", h.Count)
	t.lineFloat(name+".sum", h.Sum)
	for i, b := range h.Bounds {
		t.line(name+".le"+strconv.FormatFloat(b, 'g', -1, 64), h.Counts[i])
	}
	if n := len(h.Bounds); n > 0 && len(h.Counts) > n {
		t.line(name+".gt"+strconv.FormatFloat(h.Bounds[n-1], 'g', -1, 64), h.Counts[n])
	}
}
