// Package obs is the repository's observability layer: span hooks and
// metric instruments for watching fleets of estimations execute, built on
// the standard library alone.
//
// The paper's whole claim is a cost profile — <0.19 s of C1G2 air time, a
// fixed 1024+8192 slot budget, a bounded probe phase — and every layer of
// the simulator computes exactly those quantities already. This package
// stops throwing them away: the channel reports every broadcast bit and
// sensed slot, BFCE marks its probe/rough/accurate phases, the estimator
// registry accounts rounds and slots per protocol, and the fleet runner
// aggregates across jobs, all through one small Observer interface.
//
// Two implementations ship here. Nop is the zero-allocation default: the
// uninstrumented path costs a handful of empty interface calls per frame
// and allocates nothing, so estimation benchmarks stay at parity. Registry
// is the metrics sink: lock-cheap atomic counters and histograms with JSON
// and expvar-style text snapshot export (see registry.go).
//
// Observation is strictly passive. Observers never touch seed streams,
// clocks or channel state, so an estimation run is bit-identical with and
// without instrumentation — the determinism tests pin exactly that.
//
// Policy: all metric registration and export in this module flows through
// this package. Direct use of expvar or runtime/metrics elsewhere is
// forbidden by the metricreg analyzer (internal/analysis), so there is one
// snapshot of record rather than a scatter of process-global registries.
package obs

// Phase identifies a protocol phase of an estimation session. BFCE's three
// phases (§IV of the paper) are first-class; activity outside any named
// phase — every non-BFCE protocol, and BFCE's inter-phase bookkeeping — is
// attributed to PhaseRun.
type Phase uint8

const (
	// PhaseRun is protocol activity outside any named phase.
	PhaseRun Phase = iota
	// PhaseProbe is BFCE's persistence-probe phase (§IV-C).
	PhaseProbe
	// PhaseRough is BFCE's 1024-slot rough estimation phase (§IV-C).
	PhaseRough
	// PhaseAccurate is BFCE's full-frame accurate phase (§IV-D).
	PhaseAccurate

	// NumPhases bounds the Phase values; useful for per-phase arrays.
	NumPhases
)

// String names the phase as exported in snapshots.
func (p Phase) String() string {
	switch p {
	case PhaseRun:
		return "run"
	case PhaseProbe:
		return "probe"
	case PhaseRough:
		return "rough"
	case PhaseAccurate:
		return "accurate"
	default:
		return "invalid"
	}
}

// FrameStats describes one executed frame, as observed by the reader.
type FrameStats struct {
	// W is the announced frame size; Observed the slots actually sensed.
	W, Observed int
	// Busy is the number of busy slots among the observed ones.
	Busy int
}

// PhaseStats summarizes one completed phase span: the communication the
// phase consumed, differenced from the session clock around the span.
type PhaseStats struct {
	// Slots is the number of tag bit-slots sensed during the phase.
	Slots int
	// ReaderBits is the number of bits the reader broadcast during it.
	ReaderBits int
	// Seconds is the phase's air time under the session profile.
	Seconds float64
}

// SessionStats summarizes one completed estimation session.
type SessionStats struct {
	// Estimator is the protocol's registry name ("BFCE", "ZOE", ...).
	Estimator string
	// Estimate is the protocol's n̂ (0 when Err).
	Estimate float64
	// Rounds and Slots are the protocol's own round/slot accounting.
	Rounds, Slots int
	// ReaderBits is the reader broadcast total of the run.
	ReaderBits int
	// Seconds is the run's air time under the session profile.
	Seconds float64
	// TagTransmissions is the tag-side energy proxy, or -1 when the
	// session's engine does not meter energy.
	TagTransmissions int
	// Guarded reports whether the (ε, δ) guarantee machinery was in effect.
	Guarded bool
	// Err reports that the run failed; cost fields are zero in that case.
	Err bool
}

// FaultStats counts the fault events a channel injector applied during one
// estimation session (see internal/faults). All counters are cumulative
// over the reported window.
type FaultStats struct {
	// Frames is the number of engine calls the injector processed.
	Frames int
	// BurstFlips is the number of slots flipped by the burst-noise model.
	BurstFlips int
	// Erasures is the number of busy slots erased to idle.
	Erasures int
	// Truncations is the number of frames whose observation tail was lost.
	Truncations int
	// Stalls is the number of reader stalls injected; StallSlots is the
	// total extra slot-time they charged to the session clock.
	Stalls, StallSlots int
}

// Add accumulates other into s.
func (s *FaultStats) Add(other FaultStats) {
	s.Frames += other.Frames
	s.BurstFlips += other.BurstFlips
	s.Erasures += other.Erasures
	s.Truncations += other.Truncations
	s.Stalls += other.Stalls
	s.StallSlots += other.StallSlots
}

// Total returns the number of fault events (excluding Frames and the
// derived StallSlots), the scalar the faults-per-session histogram bins.
func (s FaultStats) Total() int {
	return s.BurstFlips + s.Erasures + s.Truncations + s.Stalls
}

// Observer receives span hooks from the estimation path. Implementations
// must be safe for concurrent use (many sessions report into one observer)
// and must be passive: estimates are bit-identical with any observer
// attached.
//
// Hook arguments are plain values — no per-call allocation is required of
// either side, which is what keeps the Nop default free.
type Observer interface {
	// SessionOpen fires when an estimation session starts running the named
	// protocol.
	SessionOpen(estimator string)
	// SessionClose fires when the session's protocol run completes.
	SessionClose(s SessionStats)
	// PhaseStart and PhaseEnd bracket a named protocol phase.
	PhaseStart(p Phase)
	PhaseEnd(p Phase, s PhaseStats)
	// Frame fires for every executed frame, attributed to the open phase.
	Frame(p Phase, f FrameStats)
	// Broadcast fires for every reader parameter/seed transmission.
	Broadcast(p Phase, bits int)
	// Listen fires for slots sensed outside a full frame execution
	// (first-busy scans, single-slot probes).
	Listen(p Phase, slots int)
	// ProbeRounds reports how many probe adjustments a BFCE run performed
	// before settling on a valid persistence probability.
	ProbeRounds(rounds int)
	// EstimateError reports the relative error |n̂−n|/n of a completed run
	// when the harness knows the ground truth n.
	EstimateError(relErr float64)
	// Faults reports the fault events a session's channel injector applied,
	// fired once when the session's run completes (zero-valued stats are
	// not reported).
	Faults(s FaultStats)
	// Retry fires when a run re-executes after a degenerate attempt;
	// attempt counts the re-executions of that run, starting at 1.
	Retry(estimator string, attempt int)
	// Degraded fires when a run (or a fleet job) exhausts its retry budget
	// and reports a degraded result instead of failing.
	Degraded(estimator string)
}

// nop is the zero-cost Observer: every method is an empty, allocation-free
// no-op the compiler can see through.
type nop struct{}

func (nop) SessionOpen(string)         {}
func (nop) SessionClose(SessionStats)  {}
func (nop) PhaseStart(Phase)           {}
func (nop) PhaseEnd(Phase, PhaseStats) {}
func (nop) Frame(Phase, FrameStats)    {}
func (nop) Broadcast(Phase, int)       {}
func (nop) Listen(Phase, int)          {}
func (nop) ProbeRounds(int)            {}
func (nop) EstimateError(float64)      {}
func (nop) Faults(FaultStats)          {}
func (nop) Retry(string, int)          {}
func (nop) Degraded(string)            {}

// Nop is the default observer: it does nothing and allocates nothing, so
// the uninstrumented estimation path stays at benchmark parity.
var Nop Observer = nop{}

// Multi tees hooks to several observers in order. Nil and Nop entries are
// dropped; with zero live entries it returns Nop, with one it returns that
// observer unwrapped. The fleet runner uses it to combine a batch-wide
// registry with per-job observers.
func Multi(observers ...Observer) Observer {
	live := make([]Observer, 0, len(observers))
	for _, o := range observers {
		if o != nil && o != Nop {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Observer

func (m multi) SessionOpen(name string) {
	for _, o := range m {
		o.SessionOpen(name)
	}
}

func (m multi) SessionClose(s SessionStats) {
	for _, o := range m {
		o.SessionClose(s)
	}
}

func (m multi) PhaseStart(p Phase) {
	for _, o := range m {
		o.PhaseStart(p)
	}
}

func (m multi) PhaseEnd(p Phase, s PhaseStats) {
	for _, o := range m {
		o.PhaseEnd(p, s)
	}
}

func (m multi) Frame(p Phase, f FrameStats) {
	for _, o := range m {
		o.Frame(p, f)
	}
}

func (m multi) Broadcast(p Phase, bits int) {
	for _, o := range m {
		o.Broadcast(p, bits)
	}
}

func (m multi) Listen(p Phase, slots int) {
	for _, o := range m {
		o.Listen(p, slots)
	}
}

func (m multi) ProbeRounds(rounds int) {
	for _, o := range m {
		o.ProbeRounds(rounds)
	}
}

func (m multi) EstimateError(relErr float64) {
	for _, o := range m {
		o.EstimateError(relErr)
	}
}

func (m multi) Faults(s FaultStats) {
	for _, o := range m {
		o.Faults(s)
	}
}

func (m multi) Retry(estimator string, attempt int) {
	for _, o := range m {
		o.Retry(estimator, attempt)
	}
}

func (m multi) Degraded(estimator string) {
	for _, o := range m {
		o.Degraded(estimator)
	}
}
