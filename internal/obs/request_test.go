package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRequestRegistrySnapshot: observations land in the right route cells
// and status classes, and routes render sorted.
func TestRequestRegistrySnapshot(t *testing.T) {
	r := NewRequestRegistry()
	r.Observe("/v1/estimate", 200, 0.002)
	r.Observe("/v1/estimate", 200, 0.004)
	r.Observe("/v1/estimate", 400, 0.0001)
	r.Observe("/v1/batch", 504, 1.5)
	r.Batched("/v1/estimate")
	r.InflightAdd(1)
	r.QueueAdd(2)
	r.Rejected()
	r.Panicked()

	s := r.Snapshot()
	if s.Inflight != 1 || s.Queued != 2 || s.Rejected != 1 || s.Panics != 1 {
		t.Errorf("gauges wrong: %+v", s)
	}
	if len(s.Routes) != 2 || s.Routes[0].Route != "/v1/batch" || s.Routes[1].Route != "/v1/estimate" {
		t.Fatalf("routes not sorted: %+v", s.Routes)
	}
	est := s.Routes[1]
	if est.Requests != 3 || est.Status2xx != 2 || est.Status4xx != 1 || est.Batched != 1 {
		t.Errorf("estimate route miscounted: %+v", est)
	}
	if got := s.Routes[0].Status5xx; got != 1 {
		t.Errorf("batch route status5xx = %d, want 1", got)
	}
	var total int64
	for _, c := range est.LatencySeconds.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("latency histogram holds %d samples, want 3", total)
	}
}

// TestRequestSnapshotWriteText: the text rendering speaks the same
// "name value" dialect as the estimation snapshot.
func TestRequestSnapshotWriteText(t *testing.T) {
	r := NewRequestRegistry()
	r.Observe("/healthz", 200, 0.0001)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"obs.http.inflight 0\n",
		"obs.http.route./healthz.requests 1\n",
		"obs.http.route./healthz.status2xx 1\n",
		"obs.http.route./healthz.latency_s.count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, out)
		}
	}
}

// TestRequestRegistryConcurrent hammers one registry from many goroutines
// under -race and checks nothing is lost.
func TestRequestRegistryConcurrent(t *testing.T) {
	r := NewRequestRegistry()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.InflightAdd(1)
				r.Observe("/v1/estimate", 200, 0.001)
				r.InflightAdd(-1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Inflight != 0 {
		t.Errorf("inflight = %d, want 0", s.Inflight)
	}
	if got := s.Routes[0].Requests; got != workers*per {
		t.Errorf("requests = %d, want %d", got, workers*per)
	}
}
