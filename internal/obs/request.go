package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// requestLatencyBounds bracket the serving layer's latency SLO: BFCE's
// in-process run is sub-millisecond on commodity hardware, the micro-batch
// window adds single-digit milliseconds, and anything past a second is an
// overload artifact worth its own bucket.
var requestLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// RequestRegistry is the serving-layer sibling of Registry: request-level
// counters and latency histograms, keyed by route. Like Registry it is
// lock-cheap — hot-path observations land in atomics, with a read-mostly
// map guard around the per-route table — and safe for any number of
// concurrent requests. The zero value is not ready; construct with
// NewRequestRegistry.
type RequestRegistry struct {
	inflight atomic.Int64 // requests admitted and not yet answered
	queued   atomic.Int64 // requests waiting in the admission queue
	rejected atomic.Int64 // requests refused by admission control (429)
	panics   atomic.Int64 // handler panics isolated by the middleware

	mu     sync.RWMutex
	routes map[string]*routeMetrics

	bmu      sync.RWMutex
	breakers map[string]*breakerCell
}

// breakerCell is the per-estimator circuit-breaker accounting: trips,
// requests shed while open/half-open, and the current state gauge
// (0 closed, 1 open, 2 half-open).
type breakerCell struct {
	trips atomic.Int64
	shed  atomic.Int64
	state atomic.Int64
}

type routeMetrics struct {
	requests atomic.Int64
	classes  [6]atomic.Int64 // status/100; [0] collects malformed codes
	batched  atomic.Int64
	latency  *Histogram
}

// NewRequestRegistry returns an empty request-metrics registry.
func NewRequestRegistry() *RequestRegistry {
	return &RequestRegistry{routes: make(map[string]*routeMetrics)}
}

// route returns the per-route cell, creating it on first use.
func (r *RequestRegistry) route(name string) *routeMetrics {
	r.mu.RLock()
	m := r.routes[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.routes[name]; m == nil {
		m = &routeMetrics{latency: NewHistogram(requestLatencyBounds...)}
		r.routes[name] = m
	}
	return m
}

// Observe records one answered request: its route, final status code and
// wall-clock latency in seconds.
func (r *RequestRegistry) Observe(route string, status int, seconds float64) {
	m := r.route(route)
	m.requests.Add(1)
	class := status / 100
	if class < 0 || class >= len(m.classes) {
		class = 0
	}
	m.classes[class].Add(1)
	m.latency.Observe(seconds)
}

// Batched records that a request on route was answered through a coalesced
// fleet batch rather than a solo run.
func (r *RequestRegistry) Batched(route string) { r.route(route).batched.Add(1) }

// InflightAdd moves the in-flight gauge; call with +1 at admission and -1
// when the response is written.
func (r *RequestRegistry) InflightAdd(delta int64) { r.inflight.Add(delta) }

// QueueAdd moves the admission-queue gauge; call with +1 when a request
// starts waiting for an execution slot and -1 when it stops (admitted or
// abandoned).
func (r *RequestRegistry) QueueAdd(delta int64) { r.queued.Add(delta) }

// Rejected counts one request refused by admission control.
func (r *RequestRegistry) Rejected() { r.rejected.Add(1) }

// breaker returns the per-estimator breaker cell, creating it on first use.
func (r *RequestRegistry) breaker(estimator string) *breakerCell {
	r.bmu.RLock()
	c := r.breakers[estimator]
	r.bmu.RUnlock()
	if c != nil {
		return c
	}
	r.bmu.Lock()
	defer r.bmu.Unlock()
	if r.breakers == nil {
		r.breakers = make(map[string]*breakerCell)
	}
	if c = r.breakers[estimator]; c == nil {
		c = &breakerCell{}
		r.breakers[estimator] = c
	}
	return c
}

// BreakerTrip counts one closed→open (or half-open→open) transition of
// the named estimator's circuit breaker.
func (r *RequestRegistry) BreakerTrip(estimator string) { r.breaker(estimator).trips.Add(1) }

// BreakerShed counts one request refused because the named estimator's
// breaker was open or half-open.
func (r *RequestRegistry) BreakerShed(estimator string) { r.breaker(estimator).shed.Add(1) }

// BreakerState records the named estimator's current breaker state gauge
// (0 closed, 1 open, 2 half-open).
func (r *RequestRegistry) BreakerState(estimator string, state int64) {
	r.breaker(estimator).state.Store(state)
}

// Panicked counts one handler panic isolated by the recovery middleware.
func (r *RequestRegistry) Panicked() { r.panics.Add(1) }

// RequestSnapshot is a point-in-time copy of a RequestRegistry. Routes are
// sorted by name so identical states render identically.
type RequestSnapshot struct {
	Inflight int64             `json:"inflight"`
	Queued   int64             `json:"queued"`
	Rejected int64             `json:"rejected"`
	Panics   int64             `json:"panics"`
	Routes   []RouteSnapshot   `json:"routes"`
	Breakers []BreakerSnapshot `json:"breakers,omitempty"`
}

// BreakerSnapshot is the per-estimator circuit-breaker accounting.
type BreakerSnapshot struct {
	Estimator string `json:"estimator"`
	Trips     int64  `json:"trips"`
	Shed      int64  `json:"shed"`
	State     int64  `json:"state"` // 0 closed, 1 open, 2 half-open
}

// RouteSnapshot is the per-route request accounting.
type RouteSnapshot struct {
	Route          string            `json:"route"`
	Requests       int64             `json:"requests"`
	Status2xx      int64             `json:"status2xx"`
	Status3xx      int64             `json:"status3xx,omitempty"`
	Status4xx      int64             `json:"status4xx,omitempty"`
	Status5xx      int64             `json:"status5xx,omitempty"`
	StatusOther    int64             `json:"statusOther,omitempty"`
	Batched        int64             `json:"batched,omitempty"`
	LatencySeconds HistogramSnapshot `json:"latency_s"`
}

// Snapshot copies the registry's current state. Like Registry.Snapshot,
// counters are read individually: a snapshot under load is consistent per
// counter, not across counters.
func (r *RequestRegistry) Snapshot() RequestSnapshot {
	s := RequestSnapshot{
		Inflight: r.inflight.Load(),
		Queued:   r.queued.Load(),
		Rejected: r.rejected.Load(),
		Panics:   r.panics.Load(),
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.routes))
	for name := range r.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := r.routes[name]
		s.Routes = append(s.Routes, RouteSnapshot{
			Route:          name,
			Requests:       m.requests.Load(),
			Status2xx:      m.classes[2].Load(),
			Status3xx:      m.classes[3].Load(),
			Status4xx:      m.classes[4].Load(),
			Status5xx:      m.classes[5].Load(),
			StatusOther:    m.classes[0].Load() + m.classes[1].Load(),
			Batched:        m.batched.Load(),
			LatencySeconds: m.latency.snapshot(),
		})
	}
	r.mu.RUnlock()
	r.bmu.RLock()
	bnames := make([]string, 0, len(r.breakers))
	for name := range r.breakers {
		bnames = append(bnames, name)
	}
	sort.Strings(bnames)
	for _, name := range bnames {
		c := r.breakers[name]
		s.Breakers = append(s.Breakers, BreakerSnapshot{
			Estimator: name,
			Trips:     c.trips.Load(),
			Shed:      c.shed.Load(),
			State:     c.state.Load(),
		})
	}
	r.bmu.RUnlock()
	return s
}

// WriteText renders the snapshot as expvar-style "name value" lines in the
// same dialect as Snapshot.WriteText, under the obs.http prefix.
func (s RequestSnapshot) WriteText(w io.Writer) error {
	tw := &textWriter{w: w}
	tw.line("obs.http.inflight", s.Inflight)
	tw.line("obs.http.queued", s.Queued)
	tw.line("obs.http.rejected", s.Rejected)
	tw.line("obs.http.panics", s.Panics)
	for _, rt := range s.Routes {
		prefix := "obs.http.route." + rt.Route
		tw.line(prefix+".requests", rt.Requests)
		tw.line(prefix+".status2xx", rt.Status2xx)
		tw.line(prefix+".status3xx", rt.Status3xx)
		tw.line(prefix+".status4xx", rt.Status4xx)
		tw.line(prefix+".status5xx", rt.Status5xx)
		tw.line(prefix+".status_other", rt.StatusOther)
		tw.line(prefix+".batched", rt.Batched)
		tw.histogram(prefix+".latency_s", rt.LatencySeconds)
	}
	for _, bk := range s.Breakers {
		prefix := "obs.http.breaker." + bk.Estimator
		tw.line(prefix+".trips", bk.Trips)
		tw.line(prefix+".shed", bk.Shed)
		tw.line(prefix+".state", bk.State)
	}
	return tw.err
}
