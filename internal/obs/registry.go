package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 accumulated with compare-and-swap — the
// lock-free sum cell of histograms and per-estimator air-time totals.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bound, lock-free histogram: observations land in
// the first bucket whose upper bound is >= the value, with one implicit
// overflow bucket past the last bound. Bounds are set at construction and
// never change, so Observe is a binary search plus two atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on empty or unsorted bounds — histogram shapes are code, not
// data, and a misordered literal is a programming error.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has one
// entry per bound plus a final overflow bucket (> Bounds[len-1]).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// phaseMetrics aggregates the per-phase series: span counts, slot/bit
// counters fed by the channel hooks, and an air-time histogram fed by
// phase spans.
type phaseMetrics struct {
	spans      atomic.Int64
	slots      atomic.Int64
	readerBits atomic.Int64
	frames     atomic.Int64
	busySlots  atomic.Int64
	seconds    *Histogram
}

// estimatorMetrics is the registry-level per-protocol accounting.
type estimatorMetrics struct {
	sessions   atomic.Int64
	errors     atomic.Int64
	rounds     atomic.Int64
	slots      atomic.Int64
	readerBits atomic.Int64
	airSeconds atomicFloat
	tagTx      atomic.Int64
	guarded    atomic.Int64
	retries    atomic.Int64
	degraded   atomic.Int64
}

// faultMetrics aggregates the injector counters across sessions.
type faultMetrics struct {
	sessions    atomic.Int64 // sessions that reported any faults
	frames      atomic.Int64
	burstFlips  atomic.Int64
	erasures    atomic.Int64
	truncations atomic.Int64
	stalls      atomic.Int64
	stallSlots  atomic.Int64
	perSession  *Histogram // fault events per reporting session
}

// Default bucket bounds. Air time brackets the paper's 0.19 s constant-time
// budget; probe rounds bracket the MaxProbeRounds safety bound; relative
// error brackets the evaluated (ε, δ) grid.
var (
	airTimeBounds    = []float64{0.01, 0.02, 0.05, 0.1, 0.19, 0.25, 0.5, 1, 2, 5}
	probeRoundBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	relErrBounds     = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}
	faultBounds      = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500}
)

// Registry is the metrics sink: an Observer that turns span hooks into
// counters and histograms. It is lock-cheap — every hot-path hook lands in
// atomic counters; the only lock is a read-mostly map guard around the
// per-estimator table, taken once per session close (and only its read
// half in steady state). Safe for any number of concurrent sessions.
//
// The zero value is not ready; construct with NewRegistry.
type Registry struct {
	sessions         atomic.Int64
	errors           atomic.Int64
	frames           atomic.Int64
	slots            atomic.Int64
	readerBits       atomic.Int64
	tagTransmissions atomic.Int64
	probeRoundsTotal atomic.Int64

	retries  atomic.Int64
	degraded atomic.Int64

	phases      [NumPhases]phaseMetrics
	faults      faultMetrics
	airTime     *Histogram
	probeRounds *Histogram
	estErr      *Histogram

	mu         sync.RWMutex
	estimators map[string]*estimatorMetrics
}

// NewRegistry returns an empty registry with the default bucket layout.
func NewRegistry() *Registry {
	r := &Registry{
		airTime:     NewHistogram(airTimeBounds...),
		probeRounds: NewHistogram(probeRoundBounds...),
		estErr:      NewHistogram(relErrBounds...),
		estimators:  make(map[string]*estimatorMetrics),
	}
	for p := range r.phases {
		r.phases[p].seconds = NewHistogram(airTimeBounds...)
	}
	r.faults.perSession = NewHistogram(faultBounds...)
	return r
}

// estimator returns the per-protocol cell for name, creating it on first
// use. Steady state is one RLock'd map read.
func (r *Registry) estimator(name string) *estimatorMetrics {
	r.mu.RLock()
	m := r.estimators[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.estimators[name]; m == nil {
		m = &estimatorMetrics{}
		r.estimators[name] = m
	}
	return m
}

func (r *Registry) phase(p Phase) *phaseMetrics {
	if p >= NumPhases {
		p = PhaseRun
	}
	return &r.phases[p]
}

// SessionOpen implements Observer.
func (r *Registry) SessionOpen(string) { r.sessions.Add(1) }

// SessionClose implements Observer.
func (r *Registry) SessionClose(s SessionStats) {
	if s.Err {
		r.errors.Add(1)
	} else {
		r.airTime.Observe(s.Seconds)
	}
	if s.TagTransmissions > 0 {
		r.tagTransmissions.Add(int64(s.TagTransmissions))
	}
	m := r.estimator(s.Estimator)
	m.sessions.Add(1)
	if s.Err {
		m.errors.Add(1)
		return
	}
	m.rounds.Add(int64(s.Rounds))
	m.slots.Add(int64(s.Slots))
	m.readerBits.Add(int64(s.ReaderBits))
	m.airSeconds.Add(s.Seconds)
	if s.TagTransmissions > 0 {
		m.tagTx.Add(int64(s.TagTransmissions))
	}
	if s.Guarded {
		m.guarded.Add(1)
	}
}

// PhaseStart implements Observer.
func (r *Registry) PhaseStart(Phase) {}

// PhaseEnd implements Observer.
func (r *Registry) PhaseEnd(p Phase, s PhaseStats) {
	m := r.phase(p)
	m.spans.Add(1)
	m.seconds.Observe(s.Seconds)
}

// Frame implements Observer.
func (r *Registry) Frame(p Phase, f FrameStats) {
	r.frames.Add(1)
	r.slots.Add(int64(f.Observed))
	m := r.phase(p)
	m.frames.Add(1)
	m.slots.Add(int64(f.Observed))
	m.busySlots.Add(int64(f.Busy))
}

// Broadcast implements Observer.
func (r *Registry) Broadcast(p Phase, bits int) {
	r.readerBits.Add(int64(bits))
	r.phase(p).readerBits.Add(int64(bits))
}

// Listen implements Observer.
func (r *Registry) Listen(p Phase, slots int) {
	r.slots.Add(int64(slots))
	r.phase(p).slots.Add(int64(slots))
}

// ProbeRounds implements Observer.
func (r *Registry) ProbeRounds(rounds int) {
	r.probeRoundsTotal.Add(int64(rounds))
	r.probeRounds.Observe(float64(rounds))
}

// EstimateError implements Observer.
func (r *Registry) EstimateError(relErr float64) { r.estErr.Observe(relErr) }

// Faults implements Observer.
func (r *Registry) Faults(s FaultStats) {
	f := &r.faults
	f.sessions.Add(1)
	f.frames.Add(int64(s.Frames))
	f.burstFlips.Add(int64(s.BurstFlips))
	f.erasures.Add(int64(s.Erasures))
	f.truncations.Add(int64(s.Truncations))
	f.stalls.Add(int64(s.Stalls))
	f.stallSlots.Add(int64(s.StallSlots))
	f.perSession.Observe(float64(s.Total()))
}

// Retry implements Observer.
func (r *Registry) Retry(estimator string, attempt int) {
	_ = attempt
	r.retries.Add(1)
	r.estimator(estimator).retries.Add(1)
}

// Degraded implements Observer.
func (r *Registry) Degraded(estimator string) {
	r.degraded.Add(1)
	r.estimator(estimator).degraded.Add(1)
}
