package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set1(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestCountAndFraction(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 2 {
		s.Set1(i)
	}
	if s.Count() != 50 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Fraction() != 0.5 {
		t.Fatalf("Fraction = %v", s.Fraction())
	}
	if New(0).Fraction() != 0 {
		t.Fatal("empty Fraction != 0")
	}
}

func TestBoundsPanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Get(-1) },
		func() { s.Get(10) },
		func() { s.Set1(10) },
		func() { s.Clear(-1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestAndOrCounts(t *testing.T) {
	a, b := New(128), New(128)
	for i := 0; i < 128; i += 2 {
		a.Set1(i)
	}
	for i := 0; i < 128; i += 3 {
		b.Set1(i)
	}
	// Multiples of 6 in [0,128): 22. Multiples of 2 or 3: 64+43-22=85.
	if got := a.AndCount(b); got != 22 {
		t.Fatalf("AndCount = %d", got)
	}
	if got := a.OrCount(b); got != 85 {
		t.Fatalf("OrCount = %d", got)
	}
	// In-place versions agree with the counting versions.
	and := a.Clone().And(b)
	or := a.Clone().Or(b)
	if and.Count() != 22 || or.Count() != 85 {
		t.Fatalf("in-place And/Or = %d/%d", and.Count(), or.Count())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set1(3)
	b := a.Clone()
	b.Set1(5)
	if a.Get(5) {
		t.Fatal("Clone shares storage")
	}
	if !b.Get(3) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(70), New(70)
	if !a.Equal(b) {
		t.Fatal("fresh sets not equal")
	}
	a.Set1(69)
	if a.Equal(b) {
		t.Fatal("differing sets equal")
	}
	if a.Equal(New(71)) {
		t.Fatal("different lengths equal")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		s := FromBools(raw)
		out := s.Bools()
		if len(out) != len(raw) {
			return false
		}
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}
		count := 0
		for _, v := range raw {
			if v {
				count++
			}
		}
		return count == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// |a OR b| + |a AND b| == |a| + |b| for any equal-length sets.
	f := func(x, y []bool) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		a, b := FromBools(x[:n]), FromBools(y[:n])
		return a.OrCount(b)+a.AndCount(b) == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
