package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set1(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestCountAndFraction(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 2 {
		s.Set1(i)
	}
	if s.Count() != 50 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Fraction() != 0.5 {
		t.Fatalf("Fraction = %v", s.Fraction())
	}
	if New(0).Fraction() != 0 {
		t.Fatal("empty Fraction != 0")
	}
}

func TestBoundsPanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Get(-1) },
		func() { s.Get(10) },
		func() { s.Set1(10) },
		func() { s.Clear(-1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestAndOrCounts(t *testing.T) {
	a, b := New(128), New(128)
	for i := 0; i < 128; i += 2 {
		a.Set1(i)
	}
	for i := 0; i < 128; i += 3 {
		b.Set1(i)
	}
	// Multiples of 6 in [0,128): 22. Multiples of 2 or 3: 64+43-22=85.
	if got := a.AndCount(b); got != 22 {
		t.Fatalf("AndCount = %d", got)
	}
	if got := a.OrCount(b); got != 85 {
		t.Fatalf("OrCount = %d", got)
	}
	// In-place versions agree with the counting versions.
	and := a.Clone().And(b)
	or := a.Clone().Or(b)
	if and.Count() != 22 || or.Count() != 85 {
		t.Fatalf("in-place And/Or = %d/%d", and.Count(), or.Count())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set1(3)
	b := a.Clone()
	b.Set1(5)
	if a.Get(5) {
		t.Fatal("Clone shares storage")
	}
	if !b.Get(3) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(70), New(70)
	if !a.Equal(b) {
		t.Fatal("fresh sets not equal")
	}
	a.Set1(69)
	if a.Equal(b) {
		t.Fatal("differing sets equal")
	}
	if a.Equal(New(71)) {
		t.Fatal("different lengths equal")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		s := FromBools(raw)
		out := s.Bools()
		if len(out) != len(raw) {
			return false
		}
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}
		count := 0
		for _, v := range raw {
			if v {
				count++
			}
		}
		return count == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// refFirstSet/refFirstClear/refRuns are the obvious per-bit references the
// word-at-a-time implementations are checked against.
func refFirstSet(raw []bool) int {
	for i, v := range raw {
		if v {
			return i
		}
	}
	return -1
}

func refFirstClear(raw []bool) int {
	for i, v := range raw {
		if !v {
			return i
		}
	}
	return -1
}

func refRuns(raw []bool) []int {
	var runs []int
	cur := 0
	for _, v := range raw {
		if v {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFirstSetFirstClearRunsProperty(t *testing.T) {
	f := func(raw []bool) bool {
		s := FromBools(raw)
		return s.FirstSet() == refFirstSet(raw) &&
			s.FirstClear() == refFirstClear(raw) &&
			equalInts(s.Runs(), refRuns(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSetClearEdges(t *testing.T) {
	if New(0).FirstSet() != -1 || New(0).FirstClear() != -1 {
		t.Fatal("empty set must report -1 for both scans")
	}
	// All set, including a full last word and a partial one.
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		for i := 0; i < n; i++ {
			s.Set1(i)
		}
		if s.FirstClear() != -1 {
			t.Fatalf("n=%d: all-set FirstClear = %d", n, s.FirstClear())
		}
		if s.FirstSet() != 0 {
			t.Fatalf("n=%d: all-set FirstSet = %d", n, s.FirstSet())
		}
		if got := s.Runs(); !equalInts(got, []int{n}) {
			t.Fatalf("n=%d: all-set Runs = %v", n, got)
		}
	}
	// A lone set bit at a word boundary.
	s := New(130)
	s.Set1(64)
	if s.FirstSet() != 64 {
		t.Fatalf("FirstSet = %d", s.FirstSet())
	}
	if !equalInts(s.Runs(), []int{1}) {
		t.Fatalf("Runs = %v", s.Runs())
	}
}

func TestRunsAcrossWordBoundary(t *testing.T) {
	s := New(200)
	for i := 60; i < 70; i++ { // run spanning words 0 and 1
		s.Set1(i)
	}
	for i := 127; i < 129; i++ { // run spanning words 1 and 2
		s.Set1(i)
	}
	s.Set1(199) // trailing run at the very end
	if got := s.Runs(); !equalInts(got, []int{10, 2, 1}) {
		t.Fatalf("Runs = %v", got)
	}
}

func TestNotMasksTail(t *testing.T) {
	s := New(70)
	s.Set1(3)
	s.Not()
	if s.Count() != 69 {
		t.Fatalf("Not Count = %d", s.Count())
	}
	if s.Get(3) || !s.Get(69) {
		t.Fatal("Not flipped bits wrong")
	}
	// Double complement is the identity.
	want := New(70)
	want.Set1(3)
	if !s.Not().Equal(want) {
		t.Fatal("double Not is not the identity")
	}
}

func TestXorAndXorWord(t *testing.T) {
	a, b := New(100), New(100)
	a.Set1(1)
	a.Set1(70)
	b.Set1(70)
	b.Set1(99)
	a.Xor(b)
	want := New(100)
	want.Set1(1)
	want.Set1(99)
	if !a.Equal(want) {
		t.Fatal("Xor wrong")
	}
	// XorWord ignores mask bits beyond Len.
	s := New(70)
	s.XorWord(1, ^uint64(0))
	if s.Count() != 6 {
		t.Fatalf("XorWord leaked past Len: Count = %d", s.Count())
	}
	for i := 64; i < 70; i++ {
		if !s.Get(i) {
			t.Fatalf("bit %d not flipped", i)
		}
	}
}

func TestTruncate(t *testing.T) {
	s := New(130)
	for i := 0; i < 130; i++ {
		s.Set1(i)
	}
	s.Truncate(65)
	if s.Len() != 65 || s.Count() != 65 {
		t.Fatalf("Truncate: len=%d count=%d", s.Len(), s.Count())
	}
	s.Truncate(64)
	if s.Count() != 64 || s.Words() != 1 {
		t.Fatalf("Truncate to word edge: count=%d words=%d", s.Count(), s.Words())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("growing Truncate did not panic")
		}
	}()
	s.Truncate(65)
}

func TestDeMorganProperty(t *testing.T) {
	// |a OR b| + |a AND b| == |a| + |b| for any equal-length sets.
	f := func(x, y []bool) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		a, b := FromBools(x[:n]), FromBools(y[:n])
		return a.OrCount(b)+a.AndCount(b) == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
