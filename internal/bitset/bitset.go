// Package bitset provides a fixed-length packed bit vector. It backs the
// Bloom-filter structures of this repository: a reader that archives one
// BFCE snapshot per monitoring round stores w bits per round, and the
// set-algebra operations (AND/OR/count) on packed words are what make
// differential estimation over long archives practical.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-length bit vector. The zero value is unusable; construct
// with New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set of n bits, all zero. It panics if n < 0.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of [0, %d)", i, s.n))
	}
}

// Set1 sets bit i.
func (s *Set) Set1(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports bit i.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]>>uint(i&63)&1 == 1
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Fraction returns Count/Len (0 for an empty set).
func (s *Set) Fraction() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count()) / float64(s.n)
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// sameLen panics unless the operands have equal length.
func (s *Set) sameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", s.n, o.n))
	}
}

// And sets s to s AND o, in place, and returns s.
func (s *Set) And(o *Set) *Set {
	s.sameLen(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Or sets s to s OR o, in place, and returns s.
func (s *Set) Or(o *Set) *Set {
	s.sameLen(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// AndCount returns the number of positions set in both s and o, without
// allocating.
func (s *Set) AndCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// OrCount returns the number of positions set in s or o, without
// allocating.
func (s *Set) OrCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | o.words[i])
	}
	return c
}

// Xor sets s to s XOR o, in place, and returns s.
func (s *Set) Xor(o *Set) *Set {
	s.sameLen(o)
	for i := range s.words {
		s.words[i] ^= o.words[i]
	}
	return s
}

// Not flips every bit of s in place and returns s. Bits beyond Len stay
// zero, so counts over the complement remain exact.
func (s *Set) Not() *Set {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.maskTail()
	return s
}

// maskTail clears the unused high bits of the last word, restoring the
// invariant that bits at positions >= n are zero.
func (s *Set) maskTail() {
	if tail := uint(s.n & 63); tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << tail) - 1
	}
}

// Words returns the number of 64-bit words backing the Set.
func (s *Set) Words() int { return len(s.words) }

// Word returns backing word i (bits 64i .. 64i+63).
func (s *Set) Word(i int) uint64 { return s.words[i] }

// XorWord XORs mask into backing word i. Mask bits at positions >= Len are
// ignored, preserving the tail invariant.
func (s *Set) XorWord(i int, mask uint64) {
	s.words[i] ^= mask
	if i == len(s.words)-1 {
		s.maskTail()
	}
}

// Truncate shortens the Set in place to its first n bits. It panics if n
// exceeds the current length.
func (s *Set) Truncate(n int) *Set {
	if n < 0 || n > s.n {
		panic(fmt.Sprintf("bitset: truncate to %d out of [0, %d]", n, s.n))
	}
	s.n = n
	s.words = s.words[:(n+63)/64]
	s.maskTail()
	return s
}

// FirstSet returns the index of the lowest set bit, or -1 if none: the
// word-at-a-time equivalent of scanning for the first 1.
func (s *Set) FirstSet() int {
	for i, w := range s.words {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// FirstClear returns the index of the lowest clear bit, or -1 if every bit
// is set.
func (s *Set) FirstClear() int {
	for i, w := range s.words {
		if w != ^uint64(0) {
			pos := i<<6 + bits.TrailingZeros64(^w)
			if pos >= s.n {
				return -1 // clear bit lies in the masked tail
			}
			return pos
		}
	}
	return -1
}

// Runs returns the lengths of the maximal runs of consecutive set bits, in
// position order. It scans word-at-a-time, peeling alternating zero and one
// groups with TrailingZeros64 instead of testing single bits; the tail
// invariant (bits at positions >= n are zero) lets it treat every word as a
// full 64 bits, since trailing zeros only ever terminate a run.
func (s *Set) Runs() []int {
	// Exact-size prepass: a run starts at each 1-bit whose predecessor
	// (carrying across word boundaries) is 0.
	count, carry := 0, uint64(0)
	for _, w := range s.words {
		count += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> 63
	}
	if count == 0 {
		return nil
	}
	runs := make([]int, 0, count)
	cur := 0
	for _, w := range s.words {
		ends := w>>63 == 1 // a run crossing into the next word must not flush
		for w != 0 {
			if z := bits.TrailingZeros64(w); z > 0 {
				if cur > 0 {
					runs = append(runs, cur)
					cur = 0
				}
				w >>= uint(z)
			}
			o := bits.TrailingZeros64(^w)
			cur += o
			w >>= uint(o) // o == 64 (all-ones word) shifts to 0 in Go
		}
		if !ends && cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// Equal reports whether s and o have identical length and bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// FromBools builds a Set from a bool slice.
func FromBools(b []bool) *Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set1(i)
		}
	}
	return s
}

// Bools renders the Set as a bool slice.
func (s *Set) Bools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		out[i] = s.Get(i)
	}
	return out
}
