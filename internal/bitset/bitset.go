// Package bitset provides a fixed-length packed bit vector. It backs the
// Bloom-filter structures of this repository: a reader that archives one
// BFCE snapshot per monitoring round stores w bits per round, and the
// set-algebra operations (AND/OR/count) on packed words are what make
// differential estimation over long archives practical.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-length bit vector. The zero value is unusable; construct
// with New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set of n bits, all zero. It panics if n < 0.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of [0, %d)", i, s.n))
	}
}

// Set1 sets bit i.
func (s *Set) Set1(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports bit i.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]>>uint(i&63)&1 == 1
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Fraction returns Count/Len (0 for an empty set).
func (s *Set) Fraction() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count()) / float64(s.n)
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// sameLen panics unless the operands have equal length.
func (s *Set) sameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d vs %d", s.n, o.n))
	}
}

// And sets s to s AND o, in place, and returns s.
func (s *Set) And(o *Set) *Set {
	s.sameLen(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Or sets s to s OR o, in place, and returns s.
func (s *Set) Or(o *Set) *Set {
	s.sameLen(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// AndCount returns the number of positions set in both s and o, without
// allocating.
func (s *Set) AndCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// OrCount returns the number of positions set in s or o, without
// allocating.
func (s *Set) OrCount(o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | o.words[i])
	}
	return c
}

// Equal reports whether s and o have identical length and bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// FromBools builds a Set from a bool slice.
func FromBools(b []bool) *Set {
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set1(i)
		}
	}
	return s
}

// Bools renders the Set as a bool slice.
func (s *Set) Bools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		out[i] = s.Get(i)
	}
	return out
}
