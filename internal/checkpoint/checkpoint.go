// Package checkpoint gives rfidserved a crash-safe memory: a small,
// durable state store built from the two classic primitives —
//
//   - full-state snapshots written atomically (temp file in the same
//     directory, fsync, rename over the live name, fsync the directory),
//     so a crash at any instant leaves either the old snapshot or the new
//     one, never a torn hybrid;
//   - a CRC-framed append log (WAL) between snapshots, so the per-update
//     cost is one small append+fsync instead of rewriting the world.
//
// Recovery reads the snapshot, then replays the log over it. A torn final
// record — the signature of a crash mid-append — is detected by its
// length/CRC frame and truncated away, never fatal: an append that did not
// complete was by definition never acknowledged, so dropping it is correct.
// Anything before the torn tail was fsynced in order and survives.
//
// What rfidserved persists through this package is deliberately small and
// deliberately warm: the server's salt-sequence high-water mark (so a
// restarted server never re-issues a salt it already acknowledged) and the
// warm-start state of every named Monitor (the Snapshot/Restore wire
// format from the root package) together with the immutable config needed
// to rebuild it. Estimation itself is stateless — pinned-salt requests
// replay bit-identically from the seed alone — so the checkpoint carries
// exactly the state that is NOT derivable from a request.
//
// The store is safe for concurrent use; every mutating call returns only
// after the record is durable (unless Config.NoSync relaxes that for
// tests and benchmarks).
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Version is the on-disk format version stamped into every snapshot.
const Version = 1

// Default compaction threshold: after this many WAL records the next
// mutation folds the log into a fresh snapshot.
const defaultCompactEvery = 256

const (
	snapName = "state.ckpt"
	walName  = "state.wal"
	tmpName  = "state.ckpt.tmp"
)

// Monitor is the durable record of one named monitor: the immutable
// configuration needed to rebuild it after a crash plus the warm-start
// state its last completed round left behind (the rfidest.MonitorState
// fields). System is opaque to this package — the serving layer stores
// its wire-format SystemSpec there so checkpoint does not import serve.
type Monitor struct {
	Epsilon    float64         `json:"epsilon"`
	Delta      float64         `json:"delta"`
	FastRounds int             `json:"fastRounds,omitempty"`
	System     json.RawMessage `json:"system,omitempty"`

	// Warm-start state (mirrors rfidest.MonitorState).
	Pn     int     `json:"pn"`
	N      float64 `json:"n"`
	Rounds int     `json:"rounds"`
}

// State is everything the store persists. The zero value is a valid empty
// state (fresh directory, nothing recovered).
type State struct {
	Version  int                `json:"version"`
	SaltSeq  uint64             `json:"saltSeq"`
	Monitors map[string]Monitor `json:"monitors,omitempty"`
}

// clone deep-copies s so callers can mutate their view freely.
func (s State) clone() State {
	out := State{Version: s.Version, SaltSeq: s.SaltSeq}
	if s.Monitors != nil {
		out.Monitors = make(map[string]Monitor, len(s.Monitors))
		for k, v := range s.Monitors {
			v.System = append(json.RawMessage(nil), v.System...)
			out.Monitors[k] = v
		}
	}
	return out
}

// record is one WAL entry: a tagged union, JSON-encoded inside the CRC
// frame. Kind selects which payload fields are meaningful.
type record struct {
	Kind    string   `json:"kind"` // "saltSeq" | "monitor" | "dropMonitor"
	SaltSeq uint64   `json:"saltSeq,omitempty"`
	Name    string   `json:"name,omitempty"`
	Monitor *Monitor `json:"monitor,omitempty"`
}

// apply folds the record into the state.
func (s *State) apply(r record) error {
	switch r.Kind {
	case "saltSeq":
		if r.SaltSeq > s.SaltSeq {
			s.SaltSeq = r.SaltSeq
		}
	case "monitor":
		if r.Monitor == nil {
			return errors.New("checkpoint: monitor record without a monitor payload")
		}
		if s.Monitors == nil {
			s.Monitors = make(map[string]Monitor)
		}
		s.Monitors[r.Name] = *r.Monitor
	case "dropMonitor":
		delete(s.Monitors, r.Name)
	default:
		return fmt.Errorf("checkpoint: unknown record kind %q", r.Kind)
	}
	return nil
}

// Config tunes a Store. The zero value is the durable default.
type Config struct {
	// CompactEvery folds the WAL into a fresh snapshot after this many
	// records (default 256; negative disables auto-compaction).
	CompactEvery int
	// NoSync skips the fsync after each append and snapshot. Only for
	// tests and benchmarks — a NoSync store trades crash-safety for speed.
	NoSync bool
}

// Store is the durable state store rooted in one directory. Construct
// with Open; all methods are safe for concurrent use.
type Store struct {
	dir string
	cfg Config

	mu      sync.Mutex
	state   State    // snapshot ⊕ replayed log, kept current on every append
	wal     *os.File // open append handle
	pending int      // records appended since the last snapshot
}

// Open recovers (or initializes) the store under dir, creating the
// directory if needed. It returns the recovered state via State(); a torn
// final WAL record is truncated and reported through the returned store's
// recovered state, not as an error.
func Open(dir string, cfg Config) (*Store, error) {
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = defaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st := State{Version: Version}
	snapBytes, err := os.ReadFile(filepath.Join(dir, snapName))
	switch {
	case err == nil:
		if err := json.Unmarshal(snapBytes, &st); err != nil {
			return nil, fmt.Errorf("checkpoint: corrupt snapshot %s: %w", snapName, err)
		}
		if st.Version != Version {
			return nil, fmt.Errorf("checkpoint: snapshot version %d, this build reads %d", st.Version, Version)
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory (or snapshot never written): start empty.
	default:
		return nil, fmt.Errorf("checkpoint: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	if err := replayWAL(walPath, &st); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, cfg: cfg, state: st, wal: wal}
	return s, nil
}

// replayWAL folds the log at path into st. A torn or corrupt tail —
// short frame, short payload, CRC mismatch, or undecodable JSON — marks
// the durable prefix's end: the file is truncated there and replay stops.
// Records before the cut were written and fsynced in order, so they are
// intact by construction.
func replayWAL(path string, st *State) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()

	var offset int64
	var header [8]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean end of log
			}
			// io.ErrUnexpectedEOF: torn frame header.
			return truncateAt(f, offset)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecordBytes {
			// A wild length means the header itself is garbage (torn write
			// over a recycled block): cut here.
			return truncateAt(f, offset)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return truncateAt(f, offset) // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return truncateAt(f, offset) // bit rot or torn tail
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return truncateAt(f, offset)
		}
		if err := st.apply(rec); err != nil {
			return err
		}
		offset += int64(len(header) + len(payload))
	}
}

// maxRecordBytes bounds a single WAL record; real records are well under
// a kilobyte, so anything past this is a corrupt frame, not data.
const maxRecordBytes = 1 << 20

// truncateAt cuts the log to the last known-good offset.
func truncateAt(f *os.File, offset int64) error {
	if err := f.Truncate(offset); err != nil {
		return fmt.Errorf("checkpoint: truncating torn log tail: %w", err)
	}
	return f.Sync()
}

// State returns a copy of the current state (recovered at Open, kept
// current by every append).
func (s *Store) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// SetSaltSeq durably records that salt sequence numbers up to and
// including seq are spent. The stored value is monotone: a lower seq than
// the current high-water mark is a no-op (not an error), so callers can
// reserve in racing blocks.
func (s *Store) SetSaltSeq(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.state.SaltSeq {
		return nil
	}
	return s.appendLocked(record{Kind: "saltSeq", SaltSeq: seq})
}

// PutMonitor durably records the named monitor's config and warm state,
// replacing any previous record under the name.
func (s *Store) PutMonitor(name string, m Monitor) error {
	if name == "" {
		return errors.New("checkpoint: empty monitor name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(record{Kind: "monitor", Name: name, Monitor: &m})
}

// DropMonitor durably removes the named monitor. Unknown names are a
// no-op so callers need not read before deleting.
func (s *Store) DropMonitor(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.state.Monitors[name]; !ok {
		return nil
	}
	return s.appendLocked(record{Kind: "dropMonitor", Name: name})
}

// appendLocked frames, writes and (unless NoSync) fsyncs one record, then
// folds it into the in-memory state and compacts if the log has grown past
// the threshold. Callers hold s.mu.
func (s *Store) appendLocked(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if !s.cfg.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := s.state.apply(rec); err != nil {
		return err
	}
	s.pending++
	if s.cfg.CompactEvery > 0 && s.pending >= s.cfg.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// Compact folds the WAL into a fresh snapshot now, regardless of the
// auto-compaction threshold.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked writes the atomic snapshot and resets the log: marshal the
// full state to a temp file in the same directory, fsync it, rename it
// over the live snapshot name, fsync the directory (making the rename
// durable), then truncate the WAL. A crash between any two steps leaves a
// recoverable pair: rename is atomic, and a stale WAL replayed over the
// new snapshot is harmless because records are idempotent overwrites and
// SaltSeq is monotone.
func (s *Store) compactLocked() error {
	tmp := filepath.Join(s.dir, tmpName)
	data, err := json.Marshal(s.state)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if !s.cfg.NoSync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if !s.cfg.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	s.pending = 0
	return nil
}

// syncDir makes a rename in dir durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Close compacts (so the next Open replays nothing) and releases the log
// handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	compactErr := error(nil)
	if s.pending > 0 {
		compactErr = s.compactLocked()
	}
	closeErr := s.wal.Close()
	s.wal = nil
	if compactErr != nil {
		return compactErr
	}
	return closeErr
}
