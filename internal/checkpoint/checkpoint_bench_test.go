package checkpoint

import (
	"fmt"
	"testing"
)

func benchMonitor(i int) Monitor {
	return Monitor{
		Epsilon: 0.1, Delta: 0.1, FastRounds: 4,
		Pn: 100 + i, N: float64(10000 + i), Rounds: i,
	}
}

// BenchmarkCheckpointAppend measures one durable monitor record: frame +
// write + fsync. This is the per-acked-round cost the serving layer pays
// for crash-safety, so it is the number to watch.
func BenchmarkCheckpointAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Config{CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutMonitor("bench", benchMonitor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointAppendNoSync is the same append without the fsync,
// isolating the durability barrier from the framing and write cost.
func BenchmarkCheckpointAppendNoSync(b *testing.B) {
	s, err := Open(b.TempDir(), Config{CompactEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutMonitor("bench", benchMonitor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRecover measures a cold Open over a store holding
// 64 monitors plus a 256-record WAL tail — the boot-time price of crash
// recovery.
func BenchmarkCheckpointRecover(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Config{CompactEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := s.PutMonitor(fmt.Sprintf("mon-%d", i), benchMonitor(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := s.PutMonitor(fmt.Sprintf("mon-%d", i%64), benchMonitor(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Config{CompactEvery: -1, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(s.State().Monitors) != 64 {
			b.Fatalf("recovered %d monitors, want 64", len(s.State().Monitors))
		}
		s.Close()
	}
}
