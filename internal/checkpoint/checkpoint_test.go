package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip: salt sequence and monitor records survive a close/reopen
// through the snapshot path.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{})
	if err := s.SetSaltSeq(1024); err != nil {
		t.Fatal(err)
	}
	mon := Monitor{Epsilon: 0.1, Delta: 0.1, FastRounds: 3,
		System: json.RawMessage(`{"n":5000,"seed":3}`), Pn: 17, N: 4980.5, Rounds: 9}
	if err := s.PutMonitor("dock-a", mon); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Config{})
	defer s2.Close()
	st := s2.State()
	if st.SaltSeq != 1024 {
		t.Errorf("SaltSeq = %d, want 1024", st.SaltSeq)
	}
	got, ok := st.Monitors["dock-a"]
	if !ok {
		t.Fatal("monitor dock-a not recovered")
	}
	if got.Pn != mon.Pn || got.N != mon.N || got.Rounds != mon.Rounds ||
		got.Epsilon != mon.Epsilon || got.Delta != mon.Delta || got.FastRounds != mon.FastRounds {
		t.Errorf("monitor drifted over recovery:\n got  %+v\n want %+v", got, mon)
	}
	if string(got.System) != string(mon.System) {
		t.Errorf("system payload drifted: got %s want %s", got.System, mon.System)
	}
}

// TestWALReplayWithoutSnapshot: records appended but never compacted are
// recovered purely from the log.
func TestWALReplayWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{CompactEvery: -1})
	for seq := uint64(100); seq <= 300; seq += 100 {
		if err := s.SetSaltSeq(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutMonitor("m", Monitor{Epsilon: 0.2, Delta: 0.2, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMonitor("m", Monitor{Epsilon: 0.2, Delta: 0.2, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.DropMonitor("gone"); err != nil { // unknown drop is a no-op
		t.Fatal(err)
	}
	// Simulate a crash: no Close, no snapshot — just abandon the handle.
	if _, err := os.Stat(filepath.Join(dir, snapName)); !os.IsNotExist(err) {
		t.Fatal("snapshot written despite disabled compaction")
	}

	s2 := open(t, dir, Config{})
	defer s2.Close()
	st := s2.State()
	if st.SaltSeq != 300 {
		t.Errorf("SaltSeq = %d, want 300", st.SaltSeq)
	}
	if got := st.Monitors["m"].Rounds; got != 2 {
		t.Errorf("monitor rounds = %d, want 2 (last record wins)", got)
	}
}

// TestTornFinalRecord: a crash mid-append leaves a torn tail; recovery
// truncates it and keeps everything before it.
func TestTornFinalRecord(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"header cut":  func(b []byte) []byte { return b[:len(b)-1] },
		"payload cut": func(b []byte) []byte { return b[:len(b)/2] },
		"crc flip": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Config{CompactEvery: -1})
			if err := s.SetSaltSeq(512); err != nil {
				t.Fatal(err)
			}
			if err := s.PutMonitor("ok", Monitor{Epsilon: 0.1, Delta: 0.1, Rounds: 4}); err != nil {
				t.Fatal(err)
			}
			// Hand-append a record, then tear it.
			rec, err := json.Marshal(record{Kind: "saltSeq", SaltSeq: 4096})
			if err != nil {
				t.Fatal(err)
			}
			frame := make([]byte, 8+len(rec))
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
			binary.LittleEndian.PutUint32(frame[4:8], 0) // placeholder; crc flip case overwrites below
			copy(frame[8:], rec)
			// Recompute a valid CRC so only the chosen tear breaks it.
			valid := make([]byte, len(frame))
			copy(valid, frame)
			binary.LittleEndian.PutUint32(valid[4:8], crc32ChecksumIEEE(rec))
			torn := tear(valid)

			walPath := filepath.Join(dir, walName)
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()
			before, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}

			s2 := open(t, dir, Config{})
			defer s2.Close()
			st := s2.State()
			if st.SaltSeq != 512 {
				t.Errorf("SaltSeq = %d, want 512 (torn record must not apply)", st.SaltSeq)
			}
			if got := st.Monitors["ok"].Rounds; got != 4 {
				t.Errorf("monitor rounds = %d, want 4 (records before the tear survive)", got)
			}
			after, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if after.Size() >= before.Size() {
				t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
			}
		})
	}
}

// TestCompactionThreshold: crossing CompactEvery folds the log into a
// snapshot and resets the WAL to zero length.
func TestCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{CompactEvery: 4})
	for i := uint64(1); i <= 4; i++ {
		if err := s.SetSaltSeq(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	wal, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if wal.Size() != 0 {
		t.Errorf("WAL not reset after compaction: %d bytes", wal.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Errorf("snapshot missing after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Config{})
	defer s2.Close()
	if got := s2.State().SaltSeq; got != 40 {
		t.Errorf("SaltSeq after compaction recovery = %d, want 40", got)
	}
}

// TestSaltSeqMonotone: a lower reservation never regresses the high-water
// mark, in memory or across recovery.
func TestSaltSeqMonotone(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{CompactEvery: -1})
	if err := s.SetSaltSeq(100); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSaltSeq(50); err != nil {
		t.Fatal(err)
	}
	if got := s.State().SaltSeq; got != 100 {
		t.Errorf("SaltSeq regressed in memory: %d", got)
	}
	s.Close()
	s2 := open(t, dir, Config{})
	defer s2.Close()
	if got := s2.State().SaltSeq; got != 100 {
		t.Errorf("SaltSeq regressed over recovery: %d", got)
	}
}

// TestConcurrentAppends: racing writers never corrupt the log (run under
// -race) and every acknowledged record is recovered.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{NoSync: true, CompactEvery: 64})
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("mon-%d", w)
				if err := s.PutMonitor(name, Monitor{Epsilon: 0.1, Delta: 0.1, Rounds: i + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Config{})
	defer s2.Close()
	st := s2.State()
	if len(st.Monitors) != writers {
		t.Fatalf("recovered %d monitors, want %d", len(st.Monitors), writers)
	}
	for name, m := range st.Monitors {
		if m.Rounds != perWriter {
			t.Errorf("%s rounds = %d, want %d", name, m.Rounds, perWriter)
		}
	}
}

// TestEmptyDirectory: opening a fresh directory yields the empty state.
func TestEmptyDirectory(t *testing.T) {
	s := open(t, t.TempDir(), Config{})
	defer s.Close()
	st := s.State()
	if st.SaltSeq != 0 || len(st.Monitors) != 0 {
		t.Errorf("fresh store not empty: %+v", st)
	}
	if st.Version != Version {
		t.Errorf("fresh state version = %d, want %d", st.Version, Version)
	}
}

// TestCorruptSnapshotIsFatal: unlike a torn WAL tail, a corrupt snapshot
// means acknowledged state is gone — that must be an error, not a silent
// cold start.
func TestCorruptSnapshotIsFatal(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Config{})
	if err := s.SetSaltSeq(7); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Config{}); err == nil {
		t.Fatal("corrupt snapshot accepted silently")
	}
}

// TestStateIsolation: the State() copy is detached from store internals.
func TestStateIsolation(t *testing.T) {
	s := open(t, t.TempDir(), Config{})
	defer s.Close()
	if err := s.PutMonitor("m", Monitor{Epsilon: 0.1, Delta: 0.1, System: json.RawMessage(`{"n":1}`)}); err != nil {
		t.Fatal(err)
	}
	st := s.State()
	st.Monitors["m"] = Monitor{Rounds: 999}
	st.Monitors["new"] = Monitor{}
	fresh := s.State()
	if fresh.Monitors["m"].Rounds == 999 || len(fresh.Monitors) != 1 {
		t.Error("State() copy aliases store internals")
	}
}

// crc32ChecksumIEEE mirrors the store's framing checksum for hand-built
// test records.
func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
