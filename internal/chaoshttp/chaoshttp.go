// Package chaoshttp injects deterministic transport faults into the
// serving stack: connection resets, response stalls, truncated bodies and
// 5xx bursts, on either side of the wire.
//
// Every fault decision is a pure function of (seed, request sequence
// number, plan) — no wall clock, no global randomness — so a chaos run is
// an experiment, not a dice roll: the same seed replays the same fault
// schedule, a failing soak reproduces locally, and tests can assert the
// exact sequence of injected faults. Faults arrive in bursts of
// Plan.BurstLen consecutive requests sharing one draw, which is how real
// outages look (a flaky middlebox breaks runs of requests, not every
// twentieth in isolation).
//
// Two injection points wrap the same schedule:
//
//   - Middleware wraps an http.Handler (the server side): resets hijack
//     and slam the connection, truncation sends a short body under a full
//     Content-Length, stalls delay the response, 5xx answers without
//     reaching the handler.
//   - Transport wraps an http.RoundTripper (the client side): faults are
//     synthesized before or after the real round trip, so a client can be
//     chaos-tested against a healthy server.
//
// The request sequence is the wrapper's own arrival counter. Under
// concurrency the assignment of sequence numbers to requests races (as in
// any real system); the schedule itself — which sequence numbers fault and
// how — is still exactly reproducible, and single-flight drivers (the
// smoke scripts, the tests) get full determinism end to end.
package chaoshttp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"rfidest/internal/xrand"
)

// Kind is the fault injected for one request.
type Kind int

const (
	// None passes the request through untouched.
	None Kind = iota
	// Reset kills the connection without a response (server) or fails the
	// round trip with a synthetic connection-reset error (client).
	Reset
	// Stall delays the response by Plan.StallDelay, then proceeds normally.
	Stall
	// Truncate delivers only Plan.TruncateFrac of the response body under
	// the full Content-Length, then cuts the connection.
	Truncate
	// Err5xx answers 503 (with a Retry-After) without doing the work.
	Err5xx
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Err5xx:
		return "err5xx"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan is a fault schedule: per-fault probabilities plus shape knobs.
// Probabilities are evaluated in order (reset, stall, truncate, 5xx) from
// one per-burst stream, so they compose without overlapping draws. The
// zero value injects nothing.
type Plan struct {
	// Reset is P(connection reset).
	Reset float64
	// Stall is P(response stalled by StallDelay) (delay default 500ms).
	Stall      float64
	StallDelay time.Duration
	// Truncate is P(body cut after TruncateFrac of its bytes) (frac
	// default 0.5).
	Truncate     float64
	TruncateFrac float64
	// Err5xx is P(synthetic 503).
	Err5xx float64
	// BurstLen groups this many consecutive requests into one draw (1).
	BurstLen int
}

func (p Plan) withDefaults() Plan {
	if p.StallDelay <= 0 {
		p.StallDelay = 500 * time.Millisecond
	}
	if p.TruncateFrac <= 0 || p.TruncateFrac >= 1 {
		p.TruncateFrac = 0.5
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 1
	}
	return p
}

// Severity builds a balanced plan from one knob in [0, 1]: 0 is a healthy
// wire, 1 faults roughly every request. The smoke scripts' -chaos flag is
// this knob.
func Severity(level float64) Plan {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return Plan{
		Reset:      0.25 * level,
		Stall:      0.15 * level,
		StallDelay: 200 * time.Millisecond,
		Truncate:   0.25 * level,
		Err5xx:     0.35 * level,
		BurstLen:   3,
	}
}

// Draw is the fault decision for request seq under (seed, plan) — the
// pure function everything else wraps. Exported so tests and scripts can
// predict or replay a schedule without mounting any HTTP machinery.
func (p Plan) Draw(seed, seq uint64) Kind {
	p = p.withDefaults()
	rng := xrand.NewStream(seed, 0xc4a05, seq/uint64(p.BurstLen))
	switch {
	case rng.Bernoulli(p.Reset):
		return Reset
	case rng.Bernoulli(p.Stall):
		return Stall
	case rng.Bernoulli(p.Truncate):
		return Truncate
	case rng.Bernoulli(p.Err5xx):
		return Err5xx
	default:
		return None
	}
}

// injector is the shared arrival counter + schedule.
type injector struct {
	seed uint64
	plan Plan
	seq  atomic.Uint64
}

func (in *injector) next() Kind {
	return in.plan.Draw(in.seed, in.seq.Add(1)-1)
}

// Middleware wraps next with server-side fault injection under (seed,
// plan). Health and metrics probes (paths not under /v1/) pass through
// untouched — chaos is for the work, not for the instruments observing it.
func Middleware(seed uint64, plan Plan, next http.Handler) http.Handler {
	in := &injector{seed: seed, plan: plan.withDefaults()}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.URL.Path) < 4 || r.URL.Path[:4] != "/v1/" {
			next.ServeHTTP(w, r)
			return
		}
		switch in.next() {
		case Reset:
			slamConnection(w)
		case Stall:
			if !stall(r, in.plan.StallDelay) {
				return // client went away mid-stall
			}
			next.ServeHTTP(w, r)
		case Truncate:
			truncateResponse(w, r, next, in.plan.TruncateFrac)
		case Err5xx:
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"chaos: injected 503"}`) //lint:allow errdrop injected-fault path; a dead client is itself chaos
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// slamConnection hijacks and closes the TCP connection with no response —
// the client sees a reset or an unexpected EOF.
func slamConnection(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No raw connection to kill (e.g. HTTP/2): degrade to an empty 500.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn.Close()
}

// stall waits d, bounded by the request context; false means the client
// disconnected first.
func stall(r *http.Request, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

// truncateResponse runs the real handler against a buffer, then replays
// the response over the hijacked connection with the full Content-Length
// but only frac of the body, and cuts the line.
func truncateResponse(w http.ResponseWriter, r *http.Request, next http.Handler, frac float64) {
	rec := &bufferingWriter{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(rec, r)

	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, bw, err := hj.Hijack()
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	defer conn.Close()
	body := rec.buf.Bytes()
	cut := int(float64(len(body)) * frac)
	fmt.Fprintf(bw, "HTTP/1.1 %d %s\r\n", rec.status, http.StatusText(rec.status))
	rec.header.Set("Content-Length", strconv.Itoa(len(body)))
	rec.header.Del("Transfer-Encoding")
	rec.header.Write(bw) //lint:allow errdrop the connection is being cut deliberately; a short header write is the same fault
	io.WriteString(bw, "\r\n")
	bw.Write(body[:cut])
	bw.Flush()
}

// bufferingWriter captures a handler's full response for replay.
type bufferingWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferingWriter) Header() http.Header { return b.header }
func (b *bufferingWriter) WriteHeader(s int)   { b.status = s }
func (b *bufferingWriter) Write(p []byte) (int, error) {
	return b.buf.Write(p)
}

// ErrInjectedReset is the error a client-side Reset fault fails with.
var ErrInjectedReset = errors.New("chaoshttp: injected connection reset")

// Transport wraps rt with client-side fault injection under (seed, plan).
// A nil rt wraps http.DefaultTransport.
func Transport(seed uint64, plan Plan, rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &chaosTransport{injector{seed: seed, plan: plan.withDefaults()}, rt}
}

type chaosTransport struct {
	in injector
	rt http.RoundTripper
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.in.next() {
	case Reset:
		return nil, ErrInjectedReset
	case Stall:
		st := time.NewTimer(t.in.plan.StallDelay)
		defer st.Stop()
		select {
		case <-st.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.rt.RoundTrip(req)
	case Truncate:
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateBody(resp, t.in.plan.TruncateFrac)
	case Err5xx:
		return synthetic503(req), nil
	default:
		return t.rt.RoundTrip(req)
	}
}

// truncateBody swaps resp's body for one that yields frac of the bytes
// and then fails with ErrUnexpectedEOF, as a cut connection would.
func truncateBody(resp *http.Response, frac float64) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := int(float64(len(body)) * frac)
	resp.Body = io.NopCloser(&truncatedReader{data: body[:cut]})
	return resp, nil
}

type truncatedReader struct {
	data []byte
	off  int
}

func (r *truncatedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// synthetic503 is the client-side Err5xx fault: a shed reply that never
// touched the wire.
func synthetic503(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected 503"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Retry-After": {"1"}, "Content-Type": {"application/json"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
