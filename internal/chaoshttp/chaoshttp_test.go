package chaoshttp

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrawDeterministic: the fault schedule is a pure function of
// (seed, seq, plan) — two walks agree draw for draw.
func TestDrawDeterministic(t *testing.T) {
	plan := Severity(0.8)
	for seq := uint64(0); seq < 512; seq++ {
		if a, b := plan.Draw(7, seq), plan.Draw(7, seq); a != b {
			t.Fatalf("seq %d: %v != %v on identical draws", seq, a, b)
		}
	}
	// A different seed produces a different schedule somewhere.
	same := true
	for seq := uint64(0); seq < 512; seq++ {
		if plan.Draw(7, seq) != plan.Draw(8, seq) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 drew identical 512-request schedules")
	}
}

// TestDrawCoversAllFaults: a hot plan eventually injects every kind.
func TestDrawCoversAllFaults(t *testing.T) {
	plan := Severity(1)
	seen := map[Kind]bool{}
	for seq := uint64(0); seq < 4096; seq++ {
		seen[plan.Draw(3, seq)] = true
	}
	for _, k := range []Kind{None, Reset, Stall, Truncate, Err5xx} {
		if !seen[k] {
			t.Errorf("kind %v never drawn in 4096 requests at severity 1", k)
		}
	}
}

// TestDrawBursts: BurstLen groups consecutive sequence numbers into one
// draw — fault windows, not isolated coin flips.
func TestDrawBursts(t *testing.T) {
	plan := Plan{Reset: 0.5, BurstLen: 4}
	for seq := uint64(0); seq < 256; seq += 4 {
		first := plan.Draw(1, seq)
		for i := uint64(1); i < 4; i++ {
			if got := plan.Draw(1, seq+i); got != first {
				t.Fatalf("seq %d draws %v, burst mate %d drew %v", seq+i, got, seq, first)
			}
		}
	}
}

// TestSeverityZeroIsClean: the zero knob never faults.
func TestSeverityZeroIsClean(t *testing.T) {
	plan := Severity(0)
	for seq := uint64(0); seq < 1024; seq++ {
		if k := plan.Draw(1, seq); k != None {
			t.Fatalf("seq %d: severity 0 injected %v", seq, k)
		}
	}
}

// okHandler answers a fixed JSON body on every request.
func okHandler(hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"estimate":{"n":1234.5}}`)
	})
}

// TestMiddlewareReset: a reset fault kills the connection — the client
// sees a transport error, not a response.
func TestMiddlewareReset(t *testing.T) {
	ts := httptest.NewServer(Middleware(1, Plan{Reset: 1}, okHandler(nil)))
	defer ts.Close()
	_, err := http.Get(ts.URL + "/v1/estimate")
	if err == nil {
		t.Fatal("reset-faulted request returned a response")
	}
}

// TestMiddlewareErr5xx: a 5xx fault answers 503 with a Retry-After and
// never reaches the handler.
func TestMiddlewareErr5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(Middleware(1, Plan{Err5xx: 1}, okHandler(&hits)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 missing Retry-After")
	}
	if hits.Load() != 0 {
		t.Error("injected 503 still reached the handler")
	}
}

// TestMiddlewareTruncate: a truncated response advertises its full length
// but delivers less — the client's body read fails.
func TestMiddlewareTruncate(t *testing.T) {
	ts := httptest.NewServer(Middleware(1, Plan{Truncate: 1}, okHandler(nil)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read completed cleanly")
	}
}

// TestMiddlewareStall: a stalled response arrives late but intact.
func TestMiddlewareStall(t *testing.T) {
	ts := httptest.NewServer(Middleware(1,
		Plan{Stall: 1, StallDelay: 50 * time.Millisecond}, okHandler(nil)))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("stalled request answered in %v, want >= 50ms", elapsed)
	}
	if !strings.Contains(string(body), "1234.5") {
		t.Errorf("stalled body corrupted: %s", body)
	}
}

// TestMiddlewareSparesProbes: /healthz and /v1/metrics-free paths pass
// through untouched even under total chaos.
func TestMiddlewareSparesProbes(t *testing.T) {
	ts := httptest.NewServer(Middleware(1, Plan{Reset: 1}, okHandler(nil)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz under chaos: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}
}

// TestTransportFaults: the client-side injector synthesizes the same
// fault family without a cooperating server.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(okHandler(&hits))
	defer ts.Close()

	get := func(plan Plan) (*http.Response, error) {
		c := &http.Client{Transport: Transport(1, plan, nil)}
		return c.Get(ts.URL + "/v1/estimate")
	}

	if _, err := get(Plan{Reset: 1}); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("reset fault: err = %v, want ErrInjectedReset", err)
	}

	before := hits.Load()
	resp, err := get(Plan{Err5xx: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hits.Load() != before {
		t.Errorf("5xx fault: status %d (server hits moved %v), want synthetic 503",
			resp.StatusCode, hits.Load() != before)
	}

	resp, err = get(Plan{Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncate fault: read err = %v, want ErrUnexpectedEOF", err)
	}

	resp, err = get(Plan{}) // clean plan: the real response comes through
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "1234.5") {
		t.Errorf("clean transport corrupted the response: %s (%v)", body, err)
	}
}
