package tags

import (
	"math"
	"testing"

	"rfidest/internal/stats"
)

func TestGenerateSizesAndUniqueness(t *testing.T) {
	for _, dist := range Distributions {
		pop := Generate(5000, dist, 42)
		if pop.N() != 5000 {
			t.Fatalf("%v: N = %d", dist, pop.N())
		}
		seen := make(map[uint64]struct{}, pop.N())
		for _, tag := range pop.Tags {
			if tag.ID < 1 || tag.ID > IDSpace {
				t.Fatalf("%v: ID %d out of space", dist, tag.ID)
			}
			if _, dup := seen[tag.ID]; dup {
				t.Fatalf("%v: duplicate ID %d", dist, tag.ID)
			}
			seen[tag.ID] = struct{}{}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, T2, 7)
	b := Generate(100, T2, 7)
	for i := range a.Tags {
		if a.Tags[i] != b.Tags[i] {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
	c := Generate(100, T2, 8)
	if a.Tags[0] == c.Tags[0] {
		t.Fatal("different seeds produced identical first tag")
	}
}

func TestGenerateZeroAndPanics(t *testing.T) {
	if Generate(0, T1, 1).N() != 0 {
		t.Fatal("empty population not empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative n did not panic")
		}
	}()
	Generate(-1, T1, 1)
}

func TestT1UniformShape(t *testing.T) {
	pop := Generate(50000, T1, 11)
	ids := pop.IDs()
	s := stats.Summarize(ids)
	mid := float64(IDSpace) / 2
	if math.Abs(s.Mean-mid)/mid > 0.02 {
		t.Fatalf("T1 mean %v too far from midpoint", s.Mean)
	}
	// Uniform: std = IDSpace/sqrt(12).
	wantStd := float64(IDSpace) / math.Sqrt(12)
	if math.Abs(s.Std-wantStd)/wantStd > 0.03 {
		t.Fatalf("T1 std %v, want ~%v", s.Std, wantStd)
	}
}

func TestT2BellShape(t *testing.T) {
	pop := Generate(50000, T2, 12)
	h := stats.NewHistogram(pop.IDs(), 0, float64(IDSpace), 10)
	centre := h.Fraction(4) + h.Fraction(5)
	edges := h.Fraction(0) + h.Fraction(9)
	if centre < 3*edges {
		t.Fatalf("T2 not bell shaped: centre %v edges %v", centre, edges)
	}
	// Irwin-Hall(3)/3 std = sqrt(3/12)/3 = 0.0962... of the space.
	s := stats.Summarize(pop.IDs())
	wantStd := float64(IDSpace) * math.Sqrt(3.0/12.0) / 3
	if math.Abs(s.Std-wantStd)/wantStd > 0.05 {
		t.Fatalf("T2 std %v, want ~%v", s.Std, wantStd)
	}
}

func TestT3NormalShape(t *testing.T) {
	pop := Generate(50000, T3, 13)
	s := stats.Summarize(pop.IDs())
	mid := float64(IDSpace) / 2
	if math.Abs(s.Mean-mid)/mid > 0.02 {
		t.Fatalf("T3 mean %v too far from midpoint", s.Mean)
	}
	wantStd := float64(IDSpace) / 8
	if math.Abs(s.Std-wantStd)/wantStd > 0.05 {
		t.Fatalf("T3 std %v, want ~%v", s.Std, wantStd)
	}
}

func TestRNUniform(t *testing.T) {
	pop := Generate(100000, T1, 14)
	// RN must be uniform over 32 bits: check per-bit balance.
	for b := 0; b < 32; b++ {
		ones := 0
		for _, tag := range pop.Tags {
			if tag.RN>>uint(b)&1 == 1 {
				ones++
			}
		}
		frac := float64(ones) / float64(pop.N())
		if math.Abs(frac-0.5) > 0.01 {
			t.Fatalf("RN bit %d biased: %v", b, frac)
		}
	}
}

func TestSubset(t *testing.T) {
	pop := Generate(1000, T1, 15)
	sub := pop.Subset(10)
	if sub.N() != 10 || sub.Tags[0] != pop.Tags[0] {
		t.Fatal("Subset wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Subset did not panic")
		}
	}()
	pop.Subset(1001)
}

func TestDistributionString(t *testing.T) {
	if T1.String() != "T1-uniform" || T2.String() != "T2-approx-normal" || T3.String() != "T3-normal" {
		t.Fatal("distribution names drifted")
	}
	if Distribution(99).String() == "" {
		t.Fatal("unknown distribution must still render")
	}
}
