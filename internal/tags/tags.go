// Package tags models RFID tag populations.
//
// A tag carries a unique identifier (tagID) and, per BFCE §IV-E.2, a
// prestored uniformly random 32-bit number RN that the lightweight tag-side
// hash operates on. The paper's evaluation (§V-A, Fig. 6) uses three tagID
// sets drawn from different distributions over [1, 10^15]:
//
//	T1 — uniform,
//	T2 — approximately normal (a bounded bell shape),
//	T3 — normal.
//
// Estimation quality must not depend on the ID distribution; the generators
// here exist to reproduce that robustness claim. IDs within a population
// are deduplicated (every physical tag is distinct).
package tags

import (
	"fmt"

	"rfidest/internal/xrand"
)

// IDSpace is the upper bound of the tagID universe used in the paper's
// simulations (IDs are drawn from [1, 10^15]).
const IDSpace = uint64(1e15)

// Tag is one RFID tag.
type Tag struct {
	ID uint64 // unique tagID
	RN uint32 // prestored 32-bit random number (§IV-E.2)
}

// Distribution selects one of the paper's tagID distributions.
type Distribution int

const (
	// T1 draws IDs uniformly from [1, 10^15].
	T1 Distribution = iota
	// T2 draws IDs from an approximately normal (Irwin–Hall, sum of three
	// uniforms) distribution over [1, 10^15].
	T2
	// T3 draws IDs from a normal distribution centred on the middle of the
	// ID space (σ = IDSpace/8), clipped to [1, 10^15].
	T3
)

// String returns the paper's name for the distribution.
func (d Distribution) String() string {
	switch d {
	case T1:
		return "T1-uniform"
	case T2:
		return "T2-approx-normal"
	case T3:
		return "T3-normal"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Distributions lists the three paper distributions in order.
var Distributions = []Distribution{T1, T2, T3}

// Population is a set of distinct tags.
type Population struct {
	Tags []Tag
	Dist Distribution
	Seed uint64
}

// N returns the population cardinality — the ground truth every estimator
// is judged against.
func (p *Population) N() int { return len(p.Tags) }

// Generate creates a population of n distinct tags with IDs drawn from
// dist, deterministically from seed. Populations of different sizes under
// the same (dist, seed) agree on their common prefix —
// Generate(m, d, s).Tags[:k] == Generate(n, d, s).Tags[:k] for k ≤ min(m,n)
// — which lets callers model evolving deployments whose rounds share tags.
// It panics if n < 0 or if n exceeds the ID space.
func Generate(n int, dist Distribution, seed uint64) *Population {
	if n < 0 {
		panic("tags: negative population size")
	}
	if uint64(n) > IDSpace {
		panic("tags: population exceeds ID space")
	}
	rng := xrand.NewStream(seed, uint64(dist))
	pop := &Population{Tags: make([]Tag, 0, n), Dist: dist, Seed: seed}
	seen := make(map[uint64]struct{}, n)
	for len(pop.Tags) < n {
		id := drawID(rng, dist)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		pop.Tags = append(pop.Tags, Tag{ID: id, RN: rng.Uint32()})
	}
	return pop
}

// drawID draws one tagID in [1, IDSpace] from dist.
func drawID(rng *xrand.Rand, dist Distribution) uint64 {
	switch dist {
	case T1:
		return 1 + rng.Uint64n(IDSpace)
	case T2:
		// Irwin–Hall with three terms: mean 1.5, range [0, 3]; rescale to
		// the ID space. Bounded support, bell-shaped — "approximately
		// normal" as in Fig. 6(b).
		s := rng.Float64() + rng.Float64() + rng.Float64()
		id := uint64(s / 3 * float64(IDSpace))
		return clampID(id)
	case T3:
		// Normal around the centre with σ = IDSpace/8, redrawn until it
		// lands inside the space (truncated normal), as in Fig. 6(c).
		for {
			v := rng.NormMeanStd(float64(IDSpace)/2, float64(IDSpace)/8)
			if v >= 1 && v <= float64(IDSpace) {
				return uint64(v)
			}
		}
	default:
		panic(fmt.Sprintf("tags: unknown distribution %d", int(dist)))
	}
}

func clampID(id uint64) uint64 {
	if id < 1 {
		return 1
	}
	if id > IDSpace {
		return IDSpace
	}
	return id
}

// IDs returns the population's tagIDs as float64s (for histogram rendering
// of Fig. 6).
func (p *Population) IDs() []float64 {
	out := make([]float64, len(p.Tags))
	for i, t := range p.Tags {
		out[i] = float64(t.ID)
	}
	return out
}

// Subset returns a population consisting of the first n tags. It shares the
// underlying tag storage with p and is used to sweep cardinality while
// holding the ID material fixed. It panics if n exceeds the population.
func (p *Population) Subset(n int) *Population {
	if n < 0 || n > len(p.Tags) {
		panic("tags: Subset out of range")
	}
	return &Population{Tags: p.Tags[:n], Dist: p.Dist, Seed: p.Seed}
}
