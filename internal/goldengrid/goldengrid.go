// Package goldengrid holds the repository's golden regression grid: 74
// (system, estimator, salt) cases with every field of the expected
// Estimate pinned exactly. The grid was captured on the pre-packing
// []bool frame representation and has survived, bit-identical, the
// word-packing, observability, fault-injection and round-structured
// execution refactors; every execution path added since (Run, the
// StartRun/Step round loop, the interleaving scheduler, the fleet modes)
// is required to reproduce it field for field.
//
// The package exists so multiple test packages — the root regression
// tests, the scheduler replay tests, the fleet equivalence tests — can
// share one table instead of re-pinning 74 float literals each.
//
// Regenerate (only if behavior is intentionally changed) by running each
// case and printing the Estimate with %#v: float fields round-trip
// exactly through the literals below.
package goldengrid

import (
	"fmt"

	"rfidest"
)

// Case is one pinned regression point, run at Epsilon = Delta = 0.1.
type Case struct {
	System    string // key for NewSystem
	Estimator string // registry name
	Salt      uint64
	Want      rfidest.Estimate
}

// Epsilon and Delta are the accuracy requirement every grid case runs at.
const (
	Epsilon = 0.1
	Delta   = 0.1
)

// NewSystem builds the deployment a case's System key names. Systems are
// stateless with respect to salted runs, so one instance may serve any
// number of cases.
func NewSystem(key string) (*rfidest.System, error) {
	switch key {
	case "tag-n20000-seed42":
		return rfidest.NewSystem(20000, rfidest.WithSeed(42)), nil
	case "synthetic-n50000-seed7":
		return rfidest.NewSystem(50000, rfidest.WithSeed(7), rfidest.WithSynthetic()), nil
	case "noisy-n10000-seed9":
		return rfidest.NewSystem(10000, rfidest.WithSeed(9), rfidest.WithNoise(0.01, 0.02)), nil
	case "paperhash-n20000-seed42":
		return rfidest.NewSystem(20000, rfidest.WithSeed(42), rfidest.WithPaperTagHash()), nil
	default:
		return nil, fmt.Errorf("goldengrid: unknown system %q", key)
	}
}

// Cases returns the full grid. The returned slice is shared; treat it as
// read-only.
func Cases() []Case { return cases }

var cases = []Case{
	{"tag-n20000-seed42", "BFCE", 0x1, rfidest.Estimate{N: 21121.473455566364, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 674}},
	{"tag-n20000-seed42", "BFCE", 0xdecaf, rfidest.Estimate{N: 20202.696698507996, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 647}},
	{"tag-n20000-seed42", "BFCE-multi", 0x1, rfidest.Estimate{N: 20425.573463095796, Seconds: 0.95457039999999993, Slots: 46240, ReaderBits: 1920, Rounds: 5, Guarded: true, TagTransmissions: 3085}},
	{"tag-n20000-seed42", "BFCE-multi", 0xdecaf, rfidest.Estimate{N: 20001.944993180594, Seconds: 0.95940335999999982, Slots: 46304, ReaderBits: 1984, Rounds: 5, Guarded: true, TagTransmissions: 3263}},
	{"tag-n20000-seed42", "ZOE", 0x1, rfidest.Estimate{N: 21035.223516219161, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 201968}},
	{"tag-n20000-seed42", "ZOE", 0xdecaf, rfidest.Estimate{N: 19880.846694345546, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 201058}},
	{"tag-n20000-seed42", "ZOE-batched", 0x1, rfidest.Estimate{N: 20572.42376154858, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 202040}},
	{"tag-n20000-seed42", "ZOE-batched", 0xdecaf, rfidest.Estimate{N: 20111.233647116034, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 201093}},
	{"tag-n20000-seed42", "SRC", 0x1, rfidest.Estimate{N: 19680.453016800391, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 31531}},
	{"tag-n20000-seed42", "SRC", 0xdecaf, rfidest.Estimate{N: 19466.193672910682, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 21451}},
	{"tag-n20000-seed42", "LOF", 0x1, rfidest.Estimate{N: 12165.501317546905, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 200000}},
	{"tag-n20000-seed42", "LOF", 0xdecaf, rfidest.Estimate{N: 22701.628175711525, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 200000}},
	{"tag-n20000-seed42", "UPE", 0x1, rfidest.Estimate{N: 20485.365815346297, Seconds: 0.78540736, Slots: 4096, ReaderBits: 256, Rounds: 4, Guarded: true, TagTransmissions: 37532}},
	{"tag-n20000-seed42", "UPE", 0xdecaf, rfidest.Estimate{N: 20583.47477240099, Seconds: 0.78540736, Slots: 4096, ReaderBits: 256, Rounds: 4, Guarded: true, TagTransmissions: 37651}},
	{"tag-n20000-seed42", "EZB", 0x1, rfidest.Estimate{N: 18150.221971470142, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 202603}},
	{"tag-n20000-seed42", "EZB", 0xdecaf, rfidest.Estimate{N: 19859.883424384152, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 201451}},
	{"tag-n20000-seed42", "FNEB", 0x1, rfidest.Estimate{N: 21493.2018834386, Seconds: 0.76746479999999995, Slots: 13676, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 200273}},
	{"tag-n20000-seed42", "FNEB", 0xdecaf, rfidest.Estimate{N: 21719.517169555329, Seconds: 1.0118663999999999, Slots: 26621, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 200273}},
	{"tag-n20000-seed42", "MLE", 0x1, rfidest.Estimate{N: 19852.365768391974, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 201306}},
	{"tag-n20000-seed42", "MLE", 0xdecaf, rfidest.Estimate{N: 19971.793916263894, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 200721}},
	{"tag-n20000-seed42", "ART", 0x1, rfidest.Estimate{N: 18514.79014234557, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 201123}},
	{"tag-n20000-seed42", "ART", 0xdecaf, rfidest.Estimate{N: 19579.775386668836, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 200619}},
	{"tag-n20000-seed42", "PET", 0x1, rfidest.Estimate{N: 17559.293470774679, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 3280000}},
	{"tag-n20000-seed42", "PET", 0xdecaf, rfidest.Estimate{N: 20358.756296782063, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 3280000}},
	{"synthetic-n50000-seed7", "BFCE", 0x1, rfidest.Estimate{N: 49773.311471340974, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 741}},
	{"synthetic-n50000-seed7", "BFCE", 0xdecaf, rfidest.Estimate{N: 52067.840763953493, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 772}},
	{"synthetic-n50000-seed7", "BFCE-multi", 0x1, rfidest.Estimate{N: 49411.213532277805, Seconds: 0.95457039999999993, Slots: 46240, ReaderBits: 1920, Rounds: 5, Guarded: true, TagTransmissions: 3702}},
	{"synthetic-n50000-seed7", "BFCE-multi", 0xdecaf, rfidest.Estimate{N: 51477.990559902668, Seconds: 0.95457039999999993, Slots: 46240, ReaderBits: 1920, Rounds: 5, Guarded: true, TagTransmissions: 3910}},
	{"synthetic-n50000-seed7", "ZOE", 0x1, rfidest.Estimate{N: 50986.203814186185, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 500958}},
	{"synthetic-n50000-seed7", "ZOE", 0xdecaf, rfidest.Estimate{N: 49491.834922266906, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 500900}},
	{"synthetic-n50000-seed7", "ZOE-batched", 0x1, rfidest.Estimate{N: 49683.354931315909, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500919}},
	{"synthetic-n50000-seed7", "ZOE-batched", 0xdecaf, rfidest.Estimate{N: 51706.865163697978, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500918}},
	{"synthetic-n50000-seed7", "SRC", 0x1, rfidest.Estimate{N: 50855.079609020679, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 53653}},
	{"synthetic-n50000-seed7", "SRC", 0xdecaf, rfidest.Estimate{N: 50498.264342804803, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 53700}},
	{"synthetic-n50000-seed7", "LOF", 0x1, rfidest.Estimate{N: 64209.900908084848, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 500000}},
	{"synthetic-n50000-seed7", "LOF", 0xdecaf, rfidest.Estimate{N: 68818.467825370361, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 500000}},
	{"synthetic-n50000-seed7", "UPE", 0x1, rfidest.Estimate{N: 49146.202896386087, Seconds: 0.98175919999999994, Slots: 5120, ReaderBits: 320, Rounds: 5, Guarded: true, TagTransmissions: 96927}},
	{"synthetic-n50000-seed7", "UPE", 0xdecaf, rfidest.Estimate{N: 49801.650298696935, Seconds: 0.98175919999999994, Slots: 5120, ReaderBits: 320, Rounds: 5, Guarded: true, TagTransmissions: 96738}},
	{"synthetic-n50000-seed7", "EZB", 0x1, rfidest.Estimate{N: 46614.335084748105, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 501214}},
	{"synthetic-n50000-seed7", "EZB", 0xdecaf, rfidest.Estimate{N: 51184.191967453044, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 501173}},
	{"synthetic-n50000-seed7", "FNEB", 0x1, rfidest.Estimate{N: 51852.579252298077, Seconds: 0.93172080000000002, Slots: 22376, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 500271}},
	{"synthetic-n50000-seed7", "FNEB", 0xdecaf, rfidest.Estimate{N: 49074.778897943761, Seconds: 1.3924305599999998, Slots: 46778, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 500271}},
	{"synthetic-n50000-seed7", "MLE", 0x1, rfidest.Estimate{N: 47884.868644500064, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500595}},
	{"synthetic-n50000-seed7", "MLE", 0xdecaf, rfidest.Estimate{N: 49162.182247842436, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500585}},
	{"synthetic-n50000-seed7", "ART", 0x1, rfidest.Estimate{N: 42908.217300859338, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500515}},
	{"synthetic-n50000-seed7", "ART", 0xdecaf, rfidest.Estimate{N: 51218.020815744225, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 500508}},
	{"synthetic-n50000-seed7", "PET", 0x1, rfidest.Estimate{N: 51156.505725938208, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 8200000}},
	{"synthetic-n50000-seed7", "PET", 0xdecaf, rfidest.Estimate{N: 58318.035170007293, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 8200000}},
	{"noisy-n10000-seed9", "BFCE", 0x1, rfidest.Estimate{N: 11776.060625050635, Seconds: 0.20299647999999998, Slots: 9408, ReaderBits: 544, Rounds: 1, Guarded: true, TagTransmissions: 558}},
	{"noisy-n10000-seed9", "BFCE", 0xdecaf, rfidest.Estimate{N: 11619.935787213981, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 430}},
	{"noisy-n10000-seed9", "BFCE-multi", 0x1, rfidest.Estimate{N: 11923.353891593917, Seconds: 0.97873519999999992, Slots: 46560, ReaderBits: 2240, Rounds: 5, Guarded: true, TagTransmissions: 2676}},
	{"noisy-n10000-seed9", "BFCE-multi", 0xdecaf, rfidest.Estimate{N: 11687.82669857064, Seconds: 0.95457039999999993, Slots: 46240, ReaderBits: 1920, Rounds: 5, Guarded: true, TagTransmissions: 2532}},
	{"noisy-n10000-seed9", "ZOE", 0x1, rfidest.Estimate{N: 10295.04449691031, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 100990}},
	{"noisy-n10000-seed9", "ZOE", 0xdecaf, rfidest.Estimate{N: 9733.5835816280087, Seconds: 1.4067207999999998, Slots: 1075, ReaderBits: 24480, Rounds: 11, Guarded: true, TagTransmissions: 101765}},
	{"noisy-n10000-seed9", "ZOE-batched", 0x1, rfidest.Estimate{N: 8467.9703782352208, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 100965}},
	{"noisy-n10000-seed9", "ZOE-batched", 0xdecaf, rfidest.Estimate{N: 8526.0397373632786, Seconds: 0.041439839999999999, Slots: 1075, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 101731}},
	{"noisy-n10000-seed9", "SRC", 0x1, rfidest.Estimate{N: 9575.0188338599892, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 15754}},
	{"noisy-n10000-seed9", "SRC", 0xdecaf, rfidest.Estimate{N: 8905.140831909428, Seconds: 0.09049088000000001, Slots: 3897, ReaderBits: 352, Rounds: 6, Guarded: true, TagTransmissions: 21537}},
	{"noisy-n10000-seed9", "LOF", 0x1, rfidest.Estimate{N: 12165.501317546905, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 100000}},
	{"noisy-n10000-seed9", "LOF", 0xdecaf, rfidest.Estimate{N: 6987.2456755902012, Seconds: 0.0241648, Slots: 320, ReaderBits: 320, Rounds: 10, Guarded: false, TagTransmissions: 100000}},
	{"noisy-n10000-seed9", "UPE", 0x1, rfidest.Estimate{N: 9914.8279770423414, Seconds: 0.58905552000000005, Slots: 3072, ReaderBits: 192, Rounds: 3, Guarded: true, TagTransmissions: 17438}},
	{"noisy-n10000-seed9", "UPE", 0xdecaf, rfidest.Estimate{N: 9569.6976095840801, Seconds: 0.58905552000000005, Slots: 3072, ReaderBits: 192, Rounds: 3, Guarded: true, TagTransmissions: 17547}},
	{"noisy-n10000-seed9", "EZB", 0x1, rfidest.Estimate{N: 9048.1723074350139, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 101273}},
	{"noisy-n10000-seed9", "EZB", 0xdecaf, rfidest.Estimate{N: 9862.2339179787268, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 102361}},
	{"noisy-n10000-seed9", "FNEB", 0x1, rfidest.Estimate{N: 66.514898098901867, Seconds: 79.982035359999998, Slots: 4209363, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 100274}},
	{"noisy-n10000-seed9", "FNEB", 0xdecaf, rfidest.Estimate{N: 44.053414701857591, Seconds: 60.058443359999998, Slots: 3154088, ReaderBits: 8992, Rounds: 281, Guarded: true, TagTransmissions: 100275}},
	{"noisy-n10000-seed9", "MLE", 0x1, rfidest.Estimate{N: 8643.856431682816, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 100643}},
	{"noisy-n10000-seed9", "MLE", 0xdecaf, rfidest.Estimate{N: 8981.3707711053212, Seconds: 0.036852000000000003, Slots: 832, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 101196}},
	{"noisy-n10000-seed9", "ART", 0x1, rfidest.Estimate{N: 8808.278954089461, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 100557}},
	{"noisy-n10000-seed9", "ART", 0xdecaf, rfidest.Estimate{N: 9824.3093835164036, Seconds: 0.04651856, Slots: 1344, ReaderBits: 384, Rounds: 11, Guarded: true, TagTransmissions: 101059}},
	{"noisy-n10000-seed9", "PET", 0x1, rfidest.Estimate{N: 10093.694371648173, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 1640000}},
	{"noisy-n10000-seed9", "PET", 0xdecaf, rfidest.Estimate{N: 8240.3149370767678, Seconds: 0.91327007999999998, Slots: 820, ReaderBits: 9348, Rounds: 164, Guarded: true, TagTransmissions: 1640000}},
	{"paperhash-n20000-seed42", "BFCE", 0x1, rfidest.Estimate{N: 19122.361638170161, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 573}},
	{"paperhash-n20000-seed42", "BFCE", 0xdecaf, rfidest.Estimate{N: 19889.645386629712, Seconds: 0.19091407999999999, Slots: 9248, ReaderBits: 384, Rounds: 1, Guarded: true, TagTransmissions: 599}},
}
