package channel

import (
	"testing"

	"rfidest/internal/tags"
)

// BenchmarkTagEngineFrame measures one full 8192-slot BFCE-style frame
// over 100k materialized tags (the hot path of tag-level experiments).
func BenchmarkTagEngineFrame(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 1)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: 8192, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

// BenchmarkTagEnginePaperXORFrame measures the same frame under the
// paper's literal tag-side hash.
func BenchmarkTagEnginePaperXORFrame(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 2)
	e := NewTagEngine(pop, PaperXOR)
	req := FrameRequest{W: 8192, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

// BenchmarkBallsEngineFrame measures the synthetic engine on the same
// frame (the fast path large sweeps rely on).
func BenchmarkBallsEngineFrame(b *testing.B) {
	e := NewBallsEngine(100000, 3)
	req := FrameRequest{W: 8192, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

// BenchmarkBallsEngineZOESlot measures one ZOE-style single-bit frame.
func BenchmarkBallsEngineZOESlot(b *testing.B) {
	e := NewBallsEngine(500000, 4)
	req := FrameRequest{W: 1, K: 1, P: 1.594 / 500000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

// BenchmarkBallsEngineFullPersistenceGeometric measures the sequential
// binomial-splitting path (5M responses into 32 slots).
func BenchmarkBallsEngineFullPersistenceGeometric(b *testing.B) {
	e := NewBallsEngine(5000000, 5)
	req := FrameRequest{W: 32, K: 1, P: 1, Dist: Geometric}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}
