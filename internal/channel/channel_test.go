package channel

import (
	"math"
	"testing"

	"rfidest/internal/stats"
	"rfidest/internal/tags"
)

func TestBitVecCounts(t *testing.T) {
	b := FromBools([]bool{true, false, true, true, false})
	if b.CountBusy() != 3 || b.CountIdle() != 2 {
		t.Fatalf("counts wrong: busy=%d idle=%d", b.CountBusy(), b.CountIdle())
	}
	if math.Abs(b.RhoIdle()-0.4) > 1e-12 {
		t.Fatalf("RhoIdle = %v", b.RhoIdle())
	}
	if b.FirstBusy() != 0 {
		t.Fatalf("FirstBusy = %d", b.FirstBusy())
	}
	if b.FirstIdle() != 1 {
		t.Fatalf("FirstIdle = %d", b.FirstIdle())
	}
}

func TestBitVecEmptyAndAllIdle(t *testing.T) {
	if (BitVec{}).RhoIdle() != 0 {
		t.Fatal("empty RhoIdle != 0")
	}
	if (BitVec{}).FirstBusy() != -1 || (BitVec{}).FirstIdle() != 0 {
		t.Fatal("empty frame scan positions wrong")
	}
	b := FromBools([]bool{false, false})
	if b.FirstBusy() != -1 {
		t.Fatal("all-idle FirstBusy != -1")
	}
	if b.RhoIdle() != 1 {
		t.Fatal("all-idle RhoIdle != 1")
	}
}

// runsEqual compares run-length slices.
func runsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBitVecRuns(t *testing.T) {
	b := FromBools([]bool{true, true, false, true, false, true, true, true})
	if runs := b.Runs(); !runsEqual(runs, []int{2, 1, 3}) {
		t.Fatalf("runs = %v, want [2 1 3]", runs)
	}
	if len(FromBools([]bool{false}).Runs()) != 0 {
		t.Fatal("idle-only frame must have no runs")
	}
}

// TestBitVecRunsEdgeCases pins the trailing-run handling of Runs on both
// the packed and the reference implementation: a run that extends to the
// last slot must be emitted, an all-busy frame is one maximal run, and an
// empty frame has none. (ART's run statistics depend on exactly this.)
func TestBitVecRunsEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		bits []bool
		want []int
	}{
		{"empty frame", nil, nil},
		{"all busy", []bool{true, true, true, true}, []int{4}},
		{"trailing busy run", []bool{false, true, false, false, true, true}, []int{1, 2}},
		{"single trailing slot", []bool{false, false, true}, []int{1}},
		{"all busy across words", allBusy(130), []int{130}},
		{"trailing run across words", append(make([]bool, 60), allBusy(10)...), []int{10}},
	}
	for _, c := range cases {
		if got := FromBools(c.bits).Runs(); !runsEqual(got, c.want) {
			t.Errorf("%s: packed Runs = %v, want %v", c.name, got, c.want)
		}
		if got := refVec(c.bits).runs(); !runsEqual(got, c.want) {
			t.Errorf("%s: reference runs = %v, want %v", c.name, got, c.want)
		}
	}
}

func allBusy(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func TestFrameRequestValidation(t *testing.T) {
	bad := []FrameRequest{
		{W: 0, K: 1, P: 0.5},
		{W: 8, K: 0, P: 0.5},
		{W: 8, K: 1, P: -0.1},
		{W: 8, K: 1, P: 1.1},
		{W: 8, K: 1, P: 0.5, Observe: 9},
		{W: 8, K: 1, P: 0.5, Observe: -1},
	}
	for i, req := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			req.validate()
		}()
	}
	if got := (FrameRequest{W: 8, K: 1, P: 0.5}).validate(); got != 8 {
		t.Fatalf("default observe = %d", got)
	}
	if got := (FrameRequest{W: 8, K: 1, P: 0.5, Observe: 3}).validate(); got != 3 {
		t.Fatalf("explicit observe = %d", got)
	}
}

// expectedRho is e^{-kpn/w}, Theorem 1's idle probability.
func expectedRho(n, k int, p float64, w int) float64 {
	return math.Exp(-float64(k) * p * float64(n) / float64(w))
}

func testEngineRho(t *testing.T, e Engine, n int, label string) {
	t.Helper()
	req := FrameRequest{W: 8192, K: 3, P: 0.1, Seed: 99}
	const rounds = 8
	sum := 0.0
	for i := 0; i < rounds; i++ {
		req.Seed = uint64(1000 + i)
		sum += e.RunFrame(req).RhoIdle()
	}
	got := sum / rounds
	want := expectedRho(n, req.K, req.P, req.W)
	// sd of one frame's rho ~ sqrt(rho(1-rho)/w) ~ 0.004; averaged over 8.
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("%s: mean rho = %v, want ~%v", label, got, want)
	}
}

func TestTagEngineRhoMatchesTheorem1(t *testing.T) {
	pop := tags.Generate(20000, tags.T1, 5)
	testEngineRho(t, NewTagEngine(pop, IdealRN), 20000, "ideal-rn")
	testEngineRho(t, NewTagEngine(pop, IdealID), 20000, "ideal-id")
	testEngineRho(t, NewTagEngine(pop, PaperXOR), 20000, "paper-xor")
}

func TestBallsEngineRhoMatchesTheorem1(t *testing.T) {
	testEngineRho(t, NewBallsEngine(20000, 7), 20000, "balls")
}

func TestTagEngineDistributionInvariance(t *testing.T) {
	// The same frame over T1/T2/T3 populations of equal size must produce
	// statistically identical rho (the core robustness claim).
	req := FrameRequest{W: 8192, K: 3, P: 0.2, Seed: 31337}
	var rhos []float64
	for _, d := range tags.Distributions {
		pop := tags.Generate(30000, d, 77)
		e := NewTagEngine(pop, IdealRN)
		sum := 0.0
		for i := 0; i < 6; i++ {
			req.Seed = uint64(42 + i)
			sum += e.RunFrame(req).RhoIdle()
		}
		rhos = append(rhos, sum/6)
	}
	for _, r := range rhos[1:] {
		if math.Abs(r-rhos[0]) > 0.012 {
			t.Fatalf("rho differs across distributions: %v", rhos)
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	// TagEngine and BallsEngine must sample the same busy-count
	// distribution. Compare mean busy counts over repeated frames.
	const n, trials = 5000, 30
	pop := tags.Generate(n, tags.T1, 9)
	te := NewTagEngine(pop, IdealRN)
	be := NewBallsEngine(n, 9)
	req := FrameRequest{W: 1024, K: 3, P: 0.05}
	var sumT, sumB float64
	for i := 0; i < trials; i++ {
		req.Seed = uint64(i)
		sumT += float64(te.RunFrame(req).CountBusy())
		sumB += float64(be.RunFrame(req).CountBusy())
	}
	meanT, meanB := sumT/trials, sumB/trials
	// Busy count ~ w(1-e^{-λ}) ≈ 536; per-frame sd ~ sqrt(w·p(1-p)) ~ 21.
	if math.Abs(meanT-meanB) > 25 {
		t.Fatalf("engines disagree: tag=%v balls=%v", meanT, meanB)
	}
}

func TestEnginesAgreeKS(t *testing.T) {
	// Distribution-level agreement: the busy-count samples of the two
	// engines must pass a two-sample Kolmogorov–Smirnov test, not merely
	// share a mean.
	const n, frames = 3000, 400
	pop := tags.Generate(n, tags.T1, 117)
	te := NewTagEngine(pop, IdealRN)
	be := NewBallsEngine(n, 117)
	req := FrameRequest{W: 512, K: 2, P: 0.1}
	var xs, ys []float64
	for i := 0; i < frames; i++ {
		req.Seed = uint64(i)
		xs = append(xs, float64(te.RunFrame(req).CountBusy()))
		req.Seed = uint64(i + frames)
		ys = append(ys, float64(be.RunFrame(req).CountBusy()))
	}
	if !stats.SameDistribution(xs, ys, 0.001) {
		t.Fatalf("engine busy-count distributions differ (KS=%v)", stats.KSStatistic(xs, ys))
	}
}

func TestTagEngineDeterministicPerSeed(t *testing.T) {
	pop := tags.Generate(1000, tags.T1, 3)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: 256, K: 2, P: 0.5, Seed: 7}
	a := e.RunFrame(req)
	b := e.RunFrame(req)
	if !a.Equal(b) {
		t.Fatal("same seed produced different frames")
	}
	req.Seed = 8
	if a.Equal(e.RunFrame(req)) {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestGeometricFrameShape(t *testing.T) {
	// With geometric hashing and full persistence, slot 0 collects about
	// half the tags, so low slots are busy and (for n << 2^w) high slots
	// idle.
	pop := tags.Generate(1000, tags.T1, 4)
	e := NewTagEngine(pop, IdealRN)
	b := e.RunFrame(FrameRequest{W: 32, K: 1, P: 1, Dist: Geometric, Seed: 5})
	if !b.Get(0) || !b.Get(1) {
		t.Fatal("geometric frame: low slots must be busy for n=1000")
	}
	if b.Get(31) {
		t.Fatal("geometric frame: slot 31 busy is absurd for n=1000")
	}
}

func TestObserveTruncation(t *testing.T) {
	pop := tags.Generate(1000, tags.T1, 6)
	e := NewTagEngine(pop, IdealRN)
	b := e.RunFrame(FrameRequest{W: 8192, K: 3, P: 0.5, Observe: 1024, Seed: 1})
	if b.Len() != 1024 {
		t.Fatalf("observed %d slots, want 1024", b.Len())
	}
}

func TestFirstResponseAgainstFullFrame(t *testing.T) {
	pop := tags.Generate(500, tags.T1, 8)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: 1 << 16, K: 1, P: 1, Seed: 123}
	full := e.RunFrame(req)
	want := full.FirstBusy()
	if got := e.FirstResponse(req, req.W); got != want {
		t.Fatalf("FirstResponse = %d, full frame says %d", got, want)
	}
	// A scan bound before the first response must return -1.
	if want > 0 {
		if got := e.FirstResponse(req, want); got != -1 {
			t.Fatalf("bounded scan returned %d, want -1", got)
		}
	}
}

func TestFirstResponseEmptyPopulation(t *testing.T) {
	pop := tags.Generate(0, tags.T1, 8)
	e := NewTagEngine(pop, IdealRN)
	if got := e.FirstResponse(FrameRequest{W: 64, K: 1, P: 1, Seed: 1}, 64); got != -1 {
		t.Fatalf("empty population FirstResponse = %d", got)
	}
	be := NewBallsEngine(0, 1)
	if got := be.FirstResponse(FrameRequest{W: 64, K: 1, P: 1, Seed: 1}, 64); got != -1 {
		t.Fatalf("empty balls FirstResponse = %d", got)
	}
}

func TestBallsFirstResponseDistribution(t *testing.T) {
	// E[min of n uniforms on [0,w)] ≈ w/(n+1).
	const n, w, trials = 100, 1 << 20, 2000
	be := NewBallsEngine(n, 10)
	sum := 0.0
	for i := 0; i < trials; i++ {
		pos := be.FirstResponse(FrameRequest{W: w, K: 1, P: 1, Seed: uint64(i)}, w)
		if pos < 0 {
			t.Fatal("n=100 frame cannot be empty at p=1")
		}
		sum += float64(pos)
	}
	got := sum / trials
	want := float64(w) / float64(n+1)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("mean first response %v, want ~%v", got, want)
	}
}

func TestPaperXORRequiresPow2(t *testing.T) {
	pop := tags.Generate(10, tags.T1, 2)
	e := NewTagEngine(pop, PaperXOR)
	defer func() {
		if recover() == nil {
			t.Fatal("PaperXOR with non-pow2 w did not panic")
		}
	}()
	e.RunFrame(FrameRequest{W: 100, K: 1, P: 0.5, Seed: 1})
}

func TestHashModeString(t *testing.T) {
	if IdealRN.String() != "ideal-rn" || IdealID.String() != "ideal-id" || PaperXOR.String() != "paper-xor" {
		t.Fatal("hash mode names drifted")
	}
	if HashMode(9).String() != "unknown" {
		t.Fatal("unknown mode must render")
	}
}
