package channel

import (
	"rfidest/internal/obs"
	"rfidest/internal/timing"
	"rfidest/internal/xrand"
)

// Reader is one estimation session: an engine (the tag population behind
// the air interface), a clock that prices every transmission, and a seed
// stream for the random seeds the reader broadcasts.
//
// Estimators drive the session through three verbs that mirror the
// protocol's physical actions:
//
//	BroadcastParams — reader transmits parameter/seed bits,
//	ExecuteFrame    — tags answer in a run of bit-slots the reader senses,
//	ScanFirstBusy   — reader senses slots until the first reply.
//
// Every verb charges the clock per the timing model, so Cost() after a run
// is the protocol's overall execution time (the paper's Fig. 10 metric).
//
// Every verb also reports to the session's obs.Observer (obs.Nop unless
// SetObserver installed one), attributed to the protocol phase opened by
// StartPhase. Observation is passive: it never touches the clock, the
// seed stream or the engine, so instrumented and uninstrumented sessions
// are bit-identical.
type Reader struct {
	Engine  Engine
	Profile timing.Profile
	clock   timing.Clock
	seeds   *xrand.Rand
	trace   func(TraceEvent)

	obs        obs.Observer // never nil; obs.Nop when uninstrumented
	phase      obs.Phase
	phaseStart timing.Cost // clock snapshot at StartPhase
}

// NewReader starts a session over engine. Seeds broadcast during the
// session derive deterministically from seed.
func NewReader(engine Engine, seed uint64) *Reader {
	return &Reader{
		Engine:  engine,
		Profile: timing.C1G2,
		seeds:   xrand.NewStream(seed, 0x5eed),
		obs:     obs.Nop,
	}
}

// SetObserver installs o as the session's observer; nil restores the
// zero-cost default. Like SetTrace, observation does not affect costs or
// outcomes.
func (r *Reader) SetObserver(o obs.Observer) {
	if o == nil {
		o = obs.Nop
	}
	r.obs = o
}

// Observer returns the session's observer (obs.Nop when uninstrumented).
// Protocol code uses it for hooks the Reader cannot emit itself (probe
// rounds, session spans).
func (r *Reader) Observer() obs.Observer { return r.obs }

// StartPhase opens a named protocol-phase span: subsequent verbs are
// attributed to p until EndPhase. Phases do not nest; starting a new phase
// while one is open implicitly closes the open one.
func (r *Reader) StartPhase(p obs.Phase) {
	if r.phase != obs.PhaseRun {
		r.EndPhase()
	}
	r.phase = p
	r.phaseStart = r.clock.Cost()
	r.obs.PhaseStart(p)
}

// EndPhase closes the open phase span, reporting the communication cost
// the phase consumed (differenced from the session clock around the span).
// Outside a span it is a no-op.
func (r *Reader) EndPhase() {
	if r.phase == obs.PhaseRun {
		return
	}
	d := r.clock.Cost().Sub(r.phaseStart)
	r.obs.PhaseEnd(r.phase, obs.PhaseStats{
		Slots:      d.TagSlots,
		ReaderBits: d.ReaderBits,
		Seconds:    d.Seconds(r.Profile),
	})
	r.phase = obs.PhaseRun
}

// Phase returns the currently open protocol-phase span (PhaseRun when no
// span is open). The round driver uses it to open a new span only when a
// round's phase differs from the running one.
func (r *Reader) Phase() obs.Phase { return r.phase }

// NextSeed draws the next random seed the reader will broadcast.
func (r *Reader) NextSeed() uint64 { return r.seeds.Uint64() }

// Staller is implemented by engines that model reader-side stalls: extra
// air time (retransmission, resynchronization) consumed during an engine
// call that is not part of the frame's slot count. The Reader drains the
// pending cost after every engine call and charges it to the session
// clock, so stalls land in whatever phase span is open.
type Staller interface {
	// TakeStall returns the cost accrued since the last call and resets it.
	TakeStall() timing.Cost
}

// drainStall charges any stall cost the engine accrued during the last
// call. Engines that do not stall skip this with one failed assertion.
func (r *Reader) drainStall() {
	if st, ok := r.Engine.(Staller); ok {
		if c := st.TakeStall(); c != (timing.Cost{}) {
			r.clock.Charge(c)
		}
	}
}

// BroadcastParams charges the clock for a reader transmission of the given
// number of bits (command, frame size, seeds, persistence numerator, ...).
func (r *Reader) BroadcastParams(bits int) {
	r.clock.Broadcast(bits)
	r.obs.Broadcast(r.phase, bits)
	r.emit(TraceEvent{Kind: "broadcast", Bits: bits})
}

// ExecuteFrame runs one frame on the engine and charges the clock for the
// sensed bit-slots.
func (r *Reader) ExecuteFrame(req FrameRequest) BitVec {
	b := r.Engine.RunFrame(req)
	r.clock.Listen(b.Len())
	r.drainStall()
	busy := b.CountBusy()
	r.obs.Frame(r.phase, obs.FrameStats{W: req.W, Observed: b.Len(), Busy: busy})
	r.emit(TraceEvent{
		Kind: "frame", W: req.W, K: req.K, P: req.P,
		Observe: b.Len(), Busy: busy,
	})
	return b
}

// ScanFirstBusy senses up to maxScan slots of the frame, stopping at the
// first busy one. It returns the index of that slot (or -1 if the whole
// scanned prefix was idle) and charges the clock for exactly the slots
// sensed.
func (r *Reader) ScanFirstBusy(req FrameRequest, maxScan int) int {
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	pos := r.Engine.FirstResponse(req, maxScan)
	r.drainStall()
	if pos < 0 {
		r.clock.Listen(maxScan)
		r.obs.Listen(r.phase, maxScan)
	} else {
		r.clock.Listen(pos + 1)
		r.obs.Listen(r.phase, pos+1)
	}
	r.emit(TraceEvent{Kind: "scan", W: req.W, K: req.K, P: req.P, Busy: pos})
	return pos
}

// ListenSlots charges the clock for sensing n tag bit-slots outside of a
// full frame execution (single-slot probes, as in PET's tree walk).
func (r *Reader) ListenSlots(n int) {
	r.clock.Listen(n)
	r.obs.Listen(r.phase, n)
	r.emit(TraceEvent{Kind: "probe-slots", Bits: n})
}

// Cost returns the communication counters accumulated so far.
func (r *Reader) Cost() timing.Cost { return r.clock.Cost() }

// Seconds returns the air time accumulated so far under the session's
// profile.
func (r *Reader) Seconds() float64 { return r.clock.Seconds(r.Profile) }

// ResetClock clears the accumulated cost (the engine and seed stream are
// untouched). Harnesses use it to charge repeated trials separately.
func (r *Reader) ResetClock() { r.clock.Reset() }
