package channel

import (
	"rfidest/internal/timing"
	"rfidest/internal/xrand"
)

// Reader is one estimation session: an engine (the tag population behind
// the air interface), a clock that prices every transmission, and a seed
// stream for the random seeds the reader broadcasts.
//
// Estimators drive the session through three verbs that mirror the
// protocol's physical actions:
//
//	BroadcastParams — reader transmits parameter/seed bits,
//	ExecuteFrame    — tags answer in a run of bit-slots the reader senses,
//	ScanFirstBusy   — reader senses slots until the first reply.
//
// Every verb charges the clock per the timing model, so Cost() after a run
// is the protocol's overall execution time (the paper's Fig. 10 metric).
type Reader struct {
	Engine  Engine
	Profile timing.Profile
	clock   timing.Clock
	seeds   *xrand.Rand
	trace   func(TraceEvent)
}

// NewReader starts a session over engine. Seeds broadcast during the
// session derive deterministically from seed.
func NewReader(engine Engine, seed uint64) *Reader {
	return &Reader{
		Engine:  engine,
		Profile: timing.C1G2,
		seeds:   xrand.NewStream(seed, 0x5eed),
	}
}

// NextSeed draws the next random seed the reader will broadcast.
func (r *Reader) NextSeed() uint64 { return r.seeds.Uint64() }

// BroadcastParams charges the clock for a reader transmission of the given
// number of bits (command, frame size, seeds, persistence numerator, ...).
func (r *Reader) BroadcastParams(bits int) {
	r.clock.Broadcast(bits)
	r.emit(TraceEvent{Kind: "broadcast", Bits: bits})
}

// ExecuteFrame runs one frame on the engine and charges the clock for the
// sensed bit-slots.
func (r *Reader) ExecuteFrame(req FrameRequest) BitVec {
	b := r.Engine.RunFrame(req)
	r.clock.Listen(b.Len())
	r.emit(TraceEvent{
		Kind: "frame", W: req.W, K: req.K, P: req.P,
		Observe: b.Len(), Busy: b.CountBusy(),
	})
	return b
}

// ScanFirstBusy senses up to maxScan slots of the frame, stopping at the
// first busy one. It returns the index of that slot (or -1 if the whole
// scanned prefix was idle) and charges the clock for exactly the slots
// sensed.
func (r *Reader) ScanFirstBusy(req FrameRequest, maxScan int) int {
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	pos := r.Engine.FirstResponse(req, maxScan)
	if pos < 0 {
		r.clock.Listen(maxScan)
	} else {
		r.clock.Listen(pos + 1)
	}
	r.emit(TraceEvent{Kind: "scan", W: req.W, K: req.K, P: req.P, Busy: pos})
	return pos
}

// ListenSlots charges the clock for sensing n tag bit-slots outside of a
// full frame execution (single-slot probes, as in PET's tree walk).
func (r *Reader) ListenSlots(n int) {
	r.clock.Listen(n)
	r.emit(TraceEvent{Kind: "probe-slots", Bits: n})
}

// Cost returns the communication counters accumulated so far.
func (r *Reader) Cost() timing.Cost { return r.clock.Cost() }

// Seconds returns the air time accumulated so far under the session's
// profile.
func (r *Reader) Seconds() float64 { return r.clock.Seconds(r.Profile) }

// ResetClock clears the accumulated cost (the engine and seed stream are
// untouched). Harnesses use it to charge repeated trials separately.
func (r *Reader) ResetClock() { r.clock.Reset() }
