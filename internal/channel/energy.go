package channel

// EnergyMeter is implemented by engines that count tag transmissions. The
// count is the tag-side energy proxy of the estimation literature (Li et
// al.'s MLE [21] optimizes exactly this): every slot a tag responds in
// costs it one backscatter transmission, and for battery-powered active
// tags that is the budget that matters — a protocol can be fast for the
// reader yet expensive for the tags, or vice versa.
//
// The counter is cumulative over the engine's lifetime; callers measure a
// protocol by differencing around the run (see Reader.TagTransmissions).
// It is plain per-engine state, updated by the single goroutine driving
// the engine's session — read it from that goroutine only.
type EnergyMeter interface {
	// TagTransmissions returns the total number of tag transmissions the
	// engine has executed so far.
	TagTransmissions() int
}

// TagTransmissions returns the cumulative tag-transmission count of the
// session's engine, or -1 if the engine does not meter energy.
func (r *Reader) TagTransmissions() int {
	if m, ok := r.Engine.(EnergyMeter); ok {
		return m.TagTransmissions()
	}
	return -1
}

// TagTransmissions implements EnergyMeter for the per-tag engine.
func (e *TagEngine) TagTransmissions() int { return e.transmissions }

// TagTransmissions implements EnergyMeter for the synthetic engine.
func (e *BallsEngine) TagTransmissions() int { return e.transmissions }

// TagTransmissions implements EnergyMeter for the noisy wrapper (noise is
// a reader-side phenomenon; tags transmit the same either way).
func (e *NoisyEngine) TagTransmissions() int {
	if m, ok := e.Inner.(EnergyMeter); ok {
		return m.TagTransmissions()
	}
	return -1
}

// TagTransmissions implements EnergyMeter for the multi-reader merge by
// summing the per-reader engines. A tag covered by several readers
// transmits once physically but is counted by every engine holding a copy
// of it, so overlapping deployments over-count by the coverage overlap.
func (e *MergedEngine) TagTransmissions() int {
	total := 0
	for _, r := range e.Readers {
		m, ok := r.(EnergyMeter)
		if !ok {
			return -1
		}
		t := m.TagTransmissions()
		if t < 0 {
			return -1
		}
		total += t
	}
	return total
}
