package channel

import (
	"math"
	"testing"

	"rfidest/internal/tags"
)

func TestSlotStateString(t *testing.T) {
	if Empty.String() != "empty" || Single.String() != "single" || Collision.String() != "collision" {
		t.Fatal("state names drifted")
	}
	if SlotState(9).String() != "invalid" {
		t.Fatal("invalid state must render")
	}
}

func TestOccupancyCount(t *testing.T) {
	o := Occupancy{Empty, Single, Single, Collision}
	if o.Count(Empty) != 1 || o.Count(Single) != 2 || o.Count(Collision) != 1 {
		t.Fatalf("counts wrong: %v", o)
	}
}

func TestOccupancyConsistentWithBitVec(t *testing.T) {
	// Busy in the bit view == Single or Collision in the occupancy view
	// for the same frame seed.
	pop := tags.Generate(2000, tags.T1, 31)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: 512, K: 2, P: 0.5, Seed: 17}
	bits := e.RunFrame(req)
	occ := e.RunFrameOccupancy(req)
	for i := 0; i < bits.Len(); i++ {
		busy := occ[i] != Empty
		if bits.Get(i) != busy {
			t.Fatalf("slot %d: bit=%v occupancy=%v", i, bits.Get(i), occ[i])
		}
	}
}

func TestOccupancyPoissonFractions(t *testing.T) {
	// With load λ per slot, fractions are ~e^{-λ}, λe^{-λ}, rest.
	const n, w = 8192, 8192
	e := NewBallsEngine(n, 41)
	req := FrameRequest{W: w, K: 1, P: 1}
	var empty, single, coll int
	const frames = 6
	for i := 0; i < frames; i++ {
		req.Seed = uint64(i)
		occ := e.RunFrameOccupancy(req)
		empty += occ.Count(Empty)
		single += occ.Count(Single)
		coll += occ.Count(Collision)
	}
	total := float64(w * frames)
	lambda := 1.0
	if got, want := float64(empty)/total, math.Exp(-lambda); math.Abs(got-want) > 0.01 {
		t.Fatalf("empty fraction %v, want ~%v", got, want)
	}
	if got, want := float64(single)/total, lambda*math.Exp(-lambda); math.Abs(got-want) > 0.01 {
		t.Fatalf("single fraction %v, want ~%v", got, want)
	}
	if got, want := float64(coll)/total, 1-2*math.Exp(-lambda); math.Abs(got-want) > 0.01 {
		t.Fatalf("collision fraction %v, want ~%v", got, want)
	}
}

func TestOccupancyEnginesAgree(t *testing.T) {
	const n = 3000
	pop := tags.Generate(n, tags.T1, 43)
	te := NewTagEngine(pop, IdealRN)
	be := NewBallsEngine(n, 43)
	req := FrameRequest{W: 1024, K: 1, P: 0.8}
	var sT, sB float64
	const frames = 20
	for i := 0; i < frames; i++ {
		req.Seed = uint64(i)
		sT += float64(te.RunFrameOccupancy(req).Count(Single))
		sB += float64(be.RunFrameOccupancy(req).Count(Single))
	}
	mT, mB := sT/frames, sB/frames
	if math.Abs(mT-mB) > 30 {
		t.Fatalf("singleton counts disagree: tag=%v balls=%v", mT, mB)
	}
}

func TestReaderOccupancyCharging(t *testing.T) {
	pop := tags.Generate(100, tags.T1, 45)
	r := NewReader(NewTagEngine(pop, IdealRN), 46)
	occ := r.ExecuteFrameOccupancy(FrameRequest{W: 128, K: 1, P: 1, Seed: 1}, 10)
	if len(occ) != 128 {
		t.Fatalf("observed %d slots", len(occ))
	}
	if got := r.Cost().TagSlots; got != 1280 {
		t.Fatalf("charged %d tag bits for 128 slots of 10 bits", got)
	}
}

func TestReaderOccupancyPanics(t *testing.T) {
	pop := tags.Generate(1, tags.T1, 45)
	r := NewReader(NewTagEngine(pop, IdealRN), 46)
	defer func() {
		if recover() == nil {
			t.Fatal("slotBits=0 did not panic")
		}
	}()
	r.ExecuteFrameOccupancy(FrameRequest{W: 8, K: 1, P: 1, Seed: 1}, 0)
}

func TestNoisyOccupancyFlips(t *testing.T) {
	inner := NewBallsEngine(0, 1)
	e := NewNoisyEngine(inner, 0.5, 0, 47)
	occ := e.RunFrameOccupancy(FrameRequest{W: 4096, K: 1, P: 1, Seed: 1})
	frac := float64(occ.Count(Single)) / 4096
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("phantom singleton rate %v, want ~0.5", frac)
	}
}
