package channel

import (
	"math"
	"testing"

	"rfidest/internal/tags"
	"rfidest/internal/timing"
)

func newTestReader(n int) *Reader {
	pop := tags.Generate(n, tags.T1, 21)
	return NewReader(NewTagEngine(pop, IdealRN), 22)
}

func TestReaderChargesBroadcast(t *testing.T) {
	r := newTestReader(10)
	r.BroadcastParams(96)
	c := r.Cost()
	if c.ReaderBits != 96 || c.Intervals != 1 || c.TagSlots != 0 {
		t.Fatalf("cost = %+v", c)
	}
}

func TestReaderChargesFrame(t *testing.T) {
	r := newTestReader(100)
	b := r.ExecuteFrame(FrameRequest{W: 8192, K: 3, P: 0.1, Observe: 1024, Seed: r.NextSeed()})
	if b.Len() != 1024 {
		t.Fatalf("frame length %d", b.Len())
	}
	c := r.Cost()
	if c.TagSlots != 1024 || c.Intervals != 1 {
		t.Fatalf("cost = %+v", c)
	}
}

func TestReaderScanFirstBusyCharge(t *testing.T) {
	r := newTestReader(1000)
	req := FrameRequest{W: 1 << 16, K: 1, P: 1, Seed: 5}
	pos := r.ScanFirstBusy(req, req.W)
	if pos < 0 {
		t.Fatal("1000 tags at p=1 must respond somewhere")
	}
	if got := r.Cost().TagSlots; got != pos+1 {
		t.Fatalf("charged %d slots for first busy at %d", got, pos)
	}
}

func TestReaderScanFirstBusyMissCharge(t *testing.T) {
	r := newTestReader(0)
	req := FrameRequest{W: 64, K: 1, P: 1, Seed: 5}
	if pos := r.ScanFirstBusy(req, 64); pos != -1 {
		t.Fatalf("pos = %d", pos)
	}
	if got := r.Cost().TagSlots; got != 64 {
		t.Fatalf("charged %d slots for a full idle scan of 64", got)
	}
}

func TestReaderSecondsMatchesProfile(t *testing.T) {
	r := newTestReader(10)
	r.BroadcastParams(32)
	r.ExecuteFrame(FrameRequest{W: 100, K: 1, P: 0.5, Seed: 1})
	want := (32*37.76 + 2*302 + 100*18.88) / 1e6
	if math.Abs(r.Seconds()-want) > 1e-12 {
		t.Fatalf("Seconds = %v, want %v", r.Seconds(), want)
	}
}

func TestReaderResetClock(t *testing.T) {
	r := newTestReader(10)
	r.BroadcastParams(32)
	r.ResetClock()
	if r.Cost() != (timing.Cost{}) {
		t.Fatal("ResetClock did not clear")
	}
}

func TestReaderSeedsUniquePerCall(t *testing.T) {
	r := newTestReader(1)
	a, b := r.NextSeed(), r.NextSeed()
	if a == b {
		t.Fatal("NextSeed repeated")
	}
}

func TestNoisyEngineFlipsRates(t *testing.T) {
	// All-idle inner frame + falseBusy: busy fraction ≈ falseBusy.
	inner := NewBallsEngine(0, 1)
	e := NewNoisyEngine(inner, 0.3, 0, 2)
	busy := 0
	const w, frames = 4096, 4
	for i := 0; i < frames; i++ {
		busy += e.RunFrame(FrameRequest{W: w, K: 1, P: 1, Seed: uint64(i)}).CountBusy()
	}
	got := float64(busy) / (w * frames)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("false busy rate %v, want ~0.3", got)
	}
}

func TestNoisyEngineFalseIdle(t *testing.T) {
	// Saturated inner frame + falseIdle: idle fraction ≈ falseIdle.
	pop := tags.Generate(100000, tags.T1, 3)
	inner := NewTagEngine(pop, IdealRN)
	e := NewNoisyEngine(inner, 0, 0.25, 4)
	b := e.RunFrame(FrameRequest{W: 512, K: 3, P: 1, Seed: 9})
	got := b.RhoIdle()
	if math.Abs(got-0.25) > 0.07 {
		t.Fatalf("false idle rate %v, want ~0.25", got)
	}
}

func TestNoisyEngineZeroNoiseIsTransparent(t *testing.T) {
	pop := tags.Generate(1000, tags.T1, 5)
	inner := NewTagEngine(pop, IdealRN)
	e := NewNoisyEngine(inner, 0, 0, 6)
	req := FrameRequest{W: 256, K: 2, P: 0.5, Seed: 11}
	a := inner.RunFrame(req)
	b := e.RunFrame(req)
	if !a.Equal(b) {
		t.Fatal("zero-noise wrapper altered the frame")
	}
	if e.Size() != inner.Size() {
		t.Fatal("Size not delegated")
	}
}

func TestNoisyEnginePanicsOnBadRates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad rates did not panic")
		}
	}()
	NewNoisyEngine(NewBallsEngine(1, 1), -0.1, 0, 1)
}

func TestNoisyFirstResponsePreemption(t *testing.T) {
	// With certain false-busy, slot 0 is always reported.
	e := NewNoisyEngine(NewBallsEngine(0, 1), 1, 0, 7)
	if got := e.FirstResponse(FrameRequest{W: 64, K: 1, P: 1, Seed: 1}, 64); got != 0 {
		t.Fatalf("FirstResponse = %d, want 0", got)
	}
	// With no noise it delegates.
	e2 := NewNoisyEngine(NewBallsEngine(0, 1), 0, 0, 8)
	if got := e2.FirstResponse(FrameRequest{W: 64, K: 1, P: 1, Seed: 1}, 64); got != -1 {
		t.Fatalf("FirstResponse = %d, want -1", got)
	}
}
