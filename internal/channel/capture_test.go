package channel

import (
	"math"
	"testing"

	"rfidest/internal/tags"
)

func TestCaptureFlipsCollisions(t *testing.T) {
	// Saturated frame: nearly all slots collide; capture at 0.4 must turn
	// ~40% of them into singletons. Twin engines with the same seed replay
	// the same frame (a BallsEngine's frame stream advances per call).
	e := NewCaptureEngine(NewBallsEngine(100000, 71), 0.4, 72)
	req := FrameRequest{W: 1024, K: 1, P: 1, Seed: 1}
	base := NewBallsEngine(100000, 71).RunFrameOccupancy(req)
	captured := e.RunFrameOccupancy(req)
	baseColl := base.Count(Collision)
	capturedColl := captured.Count(Collision)
	got := 1 - float64(capturedColl)/float64(baseColl)
	if math.Abs(got-0.4) > 0.06 {
		t.Fatalf("capture rate %v, want ~0.4", got)
	}
}

func TestCaptureInvisibleToBitSlots(t *testing.T) {
	pop := tags.Generate(2000, tags.T1, 73)
	inner := NewTagEngine(pop, IdealRN)
	e := NewCaptureEngine(inner, 0.9, 74)
	req := FrameRequest{W: 512, K: 2, P: 0.5, Seed: 3}
	a := inner.RunFrame(req)
	b := e.RunFrame(req)
	if !a.Equal(b) {
		t.Fatal("capture altered a bit-slot frame")
	}
	if e.FirstResponse(req, 512) != inner.FirstResponse(req, 512) {
		t.Fatal("capture altered first-response scans")
	}
	if e.Size() != inner.Size() {
		t.Fatal("Size not delegated")
	}
	if e.TagTransmissions() != inner.TagTransmissions() {
		t.Fatal("energy not delegated")
	}
}

func TestCaptureZeroIsTransparent(t *testing.T) {
	e := NewCaptureEngine(NewBallsEngine(5000, 75), 0, 76)
	req := FrameRequest{W: 256, K: 1, P: 1, Seed: 5}
	a := NewBallsEngine(5000, 75).RunFrameOccupancy(req)
	b := e.RunFrameOccupancy(req)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero capture altered occupancy")
		}
	}
}

func TestCapturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad capture probability did not panic")
		}
	}()
	NewCaptureEngine(NewBallsEngine(1, 1), 1.5, 1)
}

func TestCaptureBiasesUPEStyleCounting(t *testing.T) {
	// Capture converts collisions to singletons, so an empty-slot count
	// is unaffected but a collision count drops — the bias that
	// collision-based estimators inherit.
	e := NewCaptureEngine(NewBallsEngine(3000, 77), 0.3, 78)
	req := FrameRequest{W: 1024, K: 1, P: 1, Seed: 7}
	base := NewBallsEngine(3000, 77).RunFrameOccupancy(req)
	cap := e.RunFrameOccupancy(req)
	if base.Count(Empty) != cap.Count(Empty) {
		t.Fatal("capture must not touch empty slots")
	}
	if cap.Count(Collision) >= base.Count(Collision) {
		t.Fatal("capture did not reduce collisions")
	}
}
