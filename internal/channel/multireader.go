package channel

// MergedEngine models the paper's multi-reader deployment (§III-A): several
// readers whose coverage regions jointly contain the tag population, all
// coordinated by a back-end server so they can "be logically considered as
// one reader".
//
// Physically, every reader announces the same frame parameters and seeds
// (the back-end synchronizes them), each tag responds in the slots its own
// hashes select, and the back-end ORs the readers' busy observations. A tag
// covered by several readers is heard by all of them in the same slots —
// its hash depends only on the tag, not the reader — so the OR of the busy
// vectors equals the busy vector of the union population. No per-tag
// deduplication is needed and the "tags reply to only one reader"
// assumption the paper criticizes in [22] is not required.
//
// Construct it over per-reader engines whose populations may overlap; the
// union cardinality is what estimators will recover, which is Size's
// contract — so Size must be told the union size explicitly (the engines
// alone cannot know the overlap).
type MergedEngine struct {
	Readers   []Engine
	UnionSize int
}

// NewMergedEngine merges per-reader engines covering a population whose
// union has unionSize distinct tags. It panics on an empty reader set or a
// negative union size.
func NewMergedEngine(unionSize int, readers ...Engine) *MergedEngine {
	if len(readers) == 0 {
		panic("channel: merged engine needs at least one reader")
	}
	if unionSize < 0 {
		panic("channel: negative union size")
	}
	return &MergedEngine{Readers: readers, UnionSize: unionSize}
}

// Size implements Engine: the union cardinality (ground truth only).
func (e *MergedEngine) Size() int { return e.UnionSize }

// RunFrame implements Engine: the OR of the readers' observations.
//
// Note the overlap semantics: a tag present behind several engines
// responds in the same slots through each (same tag material, same seeds),
// so OR-ing reproduces the union population's frame exactly when the
// engines share tag material for shared tags (TagEngine over overlapping
// populations). With synthetic engines the shared tags are independently
// re-sampled per reader, which biases the union upward by the overlap —
// use tag-level engines for overlapping deployments.
func (e *MergedEngine) RunFrame(req FrameRequest) BitVec {
	merged := e.Readers[0].RunFrame(req)
	for _, r := range e.Readers[1:] {
		merged.or(r.RunFrame(req)) // back-end merge: one OR per word
	}
	return merged
}

// FirstResponse implements Engine: the earliest response any reader hears.
func (e *MergedEngine) FirstResponse(req FrameRequest, maxScan int) int {
	min := -1
	for _, r := range e.Readers {
		pos := r.FirstResponse(req, maxScan)
		if pos >= 0 && (min == -1 || pos < min) {
			min = pos
		}
	}
	return min
}

// RunFrameOccupancy implements OccupancyEngine by combining per-reader
// slot states: a slot empty on one side passes the other side through, and
// two occupied observations merge to Collision. For disjoint per-reader
// populations this is exact. For overlapping populations it over-reports
// collisions (two readers hearing the *same* single tag merge to
// Collision, since slot states cannot identify the transmitter) — the
// busy/idle path (RunFrame) has no such ambiguity and is what BFCE and the
// other bit-slot protocols use.
func (e *MergedEngine) RunFrameOccupancy(req FrameRequest) Occupancy {
	first, ok := e.Readers[0].(OccupancyEngine)
	if !ok {
		panic("channel: merged reader does not support occupancy frames")
	}
	merged := first.RunFrameOccupancy(req)
	for _, r := range e.Readers[1:] {
		oe, ok := r.(OccupancyEngine)
		if !ok {
			panic("channel: merged reader does not support occupancy frames")
		}
		occ := oe.RunFrameOccupancy(req)
		for i, s := range occ {
			merged[i] = mergeStates(merged[i], s)
		}
	}
	return merged
}

// mergeStates combines two readers' views of one slot. Distinct
// populations transmit independently, so Single+Single is a Collision;
// anything with an Empty side passes the other side through.
func mergeStates(a, b SlotState) SlotState {
	switch {
	case a == Empty:
		return b
	case b == Empty:
		return a
	default:
		return Collision
	}
}
