// Package channel simulates the time-slotted, Reader-Talks-First physical
// channel between one (logical) RFID reader and a tag population (§III-A).
//
// The unit of communication is the bit-slot: tags that selected a slot
// transmit a short signal there, and the reader only distinguishes busy
// (at least one transmission) from idle. A frame is a consecutive run of
// bit-slots configured by parameters the reader broadcasts beforehand
// (frame size w, hash count k, persistence probability p, random seeds).
//
// Two engines execute frames:
//
//   - TagEngine walks every tag and executes the tag-side algorithm
//     literally (Algorithm 2 of the paper), including the paper's
//     XOR/bitget hash and RN-based persistence when configured. O(n·k) per
//     frame.
//   - BallsEngine samples the exact occupancy law of the same process
//     (Binomial-thinned balls scattered multinomially), without iterating
//     tags. O(n·k·p + w) per frame. It is statistically exact for ideal
//     hashing, which makes large comparison sweeps (ZOE's thousands of
//     single-slot frames) tractable.
//
// A Reader ties an engine to a timing.Clock so protocols are charged for
// every broadcast bit and every sensed slot, which is how the paper's
// "overall execution time" metric is produced.
package channel

import "fmt"

// SlotDist selects how a tag's hash maps to a slot index.
type SlotDist int

const (
	// Uniform hashing: each hash selects a slot uniformly in [0, w).
	// Used by BFCE, ZOE, SRC, UPE, EZB, FNEB, MLE, ART.
	Uniform SlotDist = iota
	// Geometric hashing: slot j is selected with probability 2^{-(j+1)}
	// (capped at the last slot). Used by lottery-frame protocols (LOF, PET).
	Geometric
)

// FrameRequest describes one frame the reader initiates.
type FrameRequest struct {
	W       int      // announced frame size (hash range), > 0
	K       int      // hashes (slot selections) per tag, > 0
	P       float64  // persistence probability in [0, 1]
	Observe int      // slots the reader senses; 0 means W, else must be <= W
	Dist    SlotDist // slot-selection distribution
	Seed    uint64   // frame seed; fresh per frame
}

func (req FrameRequest) validate() (observe int) {
	if req.W <= 0 {
		panic("channel: frame with non-positive w")
	}
	if req.K <= 0 {
		panic("channel: frame with non-positive k")
	}
	if req.P < 0 || req.P > 1 {
		panic(fmt.Sprintf("channel: persistence %v out of [0,1]", req.P))
	}
	observe = req.Observe
	if observe == 0 {
		observe = req.W
	}
	if observe < 0 || observe > req.W {
		panic("channel: observe out of range")
	}
	return observe
}

// BitVec is the reader-side view of a frame: Busy[i] reports whether slot i
// was busy. (The paper's B stores the complement — B(i)=1 for idle — but
// busy/idle is the physical observation; estimators convert as needed.)
type BitVec []bool

// CountBusy returns the number of busy slots.
func (b BitVec) CountBusy() int {
	n := 0
	for _, busy := range b {
		if busy {
			n++
		}
	}
	return n
}

// CountIdle returns the number of idle slots.
func (b BitVec) CountIdle() int { return len(b) - b.CountBusy() }

// RhoIdle returns the fraction of idle slots — the paper's ρ̄, the mean of
// the Bloom vector B whose bits are 1 for idle slots.
func (b BitVec) RhoIdle() float64 {
	if len(b) == 0 {
		return 0
	}
	return float64(b.CountIdle()) / float64(len(b))
}

// FirstBusy returns the index of the first busy slot, or -1 if none.
func (b BitVec) FirstBusy() int {
	for i, busy := range b {
		if busy {
			return i
		}
	}
	return -1
}

// Runs returns the lengths of maximal runs of busy slots (used by ART).
func (b BitVec) Runs() []int {
	var runs []int
	cur := 0
	for _, busy := range b {
		if busy {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// Engine executes frames against a (real or synthetic) tag population.
type Engine interface {
	// RunFrame executes one frame and returns the busy/idle observation of
	// the first Observe slots.
	RunFrame(req FrameRequest) BitVec
	// FirstResponse returns the index of the first busy slot of the frame,
	// scanning at most maxScan slots, or -1 if the scanned prefix is idle.
	// Protocols that terminate a frame at the first reply (FNEB) use this
	// instead of materializing enormous frames.
	FirstResponse(req FrameRequest, maxScan int) int
	// Size returns the ground-truth population size. It exists for harness
	// bookkeeping and MUST NOT be consulted by estimator logic.
	Size() int
}
