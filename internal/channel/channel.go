// Package channel simulates the time-slotted, Reader-Talks-First physical
// channel between one (logical) RFID reader and a tag population (§III-A).
//
// The unit of communication is the bit-slot: tags that selected a slot
// transmit a short signal there, and the reader only distinguishes busy
// (at least one transmission) from idle. A frame is a consecutive run of
// bit-slots configured by parameters the reader broadcasts beforehand
// (frame size w, hash count k, persistence probability p, random seeds).
//
// Two engines execute frames:
//
//   - TagEngine walks every tag and executes the tag-side algorithm
//     literally (Algorithm 2 of the paper), including the paper's
//     XOR/bitget hash and RN-based persistence when configured. O(n·k) per
//     frame.
//   - BallsEngine samples the exact occupancy law of the same process
//     (Binomial-thinned balls scattered multinomially), without iterating
//     tags. O(n·k·p + w) per frame. It is statistically exact for ideal
//     hashing, which makes large comparison sweeps (ZOE's thousands of
//     single-slot frames) tractable.
//
// A Reader ties an engine to a timing.Clock so protocols are charged for
// every broadcast bit and every sensed slot, which is how the paper's
// "overall execution time" metric is produced.
package channel

import (
	"fmt"

	"rfidest/internal/bitset"
)

// SlotDist selects how a tag's hash maps to a slot index.
type SlotDist int

const (
	// Uniform hashing: each hash selects a slot uniformly in [0, w).
	// Used by BFCE, ZOE, SRC, UPE, EZB, FNEB, MLE, ART.
	Uniform SlotDist = iota
	// Geometric hashing: slot j is selected with probability 2^{-(j+1)}
	// (capped at the last slot). Used by lottery-frame protocols (LOF, PET).
	Geometric
)

// FrameRequest describes one frame the reader initiates.
type FrameRequest struct {
	W       int      // announced frame size (hash range), > 0
	K       int      // hashes (slot selections) per tag, > 0
	P       float64  // persistence probability in [0, 1]
	Observe int      // slots the reader senses; 0 means W, else must be <= W
	Dist    SlotDist // slot-selection distribution
	Seed    uint64   // frame seed; fresh per frame
}

func (req FrameRequest) validate() (observe int) {
	if req.W <= 0 {
		panic("channel: frame with non-positive w")
	}
	if req.K <= 0 {
		panic("channel: frame with non-positive k")
	}
	if req.P < 0 || req.P > 1 {
		panic(fmt.Sprintf("channel: persistence %v out of [0,1]", req.P))
	}
	observe = req.Observe
	if observe == 0 {
		observe = req.W
	}
	if observe < 0 || observe > req.W {
		panic("channel: observe out of range")
	}
	return observe
}

// BitVec is the reader-side view of a frame: Get(i) reports whether slot i
// was busy. (The paper's B stores the complement — B(i)=1 for idle — but
// busy/idle is the physical observation; estimators convert as needed.)
//
// The representation is word-packed (internal/bitset, bit i set ⟺ slot i
// busy): 64 slots per uint64 word, so the aggregate queries every estimator
// hangs off a frame — CountBusy, RhoIdle, FirstBusy, Runs — run one
// popcount or TrailingZeros64 per word instead of one branch per slot. The
// pre-packing []bool semantics are retained bit-for-bit; reference.go keeps
// the original implementation for cross-checking tests and benchmarks.
//
// The zero BitVec is an empty (zero-slot) frame. Construct real frames
// with NewBitVec or FromBools.
type BitVec struct {
	bits *bitset.Set // bit i set ⟺ slot i busy; nil for the zero value
}

// NewBitVec returns an all-idle frame of n slots.
func NewBitVec(n int) BitVec { return BitVec{bits: bitset.New(n)} }

// FromBools packs a busy/idle bool slice into a BitVec.
func FromBools(busy []bool) BitVec { //lint:allow boolframe conversion bridge from the reference []bool representation
	return BitVec{bits: bitset.FromBools(busy)}
}

// Bools unpacks the frame into the reference busy/idle bool slice.
func (b BitVec) Bools() []bool { //lint:allow boolframe conversion bridge to the reference []bool representation
	if b.bits == nil {
		return nil
	}
	return b.bits.Bools()
}

// Len returns the number of observed slots.
func (b BitVec) Len() int {
	if b.bits == nil {
		return 0
	}
	return b.bits.Len()
}

// Get reports whether slot i was busy.
func (b BitVec) Get(i int) bool { return b.bits.Get(i) }

// setBusy marks slot i busy (engine-side scatter).
func (b BitVec) setBusy(i int) { b.bits.Set1(i) }

// truncate shortens the frame in place to its first n slots (the observed
// prefix of a larger announced frame).
func (b BitVec) truncate(n int) BitVec {
	b.bits.Truncate(n)
	return b
}

// or merges another reader's observation of the same frame into b — the
// multi-reader back-end OR, one word at a time.
func (b BitVec) or(o BitVec) BitVec {
	b.bits.Or(o.bits)
	return b
}

// Words returns the number of 64-bit words backing the frame.
func (b BitVec) Words() int {
	if b.bits == nil {
		return 0
	}
	return b.bits.Words()
}

// Word returns backing word i of the busy bits (slots 64i .. 64i+63).
// Channel-error models (NoisyEngine, the internal/faults injectors) read
// words to batch per-slot decisions into one XOR per word.
func (b BitVec) Word(i int) uint64 { return b.bits.Word(i) }

// XorWord flips the busy/idle state of the slots selected by mask within
// backing word i. Mask bits at positions past Len are ignored.
func (b BitVec) XorWord(i int, mask uint64) { b.bits.XorWord(i, mask) }

// ClearFrom marks every slot at index >= from idle, keeping the frame
// length. A truncated or desynchronized observation loses its tail: the
// reader sensed those slots but recovered no signal, so they read idle.
func (b BitVec) ClearFrom(from int) {
	if b.bits == nil {
		return
	}
	if from < 0 {
		from = 0
	}
	if from >= b.bits.Len() {
		return
	}
	for wi := from >> 6; wi < b.bits.Words(); wi++ {
		w := b.bits.Word(wi)
		if wi == from>>6 {
			w &^= 1<<uint(from&63) - 1 // slots below `from` survive
		}
		if w != 0 {
			b.bits.XorWord(wi, w)
		}
	}
}

// Equal reports whether two frames have identical length and slots.
func (b BitVec) Equal(o BitVec) bool {
	if b.bits == nil || o.bits == nil {
		return b.Len() == o.Len()
	}
	return b.bits.Equal(o.bits)
}

// CountBusy returns the number of busy slots (one popcount per word).
func (b BitVec) CountBusy() int {
	if b.bits == nil {
		return 0
	}
	return b.bits.Count()
}

// CountIdle returns the number of idle slots.
func (b BitVec) CountIdle() int { return b.Len() - b.CountBusy() }

// RhoIdle returns the fraction of idle slots — the paper's ρ̄, the mean of
// the Bloom vector B whose bits are 1 for idle slots.
func (b BitVec) RhoIdle() float64 {
	if b.Len() == 0 {
		return 0
	}
	return float64(b.CountIdle()) / float64(b.Len())
}

// FirstBusy returns the index of the first busy slot, or -1 if none.
func (b BitVec) FirstBusy() int {
	if b.bits == nil {
		return -1
	}
	return b.bits.FirstSet()
}

// FirstIdle returns the index of the first idle slot — the number of
// leading busy slots, which is the lottery-frame observation (LOF, PET). A
// fully busy frame reports its length.
func (b BitVec) FirstIdle() int {
	if b.bits == nil {
		return 0
	}
	if first := b.bits.FirstClear(); first >= 0 {
		return first
	}
	return b.Len()
}

// Runs returns the lengths of maximal runs of busy slots (used by ART).
func (b BitVec) Runs() []int {
	if b.bits == nil {
		return nil
	}
	return b.bits.Runs()
}

// IdleSet returns the paper's Bloom vector B — bit i set ⟺ slot i idle —
// as a fresh packed set (the complement of the busy bits). Snapshot
// archives (core.Differ) store exactly this.
func (b BitVec) IdleSet() *bitset.Set {
	if b.bits == nil {
		return bitset.New(0)
	}
	return b.bits.Clone().Not()
}

// Engine executes frames against a (real or synthetic) tag population.
type Engine interface {
	// RunFrame executes one frame and returns the busy/idle observation of
	// the first Observe slots.
	RunFrame(req FrameRequest) BitVec
	// FirstResponse returns the index of the first busy slot of the frame,
	// scanning at most maxScan slots, or -1 if the scanned prefix is idle.
	// Protocols that terminate a frame at the first reply (FNEB) use this
	// instead of materializing enormous frames.
	FirstResponse(req FrameRequest, maxScan int) int
	// Size returns the ground-truth population size. It exists for harness
	// bookkeeping and MUST NOT be consulted by estimator logic.
	Size() int
}
