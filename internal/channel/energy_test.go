package channel

import (
	"math"
	"testing"

	"rfidest/internal/tags"
)

func TestTagEngineMetersExpectedTransmissions(t *testing.T) {
	// E[transmissions] of one full frame = n·k·p.
	const n, k = 10000, 3
	const p = 0.2
	pop := tags.Generate(n, tags.T1, 91)
	e := NewTagEngine(pop, IdealRN)
	const frames = 10
	for i := 0; i < frames; i++ {
		e.RunFrame(FrameRequest{W: 8192, K: k, P: p, Seed: uint64(i)})
	}
	got := float64(e.TagTransmissions()) / frames
	want := float64(n) * k * p
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("mean transmissions %v, want ~%v", got, want)
	}
}

func TestTagEngineTruncatedObservationMetersLess(t *testing.T) {
	// With Observe = w/8, only tags hashing into the prefix transmit.
	pop := tags.Generate(20000, tags.T1, 93)
	full := NewTagEngine(pop, IdealRN)
	trunc := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: 8192, K: 3, P: 0.5, Seed: 5}
	full.RunFrame(req)
	req.Observe = 1024
	trunc.RunFrame(req)
	ratio := float64(trunc.TagTransmissions()) / float64(full.TagTransmissions())
	if math.Abs(ratio-0.125) > 0.02 {
		t.Fatalf("truncated/full transmission ratio %v, want ~1/8", ratio)
	}
}

func TestBallsEngineMetersExpectedTransmissions(t *testing.T) {
	e := NewBallsEngine(10000, 95)
	const frames, p = 10, 0.2
	for i := 0; i < frames; i++ {
		e.RunFrame(FrameRequest{W: 8192, K: 3, P: p, Seed: uint64(i)})
	}
	got := float64(e.TagTransmissions()) / frames
	want := 10000.0 * 3 * p
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("mean transmissions %v, want ~%v", got, want)
	}
}

func TestFirstResponseMetersOnlyFirstSlot(t *testing.T) {
	pop := tags.Generate(5000, tags.T1, 97)
	e := NewTagEngine(pop, IdealRN)
	e.FirstResponse(FrameRequest{W: 1 << 20, K: 1, P: 1, Seed: 7}, 1<<20)
	// With W >> n the winning slot almost surely holds exactly one tag.
	if tx := e.TagTransmissions(); tx < 1 || tx > 3 {
		t.Fatalf("first-response transmissions = %d, want ~1", tx)
	}
}

func TestNoisyAndMergedDelegateEnergy(t *testing.T) {
	pop := tags.Generate(1000, tags.T1, 99)
	inner := NewTagEngine(pop, IdealRN)
	noisy := NewNoisyEngine(inner, 0.1, 0.1, 100)
	noisy.RunFrame(FrameRequest{W: 512, K: 1, P: 1, Seed: 1})
	if noisy.TagTransmissions() != inner.TagTransmissions() {
		t.Fatal("noisy wrapper altered the energy count")
	}

	a, b := NewBallsEngine(100, 1), NewBallsEngine(100, 2)
	merged := NewMergedEngine(200, a, b)
	merged.RunFrame(FrameRequest{W: 64, K: 1, P: 1, Seed: 3})
	if merged.TagTransmissions() != a.TagTransmissions()+b.TagTransmissions() {
		t.Fatal("merged energy not the sum of readers")
	}
}

func TestReaderEnergyAccessor(t *testing.T) {
	pop := tags.Generate(100, tags.T1, 101)
	r := NewReader(NewTagEngine(pop, IdealRN), 102)
	if r.TagTransmissions() != 0 {
		t.Fatal("fresh engine must report zero transmissions")
	}
	r.ExecuteFrame(FrameRequest{W: 64, K: 1, P: 1, Seed: 1})
	if r.TagTransmissions() != 100 {
		t.Fatalf("transmissions = %d, want 100 (all tags, p=1)", r.TagTransmissions())
	}
}

type meterlessEngine struct{}

func (meterlessEngine) RunFrame(FrameRequest) BitVec        { return FromBools([]bool{false}) }
func (meterlessEngine) FirstResponse(FrameRequest, int) int { return -1 }
func (meterlessEngine) Size() int                           { return 0 }

func TestReaderEnergyUnmetered(t *testing.T) {
	r := NewReader(meterlessEngine{}, 1)
	if r.TagTransmissions() != -1 {
		t.Fatal("unmetered engine must report -1")
	}
	merged := NewMergedEngine(0, meterlessEngine{})
	if merged.TagTransmissions() != -1 {
		t.Fatal("merged over unmetered engine must report -1")
	}
}
