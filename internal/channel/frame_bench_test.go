package channel

import (
	"math/rand"
	"testing"

	"rfidest/internal/tags"
)

// Frame aggregate-query benchmarks: the word-packed BitVec against the
// retained []bool reference path (reference.go) on the paper's w = 8192
// geometry. CI smoke runs these via `go test -bench=Frame -benchtime=1x`;
// results/BENCH_frame.json records a full before/after run.

const benchFrameW = 8192

// benchFrame builds one ~30%-busy 8192-slot frame in both representations.
func benchFrame() (BitVec, refVec) {
	rng := rand.New(rand.NewSource(4242))
	bools := make([]bool, benchFrameW)
	for i := range bools {
		bools[i] = rng.Float64() < 0.3
	}
	return FromBools(bools), refVec(bools)
}

// benchSparseFrame builds a frame whose only busy slot sits near the end,
// so FirstBusy must scan almost the whole vector.
func benchSparseFrame() (BitVec, refVec) {
	bools := make([]bool, benchFrameW)
	bools[benchFrameW-100] = true
	return FromBools(bools), refVec(bools)
}

func BenchmarkFrameCountBusyPacked(b *testing.B) {
	vec, _ := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.CountBusy()
	}
}

func BenchmarkFrameCountBusyBoolRef(b *testing.B) {
	_, ref := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.countBusy()
	}
}

func BenchmarkFrameRhoIdlePacked(b *testing.B) {
	vec, _ := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.RhoIdle()
	}
}

func BenchmarkFrameRhoIdleBoolRef(b *testing.B) {
	_, ref := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.rhoIdle()
	}
}

func BenchmarkFrameRunsPacked(b *testing.B) {
	vec, _ := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.Runs()
	}
}

func BenchmarkFrameRunsBoolRef(b *testing.B) {
	_, ref := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.runs()
	}
}

func BenchmarkFrameScatterTagPacked(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 1)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: benchFrameW, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

func BenchmarkFrameScatterTagBoolRef(b *testing.B) {
	pop := tags.Generate(100000, tags.T1, 1)
	e := NewTagEngine(pop, IdealRN)
	req := FrameRequest{W: benchFrameW, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.refRunFrame(req)
	}
}

func BenchmarkFrameScatterBallsPacked(b *testing.B) {
	e := NewBallsEngine(100000, 3)
	req := FrameRequest{W: benchFrameW, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.RunFrame(req)
	}
}

func BenchmarkFrameScatterBallsBoolRef(b *testing.B) {
	e := NewBallsEngine(100000, 3)
	req := FrameRequest{W: benchFrameW, K: 3, P: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i)
		_ = e.refRunFrame(req)
	}
}

func BenchmarkFrameFirstBusyPacked(b *testing.B) {
	vec, _ := benchSparseFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vec.FirstBusy()
	}
}

func BenchmarkFrameFirstBusyBoolRef(b *testing.B) {
	_, ref := benchSparseFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ref.firstBusy()
	}
}
