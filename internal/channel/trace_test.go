package channel

import (
	"strings"
	"testing"

	"rfidest/internal/tags"
)

func TestTraceRecordsDialogue(t *testing.T) {
	pop := tags.Generate(1000, tags.T1, 111)
	r := NewReader(NewTagEngine(pop, IdealRN), 112)
	var events []TraceEvent
	r.SetTrace(func(e TraceEvent) { events = append(events, e) })

	r.BroadcastParams(128)
	r.ExecuteFrame(FrameRequest{W: 512, K: 2, P: 0.5, Seed: 1})
	r.ScanFirstBusy(FrameRequest{W: 1 << 16, K: 1, P: 1, Seed: 2}, 1<<16)
	r.ListenSlots(3)

	if len(events) != 4 {
		t.Fatalf("recorded %d events, want 4", len(events))
	}
	if events[0].Kind != "broadcast" || events[0].Bits != 128 {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[1].Kind != "frame" || events[1].W != 512 || events[1].Observe != 512 {
		t.Fatalf("event 1: %+v", events[1])
	}
	if events[1].Busy <= 0 {
		t.Fatalf("frame with 1000 tags at p=0.5 observed no busy slots")
	}
	if events[2].Kind != "scan" || events[2].Busy < 0 {
		t.Fatalf("event 2: %+v", events[2])
	}
	if events[3].Kind != "probe-slots" || events[3].Bits != 3 {
		t.Fatalf("event 3: %+v", events[3])
	}
}

func TestTraceDisabledByDefaultAndRemovable(t *testing.T) {
	pop := tags.Generate(10, tags.T1, 113)
	r := NewReader(NewTagEngine(pop, IdealRN), 114)
	r.ExecuteFrame(FrameRequest{W: 8, K: 1, P: 1, Seed: 1}) // must not panic
	count := 0
	r.SetTrace(func(TraceEvent) { count++ })
	r.BroadcastParams(1)
	r.SetTrace(nil)
	r.BroadcastParams(1)
	if count != 1 {
		t.Fatalf("trace fired %d times, want 1", count)
	}
}

func TestTraceDoesNotAffectCost(t *testing.T) {
	pop := tags.Generate(100, tags.T1, 115)
	a := NewReader(NewTagEngine(pop, IdealRN), 116)
	b := NewReader(NewTagEngine(pop, IdealRN), 116)
	b.SetTrace(func(TraceEvent) {})
	reqSeed := a.NextSeed()
	_ = b.NextSeed()
	for _, r := range []*Reader{a, b} {
		r.BroadcastParams(64)
		r.ExecuteFrame(FrameRequest{W: 128, K: 1, P: 0.5, Seed: reqSeed})
	}
	if a.Cost() != b.Cost() {
		t.Fatalf("tracing changed the cost: %+v vs %+v", a.Cost(), b.Cost())
	}
}

func TestTraceEventString(t *testing.T) {
	events := []TraceEvent{
		{Kind: "broadcast", Bits: 32},
		{Kind: "frame", W: 8192, K: 3, P: 0.1, Observe: 1024, Busy: 200},
		{Kind: "scan", W: 64, Busy: -1},
		{Kind: "probe-slots", Bits: 5},
		{Kind: "custom"},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Fatalf("empty render for %+v", e)
		}
	}
	if !strings.Contains(events[1].String(), "w=8192") {
		t.Fatalf("frame render missing fields: %s", events[1])
	}
}
