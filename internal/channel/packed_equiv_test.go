package channel

import (
	"math/rand"
	"testing"

	"rfidest/internal/tags"
)

// These tests pin the word-packed BitVec to the retained []bool reference
// path (reference.go): for randomized frame geometries the packed engines
// must produce bit-identical frames, identical transmission metering, and
// identical aggregate queries.

// randomReq draws a frame geometry from the full parameter space the
// engines accept: any width, k ∈ [1,4], p ∈ (0,1], occasional observed
// prefixes and geometric slot selection.
func randomReq(rng *rand.Rand) FrameRequest {
	w := 1 + rng.Intn(3000)
	req := FrameRequest{
		W:    w,
		K:    1 + rng.Intn(4),
		P:    0.05 + 0.95*rng.Float64(),
		Seed: rng.Uint64(),
	}
	if rng.Intn(4) == 0 {
		req.Observe = 1 + rng.Intn(w)
	}
	if rng.Intn(5) == 0 {
		req.Dist = Geometric
	}
	return req
}

// assertMatchesRef checks every query the estimators run against a frame.
func assertMatchesRef(t *testing.T, trial int, vec BitVec, ref refVec) {
	t.Helper()
	if vec.Len() != len(ref) {
		t.Fatalf("trial %d: Len = %d, ref %d", trial, vec.Len(), len(ref))
	}
	for i := range ref {
		if vec.Get(i) != ref[i] {
			t.Fatalf("trial %d: slot %d packed=%v ref=%v", trial, i, vec.Get(i), ref[i])
		}
	}
	if got, want := vec.CountBusy(), ref.countBusy(); got != want {
		t.Fatalf("trial %d: CountBusy = %d, ref %d", trial, got, want)
	}
	if got, want := vec.CountIdle(), ref.countIdle(); got != want {
		t.Fatalf("trial %d: CountIdle = %d, ref %d", trial, got, want)
	}
	if got, want := vec.RhoIdle(), ref.rhoIdle(); got != want {
		t.Fatalf("trial %d: RhoIdle = %v, ref %v", trial, got, want)
	}
	if got, want := vec.FirstBusy(), ref.firstBusy(); got != want {
		t.Fatalf("trial %d: FirstBusy = %d, ref %d", trial, got, want)
	}
	if got, want := vec.FirstIdle(), ref.firstIdle(); got != want {
		t.Fatalf("trial %d: FirstIdle = %d, ref %d", trial, got, want)
	}
	if got, want := vec.Runs(), ref.runs(); !runsEqual(got, want) {
		t.Fatalf("trial %d: Runs = %v, ref %v", trial, got, want)
	}
}

func TestPackedTagEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	pop := tags.Generate(5000, tags.T1, 61)
	packed := NewTagEngine(pop, IdealRN)
	ref := NewTagEngine(pop, IdealRN)
	for trial := 0; trial < 60; trial++ {
		req := randomReq(rng)
		assertMatchesRef(t, trial, packed.RunFrame(req), ref.refRunFrame(req))
		if packed.TagTransmissions() != ref.TagTransmissions() {
			t.Fatalf("trial %d: metered %d transmissions, ref %d",
				trial, packed.TagTransmissions(), ref.TagTransmissions())
		}
	}
}

func TestPackedBallsEngineMatchesReference(t *testing.T) {
	// Twin engines with equal seeds hold identical RNG state; both RunFrame
	// paths advance it identically, so the twins stay in lockstep across
	// the whole randomized sequence.
	rng := rand.New(rand.NewSource(808))
	packed := NewBallsEngine(4000, 63)
	ref := NewBallsEngine(4000, 63)
	for trial := 0; trial < 60; trial++ {
		req := randomReq(rng)
		assertMatchesRef(t, trial, packed.RunFrame(req), ref.refRunFrame(req))
		if packed.TagTransmissions() != ref.TagTransmissions() {
			t.Fatalf("trial %d: metered %d transmissions, ref %d",
				trial, packed.TagTransmissions(), ref.TagTransmissions())
		}
	}
}

func TestPackedSmallPopulationsMatchReference(t *testing.T) {
	// Edge populations: empty and single-tag inventories over tiny frames,
	// where all-idle vectors, W=1 frames and tail words dominate.
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 3} {
		pop := tags.Generate(n, tags.T1, uint64(100+n))
		packed := NewTagEngine(pop, IdealRN)
		ref := NewTagEngine(pop, IdealRN)
		for trial := 0; trial < 40; trial++ {
			req := FrameRequest{
				W:    1 + rng.Intn(130),
				K:    1 + rng.Intn(3),
				P:    1,
				Seed: rng.Uint64(),
			}
			assertMatchesRef(t, trial, packed.RunFrame(req), ref.refRunFrame(req))
		}
	}
}
