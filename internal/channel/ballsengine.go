package channel

import (
	"math"

	"rfidest/internal/xrand"
)

// BallsEngine samples frame outcomes from the exact occupancy distribution
// of the tag process without iterating tags: the number of responses is
// Binomial(n·k, p) (each of the n·k (tag, hash) pairs responds
// independently with probability p) and responses land in slots according
// to the configured slot distribution. For ideal hashing this is the same
// stochastic process as TagEngine — see TestEnginesAgree — at O(n·k·p + w)
// per frame instead of O(n·k), which makes protocols that run thousands of
// frames (ZOE) tractable in large sweeps.
//
// Like every engine, a BallsEngine is single-session state (its RNG and
// energy counter advance on every frame) — one goroutine drives it for
// its whole life. Concurrency happens one level up, with one engine per
// session.
type BallsEngine struct {
	N   int // ground-truth population size
	rng *xrand.Rand

	// transmissions counts sampled tag responses so far (EnergyMeter).
	transmissions int
}

// NewBallsEngine returns a synthetic engine for a population of n tags.
// Frame outcomes are deterministic given (seed, frame seeds).
func NewBallsEngine(n int, seed uint64) *BallsEngine {
	if n < 0 {
		panic("channel: negative population size")
	}
	return &BallsEngine{N: n, rng: xrand.NewStream(seed, 0xba115)}
}

// Size implements Engine.
func (e *BallsEngine) Size() int { return e.N }

// frameRNG derives the stream for one frame from the frame seed, so equal
// seeds replay identical frames (matching the deterministic tag behaviour).
func (e *BallsEngine) frameRNG(req FrameRequest) *xrand.Rand {
	return xrand.NewStream(e.rng.Uint64(), req.Seed)
}

// RunFrame implements Engine.
func (e *BallsEngine) RunFrame(req FrameRequest) BitVec {
	observe := req.validate()
	rng := e.frameRNG(req)
	counts := scatterCounts(rng, e.N*req.K, req)
	busy := NewBitVec(observe)
	tx := 0
	for wi := 0; wi < busy.bits.Words(); wi++ {
		base := wi << 6
		end := base + 64
		if end > observe {
			end = observe
		}
		var w uint64
		for i := base; i < end; i++ {
			c := counts[i]
			// Branch-free busy bit (the compiler lowers this to SETNE): a
			// data-dependent branch here costs ~2x on random frames.
			var bit uint64
			if c != 0 {
				bit = 1
			}
			w |= bit << uint(i-base)
			tx += c
		}
		busy.bits.XorWord(wi, w)
	}
	e.transmissions += tx
	return busy
}

// scatterCounts samples the exact multinomial occupancy of a frame: the
// response count is Binomial(pairs, p) and responses are distributed over
// the W slots per the slot distribution. When the number of responses is
// large relative to the frame it switches from per-ball throwing to
// sequential binomial splitting (bin_i ~ Bin(remaining, q_i / tail_i)),
// which samples the identical joint law in O(W) instead of O(balls).
func scatterCounts(rng *xrand.Rand, pairs int, req FrameRequest) []int {
	balls := rng.Binomial(pairs, req.P)
	counts := make([]int, req.W)
	switch req.Dist {
	case Uniform:
		if balls <= 4*req.W {
			for i := 0; i < balls; i++ {
				counts[rng.Intn(req.W)]++
			}
			return counts
		}
		remaining := balls
		for i := 0; i < req.W-1 && remaining > 0; i++ {
			c := rng.Binomial(remaining, 1/float64(req.W-i))
			counts[i] = c
			remaining -= c
		}
		counts[req.W-1] += remaining
		return counts
	case Geometric:
		if balls <= 4*req.W {
			for i := 0; i < balls; i++ {
				j := rng.GeometricHalf()
				if j >= req.W {
					j = req.W - 1
				}
				counts[j]++
			}
			return counts
		}
		// Slot j carries 2^{-(j+1)} of the mass; conditioned on not
		// landing earlier, each ball picks slot j with probability 1/2.
		remaining := balls
		for j := 0; j < req.W-1 && remaining > 0; j++ {
			c := rng.Binomial(remaining, 0.5)
			counts[j] = c
			remaining -= c
		}
		counts[req.W-1] += remaining
		return counts
	default:
		panic("channel: unknown slot distribution")
	}
}

// FirstResponse implements Engine. The first busy slot is the minimum of
// the responders' slots; for the uniform case it is sampled directly from
// the distribution of the minimum of `balls` uniform draws on [0, w).
func (e *BallsEngine) FirstResponse(req FrameRequest, maxScan int) int {
	req.Observe = 0
	req.validate()
	if maxScan <= 0 || maxScan > req.W {
		maxScan = req.W
	}
	rng := e.frameRNG(req)
	balls := rng.Binomial(e.N*req.K, req.P)
	if balls == 0 {
		return -1
	}
	var min int
	switch req.Dist {
	case Uniform:
		// P(min >= t) = (1 - t/w)^balls; invert the continuous analogue
		// and floor — exact for the continuous uniform, and within one
		// slot of the discrete law, which is what the frame granularity
		// observes anyway.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		frac := 1 - math.Pow(u, 1/float64(balls))
		min = int(frac * float64(req.W))
		if min >= req.W {
			min = req.W - 1
		}
	case Geometric:
		// Minimum of geometric draws: sample directly; balls is small for
		// geometric protocols (they use p to thin heavily).
		min = req.W - 1
		for i := 0; i < balls; i++ {
			if j := rng.GeometricHalf(); j < min {
				min = j
			}
		}
	default:
		panic("channel: unknown slot distribution")
	}
	if min >= maxScan {
		return -1
	}
	// At least one ball sits in the winning slot; the multiplicity beyond
	// one is O(balls/W) and not resolved by the closed-form sampler.
	e.transmissions++
	return min
}
