package channel

import (
	"math"
	"testing"

	"rfidest/internal/tags"
)

// splitPopulation builds per-reader populations from one master set:
// reader 0 covers tags [0, cut), reader 1 covers [overlapStart, n).
func splitPopulation(n, cut, overlapStart int, seed uint64) (*tags.Population, *tags.Population, *tags.Population) {
	master := tags.Generate(n, tags.T1, seed)
	p0 := &tags.Population{Tags: master.Tags[:cut], Dist: master.Dist, Seed: seed}
	p1 := &tags.Population{Tags: master.Tags[overlapStart:], Dist: master.Dist, Seed: seed}
	return master, p0, p1
}

func TestMergedEngineEqualsUnionDisjoint(t *testing.T) {
	master, p0, p1 := splitPopulation(4000, 2000, 2000, 51)
	whole := NewTagEngine(master, IdealRN)
	merged := NewMergedEngine(master.N(),
		NewTagEngine(p0, IdealRN), NewTagEngine(p1, IdealRN))
	req := FrameRequest{W: 1024, K: 3, P: 0.3, Seed: 17}
	a := whole.RunFrame(req)
	b := merged.RunFrame(req)
	if !a.Equal(b) {
		t.Fatal("whole and merged views differ")
	}
}

func TestMergedEngineEqualsUnionOverlapping(t *testing.T) {
	// Readers share 1000 tags; a shared tag responds identically through
	// both (its hash depends only on the tag), so the OR equals the union.
	master, p0, p1 := splitPopulation(4000, 2500, 1500, 53)
	whole := NewTagEngine(master, IdealRN)
	merged := NewMergedEngine(master.N(),
		NewTagEngine(p0, IdealRN), NewTagEngine(p1, IdealRN))
	req := FrameRequest{W: 1024, K: 3, P: 0.3, Seed: 19}
	a := whole.RunFrame(req)
	b := merged.RunFrame(req)
	if !a.Equal(b) {
		t.Fatal("whole and merged views differ with overlapping coverage")
	}
}

func TestMergedEngineSize(t *testing.T) {
	m := NewMergedEngine(123, NewBallsEngine(60, 1), NewBallsEngine(63, 2))
	if m.Size() != 123 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestMergedEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty reader set did not panic")
		}
	}()
	NewMergedEngine(0)
}

func TestMergedEnginePanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative union did not panic")
		}
	}()
	NewMergedEngine(-1, NewBallsEngine(1, 1))
}

func TestMergedFirstResponse(t *testing.T) {
	_, p0, p1 := splitPopulation(2000, 1000, 1000, 55)
	e0, e1 := NewTagEngine(p0, IdealRN), NewTagEngine(p1, IdealRN)
	merged := NewMergedEngine(2000, e0, e1)
	req := FrameRequest{W: 1 << 16, K: 1, P: 1, Seed: 23}
	a, b := e0.FirstResponse(req, req.W), e1.FirstResponse(req, req.W)
	want := a
	if b >= 0 && (want < 0 || b < want) {
		want = b
	}
	if got := merged.FirstResponse(req, req.W); got != want {
		t.Fatalf("merged FirstResponse = %d, want min(%d, %d)", got, a, b)
	}
}

func TestMergedFirstResponseEmpty(t *testing.T) {
	merged := NewMergedEngine(0, NewBallsEngine(0, 1), NewBallsEngine(0, 2))
	if got := merged.FirstResponse(FrameRequest{W: 64, K: 1, P: 1, Seed: 1}, 64); got != -1 {
		t.Fatalf("empty merged FirstResponse = %d", got)
	}
}

func TestMergedOccupancyDisjoint(t *testing.T) {
	// Two disjoint single-tag populations colliding in the same slot must
	// merge Single+Single into Collision; disjoint singles stay Single.
	master, p0, p1 := splitPopulation(3000, 1500, 1500, 57)
	whole := NewTagEngine(master, IdealRN)
	merged := NewMergedEngine(master.N(),
		NewTagEngine(p0, IdealRN), NewTagEngine(p1, IdealRN))
	req := FrameRequest{W: 512, K: 1, P: 1, Seed: 29}
	a := whole.RunFrameOccupancy(req)
	b := merged.RunFrameOccupancy(req)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occupancy slot %d: whole=%v merged=%v", i, a[i], b[i])
		}
	}
}

func TestMergeStates(t *testing.T) {
	cases := []struct{ a, b, want SlotState }{
		{Empty, Empty, Empty},
		{Empty, Single, Single},
		{Single, Empty, Single},
		{Single, Single, Collision},
		{Single, Collision, Collision},
		{Collision, Collision, Collision},
	}
	for _, c := range cases {
		if got := mergeStates(c.a, c.b); got != c.want {
			t.Fatalf("mergeStates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMergedEngineBFCECompatible(t *testing.T) {
	// An estimator over the merged view must recover the union size.
	master, p0, p1 := splitPopulation(60000, 40000, 20000, 59)
	merged := NewMergedEngine(master.N(),
		NewTagEngine(p0, IdealRN), NewTagEngine(p1, IdealRN))
	req := FrameRequest{W: 8192, K: 3, P: 0.05, Seed: 31}
	rho := merged.RunFrame(req).RhoIdle()
	nhat := -8192 * math.Log(rho) / (3 * 0.05)
	if math.Abs(nhat-60000)/60000 > 0.05 {
		t.Fatalf("union estimate from merged frame = %v, want ~60000", nhat)
	}
}
